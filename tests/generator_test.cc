// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <string>

#include "workload/generator.h"
#include "xml/parser.h"
#include "xpath/axes.h"

namespace mhx::workload {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  EditionConfig config;
  config.seed = 42;
  config.word_count = 200;
  Edition a = GenerateEdition(config);
  Edition b = GenerateEdition(config);
  EXPECT_EQ(a.base_text, b.base_text);
  EXPECT_EQ(a.physical_xml, b.physical_xml);
  EXPECT_EQ(a.structural_xml, b.structural_xml);
  EXPECT_EQ(a.restoration_xml, b.restoration_xml);
  EXPECT_EQ(a.condition_xml, b.condition_xml);
  config.seed = 43;
  Edition c = GenerateEdition(config);
  EXPECT_NE(a.base_text, c.base_text);
}

TEST(GeneratorTest, AllHierarchiesEncodeTheBaseText) {
  EditionConfig config;
  config.seed = 3;
  config.word_count = 150;
  Edition e = GenerateEdition(config);
  ASSERT_FALSE(e.base_text.empty());
  for (const std::string* xml :
       {&e.physical_xml, &e.structural_xml, &e.restoration_xml,
        &e.condition_xml}) {
    auto doc = xml::Parse(*xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_EQ(doc->text, e.base_text);
  }
}

TEST(GeneratorTest, WordCountAndCoverageAreRespected) {
  EditionConfig config;
  config.seed = 9;
  config.word_count = 300;
  config.damage_coverage = 0.2;
  Edition e = GenerateEdition(config);
  auto structural = xml::Parse(e.structural_xml);
  ASSERT_TRUE(structural.ok());
  size_t words = 0;
  for (const auto& s : structural->root.children) {
    EXPECT_EQ(s.name, "s");
    words += s.children.size();
  }
  EXPECT_EQ(words, 300u);
  // Damage coverage lands near the requested fraction.
  auto condition = xml::Parse(e.condition_xml);
  ASSERT_TRUE(condition.ok());
  size_t covered = 0;
  for (const auto& dmg : condition->root.children) {
    covered += dmg.range.length();
  }
  double fraction =
      static_cast<double>(covered) / static_cast<double>(e.base_text.size());
  EXPECT_GT(fraction, 0.05);
  EXPECT_LT(fraction, 0.4);
}

TEST(GeneratorTest, ShortLinesProduceWordLineConflicts) {
  EditionConfig config;
  config.seed = 17;
  config.word_count = 100;
  config.chars_per_line = 13;
  auto doc = BuildEditionDocument(config);
  ASSERT_TRUE(doc.ok()) << doc.status();
  const goddag::KyGoddag& kg = doc->goddag();
  // Hierarchy ids follow AddHierarchy order.
  EXPECT_EQ(kg.hierarchy(0).name, "physical");
  EXPECT_EQ(kg.hierarchy(1).name, "structural");
  EXPECT_EQ(kg.hierarchy(2).name, "restoration");
  EXPECT_EQ(kg.hierarchy(3).name, "condition");
  xpath::AxisEvaluator axes(&kg);
  size_t conflicted_words = 0;
  for (goddag::NodeId id : kg.hierarchy(1).nodes) {
    const goddag::GNode& n = kg.node(id);
    if (n.kind == goddag::GNodeKind::kElement && n.name == "w" &&
        !axes.Evaluate(id, xpath::Axis::kOverlapping,
                       xpath::NodeTest::Name("line"))
             .empty()) {
      ++conflicted_words;
    }
  }
  EXPECT_GT(conflicted_words, 10u);
}

TEST(GeneratorTest, SampleVocabularyIsDeterministicAndAscii) {
  auto words = SampleVocabulary(13, 512);
  ASSERT_EQ(words.size(), 512u);
  EXPECT_EQ(words, SampleVocabulary(13, 512));
  for (const std::string& w : words) {
    ASSERT_FALSE(w.empty());
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << "non-ascii word: " << w;
    }
  }
}

TEST(GeneratorTest, TinyEditionsStillBuild) {
  EditionConfig config;
  config.seed = 1;
  config.word_count = 1;
  auto doc = BuildEditionDocument(config);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_GT(doc->goddag().element_count(), 0u);
}

}  // namespace
}  // namespace mhx::workload
