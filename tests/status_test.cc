// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "base/status.h"
#include "base/status_macros.h"
#include "base/statusor.h"

namespace mhx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 5);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  MHX_ASSIGN_OR_RETURN(int half, Half(x));
  MHX_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace mhx
