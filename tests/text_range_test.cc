// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include "base/text_range.h"

namespace mhx {
namespace {

TEST(TextRangeTest, Basics) {
  TextRange r(3, 8);
  EXPECT_EQ(r.length(), 5u);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(TextRange(4, 4).empty());
  EXPECT_EQ(r.ToString(), "[3, 8)");
}

TEST(TextRangeTest, ContainsRange) {
  TextRange outer(2, 10);
  EXPECT_TRUE(outer.Contains(TextRange(2, 10)));  // equal ranges contain
  EXPECT_TRUE(outer.Contains(TextRange(3, 9)));
  EXPECT_TRUE(outer.Contains(TextRange(2, 5)));
  EXPECT_TRUE(outer.Contains(TextRange(5, 10)));
  EXPECT_FALSE(outer.Contains(TextRange(1, 5)));
  EXPECT_FALSE(outer.Contains(TextRange(5, 11)));
  EXPECT_FALSE(TextRange(3, 9).Contains(outer));
}

TEST(TextRangeTest, ContainsPosition) {
  TextRange r(3, 6);
  EXPECT_FALSE(r.Contains(2));
  EXPECT_TRUE(r.Contains(3));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_FALSE(r.Contains(6));  // half-open
}

TEST(TextRangeTest, Intersects) {
  EXPECT_TRUE(TextRange(0, 5).Intersects(TextRange(4, 8)));
  EXPECT_TRUE(TextRange(4, 8).Intersects(TextRange(0, 5)));
  EXPECT_TRUE(TextRange(0, 8).Intersects(TextRange(2, 4)));
  EXPECT_FALSE(TextRange(0, 5).Intersects(TextRange(5, 8)));  // adjacent
  EXPECT_FALSE(TextRange(0, 5).Intersects(TextRange(7, 9)));
  EXPECT_FALSE(TextRange(2, 2).Intersects(TextRange(0, 5)));  // empty
}

TEST(TextRangeTest, PrecedesAndFollows) {
  EXPECT_TRUE(TextRange(0, 5).Precedes(TextRange(5, 8)));
  EXPECT_TRUE(TextRange(0, 5).Precedes(TextRange(6, 8)));
  EXPECT_FALSE(TextRange(0, 5).Precedes(TextRange(4, 8)));
  EXPECT_TRUE(TextRange(5, 8).Follows(TextRange(0, 5)));
  EXPECT_FALSE(TextRange(4, 8).Follows(TextRange(0, 5)));
}

TEST(TextRangeTest, OverlappingRangeIsProperOverlapOnly) {
  // Proper overlap: intersecting, neither contains the other.
  EXPECT_TRUE(OverlappingRange(TextRange(0, 5), TextRange(4, 8)));
  EXPECT_TRUE(OverlappingRange(TextRange(4, 8), TextRange(0, 5)));
  // Containment (either way) and equality are not overlap.
  EXPECT_FALSE(OverlappingRange(TextRange(0, 8), TextRange(2, 4)));
  EXPECT_FALSE(OverlappingRange(TextRange(2, 4), TextRange(0, 8)));
  EXPECT_FALSE(OverlappingRange(TextRange(2, 4), TextRange(2, 4)));
  // Shared boundary containments are still containments.
  EXPECT_FALSE(OverlappingRange(TextRange(0, 8), TextRange(0, 4)));
  EXPECT_FALSE(OverlappingRange(TextRange(0, 8), TextRange(4, 8)));
  // Disjoint and adjacent are not overlap.
  EXPECT_FALSE(OverlappingRange(TextRange(0, 4), TextRange(4, 8)));
  EXPECT_FALSE(OverlappingRange(TextRange(0, 3), TextRange(5, 8)));
}

TEST(TextRangeTest, DocumentOrderComparator) {
  EXPECT_LT(TextRange(0, 5), TextRange(1, 3));
  // Same start: the longer (containing) range sorts first.
  EXPECT_LT(TextRange(0, 9), TextRange(0, 5));
  EXPECT_FALSE(TextRange(0, 5) < TextRange(0, 5));
}

}  // namespace
}  // namespace mhx
