// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The concurrency stress binary the TSan CI lane runs on its own: it
// hammers every cross-thread path at once — concurrent readers, concurrent
// analyze-string() queries building evaluation-scoped overlays (previously
// single-flight behind an exclusive lock), kept-temporaries registry churn,
// intra-query thread-pool fan-out, lazy engine/axes/cache initialisation
// races, and the raw ThreadPool. Iteration counts are deliberately modest:
// under TSan the point is interleaving coverage, not throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "corpus/corpus.h"
#include "document.h"
#include "obs/trace.h"
#include "workload/generator.h"
#include "workload/paper_data.h"

namespace mhx {
namespace {

// Iteration multiplier: MHX_STRESS_ITERS=N scales every loop below by N.
// The CI TSan lane re-runs the heaviest case standalone with this bumped,
// buying interleaving coverage without slowing the ordinary ctest pass.
int StressIters(int base) {
  static const int multiplier = [] {
    const char* value = std::getenv("MHX_STRESS_ITERS");
    if (value != nullptr) {
      const int parsed = std::atoi(value);
      if (parsed > 0) return parsed;
    }
    return 1;
  }();
  return base * multiplier;
}

TEST(ConcurrencyStressTest, ColdEngineInitRace) {
  // All threads race the lazy engine/axes/index creation on a fresh doc.
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &failures] {
      auto out = doc.Query(workload::kQueryI1);
      if (!out.ok() || *out != workload::kExpectedI1) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyStressTest, MixedWorkloadOnOneDocument) {
  workload::EditionConfig config;
  config.seed = 31;
  config.word_count = 120;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto built = workload::BuildEditionDocument(config);
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();

  QueryOptions parallel;
  parallel.threads = 3;

  const std::string flwor_expected =
      *doc.Query("for $w in /descendant::w return string-length(string($w))");
  const std::string count_expected =
      *doc.Query("count(/descendant::w[overlapping::line])");

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Shared-lock readers, some with intra-query fan-out.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        auto out = t % 2 == 0
                       ? doc.Query(
                             "for $w in /descendant::w return "
                             "string-length(string($w))",
                             parallel)
                       : doc.Query("count(/descendant::w[overlapping::line])");
        const std::string& expected =
            t % 2 == 0 ? flwor_expected : count_expected;
        if (!out.ok() || *out != expected) ++failures;
      }
    });
  }
  // analyze-string queries: their temporary virtual hierarchies live in
  // evaluation-scoped overlays, so they run concurrently with every reader
  // above instead of serialising behind an exclusive lock.
  threads.emplace_back([&doc, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "for $w in /descendant::w[matches(string(.), 'ea')] return "
          "count(analyze-string($w, '.*ea.*')/descendant::leaf())");
      if (!out.ok()) ++failures;
    }
  });
  // Quantifier fan-out with short-circuit cancellation.
  threads.emplace_back([&doc, &parallel, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "some $w in /descendant::w satisfies "
          "string-length(string($w)) > 9",
          parallel);
      if (!out.ok()) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
}

// N threads running the same analyze-string() query (paper query II.1) on
// one document at once — structurally impossible before evaluation-scoped
// overlays, when temporary hierarchies were document-global mutations
// behind an exclusive lock. Every thread's every output must be
// byte-identical to the serial evaluation, and nothing may leak.
TEST(ConcurrencyStressTest, ConcurrentAnalyzeStringIsByteIdentical) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  auto serial = doc.Query(workload::kQueryII1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string expected = *serial;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &expected, &failures] {
      for (int i = 0; i < StressIters(8); ++i) {
        auto out = doc.Query(workload::kQueryII1);
        if (!out.ok() || *out != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
  // Overlay churn never rebuilds the base index.
  EXPECT_EQ(doc.engine()->index_rebuild_count(), 1u);
  // And never runs the overlay-id space dry.
  EXPECT_EQ(doc.engine()->overlay_id_exhausted(), 0u);
}

// The MVCC tentpole under TSan: a writer thread commits version after
// version (adding and removing a virtual hierarchy through the Writer
// path) while 8 reader threads run Section-4 paper queries. Readers never
// block on the writer and every result must equal one of the quiesced
// per-version references — the membership check catches torn reads, TSan
// catches unsynchronised ones.
TEST(ConcurrencyStressTest, MutateWhileQueryingRace) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  const char* kRaceQuery = "count(/descendant::*[overlapping::gap])";
  const std::vector<goddag::VirtualElement> damage = {
      goddag::VirtualElement{"gap", TextRange(4, 9), {}},
      goddag::VirtualElement{"gap", TextRange(30, 41), {}}};

  // Quiesced references: without and with the hierarchy.
  const std::string expected_without = *doc.Query(kRaceQuery);
  const std::string expected_i1 = *doc.Query(workload::kQueryI1);
  std::string expected_with;
  {
    auto writer = doc.NewWriter();
    writer.AddVirtualHierarchy("damage", damage);
    ASSERT_TRUE(writer.Commit().ok());
    expected_with = *doc.Query(kRaceQuery);
    auto writer2 = doc.NewWriter();
    writer2.RemoveVirtualHierarchy("damage");
    ASSERT_TRUE(writer2.Commit().ok());
  }
  ASSERT_NE(expected_without, expected_with);

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < StressIters(10); ++i) {
        if (t % 2 == 0) {
          // This query's answer is hierarchy-independent: one fixed
          // expectation regardless of where the writer is.
          auto out = doc.Query(workload::kQueryI1);
          if (!out.ok() || *out != expected_i1) ++failures;
        } else {
          auto out = doc.Query(kRaceQuery);
          if (!out.ok() ||
              (*out != expected_without && *out != expected_with)) {
            ++failures;
          }
        }
      }
    });
  }
  std::thread writer_thread([&] {
    bool present = false;
    while (!stop.load(std::memory_order_relaxed)) {
      auto writer = doc.NewWriter();
      if (present) {
        writer.RemoveVirtualHierarchy("damage");
      } else {
        writer.AddVirtualHierarchy("damage", damage);
      }
      if (!writer.Commit().ok()) ++failures;
      present = !present;
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();
  stop.store(true, std::memory_order_relaxed);
  writer_thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Readers paid exactly one index build (version 1's lazy one); every
  // committed version's index came prebuilt from the writer thread.
  EXPECT_EQ(doc.engine()->index_rebuild_count(), 1u);
  EXPECT_EQ(doc.engine()->overlay_id_exhausted(), 0u);
}

// Kept-temporaries registry churn racing readers: one thread keeps and
// releases handles (EvaluateKeepingTemporaries / handle drop) while others
// evaluate queries whose views snapshot the registry. Reader results vary
// legitimately with keep/release timing only in ways the assertions below
// are insensitive to (kQueryI1 touches no analyze-string names).
TEST(ConcurrencyStressTest, KeptTemporariesChurnUnderConcurrentReaders) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&doc, &failures] {
      for (int i = 0; i < 10; ++i) {
        auto out = doc.Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  threads.emplace_back([&doc, &failures] {
    for (int i = 0; i < 10; ++i) {
      auto kept = doc.engine()->EvaluateKeepingTemporaries(
          "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
          " \".*un<a>a</a>we.*\")");
      if (!kept.ok() || kept->temporaries.hierarchy_count() != 1) ++failures;
      // The handle drops at scope end, unregistering the hierarchy.
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
}

// Intra-query fan-out (work-stealing slots building worker-private
// sub-overlays via analyze-string inside the loop body) racing engine-level
// concurrency: plain readers, a second fanned-out analyze-string query, and
// kept-temporaries churn, all on one engine. This is the full PR-5 surface
// in one pot — worker view forks, the shared OverlayIdAllocator, sub-overlay
// merges at join, the kept registry, and the pool's help-drain path.
TEST(ConcurrencyStressTest, IntraQueryFanOutRacesEngineLevelQueries) {
  workload::EditionConfig config;
  config.seed = 37;
  config.word_count = 120;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto built = workload::BuildEditionDocument(config);
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();

  const char* kFanOutQuery =
      "for $w in /descendant::w[matches(string(.), '.*e.*')] return ("
      "  let $r := analyze-string($w, '.*e.*')"
      "  return for $leaf in $r/descendant::leaf()"
      "  return if ($leaf/xancestor::m) then <b>{$leaf}</b> else $leaf"
      "  , <br/> )";
  const char* kKeepQuery =
      "for $w in /descendant::w[matches(string(.), '.*ea.*')] return "
      "count(analyze-string($w, '.*ea.*')/descendant::leaf())";

  QueryOptions fan_out;
  fan_out.threads = 4;
  auto fan_out_serial = doc.Query(kFanOutQuery);
  ASSERT_TRUE(fan_out_serial.ok()) << fan_out_serial.status();
  const std::string fan_out_expected = *fan_out_serial;
  auto reader_serial = doc.Query("count(/descendant::w[overlapping::line])");
  ASSERT_TRUE(reader_serial.ok()) << reader_serial.status();
  const std::string reader_expected = *reader_serial;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Two threads running the fanned-out analyze-string query: intra-query
  // worker slots of both queries interleave on the shared pool.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < StressIters(6); ++i) {
        auto out = doc.Query(kFanOutQuery, fan_out);
        if (!out.ok() || *out != fan_out_expected) ++failures;
      }
    });
  }
  // Plain engine-level readers.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < StressIters(8); ++i) {
        auto out = doc.Query("count(/descendant::w[overlapping::line])");
        if (!out.ok() || *out != reader_expected) ++failures;
      }
    });
  }
  // Kept-temporaries churn from a parallel evaluation: worker sub-overlays
  // merge into the kept registry, readers snapshot it mid-churn, then the
  // handle drops.
  threads.emplace_back([&] {
    for (int i = 0; i < StressIters(5); ++i) {
      auto kept = doc.engine()->EvaluateKeepingTemporaries(kKeepQuery,
                                                           fan_out);
      if (!kept.ok() || kept->temporaries.hierarchy_count() == 0) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
  EXPECT_EQ(doc.engine()->index_rebuild_count(), 1u);
}

// The corpus-service surface in one pot: capacity-2 LRU churn across four
// documents while clients query (cheap and analyze-string-heavy, serial
// and fanned out through the shared pool), a pin thread queries evicted-
// but-pinned documents directly, and a kept thread holds KeptTemporaries
// handles past its pin — so eviction destroys engines under live handles.
// Every result is verified against a per-document serial reference; the
// TSan CI lane re-runs this with MHX_STRESS_ITERS bumped.
TEST(ConcurrencyStressTest, CorpusOpenEvictQueryKeptRace) {
  corpus::CorpusOptions options;
  options.capacity = 2;
  options.pool_threads = 2;
  options.max_heavy_in_flight = 2;
  options.heavy_queue_limit = 64;  // roomy: rejection is corpus_test's job
  corpus::CorpusService service(options);

  constexpr int kDocs = 4;
  const char* kCheapQuery = "/descendant::line";
  const char* kHeavyQuery =
      "for $w in /descendant::w[matches(string(.), '.*e.*')] return ("
      "  let $r := analyze-string($w, '.*e.*')"
      "  return for $leaf in $r/descendant::leaf()"
      "  return if ($leaf/xancestor::m) then <b>{$leaf}</b> else $leaf"
      "  , <br/> )";
  std::vector<std::string> expected_cheap(kDocs);
  std::vector<std::string> expected_heavy(kDocs);
  for (int d = 0; d < kDocs; ++d) {
    workload::EditionConfig config;
    config.seed = 61 + d;
    config.word_count = 60;
    config.damage_coverage = 0.12;
    config.restoration_coverage = 0.15;
    ASSERT_TRUE(service.Register("doc" + std::to_string(d), config).ok());
    auto direct = workload::BuildEditionDocument(config);
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto cheap = direct->Query(kCheapQuery);
    auto heavy = direct->Query(kHeavyQuery);
    ASSERT_TRUE(cheap.ok() && heavy.ok());
    expected_cheap[d] = *cheap;
    expected_heavy[d] = *heavy;
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Query clients: mixed cheap/heavy traffic, serial and parallel, across
  // all documents — each access may build, hit, or evict.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < StressIters(8); ++i) {
        const int d = (i + t) % kDocs;
        const bool heavy = (i + t) % 3 == 0;
        QueryOptions query_options;
        query_options.threads = i % 2 == 0 ? 2 : 1;
        auto out = service.Query("doc" + std::to_string(d),
                                 heavy ? kHeavyQuery : kCheapQuery,
                                 query_options);
        if (!out.ok() ||
            *out != (heavy ? expected_heavy[d] : expected_cheap[d])) {
          ++failures;
        }
      }
    });
  }
  // Pin thread: pins rotate across documents and query directly, so the
  // pinned document keeps answering even while the LRU evicts it.
  threads.emplace_back([&] {
    for (int i = 0; i < StressIters(8); ++i) {
      const int d = i % kDocs;
      auto pinned = service.Pin("doc" + std::to_string(d));
      if (!pinned.ok()) {
        ++failures;
        continue;
      }
      auto out = (*pinned)->Query(kCheapQuery);
      if (!out.ok() || *out != expected_cheap[d]) ++failures;
    }
  });
  // Kept thread: holds a KeptTemporaries handle after dropping its pin, so
  // churn from the other threads can evict and destroy the engine under a
  // live handle — which must stay inert-safe.
  threads.emplace_back([&] {
    for (int i = 0; i < StressIters(4); ++i) {
      const int d = (i + 1) % kDocs;
      xquery::KeptTemporaries held;
      {
        auto pinned = service.Pin("doc" + std::to_string(d));
        if (!pinned.ok()) {
          ++failures;
          continue;
        }
        auto kept =
            (*pinned)->engine()->EvaluateKeepingTemporaries(kHeavyQuery);
        if (!kept.ok()) {
          ++failures;
          continue;
        }
        held = std::move(kept->temporaries);
      }  // pin dropped; `held` may now outlive the document
      std::this_thread::yield();
      held.Release();
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.stats().heavy_rejections, 0u);
  EXPECT_EQ(service.stats().overlay_id_exhausted, 0u);
}

#if defined(__unix__) || defined(__APPLE__)
// Mapped-snapshot lifetime under MVCC churn: a capacity-1 corpus with an
// arena spill directory, so every LRU miss adopts an mmap-backed snapshot
// and every alternation evicts one. A pin thread holds pinned (typically
// mapped) documents across evictions and keeps querying them — the mapping
// must stay alive and byte-identical for exactly as long as the pin does,
// while churn threads destroy and reload documents underneath. The TSan CI
// lane re-runs this standalone with MHX_STRESS_ITERS bumped.
TEST(ConcurrencyStressTest, EvictionVsPinnedMappedSnapshotRace) {
  char dir_template[] = "/tmp/mhx_stress_spill.XXXXXX";
  char* dir = mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  corpus::CorpusOptions options;
  options.capacity = 1;  // every alternation evicts
  options.pool_threads = 2;
  options.spill_dir = dir;
  corpus::CorpusService service(options);

  constexpr int kDocs = 3;
  const char* kQuery = "/descendant::line";
  std::vector<std::string> expected(kDocs);
  for (int d = 0; d < kDocs; ++d) {
    workload::EditionConfig config;
    config.seed = 81 + d;
    config.word_count = 60;
    config.damage_coverage = 0.12;
    config.restoration_coverage = 0.15;
    ASSERT_TRUE(service.Register("doc" + std::to_string(d), config).ok());
    auto direct = workload::BuildEditionDocument(config);
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto reference = direct->Query(kQuery);
    ASSERT_TRUE(reference.ok()) << reference.status();
    expected[d] = *reference;
  }
  // Warm every document once so its spill arena exists: all later misses
  // come back as mapped snapshots, which is the lifetime under test.
  for (int d = 0; d < kDocs; ++d) {
    auto out = service.Query("doc" + std::to_string(d), kQuery);
    ASSERT_TRUE(out.ok()) << out.status();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Churn threads rotate documents through the capacity-1 LRU, so mapped
  // snapshots are adopted and evicted continuously.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < StressIters(10); ++i) {
        const int d = (i + t) % kDocs;
        auto out = service.Query("doc" + std::to_string(d), kQuery);
        if (!out.ok() || *out != expected[d]) ++failures;
      }
    });
  }
  // Pin thread: queries a pinned document repeatedly while the churn above
  // evicts it — the pin (and with it the arena mapping) must keep every
  // answer byte-identical until it drops.
  threads.emplace_back([&] {
    for (int i = 0; i < StressIters(6); ++i) {
      const int d = i % kDocs;
      auto pinned = service.Pin("doc" + std::to_string(d));
      if (!pinned.ok()) {
        ++failures;
        continue;
      }
      for (int q = 0; q < 3; ++q) {
        auto out = (*pinned)->Query(kQuery);
        if (!out.ok() || *out != expected[d]) ++failures;
        std::this_thread::yield();
      }
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(service.stats().mmap_loads, 0u);
  EXPECT_EQ(service.stats().load_fallbacks, 0u);
}
#endif  // defined(__unix__) || defined(__APPLE__)

// Observability under churn: a threshold-0 corpus (every query lands in
// the slow-query ring) serves traced fan-out queries and untraced queries
// while one thread dumps the slow log and exports metrics in a loop and
// LRU churn across three documents builds and evicts engines underneath.
// Exercises the caller-trace path, the internal slow-log trace path, the
// per-slot scheduler tracing, and the ring's record/dump race at once;
// the TSan CI lane re-runs this standalone.
TEST(ConcurrencyStressTest, TracedQueriesSlowLogDumpRaceCorpusChurn) {
  corpus::CorpusOptions options;
  options.capacity = 2;
  options.pool_threads = 2;
  options.max_heavy_in_flight = 2;
  options.heavy_queue_limit = 64;
  options.slow_query_threshold_us = 0;  // capture every query
  options.slow_query_log_capacity = 8;
  corpus::CorpusService service(options);

  constexpr int kDocs = 3;
  const char* kCheapQuery = "/descendant::line";
  const char* kHeavyQuery =
      "for $w in /descendant::w[matches(string(.), '.*e.*')] return "
      "analyze-string($w, '.*e.*')/descendant::leaf()";
  std::vector<std::string> expected_cheap(kDocs);
  std::vector<std::string> expected_heavy(kDocs);
  for (int d = 0; d < kDocs; ++d) {
    workload::EditionConfig config;
    config.seed = 71 + d;
    config.word_count = 60;
    config.damage_coverage = 0.12;
    config.restoration_coverage = 0.15;
    ASSERT_TRUE(service.Register("doc" + std::to_string(d), config).ok());
    auto direct = workload::BuildEditionDocument(config);
    ASSERT_TRUE(direct.ok()) << direct.status();
    auto cheap = direct->Query(kCheapQuery);
    auto heavy = direct->Query(kHeavyQuery);
    ASSERT_TRUE(cheap.ok() && heavy.ok());
    expected_cheap[d] = *cheap;
    expected_heavy[d] = *heavy;
  }

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Traced clients: each query carries its own caller trace through the
  // fan-out scheduler; spans must come back well-formed every time.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < StressIters(8); ++i) {
        const int d = (i + t) % kDocs;
        const bool heavy = (i + t) % 2 == 0;
        obs::QueryTrace trace;
        QueryOptions query_options;
        query_options.threads = 2;
        query_options.trace = &trace;
        auto out = service.Query("doc" + std::to_string(d),
                                 heavy ? kHeavyQuery : kCheapQuery,
                                 query_options);
        if (!out.ok() ||
            *out != (heavy ? expected_heavy[d] : expected_cheap[d])) {
          ++failures;
          continue;
        }
        bool saw_evaluate = false;
        for (const obs::QueryTrace::Span& span : trace.spans()) {
          if (span.end_ns < span.begin_ns) ++failures;
          if (span.name == "evaluate") saw_evaluate = true;
        }
        if (!saw_evaluate) ++failures;
      }
    });
  }
  // Untraced client: the default path must not regress or race while
  // traced queries and the slow log run beside it.
  threads.emplace_back([&] {
    for (int i = 0; i < StressIters(12); ++i) {
      const int d = i % kDocs;
      auto out = service.Query("doc" + std::to_string(d), kCheapQuery);
      if (!out.ok() || *out != expected_cheap[d]) ++failures;
    }
  });
  // Observer: dumps the slow-query ring and exports metrics while the
  // writers above wrap it and the LRU churns documents.
  threads.emplace_back([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& record : service.DumpSlowQueries()) {
        if (record.query.empty()) ++failures;  // torn record
      }
      if (service.metrics().TextExport().empty()) ++failures;
      std::this_thread::yield();
    }
  });
  for (size_t i = 0; i + 1 < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  threads.back().join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(service.stats().slow_queries, 0u);
  EXPECT_FALSE(service.DumpSlowQueries().empty());
}

TEST(ConcurrencyStressTest, ThreadPoolSubmitRace) {
  base::ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([i] { return i; }));
      }
      for (auto& future : futures) sum += future.get();
    });
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(sum.load(), 4L * (49 * 50 / 2));
}

}  // namespace
}  // namespace mhx
