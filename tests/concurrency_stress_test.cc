// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The concurrency stress binary the TSan CI lane runs on its own: it
// hammers every cross-thread path at once — concurrent readers, concurrent
// analyze-string() queries building evaluation-scoped overlays (previously
// single-flight behind an exclusive lock), kept-temporaries registry churn,
// intra-query thread-pool fan-out, lazy engine/axes/cache initialisation
// races, and the raw ThreadPool. Iteration counts are deliberately modest:
// under TSan the point is interleaving coverage, not throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "document.h"
#include "workload/generator.h"
#include "workload/paper_data.h"

namespace mhx {
namespace {

TEST(ConcurrencyStressTest, ColdEngineInitRace) {
  // All threads race the lazy engine/axes/index creation on a fresh doc.
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &failures] {
      auto out = doc.Query(workload::kQueryI1);
      if (!out.ok() || *out != workload::kExpectedI1) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyStressTest, MixedWorkloadOnOneDocument) {
  workload::EditionConfig config;
  config.seed = 31;
  config.word_count = 120;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto built = workload::BuildEditionDocument(config);
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();

  QueryOptions parallel;
  parallel.threads = 3;

  const std::string flwor_expected =
      *doc.Query("for $w in /descendant::w return string-length(string($w))");
  const std::string count_expected =
      *doc.Query("count(/descendant::w[overlapping::line])");

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Shared-lock readers, some with intra-query fan-out.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        auto out = t % 2 == 0
                       ? doc.Query(
                             "for $w in /descendant::w return "
                             "string-length(string($w))",
                             parallel)
                       : doc.Query("count(/descendant::w[overlapping::line])");
        const std::string& expected =
            t % 2 == 0 ? flwor_expected : count_expected;
        if (!out.ok() || *out != expected) ++failures;
      }
    });
  }
  // analyze-string queries: their temporary virtual hierarchies live in
  // evaluation-scoped overlays, so they run concurrently with every reader
  // above instead of serialising behind an exclusive lock.
  threads.emplace_back([&doc, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "for $w in /descendant::w[matches(string(.), 'ea')] return "
          "count(analyze-string($w, '.*ea.*')/descendant::leaf())");
      if (!out.ok()) ++failures;
    }
  });
  // Quantifier fan-out with short-circuit cancellation.
  threads.emplace_back([&doc, &parallel, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "some $w in /descendant::w satisfies "
          "string-length(string($w)) > 9",
          parallel);
      if (!out.ok()) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
}

// N threads running the same analyze-string() query (paper query II.1) on
// one document at once — structurally impossible before evaluation-scoped
// overlays, when temporary hierarchies were document-global mutations
// behind an exclusive lock. Every thread's every output must be
// byte-identical to the serial evaluation, and nothing may leak.
TEST(ConcurrencyStressTest, ConcurrentAnalyzeStringIsByteIdentical) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  auto serial = doc.Query(workload::kQueryII1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const std::string expected = *serial;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &expected, &failures] {
      for (int i = 0; i < 8; ++i) {
        auto out = doc.Query(workload::kQueryII1);
        if (!out.ok() || *out != expected) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
  // Overlay churn never rebuilds the base index.
  EXPECT_EQ(doc.engine()->index_rebuild_count(), 1u);
}

// Kept-temporaries registry churn racing readers: one thread keeps and
// releases handles (EvaluateKeepingTemporaries / handle drop) while others
// evaluate queries whose views snapshot the registry. Reader results vary
// legitimately with keep/release timing only in ways the assertions below
// are insensitive to (kQueryI1 touches no analyze-string names).
TEST(ConcurrencyStressTest, KeptTemporariesChurnUnderConcurrentReaders) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&doc, &failures] {
      for (int i = 0; i < 10; ++i) {
        auto out = doc.Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  threads.emplace_back([&doc, &failures] {
    for (int i = 0; i < 10; ++i) {
      auto kept = doc.engine()->EvaluateKeepingTemporaries(
          "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
          " \".*un<a>a</a>we.*\")");
      if (!kept.ok() || kept->temporaries.hierarchy_count() != 1) ++failures;
      // The handle drops at scope end, unregistering the hierarchy.
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
}

TEST(ConcurrencyStressTest, ThreadPoolSubmitRace) {
  base::ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([i] { return i; }));
      }
      for (auto& future : futures) sum += future.get();
    });
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(sum.load(), 4L * (49 * 50 / 2));
}

}  // namespace
}  // namespace mhx
