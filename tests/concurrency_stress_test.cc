// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The concurrency stress binary the TSan CI lane runs on its own: it
// hammers every cross-thread path at once — shared-lock readers, the
// exclusive analyze-string path, intra-query thread-pool fan-out, lazy
// engine/axes/cache initialisation races, and the raw ThreadPool. Iteration
// counts are deliberately modest: under TSan the point is interleaving
// coverage, not throughput.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/thread_pool.h"
#include "document.h"
#include "workload/generator.h"
#include "workload/paper_data.h"

namespace mhx {
namespace {

TEST(ConcurrencyStressTest, ColdEngineInitRace) {
  // All threads race the lazy engine/axes/index creation on a fresh doc.
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&doc, &failures] {
      auto out = doc.Query(workload::kQueryI1);
      if (!out.ok() || *out != workload::kExpectedI1) ++failures;
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrencyStressTest, MixedWorkloadOnOneDocument) {
  workload::EditionConfig config;
  config.seed = 31;
  config.word_count = 120;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto built = workload::BuildEditionDocument(config);
  ASSERT_TRUE(built.ok()) << built.status();
  MultihierarchicalDocument doc = std::move(built).value();

  QueryOptions parallel;
  parallel.threads = 3;

  const std::string flwor_expected =
      *doc.Query("for $w in /descendant::w return string-length(string($w))");
  const std::string count_expected =
      *doc.Query("count(/descendant::w[overlapping::line])");

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  // Shared-lock readers, some with intra-query fan-out.
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 8; ++i) {
        auto out = t % 2 == 0
                       ? doc.Query(
                             "for $w in /descendant::w return "
                             "string-length(string($w))",
                             parallel)
                       : doc.Query("count(/descendant::w[overlapping::line])");
        const std::string& expected =
            t % 2 == 0 ? flwor_expected : count_expected;
        if (!out.ok() || *out != expected) ++failures;
      }
    });
  }
  // Exclusive-lock writers: analyze-string creates and tears down temporary
  // virtual hierarchies between the readers' evaluations.
  threads.emplace_back([&doc, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "for $w in /descendant::w[matches(string(.), 'ea')] return "
          "count(analyze-string($w, '.*ea.*')/descendant::leaf())");
      if (!out.ok()) ++failures;
    }
  });
  // Quantifier fan-out with short-circuit cancellation.
  threads.emplace_back([&doc, &parallel, &failures] {
    for (int i = 0; i < 6; ++i) {
      auto out = doc.Query(
          "some $w in /descendant::w satisfies "
          "string-length(string($w)) > 9",
          parallel);
      if (!out.ok()) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(doc.engine()->temporary_hierarchy_count(), 0u);
}

TEST(ConcurrencyStressTest, ThreadPoolSubmitRace) {
  base::ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.Submit([i] { return i; }));
      }
      for (auto& future : futures) sum += future.get();
    });
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(sum.load(), 4L * (49 * 50 / 2));
}

}  // namespace
}  // namespace mhx
