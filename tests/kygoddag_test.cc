// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "goddag/kygoddag.h"
#include "workload/paper_data.h"

namespace mhx::goddag {
namespace {

// Leaf partition as plain boundary offsets for easy comparison.
std::vector<size_t> Boundaries(const KyGoddag& kg) {
  std::vector<size_t> out;
  for (const Leaf& leaf : kg.leaves()) {
    if (out.empty()) out.push_back(leaf.range.begin);
    out.push_back(leaf.range.end);
  }
  return out;
}

// The partition must tile [0, n) exactly.
void ExpectTiles(const KyGoddag& kg) {
  const auto& leaves = kg.leaves();
  ASSERT_FALSE(leaves.empty());
  EXPECT_EQ(leaves.front().range.begin, 0u);
  EXPECT_EQ(leaves.back().range.end, kg.base_text().size());
  for (size_t i = 0; i + 1 < leaves.size(); ++i) {
    EXPECT_EQ(leaves[i].range.end, leaves[i + 1].range.begin);
    EXPECT_FALSE(leaves[i].range.empty());
  }
}

KyGoddag PaperGoddag() {
  KyGoddag kg(mhx::workload::kPaperBaseText);
  auto phys = mhx::xml::Parse(mhx::workload::kPaperPhysicalXml);
  auto strut = mhx::xml::Parse(mhx::workload::kPaperStructuralXml);
  EXPECT_TRUE(phys.ok());
  EXPECT_TRUE(strut.ok());
  EXPECT_TRUE(kg.AddHierarchy("physical", *phys).ok());
  EXPECT_TRUE(kg.AddHierarchy("structural", *strut).ok());
  return kg;
}

TEST(KyGoddagTest, BuildsHierarchiesOverSharedText) {
  KyGoddag kg = PaperGoddag();
  EXPECT_EQ(kg.base_text(), mhx::workload::kPaperBaseText);
  // physical: sheet + page + 3 lines = 5; structural: text + 2 s + 9 w = 12.
  EXPECT_EQ(kg.hierarchy(0).nodes.size(), 5u);
  EXPECT_EQ(kg.hierarchy(1).nodes.size(), 12u);
  EXPECT_EQ(kg.element_count(), 17u);
  // Both hierarchy roots hang off the GODDAG root.
  EXPECT_EQ(kg.node(kg.root()).children.size(), 2u);
  const GNode& sheet = kg.node(kg.hierarchy(0).root);
  EXPECT_EQ(sheet.name, "sheet");
  EXPECT_EQ(sheet.range, TextRange(0, kg.base_text().size()));
  ExpectTiles(kg);
}

TEST(KyGoddagTest, RejectsMisalignedHierarchy) {
  KyGoddag kg(mhx::workload::kPaperBaseText);
  auto other = mhx::xml::Parse("<t>some other text</t>");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(kg.AddHierarchy("bogus", *other).ok());
}

TEST(KyGoddagTest, NodeStringExtractsDominatedText) {
  KyGoddag kg = PaperGoddag();
  bool found = false;
  for (NodeId id : kg.hierarchy(1).nodes) {
    if (kg.node(id).name == "w" && kg.NodeString(id) == "unawendendne") {
      found = true;
      EXPECT_EQ(kg.node(id).range, TextRange(9, 21));
    }
  }
  EXPECT_TRUE(found);
}

TEST(KyGoddagTest, VirtualHierarchyAddRemoveRestoresPartition) {
  KyGoddag kg = PaperGoddag();
  std::vector<size_t> before = Boundaries(kg);
  auto h = kg.AddVirtualHierarchy(
      "match", {VirtualElement{"m", TextRange(11, 19), {}},
                VirtualElement{"g", TextRange(13, 17), {}}});
  ASSERT_TRUE(h.ok()) << h.status();
  ExpectTiles(kg);
  std::vector<size_t> during = Boundaries(kg);
  for (size_t pos : {11u, 13u, 17u, 19u}) {
    EXPECT_NE(std::find(during.begin(), during.end(), pos), during.end())
        << "missing boundary " << pos;
  }
  EXPECT_GT(during.size(), before.size());
  // The virtual hierarchy is navigable: match root -> m -> g.
  const Hierarchy& vh = kg.hierarchy(*h);
  EXPECT_TRUE(vh.is_virtual);
  ASSERT_EQ(vh.nodes.size(), 3u);
  EXPECT_EQ(kg.node(vh.root).name, "match");
  ASSERT_TRUE(kg.RemoveVirtualHierarchy(*h).ok());
  EXPECT_EQ(Boundaries(kg), before);
  ExpectTiles(kg);
}

TEST(KyGoddagTest, IncrementalAndFullRebuildAgree) {
  // The same add/remove sequence executed twice — once with incremental
  // splicing, once with full lazy rebuilds — must produce identical
  // partitions at every step.
  struct Op {
    TextRange a, b;
  };
  std::vector<Op> ops = {
      {TextRange(1, 49), TextRange(2, 48)},
      {TextRange(10, 20), TextRange(12, 18)},
      {TextRange(5, 45), TextRange(5, 44)},
      {TextRange(21, 22), TextRange(21, 22)},
      {TextRange(3, 30), TextRange(29, 30)},
  };
  KyGoddag incremental = PaperGoddag();
  KyGoddag full = PaperGoddag();
  incremental.set_incremental_leaves(true);
  full.set_incremental_leaves(false);
  (void)incremental.leaves();  // prime the incremental structures
  for (const Op& op : ops) {
    auto hi = incremental.AddVirtualHierarchy(
        "v", {VirtualElement{"x", op.a, {}}, VirtualElement{"y", op.b, {}}});
    auto hf = full.AddVirtualHierarchy(
        "v", {VirtualElement{"x", op.a, {}}, VirtualElement{"y", op.b, {}}});
    ASSERT_TRUE(hi.ok());
    ASSERT_TRUE(hf.ok());
    EXPECT_EQ(Boundaries(incremental), Boundaries(full));
    ASSERT_TRUE(incremental.RemoveVirtualHierarchy(*hi).ok());
    ASSERT_TRUE(full.RemoveVirtualHierarchy(*hf).ok());
    EXPECT_EQ(Boundaries(incremental), Boundaries(full));
  }
  // Stacked (not immediately removed) hierarchies must also agree.
  auto h1i = incremental.AddVirtualHierarchy(
      "a", {VirtualElement{"x", TextRange(7, 33), {}}});
  auto h1f =
      full.AddVirtualHierarchy("a", {VirtualElement{"x", TextRange(7, 33), {}}});
  auto h2i = incremental.AddVirtualHierarchy(
      "b", {VirtualElement{"y", TextRange(30, 40), {}}});
  auto h2f =
      full.AddVirtualHierarchy("b", {VirtualElement{"y", TextRange(30, 40), {}}});
  ASSERT_TRUE(h1i.ok() && h1f.ok() && h2i.ok() && h2f.ok());
  EXPECT_EQ(Boundaries(incremental), Boundaries(full));
  ASSERT_TRUE(incremental.RemoveVirtualHierarchy(*h1i).ok());
  ASSERT_TRUE(full.RemoveVirtualHierarchy(*h1f).ok());
  // 30 stays a boundary (kept alive by h2), 7 and 33 go away.
  EXPECT_EQ(Boundaries(incremental), Boundaries(full));
  ASSERT_TRUE(incremental.RemoveVirtualHierarchy(*h2i).ok());
  ASSERT_TRUE(full.RemoveVirtualHierarchy(*h2f).ok());
  EXPECT_EQ(Boundaries(incremental), Boundaries(full));
}

TEST(KyGoddagTest, SharedBoundaryRefcounting) {
  KyGoddag kg = PaperGoddag();
  kg.set_incremental_leaves(true);
  (void)kg.leaves();
  // Word "unawendendne" already contributes boundaries 9 and 21; a virtual
  // element sharing them must not remove them when it goes away.
  auto h = kg.AddVirtualHierarchy("v",
                                  {VirtualElement{"x", TextRange(9, 21), {}}});
  ASSERT_TRUE(h.ok());
  std::vector<size_t> with = Boundaries(kg);
  ASSERT_TRUE(kg.RemoveVirtualHierarchy(*h).ok());
  std::vector<size_t> after = Boundaries(kg);
  EXPECT_EQ(with, after);  // 9 and 21 survive via the word's refcount
  EXPECT_NE(std::find(after.begin(), after.end(), 9u), after.end());
  EXPECT_NE(std::find(after.begin(), after.end(), 21u), after.end());
}

TEST(KyGoddagTest, VirtualHierarchyValidation) {
  KyGoddag kg = PaperGoddag();
  // Overlapping elements within one hierarchy are rejected.
  EXPECT_FALSE(kg.AddVirtualHierarchy(
                     "v", {VirtualElement{"x", TextRange(0, 10), {}},
                           VirtualElement{"y", TextRange(5, 15), {}}})
                   .ok());
  // Non-adjacent overlap hiding behind a nested chain is also rejected.
  EXPECT_FALSE(kg.AddVirtualHierarchy(
                     "v", {VirtualElement{"a", TextRange(0, 10), {}},
                           VirtualElement{"b", TextRange(1, 4), {}},
                           VirtualElement{"c", TextRange(2, 12), {}}})
                   .ok());
  // Out-of-bounds and empty ranges are rejected.
  EXPECT_FALSE(kg.AddVirtualHierarchy(
                     "v", {VirtualElement{"x", TextRange(0, 1000), {}}})
                   .ok());
  EXPECT_FALSE(
      kg.AddVirtualHierarchy("v", {VirtualElement{"x", TextRange(5, 5), {}}})
          .ok());
  // Removing a persistent hierarchy is refused; removing twice fails.
  EXPECT_FALSE(kg.RemoveVirtualHierarchy(0).ok());
  auto h = kg.AddVirtualHierarchy("v",
                                  {VirtualElement{"x", TextRange(1, 2), {}}});
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(kg.RemoveVirtualHierarchy(*h).ok());
  EXPECT_FALSE(kg.RemoveVirtualHierarchy(*h).ok());
}

TEST(KyGoddagTest, NodeAndHierarchySlotsAreRecycled) {
  KyGoddag kg = PaperGoddag();
  size_t table = kg.node_table_size();
  size_t hierarchies = kg.hierarchy_table_size();
  for (int i = 0; i < 100; ++i) {
    auto h = kg.AddVirtualHierarchy(
        "v", {VirtualElement{"x", TextRange(4, 40), {}},
              VirtualElement{"y", TextRange(6, 20), {}}});
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(kg.RemoveVirtualHierarchy(*h).ok());
  }
  // One add/remove cycle may grow the tables once; they must not keep
  // growing.
  EXPECT_LE(kg.node_table_size(), table + 3);
  EXPECT_LE(kg.hierarchy_table_size(), hierarchies + 1);
}

TEST(KyGoddagTest, RevisionBumpsOnStructuralChange) {
  KyGoddag kg = PaperGoddag();
  uint64_t r0 = kg.revision();
  auto h = kg.AddVirtualHierarchy("v",
                                  {VirtualElement{"x", TextRange(1, 2), {}}});
  ASSERT_TRUE(h.ok());
  EXPECT_GT(kg.revision(), r0);
  uint64_t r1 = kg.revision();
  ASSERT_TRUE(kg.RemoveVirtualHierarchy(*h).ok());
  EXPECT_GT(kg.revision(), r1);
}

}  // namespace
}  // namespace mhx::goddag
