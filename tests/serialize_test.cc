// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include "xquery/serialize.h"

namespace mhx::xquery {
namespace {

TEST(CoalesceRunsTest, MergesAdjacentSameTagRuns) {
  EXPECT_EQ(CoalesceRuns("<b>d</b><b>endne</b>"), "<b>dendne</b>");
  EXPECT_EQ(CoalesceRuns("<b>a</b><b>b</b><b>c</b>"), "<b>abc</b>");
  EXPECT_EQ(CoalesceRuns("un<b>a</b>wendendne"), "un<b>a</b>wendendne");
}

TEST(CoalesceRunsTest, LeavesDifferentTagsAndSeparatedRunsAlone) {
  EXPECT_EQ(CoalesceRuns("<b>a</b><i>b</i>"), "<b>a</b><i>b</i>");
  EXPECT_EQ(CoalesceRuns("<b>a</b> <b>b</b>"), "<b>a</b> <b>b</b>");
  EXPECT_EQ(CoalesceRuns("<b>a</b><br/><b>b</b>"), "<b>a</b><br/><b>b</b>");
}

TEST(CoalesceRunsTest, HandlesMixedContent) {
  EXPECT_EQ(
      CoalesceRuns("thaet is <b>u</b><b>nawe</b><b>n</b><br/>"
                   "<b>dendne</b> sceaft"),
      "thaet is <b>unawen</b><br/><b>dendne</b> sceaft");
}

TEST(CoalesceRunsTest, EmptyAndPlainStrings) {
  EXPECT_EQ(CoalesceRuns(""), "");
  EXPECT_EQ(CoalesceRuns("no tags here"), "no tags here");
}

}  // namespace
}  // namespace mhx::xquery
