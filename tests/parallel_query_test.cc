// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The parallel-evaluation and ordering-guarantee contracts:
//  * QueryOptions{threads} results are byte-identical to serial evaluation,
//    on the paper's Section 4 queries and on synthetic editions;
//  * IsParallelSafe classifies side-effecting subtrees correctly;
//  * concurrent doc->Query() calls on one document are safe;
//  * the guarantee-driven step merge equals brute-force sort+dedup
//    (QueryOptions::force_step_sort) for every axis.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "document.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace mhx::xquery {
namespace {

QueryOptions Threads(unsigned n) {
  QueryOptions options;
  options.threads = n;
  return options;
}

class ParallelQueryTest : public ::testing::Test {
 protected:
  ParallelQueryTest() {
    auto paper = workload::BuildPaperDocument();
    EXPECT_TRUE(paper.ok()) << paper.status();
    paper_ = std::make_unique<MultihierarchicalDocument>(
        std::move(paper).value());

    workload::EditionConfig config;
    config.seed = 29;
    config.word_count = 200;
    config.damage_coverage = 0.12;
    config.restoration_coverage = 0.15;
    auto edition = workload::BuildEditionDocument(config);
    EXPECT_TRUE(edition.ok()) << edition.status();
    edition_ = std::make_unique<MultihierarchicalDocument>(
        std::move(edition).value());
  }

  static std::string MustQuery(const MultihierarchicalDocument& doc,
                               std::string_view query,
                               const QueryOptions& options) {
    auto out = doc.Query(query, options);
    EXPECT_TRUE(out.ok()) << query << "\n" << out.status();
    return out.ok() ? *out : "<error>";
  }

  std::unique_ptr<MultihierarchicalDocument> paper_;
  std::unique_ptr<MultihierarchicalDocument> edition_;
};

// --- parallel == serial ----------------------------------------------------

TEST_F(ParallelQueryTest, Section4QueriesByteIdenticalWithFourThreads) {
  const char* queries[] = {workload::kQueryI1, workload::kQueryI2,
                           workload::kQueryII1, workload::kQueryIII1Intent};
  for (const char* query : queries) {
    EXPECT_EQ(MustQuery(*paper_, query, Threads(1)),
              MustQuery(*paper_, query, Threads(4)))
        << query;
  }
}

TEST_F(ParallelQueryTest, EditionFlworByteIdenticalAndActuallyParallel) {
  const char* query =
      "for $w in /descendant::w return <l>{string-length(string($w))}</l>";
  const std::string serial = MustQuery(*edition_, query, Threads(1));
  const size_t tasks_before = edition_->engine()->parallel_tasks();
  EXPECT_EQ(serial, MustQuery(*edition_, query, Threads(4)));
  // The body is parallel-safe and binds many words: the fan-out must have
  // actually dispatched tasks, not silently fallen back to serial.
  EXPECT_GT(edition_->engine()->parallel_tasks(), tasks_before);
}

// threads: 0 and 1 are the same request — serial evaluation. All three
// spellings (0, 1, default) must produce the same output through the same
// plan: no pool tasks dispatched, identical sort-skip behaviour.
TEST_F(ParallelQueryTest, ThreadsZeroOneAndDefaultShareTheSerialPath) {
  const char* query =
      "for $w in /descendant::w return <l>{string-length(string($w))}</l>";
  // Prime the prepared-query cache so every measured run is evaluation only.
  const std::string expected = MustQuery(*edition_, query, QueryOptions());
  struct Plan {
    size_t tasks;
    size_t skips;
  };
  auto run = [&](const QueryOptions& options) {
    const size_t tasks_before = edition_->engine()->parallel_tasks();
    const size_t skips_before = edition_->engine()->sorts_skipped();
    EXPECT_EQ(MustQuery(*edition_, query, options), expected)
        << "threads=" << options.threads;
    return Plan{edition_->engine()->parallel_tasks() - tasks_before,
                edition_->engine()->sorts_skipped() - skips_before};
  };
  const Plan by_default = run(QueryOptions());
  const Plan zero = run(Threads(0));
  const Plan one = run(Threads(1));
  // Serial path: nothing dispatched to the pool under any spelling...
  EXPECT_EQ(by_default.tasks, 0u);
  EXPECT_EQ(zero.tasks, 0u);
  EXPECT_EQ(one.tasks, 0u);
  // ...and the same step plan (sort skips are a per-evaluation constant on
  // the serial path).
  EXPECT_EQ(zero.skips, by_default.skips);
  EXPECT_EQ(one.skips, by_default.skips);
}

TEST_F(ParallelQueryTest, QuantifiersByteIdenticalWithFourThreads) {
  const char* queries[] = {
      "count(/descendant::line[some $w in xdescendant::w satisfies "
      "string-length(string($w)) > 10])",
      "count(/descendant::line[every $w in xdescendant::w satisfies "
      "string-length(string($w)) > 1])",
      "some $w in /descendant::w satisfies matches(string($w), 'ea')",
      "every $w in /descendant::w satisfies string-length(string($w)) > 0",
  };
  for (const char* query : queries) {
    EXPECT_EQ(MustQuery(*edition_, query, Threads(1)),
              MustQuery(*edition_, query, Threads(4)))
        << query;
  }
}

TEST_F(ParallelQueryTest, ErrorsSurfaceFromParallelIterations) {
  // $undefined errors in every iteration; parallel evaluation must report
  // the same status an all-serial run does.
  const char* query = "for $w in /descendant::w return $undefined";
  auto serial = edition_->Query(query, Threads(1));
  auto parallel = edition_->Query(query, Threads(4));
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().code(), parallel.status().code());
  EXPECT_EQ(serial.status().message(), parallel.status().message());
}

// --- IsParallelSafe --------------------------------------------------------

TEST(IsParallelSafeTest, ClassifiesSubtrees) {
  struct Case {
    const char* query;
    bool safe;
  };
  const Case cases[] = {
      {"for $w in /descendant::w return string($w)", true},
      {"count(/descendant::w[string-length(string(.)) > 8])", true},
      {"some $w in /descendant::w satisfies matches(string($w), 'a')", true},
      // Constructors are pure fragments here — parallel-safe.
      {"for $w in /descendant::w return <b>{$w}</b>", true},
      // analyze-string materialises temporary hierarchies: unsafe...
      {"analyze-string(/descendant::w, 'a')", false},
      // ...wherever it hides: constructor content, predicates, attributes.
      {"for $w in /descendant::w return "
       "<r>{analyze-string($w, 'a')}</r>",
       false},
      {"count(/descendant::w[analyze-string(., 'a')])", false},
      {"for $w in /descendant::w return "
       "<r id=\"{analyze-string($w, 'a')}\"/>",
       false},
  };
  for (const Case& c : cases) {
    auto expr = ParseQuery(c.query);
    ASSERT_TRUE(expr.ok()) << c.query << "\n" << expr.status();
    EXPECT_EQ(IsParallelSafe((*expr)->root()), c.safe) << c.query;
  }
}

// --- concurrent doc->Query() ----------------------------------------------

TEST_F(ParallelQueryTest, ConcurrentQueriesOnOneDocument) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &failures] {
      for (int i = 0; i < kIterations; ++i) {
        auto out = paper_->Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ParallelQueryTest, ConcurrentSafeAndTemporaryCreatingQueries) {
  // Plain readers race an analyze-string query; with evaluation-scoped
  // overlays both run truly concurrently, must keep producing their pinned
  // outputs, and no temporaries may leak.
  constexpr int kIterations = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &failures] {
      for (int i = 0; i < kIterations; ++i) {
        auto out = paper_->Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  threads.emplace_back([this, &failures] {
    for (int i = 0; i < kIterations; ++i) {
      auto out = paper_->Query(workload::kQueryII1);
      if (!out.ok()) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(paper_->engine()->temporary_hierarchy_count(), 0u);
}

// --- ordering guarantees ---------------------------------------------------

// Every axis (standard, extended, and the leaf() node test), evaluated from
// many context nodes so the cross-context merge runs: the guarantee-driven
// path must serialise byte-identically to brute-force sort+dedup.
TEST_F(ParallelQueryTest, GuaranteeDrivenMergeMatchesBruteForcePerAxis) {
  const char* queries[] = {
      "/descendant::w/self::w",
      "/descendant::line/child::*",
      "/descendant::w/parent::s",
      "/descendant::s/descendant::w",
      "/descendant::s/descendant-or-self::*",
      "/descendant::w/ancestor::*",
      "/descendant::w/ancestor-or-self::*",
      "/descendant::w/following-sibling::w",
      "/descendant::w/preceding-sibling::w",
      "/descendant::w/following::w",
      "/descendant::w/preceding::w",
      "/descendant::w/xancestor::line",
      "/descendant::line/xdescendant::w",
      "/descendant::w/overlapping::line",
      "/descendant::w/xfollowing::dmg",
      "/descendant::w/xpreceding::res",
      "/descendant::line/descendant::leaf()",
      "/descendant::w/descendant::leaf()/ancestor::line",
      "/descendant::dmg/xdescendant::w/xancestor::line",
  };
  QueryOptions brute;
  brute.force_step_sort = true;
  for (const char* query : queries) {
    EXPECT_EQ(MustQuery(*edition_, query, QueryOptions()),
              MustQuery(*edition_, query, brute))
        << query;
  }
}

TEST_F(ParallelQueryTest, LeafScanSkipsSorts) {
  const size_t before = edition_->engine()->sorts_skipped();
  auto out = edition_->Query("count(/descendant::leaf())");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(edition_->engine()->sorts_skipped(), before);
}

TEST_F(ParallelQueryTest, ForceStepSortSkipsNothing) {
  QueryOptions brute;
  brute.force_step_sort = true;
  // Prime the cache so the measured evaluation is the only variable.
  ASSERT_TRUE(edition_->Query("/descendant::s/descendant::w", brute).ok());
  const size_t before = edition_->engine()->sorts_skipped();
  ASSERT_TRUE(edition_->Query("/descendant::s/descendant::w", brute).ok());
  EXPECT_EQ(edition_->engine()->sorts_skipped(), before);
}

}  // namespace
}  // namespace mhx::xquery
