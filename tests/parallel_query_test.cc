// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The parallel-evaluation and ordering-guarantee contracts:
//  * QueryOptions{threads} results are byte-identical to serial evaluation,
//    on the paper's Section 4 queries and on synthetic editions;
//  * IsParallelSafe classifies side-effecting subtrees correctly;
//  * concurrent doc->Query() calls on one document are safe;
//  * the guarantee-driven step merge equals brute-force sort+dedup
//    (QueryOptions::force_step_sort) for every axis;
//  * every plan mode (kAuto / kForceNaive / kForceIndexed) is
//    byte-identical to the kForceSort brute force across the axis battery
//    and the Section 4 queries, at threads {1, 4, 8} — plans move cost,
//    never results.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "document.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace mhx::xquery {
namespace {

QueryOptions Threads(unsigned n) {
  QueryOptions options;
  options.threads = n;
  return options;
}

class ParallelQueryTest : public ::testing::Test {
 protected:
  ParallelQueryTest() {
    auto paper = workload::BuildPaperDocument();
    EXPECT_TRUE(paper.ok()) << paper.status();
    paper_ = std::make_unique<MultihierarchicalDocument>(
        std::move(paper).value());

    workload::EditionConfig config;
    config.seed = 29;
    config.word_count = 200;
    config.damage_coverage = 0.12;
    config.restoration_coverage = 0.15;
    auto edition = workload::BuildEditionDocument(config);
    EXPECT_TRUE(edition.ok()) << edition.status();
    edition_ = std::make_unique<MultihierarchicalDocument>(
        std::move(edition).value());
  }

  static std::string MustQuery(const MultihierarchicalDocument& doc,
                               std::string_view query,
                               const QueryOptions& options) {
    auto out = doc.Query(query, options);
    EXPECT_TRUE(out.ok()) << query << "\n" << out.status();
    return out.ok() ? *out : "<error>";
  }

  std::unique_ptr<MultihierarchicalDocument> paper_;
  std::unique_ptr<MultihierarchicalDocument> edition_;
};

// --- parallel == serial ----------------------------------------------------

TEST_F(ParallelQueryTest, Section4QueriesByteIdenticalWithFourThreads) {
  const char* queries[] = {workload::kQueryI1, workload::kQueryI2,
                           workload::kQueryII1, workload::kQueryIII1Intent};
  for (const char* query : queries) {
    EXPECT_EQ(MustQuery(*paper_, query, Threads(1)),
              MustQuery(*paper_, query, Threads(4)))
        << query;
  }
}

TEST_F(ParallelQueryTest, EditionFlworByteIdenticalAndActuallyParallel) {
  const char* query =
      "for $w in /descendant::w return <l>{string-length(string($w))}</l>";
  const std::string serial = MustQuery(*edition_, query, Threads(1));
  const size_t tasks_before = edition_->engine()->parallel_tasks();
  EXPECT_EQ(serial, MustQuery(*edition_, query, Threads(4)));
  // The body is parallel-safe and binds many words: the fan-out must have
  // actually dispatched tasks, not silently fallen back to serial.
  EXPECT_GT(edition_->engine()->parallel_tasks(), tasks_before);
}

// threads: 0 and 1 are the same request — serial evaluation. All three
// spellings (0, 1, default) must produce the same output through the same
// plan: no pool tasks dispatched, identical sort-skip behaviour.
TEST_F(ParallelQueryTest, ThreadsZeroOneAndDefaultShareTheSerialPath) {
  const char* query =
      "for $w in /descendant::w return <l>{string-length(string($w))}</l>";
  // Prime the prepared-query cache so every measured run is evaluation only.
  const std::string expected = MustQuery(*edition_, query, QueryOptions());
  struct Plan {
    size_t tasks;
    size_t skips;
  };
  auto run = [&](const QueryOptions& options) {
    const size_t tasks_before = edition_->engine()->parallel_tasks();
    const size_t skips_before = edition_->engine()->sorts_skipped();
    EXPECT_EQ(MustQuery(*edition_, query, options), expected)
        << "threads=" << options.threads;
    return Plan{edition_->engine()->parallel_tasks() - tasks_before,
                edition_->engine()->sorts_skipped() - skips_before};
  };
  const Plan by_default = run(QueryOptions());
  const Plan zero = run(Threads(0));
  const Plan one = run(Threads(1));
  // Serial path: nothing dispatched to the pool under any spelling...
  EXPECT_EQ(by_default.tasks, 0u);
  EXPECT_EQ(zero.tasks, 0u);
  EXPECT_EQ(one.tasks, 0u);
  // ...and the same step plan (sort skips are a per-evaluation constant on
  // the serial path).
  EXPECT_EQ(zero.skips, by_default.skips);
  EXPECT_EQ(one.skips, by_default.skips);
}

TEST_F(ParallelQueryTest, QuantifiersByteIdenticalWithFourThreads) {
  const char* queries[] = {
      "count(/descendant::line[some $w in xdescendant::w satisfies "
      "string-length(string($w)) > 10])",
      "count(/descendant::line[every $w in xdescendant::w satisfies "
      "string-length(string($w)) > 1])",
      "some $w in /descendant::w satisfies matches(string($w), 'ea')",
      "every $w in /descendant::w satisfies string-length(string($w)) > 0",
  };
  for (const char* query : queries) {
    EXPECT_EQ(MustQuery(*edition_, query, Threads(1)),
              MustQuery(*edition_, query, Threads(4)))
        << query;
  }
}

// --- intra-query parallel analyze-string -----------------------------------

// The paper's hottest body shape (scenario II): analyze-string inside a
// `for`, leaf() steps over the temporary hierarchy, xancestor reads of the
// match elements. Workers evaluate it in private sub-overlays merged at
// join — output must be byte-identical to serial at every width.
static const char* kAnalyzeStringForBody =
    "for $w in /descendant::w[matches(string(.), '.*ea.*')] return ("
    "  let $r := analyze-string($w, '.*ea.*')"
    "  return"
    "    for $leaf in $r/descendant::leaf()"
    "    return if ($leaf/xancestor::m) then <b>{$leaf}</b> else $leaf"
    "  , <br/> )";

TEST_F(ParallelQueryTest, AnalyzeStringForBodyByteIdenticalAcrossThreads) {
  const std::string serial =
      MustQuery(*edition_, kAnalyzeStringForBody, Threads(1));
  ASSERT_FALSE(serial.empty());
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, MustQuery(*edition_, kAnalyzeStringForBody,
                                Threads(threads)))
        << "threads=" << threads;
  }
  // No temporaries may leak from any width, and overlay churn never
  // rebuilds the base index.
  EXPECT_EQ(edition_->engine()->temporary_hierarchy_count(), 0u);
  EXPECT_EQ(edition_->engine()->index_rebuild_count(), 1u);
}

TEST_F(ParallelQueryTest, AnalyzeStringForBodyActuallyFansOut) {
  // Prime the query cache, then prove the parallel run dispatched helper
  // tasks instead of silently falling back to the serial loop (the old
  // IsParallelSafe rejected analyze-string bodies outright).
  const std::string serial =
      MustQuery(*edition_, kAnalyzeStringForBody, Threads(1));
  const size_t tasks_before = edition_->engine()->parallel_tasks();
  EXPECT_EQ(serial, MustQuery(*edition_, kAnalyzeStringForBody, Threads(4)));
  EXPECT_GT(edition_->engine()->parallel_tasks(), tasks_before);
}

TEST_F(ParallelQueryTest, BindingIsolationIsThreadCountInvariant) {
  // A body that reads temporaries through an absolute extended-axis path
  // — the shape that would observe sibling bindings' trees if any leaked.
  // Under the binding scoping rule every iteration sees only its own
  // analyze-string tree (plus enclosing-scope temporaries), serial and
  // parallel alike, so the count per binding is that binding's own match
  // count and the output is identical at every width. (The serial loop
  // formerly accumulated temporaries across bindings, making output
  // thread-count dependent.)
  const char* query =
      "for $w in /descendant::w[matches(string(.), '.*e.*')] return "
      "(let $r := analyze-string($w, '.*e.*') return "
      "<c>{count(/xdescendant::m)}</c>)";
  const std::string serial = MustQuery(*edition_, query, Threads(1));
  EXPECT_EQ(serial.substr(0, 8), "<c>1</c>");  // first binding: own tree only
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(serial, MustQuery(*edition_, query, Threads(threads)))
        << "threads=" << threads;
  }
}

TEST_F(ParallelQueryTest, PaperQueryII1ByteIdenticalAcrossThreads) {
  const std::string serial =
      MustQuery(*paper_, workload::kQueryII1, Threads(1));
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(serial,
              MustQuery(*paper_, workload::kQueryII1, Threads(threads)))
        << "threads=" << threads;
  }
}

TEST_F(ParallelQueryTest, KeptTemporariesFromWorkerSubOverlaysSurviveMerge) {
  // A parallel loop that keeps its temporaries: every worker-created
  // overlay must survive the join into the kept registry, in binding
  // order, exactly as the serial evaluation keeps them.
  const char* query =
      "for $w in /descendant::w[matches(string(.), '.*ea.*')] return "
      "count(analyze-string($w, '.*ea.*')/descendant::leaf())";
  auto serial = edition_->engine()->EvaluateKeepingTemporaries(query);
  ASSERT_TRUE(serial.ok()) << serial.status();
  const size_t kept_serial = serial->temporaries.hierarchy_count();
  ASSERT_GT(kept_serial, 1u);  // many bindings, one overlay each
  serial->temporaries.Release();
  ASSERT_EQ(edition_->engine()->temporary_hierarchy_count(), 0u);

  QueryOptions four;
  four.threads = 4;
  auto parallel =
      edition_->engine()->EvaluateKeepingTemporaries(query, four);
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(parallel->items, serial->items);
  EXPECT_EQ(parallel->temporaries.hierarchy_count(), kept_serial);
  EXPECT_EQ(edition_->engine()->temporary_hierarchy_count(), kept_serial);
  // The kept worker overlays are live: later evaluations see their match
  // elements on extended axes.
  auto m_count = edition_->Query("count(/descendant::w/xancestor::m)");
  ASSERT_TRUE(m_count.ok()) << m_count.status();
  EXPECT_NE(*m_count, "0");
  parallel->temporaries.Release();
  EXPECT_EQ(edition_->engine()->temporary_hierarchy_count(), 0u);
  auto m_count_after = edition_->Query("count(/descendant::w/xancestor::m)");
  ASSERT_TRUE(m_count_after.ok()) << m_count_after.status();
  EXPECT_EQ(*m_count_after, "0");
}

TEST_F(ParallelQueryTest, ErrorsSurfaceFromParallelIterations) {
  // $undefined errors in every iteration; parallel evaluation must report
  // the same status an all-serial run does.
  const char* query = "for $w in /descendant::w return $undefined";
  auto serial = edition_->Query(query, Threads(1));
  auto parallel = edition_->Query(query, Threads(4));
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(serial.status().code(), parallel.status().code());
  EXPECT_EQ(serial.status().message(), parallel.status().message());
}

TEST_F(ParallelQueryTest, MidSequenceErrorKeepsLowestBindingPrecedence) {
  // Only some bindings fail, at two distinct error sites ($first for
  // '.*ea.*' words, $second for other '.*o.*' words): the error the join
  // reports must be the lowest-indexed failing binding's — whichever site
  // that is in document order — not whichever slot recorded its event
  // first under work-stealing.
  const char* query =
      "for $w in /descendant::w return "
      "if (matches(string($w), '.*ea.*')) then $first "
      "else if (matches(string($w), '.*o.*')) then $second "
      "else string-length(string($w))";
  auto serial = edition_->Query(query, Threads(1));
  ASSERT_FALSE(serial.ok());  // the edition has both kinds of words
  for (unsigned threads : {2u, 4u, 8u}) {
    auto parallel = edition_->Query(query, Threads(threads));
    ASSERT_FALSE(parallel.ok()) << "threads=" << threads;
    EXPECT_EQ(parallel.status().code(), serial.status().code());
    EXPECT_EQ(parallel.status().message(), serial.status().message())
        << "threads=" << threads;
  }
}

TEST_F(ParallelQueryTest, QuantifierEventPrecedenceMatchesSerialExactly) {
  // Deciders racing errors at different binding indices: the join must
  // return exactly what the serial walk returns — the lowest-indexed
  // deciding-or-failing binding wins, speculative later events are
  // discarded.
  const char* queries[] = {
      // Decider (length > 0, binding 0) precedes the '.*ea.*' error
      // bindings: must return true, never the speculative error.
      "some $w in /descendant::w satisfies "
      "(if (matches(string($w), '.*ea.*')) then $boom "
      "else string-length(string($w)) > 0)",
      // No decider exists (every length > 0 holds), so the first '.*ea.*'
      // binding's error is the event: must error, with its message.
      "every $w in /descendant::w satisfies "
      "(if (matches(string($w), '.*ea.*')) then $boom "
      "else string-length(string($w)) > 0)",
      // Error site before most deciders: whichever comes first in binding
      // order wins; serial defines it.
      "some $w in /descendant::w satisfies "
      "(if (matches(string($w), '.*o.*')) then $oops "
      "else string-length(string($w)) > 8)",
  };
  for (const char* query : queries) {
    auto serial = edition_->Query(query, Threads(1));
    for (unsigned threads : {2u, 4u, 8u}) {
      auto parallel = edition_->Query(query, Threads(threads));
      ASSERT_EQ(parallel.ok(), serial.ok())
          << query << "\nthreads=" << threads;
      if (serial.ok()) {
        EXPECT_EQ(*parallel, *serial) << query << "\nthreads=" << threads;
      } else {
        EXPECT_EQ(parallel.status().code(), serial.status().code());
        EXPECT_EQ(parallel.status().message(), serial.status().message())
            << query << "\nthreads=" << threads;
      }
    }
  }
}

// --- IsParallelSafe --------------------------------------------------------

// The classification is table-driven: this test pins every built-in's row,
// so adding a function without deciding its parallel safety — or silently
// flipping one — fails here first.
TEST(IsParallelSafeTest, PinsEveryBuiltinClassification) {
  struct Expected {
    std::string_view name;
    bool parallel_safe;
  };
  // analyze-string is safe because workers materialise temporaries into
  // private sub-overlay namespaces merged at join; everything else is a
  // pure value function.
  const Expected expected[] = {
      {"string", true},  {"string-length", true},
      {"count", true},   {"name", true},
      {"not", true},     {"true", true},
      {"false", true},   {"matches", true},
      {"analyze-string", true},
  };
  const auto& table = BuiltinFunctions();
  ASSERT_EQ(table.size(), std::size(expected));
  for (const Expected& e : expected) {
    const BuiltinFunction* row = FindBuiltin(e.name);
    ASSERT_NE(row, nullptr) << e.name;
    EXPECT_EQ(row->parallel_safe, e.parallel_safe) << e.name;
  }
  EXPECT_EQ(FindBuiltin("no-such-function"), nullptr);
}

TEST(IsParallelSafeTest, ClassifiesSubtrees) {
  struct Case {
    const char* query;
    bool safe;
  };
  const Case cases[] = {
      {"for $w in /descendant::w return string($w)", true},
      {"count(/descendant::w[string-length(string(.)) > 8])", true},
      {"some $w in /descendant::w satisfies matches(string($w), 'a')", true},
      // Constructors are pure fragments here — parallel-safe.
      {"for $w in /descendant::w return <b>{$w}</b>", true},
      // analyze-string materialises its temporary hierarchies into
      // worker-private sub-overlays now: safe anywhere a body can hide it —
      // constructor content, predicates, attributes.
      {"analyze-string(/descendant::w, 'a')", true},
      {"for $w in /descendant::w return "
       "<r>{analyze-string($w, 'a')}</r>",
       true},
      {"count(/descendant::w[analyze-string(., 'a')])", true},
      {"for $w in /descendant::w return "
       "<r id=\"{analyze-string($w, 'a')}\"/>",
       true},
      // Unknown function names stay conservatively unsafe.
      {"for $w in /descendant::w return mystery($w)", false},
      {"some $w in /descendant::w satisfies mystery($w)", false},
  };
  for (const Case& c : cases) {
    auto expr = ParseQuery(c.query);
    ASSERT_TRUE(expr.ok()) << c.query << "\n" << expr.status();
    EXPECT_EQ(IsParallelSafe((*expr)->root()), c.safe) << c.query;
  }
}

// --- concurrent doc->Query() ----------------------------------------------

TEST_F(ParallelQueryTest, ConcurrentQueriesOnOneDocument) {
  constexpr int kThreads = 8;
  constexpr int kIterations = 20;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &failures] {
      for (int i = 0; i < kIterations; ++i) {
        auto out = paper_->Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ParallelQueryTest, ConcurrentSafeAndTemporaryCreatingQueries) {
  // Plain readers race an analyze-string query; with evaluation-scoped
  // overlays both run truly concurrently, must keep producing their pinned
  // outputs, and no temporaries may leak.
  constexpr int kIterations = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([this, &failures] {
      for (int i = 0; i < kIterations; ++i) {
        auto out = paper_->Query(workload::kQueryI1);
        if (!out.ok() || *out != workload::kExpectedI1) ++failures;
      }
    });
  }
  threads.emplace_back([this, &failures] {
    for (int i = 0; i < kIterations; ++i) {
      auto out = paper_->Query(workload::kQueryII1);
      if (!out.ok()) ++failures;
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(paper_->engine()->temporary_hierarchy_count(), 0u);
}

// --- ordering guarantees ---------------------------------------------------

// The shared axis battery: every axis (standard, extended, and the leaf()
// node test), evaluated from many context nodes so the cross-context merge
// runs — and so every planner strategy choice gets exercised.
constexpr const char* kAxisBatteryQueries[] = {
    "/descendant::w/self::w",
    "/descendant::line/child::*",
    "/descendant::w/parent::s",
    "/descendant::s/descendant::w",
    "/descendant::s/descendant-or-self::*",
    "/descendant::w/ancestor::*",
    "/descendant::w/ancestor-or-self::*",
    "/descendant::w/following-sibling::w",
    "/descendant::w/preceding-sibling::w",
    "/descendant::w/following::w",
    "/descendant::w/preceding::w",
    "/descendant::w/xancestor::line",
    "/descendant::line/xdescendant::w",
    "/descendant::w/overlapping::line",
    "/descendant::w/xfollowing::dmg",
    "/descendant::w/xpreceding::res",
    "/descendant::line/descendant::leaf()",
    "/descendant::w/descendant::leaf()/ancestor::line",
    "/descendant::dmg/xdescendant::w/xancestor::line",
};

// The guarantee-driven path must serialise byte-identically to brute-force
// sort+dedup.
TEST_F(ParallelQueryTest, GuaranteeDrivenMergeMatchesBruteForcePerAxis) {
  QueryOptions brute;
  brute.force_step_sort = true;
  for (const char* query : kAxisBatteryQueries) {
    EXPECT_EQ(MustQuery(*edition_, query, QueryOptions()),
              MustQuery(*edition_, query, brute))
        << query;
  }
}

// The planner's byte-identity contract: every plan mode — the cost-based
// kAuto, both forced strategies, and the legacy brute force — produces the
// same bytes for the whole axis battery, serial and fanned out. A plan is
// allowed to move cost, never results.
TEST_F(ParallelQueryTest, PlanModesByteIdenticalAcrossAxesAndThreads) {
  QueryOptions brute;
  brute.force_step_sort = true;
  const PlanMode modes[] = {PlanMode::kAuto, PlanMode::kForceNaive,
                            PlanMode::kForceIndexed};
  for (const char* query : kAxisBatteryQueries) {
    const std::string baseline = MustQuery(*edition_, query, brute);
    for (PlanMode mode : modes) {
      for (unsigned threads : {1u, 4u}) {
        QueryOptions options;
        options.plan_mode = mode;
        options.threads = threads;
        EXPECT_EQ(MustQuery(*edition_, query, options), baseline)
            << query << "\nplan mode " << PlanModeName(mode) << " threads "
            << threads;
      }
    }
  }
}

// Same contract on the paper's Section 4 queries, across fan-out widths:
// the planned evaluation must reproduce the published outputs exactly.
TEST_F(ParallelQueryTest, Section4QueriesPlanModeInvariantAcrossThreads) {
  const char* queries[] = {workload::kQueryI1, workload::kQueryI2,
                           workload::kQueryII1, workload::kQueryIII1Intent};
  QueryOptions brute;
  brute.force_step_sort = true;
  for (const char* query : queries) {
    const std::string baseline = MustQuery(*paper_, query, brute);
    for (PlanMode mode :
         {PlanMode::kAuto, PlanMode::kForceNaive, PlanMode::kForceIndexed}) {
      for (unsigned threads : {1u, 4u, 8u}) {
        QueryOptions options;
        options.plan_mode = mode;
        options.threads = threads;
        EXPECT_EQ(MustQuery(*paper_, query, options), baseline)
            << query << "\nplan mode " << PlanModeName(mode) << " threads "
            << threads;
      }
    }
  }
}

TEST_F(ParallelQueryTest, LeafScanSkipsSorts) {
  const size_t before = edition_->engine()->sorts_skipped();
  auto out = edition_->Query("count(/descendant::leaf())");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(edition_->engine()->sorts_skipped(), before);
}

TEST_F(ParallelQueryTest, ForceStepSortSkipsNothing) {
  QueryOptions brute;
  brute.force_step_sort = true;
  // Prime the cache so the measured evaluation is the only variable.
  ASSERT_TRUE(edition_->Query("/descendant::s/descendant::w", brute).ok());
  const size_t before = edition_->engine()->sorts_skipped();
  ASSERT_TRUE(edition_->Query("/descendant::s/descendant::w", brute).ok());
  EXPECT_EQ(edition_->engine()->sorts_skipped(), before);
}

}  // namespace
}  // namespace mhx::xquery
