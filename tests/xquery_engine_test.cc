// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/engine.h"

#include <gtest/gtest.h>

#include "document.h"
#include "workload/paper_data.h"
#include "xquery/serialize.h"

namespace mhx::xquery {
namespace {

class XQueryEngineTest : public ::testing::Test {
 protected:
  XQueryEngineTest() {
    auto doc = workload::BuildPaperDocument();
    EXPECT_TRUE(doc.ok()) << doc.status();
    doc_ = std::make_unique<MultihierarchicalDocument>(
        std::move(doc).value());
  }

  std::string Query(std::string_view query) {
    auto out = doc_->Query(query);
    EXPECT_TRUE(out.ok()) << query << "\n" << out.status();
    return out.ok() ? *out : "<error>";
  }

  std::unique_ptr<MultihierarchicalDocument> doc_;
};

// --- the paper's Section 4 queries against their pinned serialisations -----

TEST_F(XQueryEngineTest, QueryI1MatchesPinnedOutput) {
  EXPECT_EQ(Query(workload::kQueryI1), workload::kExpectedI1);
}

TEST_F(XQueryEngineTest, QueryI2MatchesPinnedOutput) {
  EXPECT_EQ(Query(workload::kQueryI2), workload::kExpectedI2);
}

TEST_F(XQueryEngineTest, QueryII1MatchesPinnedOutputCoalesced) {
  EXPECT_EQ(CoalesceRuns(Query(workload::kQueryII1)),
            workload::kExpectedII1Coalesced);
}

TEST_F(XQueryEngineTest, QueryIII1MatchesPinnedOutputCoalesced) {
  EXPECT_EQ(CoalesceRuns(Query(workload::kQueryIII1Intent)),
            workload::kExpectedIII1IntentCoalesced);
}

// --- building blocks -------------------------------------------------------

TEST_F(XQueryEngineTest, AtomsAndArithmetic) {
  EXPECT_EQ(Query("42"), "42");
  EXPECT_EQ(Query("'abcd'"), "abcd");
  EXPECT_EQ(Query("(1 + 2) * 3 - 4"), "5");
  EXPECT_EQ(Query("(1, 2, 3)"), "123");
  EXPECT_EQ(Query("if (1 = 1) then 'y' else 'n'"), "y");
  EXPECT_EQ(Query("if (()) then 'y' else 'n'"), "n");
}

TEST_F(XQueryEngineTest, PathsCountsAndStrings) {
  EXPECT_EQ(Query("count(/descendant::w)"), "9");
  EXPECT_EQ(Query("count(/descendant::line)"), "3");
  EXPECT_EQ(Query("count(/descendant::leaf())"), "24");
  EXPECT_EQ(Query("string(/descendant::w[string(.) = 'sceaft'])"), "sceaft");
  EXPECT_EQ(Query("name(/descendant::line[1])"), "line");
  EXPECT_EQ(Query("count(/descendant::w[string-length(string(.)) > 5])"),
            "2");  // unawendendne, sceaft
}

TEST_F(XQueryEngineTest, ExtendedAxesInsidePredicates) {
  // "unawendendne" crosses the line boundary: one line contains part of it
  // via xdescendant, the other sees it via overlapping.
  EXPECT_EQ(
      Query("count(/descendant::line[overlapping::w[string(.) = "
            "'unawendendne']])"),
      "2");
  EXPECT_EQ(Query("count(/descendant::w[overlapping::line])"), "2");
  EXPECT_EQ(Query("count(/descendant::w[xancestor::dmg])"), "1");  // eac
}

TEST_F(XQueryEngineTest, FlworQuantifiersAndConstructors) {
  EXPECT_EQ(Query("for $s in /descendant::s return count($s/xdescendant::w)"),
            "45");  // 4 then 5, concatenated
  EXPECT_EQ(
      Query("count(/descendant::line[some $w in xdescendant::w satisfies "
            "string-length(string($w)) > 4])"),
      "2");
  EXPECT_EQ(Query("for $w in /descendant::w[string(.) = 'is'] return "
                  "<span id=\"{name($w)}\">{$w}</span>"),
            "<span id=\"w\"><w>is</w></span>");
  EXPECT_EQ(Query("<br/>"), "<br/>");
}

TEST_F(XQueryEngineTest, PositionalPredicatesApplyPerContextNode) {
  // XPath semantics: [1] selects the first child::w of EACH s element, not
  // the first of the merged union.
  EXPECT_EQ(Query("count(/descendant::s/child::w[1])"), "2");
  EXPECT_EQ(Query("for $w in /descendant::s/child::w[1] return string($w)"),
            "thaetand");
}

TEST_F(XQueryEngineTest, AnalyzeStringHandlesPlainUserGroups) {
  // "(t|T)" consumes a regex group number but names no fragment element;
  // only <a> materialises, and nothing reads out of bounds.
  EXPECT_EQ(
      Query("for $leaf in analyze-string(/descendant::w[string(.) = "
            "'thaet'], \"(t|T)h<a>a</a>et\")/descendant::leaf() return "
            "if ($leaf/xancestor::a) then <b>{$leaf}</b> else $leaf"),
      "th<b>a</b>et");
}

TEST_F(XQueryEngineTest, AnalyzeStringRootArtifactStaysOutOfExtendedAxes) {
  // The temporary hierarchy's auto-created whole-text root must not appear
  // as an xancestor of unrelated nodes while the temporary is alive:
  // "thaet" keeps its 7 persistent containers (sheet, page, line 1, text,
  // s 1, rest, cond).
  EXPECT_EQ(
      Query("let $r := analyze-string(/descendant::w[string(.) = "
            "'unawendendne'], \".*un<a>a</a>we.*\") return "
            "count(/descendant::w[string(.) = 'thaet']/xancestor::*)"),
      "7");
}

TEST_F(XQueryEngineTest, MatchesUsesThePikeVm) {
  EXPECT_EQ(Query("count(/descendant::w[matches(string(.), '.*ea.*')])"),
            "2");  // sceaft, eac
  EXPECT_EQ(Query("count(/descendant::w[matches(string(.), 'a')])"), "6");
}

TEST_F(XQueryEngineTest, EvaluationErrorsAreAnchored) {
  auto out = doc_->Query("$nosuch");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("undefined variable $nosuch"),
            std::string::npos);
  out = doc_->Query("string(");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  out = doc_->Query("nosuchfn(1)");
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("unknown function nosuchfn()"),
            std::string::npos);
}

// --- analyze-string temporaries in overlay namespaces ----------------------

TEST_F(XQueryEngineTest, AnalyzeStringKeepsAndCleansTemporaries) {
  Engine* engine = doc_->engine();
  const size_t persistent_nodes = doc_->goddag().element_count();
  const uint64_t revision = doc_->goddag().revision();
  const char* kCall =
      "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
      " \".*un<a>a</a>we.*\")";

  auto result = engine->EvaluateKeepingTemporaries(kCall);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->items.size(), 1u);
  // wrapper [9,21) > m [9,14) > a [11,12) over "unawendendne".
  EXPECT_EQ(result->items[0],
            "<analyze-string-result><m>un<a>a</a>we</m>ndendne"
            "</analyze-string-result>");
  EXPECT_EQ(engine->temporary_hierarchy_count(), 1u);
  EXPECT_EQ(result->temporaries.hierarchy_count(), 1u);
  // The kept hierarchy lives in an overlay namespace: the base document is
  // untouched even while it is alive — the invariant that lets queries run
  // concurrently.
  EXPECT_EQ(doc_->goddag().element_count(), persistent_nodes);
  EXPECT_EQ(doc_->goddag().revision(), revision);

  engine->CleanupTemporaries();
  EXPECT_EQ(engine->temporary_hierarchy_count(), 0u);
  EXPECT_EQ(doc_->goddag().element_count(), persistent_nodes);
}

TEST_F(XQueryEngineTest, DroppingTheKeptHandleDropsTheHierarchies) {
  Engine* engine = doc_->engine();
  {
    auto kept = engine->EvaluateKeepingTemporaries(
        "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
        " \".*un<a>a</a>we.*\")");
    ASSERT_TRUE(kept.ok()) << kept.status();
    EXPECT_EQ(engine->temporary_hierarchy_count(), 1u);
    EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                    "/xdescendant::a)"),
              "1");
  }
  // The handle went out of scope: the hierarchies are unregistered without
  // any CleanupTemporaries call.
  EXPECT_EQ(engine->temporary_hierarchy_count(), 0u);
  EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                  "/xdescendant::a)"),
            "0");
}

TEST_F(XQueryEngineTest, PlainEvaluateLeavesKeptTemporariesAlive) {
  Engine* engine = doc_->engine();
  auto kept = engine->EvaluateKeepingTemporaries(
      "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
      " \".*un<a>a</a>we.*\")");
  ASSERT_TRUE(kept.ok()) << kept.status();
  ASSERT_EQ(engine->temporary_hierarchy_count(), 1u);

  // Interleaved plain evaluations — including failing ones — must tear
  // down only their own temporaries, and can see the kept hierarchy.
  EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                  "/xdescendant::a)"),
            "1");
  EXPECT_FALSE(doc_->Query("$broken").ok());
  EXPECT_EQ(CoalesceRuns(Query(workload::kQueryII1)),
            workload::kExpectedII1Coalesced);
  EXPECT_EQ(engine->temporary_hierarchy_count(), 1u);
  EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                  "/xdescendant::a)"),
            "1");

  engine->CleanupTemporaries();
  EXPECT_EQ(engine->temporary_hierarchy_count(), 0u);
  EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                  "/xdescendant::a)"),
            "0");
}

TEST_F(XQueryEngineTest, ComparisonsCoerceNumbersLikeXPath) {
  EXPECT_EQ(Query("if ('9' < 10) then 'y' else 'n'"), "y");
  EXPECT_EQ(Query("if (10 > '9') then 'y' else 'n'"), "y");
  EXPECT_EQ(Query("if ('10' < '9') then 'y' else 'n'"), "y");  // both strings
  EXPECT_EQ(Query("if ('abc' = 3) then 'y' else 'n'"), "n");   // NaN-like
  EXPECT_EQ(Query("if ('abc' != 3) then 'y' else 'n'"), "y");
  EXPECT_EQ(Query("if ('abc' < 3) then 'y' else 'n'"), "n");
}

TEST_F(XQueryEngineTest, AnalyzeStringCyclesNeverRebuildTheIndex) {
  Engine* engine = doc_->engine();
  for (int i = 0; i < 20; ++i) {
    auto out = doc_->Query(workload::kQueryII1);
    ASSERT_TRUE(out.ok()) << out.status();
  }
  // One build when the engine first materialised the base index; the 20
  // overlay add/query/drop cycles above paid zero rebuilds.
  EXPECT_EQ(engine->index_rebuild_count(), 1u);
  EXPECT_EQ(engine->temporary_hierarchy_count(), 0u);
}

TEST_F(XQueryEngineTest, ExternalMutationsRebuildTheIndexOnce) {
  Engine* engine = doc_->engine();
  EXPECT_EQ(Query("count(/descendant::w[xancestor::note])"), "0");
  const size_t builds = engine->index_rebuild_count();
  // Mutate the document directly — the one thing that can invalidate the
  // base index (overlay temporaries never do).
  auto hid = doc_->mutable_goddag()->AddVirtualHierarchy(
      "notes", {goddag::VirtualElement{"note", TextRange(9, 21), {}}});
  ASSERT_TRUE(hid.ok()) << hid.status();
  // The next evaluation must see the new hierarchy on extended axes (one
  // snapshot rebuild), then stay stable.
  EXPECT_EQ(Query("count(/descendant::w[xancestor::note])"), "1");
  EXPECT_EQ(engine->index_rebuild_count(), builds + 1);
  EXPECT_EQ(Query("count(/descendant::w[xancestor::note])"), "1");
  EXPECT_EQ(engine->index_rebuild_count(), builds + 1);
  ASSERT_TRUE(doc_->mutable_goddag()->RemoveVirtualHierarchy(*hid).ok());
  EXPECT_EQ(Query("count(/descendant::w[xancestor::note])"), "0");
}

TEST_F(XQueryEngineTest, TemporariesNeverServeStaleIndexEntries) {
  Engine* engine = doc_->engine();
  // Keep temporaries over "unawendendne", then mutate the document
  // directly so the base index rebuilds while they are alive. Overlay
  // nodes must stay out of the rebuilt index (they are scanned, never
  // indexed), yet remain visible on extended axes.
  auto kept = engine->EvaluateKeepingTemporaries(
      "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
      " \".*un<a>a</a>we.*\")");
  ASSERT_TRUE(kept.ok()) << kept.status();
  auto hid = doc_->mutable_goddag()->AddVirtualHierarchy(
      "notes", {goddag::VirtualElement{"note", TextRange(0, 5), {}}});
  ASSERT_TRUE(hid.ok()) << hid.status();
  EXPECT_EQ(Query("count(/descendant::w[string(.) = 'unawendendne']"
                  "/xdescendant::a)"),
            "1");
  // Drop the kept hierarchy, then run a fresh analyze-string over a
  // different word. The old word's extended axes must see only the
  // persistent <dmg> inside it — the dropped overlay's nodes are gone, and
  // the new overlay's nodes sit at a different range.
  engine->CleanupTemporaries();
  EXPECT_EQ(
      Query("let $r := analyze-string(/descendant::w[string(.) = 'sceaft'],"
            " 'sc<q>e</q>aft') return "
            "count(/descendant::w[string(.) = 'unawendendne']"
            "/xdescendant::*)"),
      "1");
}

TEST(KeptTemporariesLifetimeTest, HandleMayOutliveTheEngine) {
  KeptTemporaries handle;
  {
    auto doc = workload::BuildPaperDocument();
    ASSERT_TRUE(doc.ok()) << doc.status();
    auto kept = doc->engine()->EvaluateKeepingTemporaries(
        "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
        " \".*un<a>a</a>we.*\")");
    ASSERT_TRUE(kept.ok()) << kept.status();
    handle = std::move(kept->temporaries);
    EXPECT_EQ(handle.hierarchy_count(), 1u);
  }
  // Document and engine are gone; the handle still owns the overlay (which
  // shares the id allocator) and must release without touching freed
  // engine state — ASan guards this path.
  EXPECT_EQ(handle.hierarchy_count(), 1u);
  handle.Release();
  EXPECT_EQ(handle.hierarchy_count(), 0u);
}

TEST_F(XQueryEngineTest, QueryResultsAreStableAcrossRepeats) {
  // Temporaries from II.1 must not leak into later evaluations.
  EXPECT_EQ(CoalesceRuns(Query(workload::kQueryII1)),
            workload::kExpectedII1Coalesced);
  EXPECT_EQ(Query(workload::kQueryI2), workload::kExpectedI2);
  EXPECT_EQ(CoalesceRuns(Query(workload::kQueryII1)),
            workload::kExpectedII1Coalesced);
}

}  // namespace
}  // namespace mhx::xquery
