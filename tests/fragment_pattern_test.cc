// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <vector>

#include "regex/fragment_pattern.h"

namespace mhx::regex {
namespace {

TEST(FragmentPatternTest, TranslatesExampleOnePattern) {
  auto f = TranslateFragmentPattern(".*un<a>a</a>we.*");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->regex, ".*un(a)we.*");
  EXPECT_EQ(f->group_names, (std::vector<std::string>{"a"}));
}

TEST(FragmentPatternTest, TranslatesNestedFragments) {
  auto f = TranslateFragmentPattern(".*un<a>a<b>w</b>e</a>nden<c>dne</c>.*");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->regex, ".*un(a(w)e)nden(dne).*");
  EXPECT_EQ(f->group_names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FragmentPatternTest, PlainRegexPassesThrough) {
  auto f = TranslateFragmentPattern("[aeiou][^aeiou ]+");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->regex, "[aeiou][^aeiou ]+");
  EXPECT_TRUE(f->group_names.empty());
}

TEST(FragmentPatternTest, UserGroupsKeepNumberingWithEmptyNames) {
  // A plain capture group the user wrote consumes a group number; the
  // placeholder keeps fragment names aligned with the residual regex.
  auto f = TranslateFragmentPattern("(t|T)h<a>a</a>et");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->regex, "(t|T)h(a)et");
  EXPECT_EQ(f->group_names, (std::vector<std::string>{"", "a"}));
}

TEST(FragmentPatternTest, ClassContentsAreNeverMarkupOrGroups) {
  auto f = TranslateFragmentPattern("[<(]<a>x</a>");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->regex, "[<(](x)");
  EXPECT_EQ(f->group_names, (std::vector<std::string>{"a"}));
}

TEST(FragmentPatternTest, LeadingClassBracketLiteralMatchesRegexLexing) {
  // "[]<]" is a class of ']' and '<' (leading ']' is a literal, as the
  // regex parser lexes it); the '<' inside must not start markup.
  auto f = TranslateFragmentPattern("[]<]x<a>y</a>");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ(f->regex, "[]<]x(y)");
  EXPECT_EQ(f->group_names, (std::vector<std::string>{"a"}));
  auto negated = TranslateFragmentPattern("[^](]<b>z</b>");
  ASSERT_TRUE(negated.ok()) << negated.status();
  EXPECT_EQ(negated->regex, "[^](](z)");
  EXPECT_EQ(negated->group_names, (std::vector<std::string>{"b"}));
}

TEST(FragmentPatternTest, EscapesPassThrough) {
  auto f = TranslateFragmentPattern("a\\<b\\>c");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->regex, "a\\<b\\>c");
}

TEST(FragmentPatternTest, RejectsMalformedMarkup) {
  EXPECT_FALSE(TranslateFragmentPattern("<a>x").ok());       // unclosed
  EXPECT_FALSE(TranslateFragmentPattern("x</a>").ok());      // stray close
  EXPECT_FALSE(TranslateFragmentPattern("<a>x</b>").ok());   // mismatched
  EXPECT_FALSE(TranslateFragmentPattern("<a>b<c>d</a>e</c>").ok());  // crossing
  EXPECT_FALSE(TranslateFragmentPattern("a<b").ok());        // malformed tag
  EXPECT_FALSE(TranslateFragmentPattern("a<>b").ok());       // empty name
}

TEST(StripContextWildcardsTest, StripsLeadingAndTrailing) {
  EXPECT_EQ(StripContextWildcards(".*un<a>a</a>we.*"), "un<a>a</a>we");
  EXPECT_EQ(StripContextWildcards(".*abc"), "abc");
  EXPECT_EQ(StripContextWildcards("abc.*"), "abc");
  EXPECT_EQ(StripContextWildcards("abc"), "abc");
  EXPECT_EQ(StripContextWildcards(".*"), "");
  // An escaped trailing dot is not a context wildcard.
  EXPECT_EQ(StripContextWildcards("ab\\.*"), "ab\\.*");
}

}  // namespace
}  // namespace mhx::regex
