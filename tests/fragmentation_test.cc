// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/fragmentation.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xpath/axes.h"

namespace mhx::baseline {
namespace {

using goddag::GNodeKind;
using goddag::NodeId;

TEST(FragmentationTest, PaperDocumentFragmentsConflictingElements) {
  auto doc = workload::BuildPaperDocument();
  ASSERT_TRUE(doc.ok());
  FragmentationEncoding enc = FragmentationEncoding::Encode(doc->goddag());
  EXPECT_EQ(enc.element_count(), doc->goddag().element_count());
  // Conflicts exist, so there must be strictly more fragments than elements.
  EXPECT_GT(enc.fragment_count(), enc.element_count());

  // "unawendendne" crosses a line boundary and a restoration boundary, so it
  // reassembles from several fragments — but to its exact original extent.
  auto words = enc.Reassemble("w");
  ASSERT_EQ(words.size(), 9u);
  bool found = false;
  for (const auto& w : words) {
    if (w.text == "unawendendne") {
      found = true;
      EXPECT_EQ(w.range, TextRange(9, 21));
    }
  }
  EXPECT_TRUE(found);

  // Lines reassemble to their full text as well.
  auto lines = enc.Reassemble("line");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "thaet is unawen");
  EXPECT_EQ(lines[1].text, "dendne sceaft and ea");
  EXPECT_EQ(lines[2].text, "c swa some wyrd");
}

TEST(FragmentationTest, FindByStringSeesReassembledText) {
  auto doc = workload::BuildPaperDocument();
  ASSERT_TRUE(doc.ok());
  FragmentationEncoding enc = FragmentationEncoding::Encode(doc->goddag());
  auto hits = enc.FindByString("w", "unawendendne");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].range, TextRange(9, 21));
  EXPECT_TRUE(enc.FindByString("w", "unawen").empty());  // fragment text only
}

// The baseline must answer the E8 questions identically to the KyGODDAG
// axes — same pairs, same counts — so the benchmark compares equal work.
TEST(FragmentationTest, AgreesWithAxesOnEdition) {
  workload::EditionConfig config;
  config.seed = 23;
  config.word_count = 150;
  config.chars_per_line = 21;
  config.damage_coverage = 0.15;
  config.restoration_coverage = 0.15;
  auto doc = workload::BuildEditionDocument(config);
  ASSERT_TRUE(doc.ok());
  const goddag::KyGoddag& kg = doc->goddag();
  FragmentationEncoding enc = FragmentationEncoding::Encode(kg);
  xpath::AxisEvaluator axes(&kg);

  size_t axis_pairs = 0;
  size_t axis_containing = 0;
  for (NodeId id : kg.hierarchy(1).nodes) {
    const goddag::GNode& n = kg.node(id);
    if (n.kind != GNodeKind::kElement || n.name != "w") continue;
    axis_pairs +=
        axes.Evaluate(id, xpath::Axis::kOverlapping, xpath::NodeTest::Name("line"))
            .size();
    if (!axes.Evaluate(id, xpath::Axis::kXDescendant,
                       xpath::NodeTest::Name("dmg"))
             .empty()) {
      ++axis_containing;
    }
  }
  EXPECT_GT(axis_pairs, 0u);
  EXPECT_GT(axis_containing, 0u);
  EXPECT_EQ(enc.CountOverlapping("w", "line"), axis_pairs);
  EXPECT_EQ(enc.CountContaining("w", "dmg"), axis_containing);
}

TEST(FragmentationTest, NoConflictsMeansNoFragmentation) {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText("ab cd");
  builder.AddHierarchy("words", "<t><w>ab</w> <w>cd</w></t>");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok());
  FragmentationEncoding enc = FragmentationEncoding::Encode(doc->goddag());
  EXPECT_EQ(enc.fragment_count(), enc.element_count());
  EXPECT_EQ(enc.CountOverlapping("w", "t"), 0u);
}

}  // namespace
}  // namespace mhx::baseline
