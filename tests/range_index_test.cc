// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "goddag/index.h"
#include "goddag/kygoddag.h"
#include "workload/generator.h"

namespace mhx::goddag {
namespace {

// Brute-force reference for every query, over the same node set.
std::vector<NodeId> Brute(const KyGoddag& kg,
                          bool (*pred)(const TextRange&, const TextRange&),
                          const TextRange& query) {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < kg.node_table_size(); ++id) {
    if (kg.node(id).kind != GNodeKind::kElement) continue;
    if (pred(kg.node(id).range, query)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Sorted(std::vector<NodeId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

class RangeIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::EditionConfig config;
    config.seed = 7;
    config.word_count = 120;
    config.chars_per_line = 17;  // plenty of word/line conflicts
    config.damage_coverage = 0.2;
    config.restoration_coverage = 0.2;
    auto doc = workload::BuildEditionDocument(config);
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::make_unique<MultihierarchicalDocument>(std::move(doc).value());
  }

  std::unique_ptr<MultihierarchicalDocument> doc_;
};

TEST_F(RangeIndexTest, MatchesBruteForceOnManyQueries) {
  const KyGoddag& kg = doc_->goddag();
  RangeIndex index(&kg);
  EXPECT_EQ(index.size(), kg.element_count());
  const size_t n = kg.base_text().size();
  std::vector<TextRange> queries;
  for (size_t begin = 0; begin < n; begin += 13) {
    queries.push_back(TextRange(begin, std::min(n, begin + 1)));
    queries.push_back(TextRange(begin, std::min(n, begin + 9)));
    queries.push_back(TextRange(begin, std::min(n, begin + 64)));
  }
  queries.push_back(TextRange(0, n));
  for (const TextRange& q : queries) {
    if (q.empty()) continue;
    EXPECT_EQ(Sorted(index.NodesIntersecting(q)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return r.Intersects(query);
              }, q))
        << "intersecting " << q.ToString();
    EXPECT_EQ(Sorted(index.NodesOverlapping(q)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return OverlappingRange(r, query);
              }, q))
        << "overlapping " << q.ToString();
    EXPECT_EQ(Sorted(index.NodesContaining(q)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return r.Contains(query);
              }, q))
        << "containing " << q.ToString();
    EXPECT_EQ(Sorted(index.NodesContainedIn(q)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return query.Contains(r);
              }, q))
        << "contained in " << q.ToString();
    EXPECT_EQ(Sorted(index.NodesBeginningAtOrAfter(q.end)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return r.begin >= query.end;
              }, q))
        << "beginning at/after " << q.end;
    EXPECT_EQ(Sorted(index.NodesEndingAtOrBefore(q.begin)),
              Brute(kg, [](const TextRange& r, const TextRange& query) {
                return r.end <= query.begin;
              }, q))
        << "ending at/before " << q.begin;
  }
}

TEST_F(RangeIndexTest, SnapshotCarriesRevision) {
  KyGoddag* kg = doc_->mutable_goddag();
  RangeIndex index(kg);
  EXPECT_EQ(index.revision(), kg->revision());
  auto h = kg->AddVirtualHierarchy(
      "v", {VirtualElement{"x", TextRange(1, 5), {}}});
  ASSERT_TRUE(h.ok());
  EXPECT_NE(index.revision(), kg->revision());
  ASSERT_TRUE(kg->RemoveVirtualHierarchy(*h).ok());
}

TEST(RangeIndexEmptyTest, EmptyGoddag) {
  KyGoddag kg("");
  RangeIndex index(&kg);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.NodesIntersecting(TextRange(0, 1)).empty());
  EXPECT_TRUE(index.NodesOverlapping(TextRange(0, 1)).empty());
  EXPECT_TRUE(index.NodesContaining(TextRange(0, 1)).empty());
  EXPECT_TRUE(index.NodesContainedIn(TextRange(0, 1)).empty());
  EXPECT_TRUE(index.NodesBeginningAtOrAfter(0).empty());
  EXPECT_TRUE(index.NodesEndingAtOrBefore(99).empty());
}

}  // namespace
}  // namespace mhx::goddag
