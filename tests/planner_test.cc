// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Cost-based planner + SIMD kernel coverage:
//   * SnapshotStats counts, name interning, histogram, and RangeSoA layout
//     against a brute-force node-table walk on randomized editions;
//   * stats staleness across Writer::Commit — a pinned snapshot's stats
//     follow its version, never the document head;
//   * every kernel ISA (scalar / SSE2 / AVX2 / auto) against the naive
//     Definition-1 predicate, name pushdown and context exclusion included;
//   * RangeIndex ProbeFilter pushdown vs. post-hoc name filtering;
//   * planner strategy choices (containment probes vs. ordering scans on a
//     large edition), predicate-reordering safety, PlanCache replan
//     accounting, ExplainPlan rendering, and plan-mode byte-identity.

#include "xquery/planner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "document.h"
#include "goddag/index.h"
#include "goddag/snapshot.h"
#include "goddag/stats.h"
#include "workload/generator.h"
#include "xpath/axes.h"
#include "xpath/kernels.h"
#include "xquery/engine.h"
#include "xquery/parser.h"
#include "xquery/plan_cache.h"

namespace mhx {
namespace {

using goddag::GNodeKind;
using goddag::kNoNameKey;
using goddag::NodeId;
using goddag::ProbeFilter;
using goddag::RangeIndex;
using goddag::SnapshotStats;
using xpath::Axis;
using xpath::ExtendedAxisMatches;
using xpath::KernelIsa;

MultihierarchicalDocument BuildEdition(size_t words, uint32_t seed) {
  workload::EditionConfig config;
  config.seed = seed;
  config.word_count = words;
  config.chars_per_line = 28;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto doc = workload::BuildEditionDocument(config);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

constexpr Axis kExtendedAxes[] = {Axis::kXAncestor, Axis::kXDescendant,
                                  Axis::kOverlapping, Axis::kXFollowing,
                                  Axis::kXPreceding};

// Every live element id, in table order.
std::vector<NodeId> LiveElements(const goddag::KyGoddag& kg) {
  std::vector<NodeId> out;
  for (size_t id = 0; id < kg.node_table_size(); ++id) {
    if (kg.node(static_cast<NodeId>(id)).kind == GNodeKind::kElement) {
      out.push_back(static_cast<NodeId>(id));
    }
  }
  return out;
}

// --- SnapshotStats ----------------------------------------------------------

TEST(SnapshotStatsTest, MatchesBruteForceOnRandomizedEditions) {
  for (uint32_t seed : {7u, 99u, 2026u}) {
    SCOPED_TRACE(seed);
    auto doc = BuildEdition(120 + seed % 80, seed);
    const auto& kg = doc.goddag();
    SnapshotStats stats(&kg);

    size_t elements = 0;
    size_t total_len = 0;
    std::map<std::string, size_t> names;
    std::vector<size_t> hist(stats.range_length_log2_histogram().size(), 0);
    ASSERT_EQ(stats.node_name_keys().size(), kg.node_table_size());
    for (size_t id = 0; id < kg.node_table_size(); ++id) {
      const auto& n = kg.node(static_cast<NodeId>(id));
      if (n.kind != GNodeKind::kElement) {
        EXPECT_EQ(stats.node_name_keys()[id], kNoNameKey);
        continue;
      }
      ++elements;
      ++names[n.name];
      const size_t len = n.range.length();
      total_len += len;
      size_t bucket = 0;
      while ((len >> (bucket + 1)) != 0) ++bucket;  // floor(log2), 0 -> 0
      ++hist[bucket];
      EXPECT_EQ(stats.node_name_keys()[id], stats.name_key(n.name));
      EXPECT_NE(stats.node_name_keys()[id], kNoNameKey);
    }

    EXPECT_EQ(stats.element_count(), elements);
    EXPECT_EQ(stats.node_table_size(), kg.node_table_size());
    EXPECT_EQ(stats.text_size(), doc.base_text().size());
    EXPECT_EQ(stats.total_range_length(), total_len);
    EXPECT_EQ(stats.name_table_size(), names.size());
    for (const auto& [name, count] : names) {
      EXPECT_EQ(stats.name_count(name), count) << name;
    }
    EXPECT_EQ(stats.range_length_log2_histogram(), hist);
    EXPECT_EQ(stats.name_key("no-such-element-name"), kNoNameKey);
    EXPECT_EQ(stats.name_count("no-such-element-name"), 0u);

    // The packed scan surface mirrors the live elements in NodeId order.
    const auto& soa = stats.soa();
    ASSERT_TRUE(soa.valid);
    ASSERT_EQ(soa.size(), elements);
    NodeId prev = 0;
    for (size_t i = 0; i < soa.size(); ++i) {
      const NodeId id = soa.id[i];
      EXPECT_TRUE(i == 0 || id > prev) << "soa ids not ascending at " << i;
      prev = id;
      const auto& n = kg.node(id);
      ASSERT_EQ(n.kind, GNodeKind::kElement);
      EXPECT_EQ(soa.begin[i], n.range.begin);
      EXPECT_EQ(soa.end[i], n.range.end);
      EXPECT_EQ(soa.name_key[i], stats.name_key(n.name));
    }
  }
}

TEST(SnapshotStatsTest, StatsFollowThePinnedSnapshotAcrossCommit) {
  auto doc = BuildEdition(80, 5);
  auto before = doc.PinSnapshot();
  before->EnsureStats();
  const SnapshotStats* old_stats = &before->stats();
  const size_t old_elements = old_stats->element_count();
  const uint64_t old_version = before->version();
  ASSERT_EQ(old_stats->name_count("plannertestextra"), 0u);

  auto writer = doc.NewWriter();
  writer.AddVirtualHierarchy(
      "planner-test-extra",
      {goddag::VirtualElement{"plannertestextra", TextRange(0, 5), {}},
       goddag::VirtualElement{"plannertestextra", TextRange(6, 9), {}}});
  auto version = writer.Commit();
  ASSERT_TRUE(version.ok()) << version.status();

  auto after = doc.PinSnapshot();
  after->EnsureStats();
  EXPECT_GT(after->version(), old_version);

  // Build-once: repeated access returns the same immutable block, and the
  // old snapshot still describes the old version — never the new head.
  EXPECT_EQ(&before->stats(), old_stats);
  EXPECT_EQ(before->stats().element_count(), old_elements);
  EXPECT_EQ(before->stats().name_count("plannertestextra"), 0u);

  // The new snapshot's stats see the commit.
  EXPECT_EQ(after->stats().name_count("plannertestextra"), 2u);
  EXPECT_GT(after->stats().element_count(), old_elements);
}

// --- Kernels ----------------------------------------------------------------

TEST(KernelTest, EveryIsaMatchesTheNaivePredicate) {
  auto doc = BuildEdition(150, 11);
  const auto& kg = doc.goddag();
  SnapshotStats stats(&kg);
  ASSERT_TRUE(stats.soa().valid);

  std::vector<NodeId> elements = LiveElements(kg);
  ASSERT_FALSE(elements.empty());
  std::vector<NodeId> contexts;
  for (size_t i = 0; i < elements.size(); i += 7) {
    contexts.push_back(elements[i]);
  }

  const KernelIsa isas[] = {KernelIsa::kScalar, KernelIsa::kSse2,
                            KernelIsa::kAvx2, KernelIsa::kAuto};
  // kNoNameKey = no pushdown; "w" is dense, "dmg" sparse.
  const uint32_t keys[] = {kNoNameKey, stats.name_key("w"),
                           stats.name_key("dmg")};
  for (NodeId context : contexts) {
    const TextRange range = kg.node(context).range;
    for (Axis axis : kExtendedAxes) {
      for (uint32_t key : keys) {
        std::vector<NodeId> expected;
        for (NodeId id : elements) {
          if (id == context) continue;
          if (key != kNoNameKey && stats.node_name_keys()[id] != key) {
            continue;
          }
          if (ExtendedAxisMatches(axis, range, kg.node(id).range)) {
            expected.push_back(id);
          }
        }
        for (KernelIsa isa : isas) {
          std::vector<NodeId> got;
          ASSERT_TRUE(xpath::ScanExtendedAxis(stats.soa(), axis, range,
                                              context, key, isa, &got));
          EXPECT_EQ(got, expected)
              << "axis " << xpath::AxisName(axis) << " isa "
              << xpath::KernelIsaName(isa == KernelIsa::kAuto
                                          ? xpath::DispatchedKernelIsa()
                                          : isa)
              << " key " << key << " context " << context;
        }
      }
    }
  }
}

TEST(KernelTest, WiderIsaRequestsClampInsteadOfFaulting) {
  auto doc = BuildEdition(40, 2);
  SnapshotStats stats(&doc.goddag());
  ASSERT_TRUE(stats.soa().valid);
  const NodeId context = LiveElements(doc.goddag()).front();
  const TextRange range = doc.goddag().node(context).range;
  // kAvx2 on a non-AVX2 machine must clamp down and still answer; on an
  // AVX2 machine it is simply the fast path. Either way: same bytes.
  std::vector<NodeId> wide;
  std::vector<NodeId> scalar;
  ASSERT_TRUE(xpath::ScanExtendedAxis(stats.soa(), Axis::kXFollowing, range,
                                      context, kNoNameKey, KernelIsa::kAvx2,
                                      &wide));
  ASSERT_TRUE(xpath::ScanExtendedAxis(stats.soa(), Axis::kXFollowing, range,
                                      context, kNoNameKey,
                                      KernelIsa::kScalar, &scalar));
  EXPECT_EQ(wide, scalar);
}

// --- RangeIndex ProbeFilter -------------------------------------------------

TEST(ProbeFilterTest, PushdownEqualsPostFilterAcrossProbes) {
  auto doc = BuildEdition(120, 29);
  const auto& kg = doc.goddag();
  SnapshotStats stats(&kg);
  RangeIndex index(&kg);
  const uint32_t key = stats.name_key("w");
  ASSERT_NE(key, kNoNameKey);
  const ProbeFilter filter{stats.node_name_keys().data(), key};

  auto post_filtered = [&](std::vector<NodeId> ids) {
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](NodeId id) {
                               return stats.node_name_keys()[id] != key;
                             }),
              ids.end());
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  auto sorted = [](std::vector<NodeId> ids) {
    std::sort(ids.begin(), ids.end());
    return ids;
  };

  std::vector<NodeId> elements = LiveElements(kg);
  for (size_t i = 0; i < elements.size(); i += 11) {
    const TextRange range = kg.node(elements[i]).range;
    EXPECT_EQ(sorted(index.NodesContaining(range, filter)),
              post_filtered(index.NodesContaining(range)));
    EXPECT_EQ(sorted(index.NodesContainedIn(range, filter)),
              post_filtered(index.NodesContainedIn(range)));
    EXPECT_EQ(sorted(index.NodesOverlapping(range, filter)),
              post_filtered(index.NodesOverlapping(range)));
    EXPECT_EQ(sorted(index.NodesBeginningAtOrAfter(range.end, filter)),
              post_filtered(index.NodesBeginningAtOrAfter(range.end)));
    EXPECT_EQ(sorted(index.NodesEndingAtOrBefore(range.begin, filter)),
              post_filtered(index.NodesEndingAtOrBefore(range.begin)));
  }
  // A kNoNameKey filter (name absent from the snapshot) matches nothing.
  const ProbeFilter absent{stats.node_name_keys().data(), kNoNameKey};
  EXPECT_TRUE(index.NodesContaining(kg.node(elements[0]).range, absent)
                  .empty());
}

// --- Planner ----------------------------------------------------------------

TEST(PlannerTest, ContainmentProbesOrderingScansOnALargeEdition) {
  auto doc = BuildEdition(4000, 17);
  SnapshotStats stats(&doc.goddag());
  ASSERT_TRUE(stats.soa().valid);

  auto contained = xquery::ParseQuery("/descendant::w/xancestor::dmg");
  ASSERT_TRUE(contained.ok());
  auto plan = xquery::PlanQuery((*contained)->root(), stats, 41);
  EXPECT_EQ(plan.snapshot_version, 41u);
  const auto& steps = (*contained)->root().steps;
  ASSERT_EQ(steps.size(), 2u);
  // The tree-walk step carries no annotation (no strategy choice to make).
  EXPECT_EQ(plan.steps.count(&steps[0]), 0u);
  auto it = plan.steps.find(&steps[1]);
  ASSERT_NE(it, plan.steps.end());
  EXPECT_TRUE(it->second.exec.use_index);
  EXPECT_TRUE(it->second.exec.pushdown);
  EXPECT_LT(it->second.cost_indexed, it->second.cost_scan);

  auto ordering = xquery::ParseQuery("/descendant::w/xfollowing::line");
  ASSERT_TRUE(ordering.ok());
  auto plan2 = xquery::PlanQuery((*ordering)->root(), stats, 41);
  const auto& steps2 = (*ordering)->root().steps;
  ASSERT_EQ(steps2.size(), 2u);
  auto it2 = plan2.steps.find(&steps2[1]);
  ASSERT_NE(it2, plan2.steps.end());
  // Ordering axes return ~half the document; the vectorized scan wins.
  EXPECT_FALSE(it2->second.exec.use_index);
  EXPECT_LT(it2->second.cost_scan, it2->second.cost_indexed);
  EXPECT_GT(it2->second.est_hits, it->second.est_hits);
}

TEST(PlannerTest, ReordersOnlyProvablyBooleanPredicates) {
  auto doc = BuildEdition(80, 3);
  SnapshotStats stats(&doc.goddag());

  // Two statically boolean predicates, the cheaper one second: the plan
  // runs it first.
  auto boolean = xquery::ParseQuery(
      "/descendant::w[xancestor::dmg or overlapping::res or "
      "xfollowing::line][not(xdescendant::res)]");
  ASSERT_TRUE(boolean.ok());
  auto plan = xquery::PlanQuery((*boolean)->root(), stats, 1);
  const auto& steps = (*boolean)->root().steps;
  ASSERT_EQ(steps.size(), 1u);
  auto it = plan.steps.find(&steps[0]);
  ASSERT_NE(it, plan.steps.end());
  EXPECT_EQ(it->second.predicate_order, (std::vector<uint16_t>{1, 0}));

  // A positional predicate (integer-valued) pins source order.
  auto positional =
      xquery::ParseQuery("/descendant::w[2][string(.) = 'x']");
  ASSERT_TRUE(positional.ok());
  auto plan2 = xquery::PlanQuery((*positional)->root(), stats, 1);
  const auto& steps2 = (*positional)->root().steps;
  ASSERT_EQ(steps2.size(), 1u);
  auto it2 = plan2.steps.find(&steps2[0]);
  if (it2 != plan2.steps.end()) {
    EXPECT_TRUE(it2->second.predicate_order.empty());
  }

  // analyze-string() in a predicate body pins source order too: its
  // temporary hierarchies register in evaluation order.
  auto analyze = xquery::ParseQuery(
      "/descendant::line[string(.) = 'a' or "
      "count(analyze-string(., '<a>x</a>')) > 0][true()]");
  ASSERT_TRUE(analyze.ok());
  auto plan3 = xquery::PlanQuery((*analyze)->root(), stats, 1);
  const auto& steps3 = (*analyze)->root().steps;
  ASSERT_EQ(steps3.size(), 1u);
  auto it3 = plan3.steps.find(&steps3[0]);
  if (it3 != plan3.steps.end()) {
    EXPECT_TRUE(it3->second.predicate_order.empty());
  }
}

TEST(PlanCacheTest, ReplansOnlyOnVersionOrKeyChange) {
  xquery::PlanCache cache;
  auto e1 = xquery::ParseQuery("/descendant::w");
  auto e2 = xquery::ParseQuery("/descendant::line");
  ASSERT_TRUE(e1.ok() && e2.ok());
  int builds = 0;
  auto build = [&builds] {
    ++builds;
    return xquery::QueryPlan{};
  };
  const int doc_a = 0;
  const int doc_b = 0;

  auto p1 = cache.PlanFor(e1->get(), &doc_a, 1, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(cache.plan_replans(), 1u);
  // Same (expr, doc, version): cached, same plan object.
  auto p1_again = cache.PlanFor(e1->get(), &doc_a, 1, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p1_again.get(), p1.get());
  // A commit bumps the version: exactly one replan.
  auto p2 = cache.PlanFor(e1->get(), &doc_a, 2, build);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(p2.get(), p1.get());
  // The old shared_ptr stays valid after the replan evicted it.
  EXPECT_EQ(p1->snapshot_version, 0u);
  // Distinct documents and distinct exprs plan separately.
  cache.PlanFor(e1->get(), &doc_b, 2, build);
  EXPECT_EQ(builds, 3);
  cache.PlanFor(e2->get(), &doc_a, 2, build);
  EXPECT_EQ(builds, 4);
  EXPECT_EQ(cache.plan_replans(), 4u);
}

// --- Engine surface ---------------------------------------------------------

TEST(PlannerTest, ExplainPlanNamesStrategiesAndKernel) {
  auto doc = BuildEdition(2000, 31);
  auto out = doc.engine()->ExplainPlan("/descendant::w/xancestor::dmg");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("plan version="), std::string::npos) << *out;
  EXPECT_NE(out->find("kernel="), std::string::npos) << *out;
  EXPECT_NE(out->find("strategy=arcs"), std::string::npos) << *out;
  EXPECT_NE(out->find("strategy=indexed"), std::string::npos) << *out;
  EXPECT_NE(out->find("pushdown=dmg"), std::string::npos) << *out;

  auto scan = doc.engine()->ExplainPlan("/descendant::w/xfollowing::line");
  ASSERT_TRUE(scan.ok());
  EXPECT_NE(scan->find("strategy=scan"), std::string::npos) << *scan;

  EXPECT_FALSE(doc.engine()->ExplainPlan("][").ok());
}

TEST(PlannerTest, PlanModesAreByteIdenticalAndCountersMove) {
  auto doc = BuildEdition(200, 23);
  const char* kQuery =
      "for $w in /descendant::w[xancestor::dmg or xdescendant::res or "
      "overlapping::dmg] return <m>{$w/xfollowing::line[1]}</m>";

  QueryOptions brute;
  brute.force_step_sort = true;
  auto baseline = doc.Query(kQuery, brute);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  using xquery::PlanMode;
  for (PlanMode mode : {PlanMode::kAuto, PlanMode::kForceNaive,
                        PlanMode::kForceIndexed, PlanMode::kForceSort}) {
    QueryOptions options;
    options.plan_mode = mode;
    auto got = doc.Query(kQuery, options);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, *baseline)
        << "plan mode " << xquery::PlanModeName(mode);
  }

  // The kAuto run above drove planned extended-axis steps: the strategy
  // counters moved, and the name tests rode into the probes/kernels.
  EXPECT_GT(doc.engine()->plan_steps_indexed() +
                doc.engine()->plan_steps_scanned(),
            0u);
  EXPECT_GT(doc.engine()->plan_pushdowns(), 0u);
}

}  // namespace
}  // namespace mhx
