// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "workload/paper_data.h"
#include "xml/parser.h"
#include "xpath/axes.h"

namespace mhx::workload {
namespace {

TEST(PaperDataTest, EncodingsAlignWithBaseText) {
  for (const char* xml_source :
       {kPaperPhysicalXml, kPaperStructuralXml, kPaperRestorationXml,
        kPaperConditionXml}) {
    auto doc = xml::Parse(xml_source);
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_EQ(doc->text, kPaperBaseText);
  }
}

TEST(PaperDataTest, BuildsWithFourHierarchies) {
  auto doc = BuildPaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  const goddag::KyGoddag& kg = doc->goddag();
  EXPECT_EQ(kg.hierarchy(0).name, "physical");
  EXPECT_EQ(kg.hierarchy(1).name, "structural");
  EXPECT_EQ(kg.hierarchy(2).name, "restoration");
  EXPECT_EQ(kg.hierarchy(3).name, "condition");
  EXPECT_EQ(kg.base_text(), kPaperBaseText);
  // sheet+page+3 lines, text+2s+9w, rest+res, cond+2dmg.
  EXPECT_EQ(kg.element_count(), 5u + 12u + 2u + 3u);
}

TEST(PaperDataTest, FigureOneOverlapsArePresent) {
  auto doc = BuildPaperDocument();
  ASSERT_TRUE(doc.ok());
  const goddag::KyGoddag& kg = doc->goddag();
  xpath::AxisEvaluator axes(&kg);
  // The Example 1 word is broken across two lines.
  goddag::NodeId word = goddag::kInvalidNode;
  for (goddag::NodeId id : kg.hierarchy(1).nodes) {
    if (kg.node(id).name == "w" && kg.NodeString(id) == "unawendendne") {
      word = id;
    }
  }
  ASSERT_NE(word, goddag::kInvalidNode);
  EXPECT_EQ(
      axes.Evaluate(word, xpath::Axis::kOverlapping, xpath::NodeTest::Name("line"))
          .size(),
      2u);
  // The restoration span crosses the word boundary at 21: it overlaps the
  // word and reaches into "sceaft".
  auto res = axes.Evaluate(word, xpath::Axis::kOverlapping,
                           xpath::NodeTest::Name("res"));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(kg.NodeString(res[0]), "dendne s");
  // The second damage span crosses the line boundary at 35.
  bool damage_crosses_line = false;
  for (goddag::NodeId id : kg.hierarchy(3).nodes) {
    if (kg.node(id).name == "dmg" &&
        !axes.Evaluate(id, xpath::Axis::kOverlapping,
                       xpath::NodeTest::Name("line"))
             .empty()) {
      damage_crosses_line = true;
    }
  }
  EXPECT_TRUE(damage_crosses_line);
}

TEST(PaperDataTest, QueryConstantsAreDeclared) {
  // The engine PR consumes these; until then, pin that they exist, are
  // non-empty, and reference the extended-axis syntax they are meant to
  // exercise.
  EXPECT_NE(std::strstr(kQueryI1, "overlapping::"), nullptr);
  EXPECT_NE(std::strstr(kQueryI2, "xancestor::"), nullptr);
  EXPECT_NE(std::strstr(kQueryII1, "analyze-string"), nullptr);
  EXPECT_NE(std::strstr(kQueryIII1Intent, "xancestor::res"), nullptr);
  EXPECT_GT(std::strlen(kExpectedI1), 0u);
  EXPECT_GT(std::strlen(kExpectedI2), 0u);
  EXPECT_GT(std::strlen(kExpectedII1Coalesced), 0u);
  EXPECT_GT(std::strlen(kExpectedIII1IntentCoalesced), 0u);
}

}  // namespace
}  // namespace mhx::workload
