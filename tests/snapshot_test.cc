// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// MVCC coverage: the tiered leaf partition (splice correctness against a
// naive reference and against the full-rebuild path), KyGoddag::Clone
// copy-on-write isolation, DocumentSnapshot lifecycle (pin/publish
// versioning, last-pin-drops-frees, kept-handle pinning past engine
// death), writer-publish byte-identity under concurrent readers, and the
// index-rebuild accounting across commits.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "document.h"
#include "goddag/kygoddag.h"
#include "goddag/leaves.h"
#include "goddag/snapshot.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/engine.h"

namespace mhx {
namespace {

using goddag::DocumentSnapshot;
using goddag::KyGoddag;
using goddag::Leaf;
using goddag::TieredLeafPartition;
using goddag::VirtualElement;

// --- TieredLeafPartition -----------------------------------------------------

// Reference model: leaves derived directly from a sorted boundary set.
std::vector<Leaf> LeavesFromBoundaries(const std::set<size_t>& boundaries) {
  std::vector<Leaf> out;
  auto it = boundaries.begin();
  if (it == boundaries.end()) return out;
  size_t prev = *it;
  for (++it; it != boundaries.end(); ++it) {
    out.push_back(Leaf{TextRange(prev, *it)});
    prev = *it;
  }
  return out;
}

void ExpectSameLeaves(const std::vector<Leaf>& got,
                      const std::vector<Leaf>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].range, want[i].range) << "leaf " << i;
  }
}

TEST(TieredLeafPartitionTest, RandomizedSplicesMatchNaiveModel) {
  // Enough boundaries to force multiple chunks and chunk splits/merges.
  std::mt19937 rng(12345);
  const size_t kTextSize = 20000;
  std::set<size_t> model = {0, kTextSize};
  std::map<size_t, uint32_t> seed_refs;
  for (size_t b : model) seed_refs[b] = 1;
  TieredLeafPartition partition;
  partition.AssignFromBoundaries(seed_refs);
  ExpectSameLeaves(partition.Flatten(), LeavesFromBoundaries(model));

  std::vector<size_t> inserted;
  for (int step = 0; step < 4000; ++step) {
    const bool insert = inserted.empty() || rng() % 3 != 0;
    if (insert) {
      size_t pos = 1 + rng() % (kTextSize - 1);
      if (model.count(pos) != 0) continue;  // boundary refcounts are the
                                            // caller's job; stay unique here
      model.insert(pos);
      partition.InsertBoundary(pos);
      inserted.push_back(pos);
    } else {
      const size_t at = rng() % inserted.size();
      const size_t pos = inserted[at];
      inserted[at] = inserted.back();
      inserted.pop_back();
      model.erase(pos);
      partition.EraseBoundary(pos);
    }
  }
  ExpectSameLeaves(partition.Flatten(), LeavesFromBoundaries(model));
  EXPECT_EQ(partition.leaf_count(), model.size() - 1);
  // The boundary volume above must have spilled past one chunk, or the
  // test is not exercising the tiering at all.
  EXPECT_GT(partition.chunk_count(), 1u);
}

TEST(TieredLeafPartitionTest, IncrementalGoddagMatchesFullRebuild) {
  // The same mutation sequence through the incremental (tiered splice) and
  // full-rebuild paths must yield identical partitions.
  auto run = [](bool incremental) {
    KyGoddag kg(std::string(workload::kPaperBaseText));
    kg.set_incremental_leaves(incremental);
    auto phys = xml::Parse(workload::kPaperPhysicalXml);
    EXPECT_TRUE(phys.ok());
    EXPECT_TRUE(kg.AddHierarchy("physical", *phys).ok());
    auto vid = kg.AddVirtualHierarchy(
        "v", {VirtualElement{"m", TextRange(3, 11), {}},
              VirtualElement{"m", TextRange(15, 22), {}}});
    EXPECT_TRUE(vid.ok());
    auto vid2 = kg.AddVirtualHierarchy(
        "v2", {VirtualElement{"m", TextRange(10, 16), {}}});
    EXPECT_TRUE(vid2.ok());
    EXPECT_TRUE(kg.RemoveVirtualHierarchy(*vid).ok());
    std::vector<Leaf> out = kg.leaves();
    return out;
  };
  ExpectSameLeaves(run(true), run(false));
}

// --- Clone (copy-on-write) ---------------------------------------------------

TEST(SnapshotTest, CloneIsolatesMutationsAndSharesBaseText) {
  KyGoddag kg(std::string(workload::kPaperBaseText));
  auto phys = xml::Parse(workload::kPaperPhysicalXml);
  ASSERT_TRUE(phys.ok());
  ASSERT_TRUE(kg.AddHierarchy("physical", *phys).ok());
  const std::vector<Leaf> before = kg.leaves();
  const uint64_t revision_before = kg.revision();

  std::unique_ptr<KyGoddag> clone = kg.Clone();
  // Base text is shared, not copied.
  EXPECT_EQ(&clone->base_text(), &kg.base_text());
  ASSERT_TRUE(clone
                  ->AddVirtualHierarchy(
                      "v", {VirtualElement{"m", TextRange(2, 9), {}}})
                  .ok());
  // The clone changed; the original is untouched, partition included.
  EXPECT_GT(clone->revision(), revision_before);
  EXPECT_EQ(kg.revision(), revision_before);
  ExpectSameLeaves(kg.leaves(), before);
  EXPECT_GT(clone->leaves().size(), before.size());
}

// --- DocumentSnapshot lifecycle ----------------------------------------------

StatusOr<MultihierarchicalDocument> PaperDocument() {
  return workload::BuildPaperDocument();
}

TEST(SnapshotTest, CommitPublishesNewVersionAndOldPinStaysReadable) {
  auto doc = PaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->version(), 1u);
  auto old_pin = doc->PinSnapshot();
  const size_t old_elements = old_pin->goddag().element_count();

  auto writer = doc->NewWriter();
  writer.AddVirtualHierarchy("damage",
                             {VirtualElement{"gap", TextRange(4, 9), {}}});
  auto version = writer.Commit();
  ASSERT_TRUE(version.ok()) << version.status();
  EXPECT_EQ(*version, 2u);
  EXPECT_EQ(doc->version(), 2u);

  // The old pin still reads its version, bit for bit untouched by the
  // commit; a fresh pin sees the new one.
  EXPECT_EQ(old_pin->version(), 1u);
  EXPECT_EQ(old_pin->goddag().element_count(), old_elements);
  auto new_pin = doc->PinSnapshot();
  EXPECT_EQ(new_pin->version(), 2u);
  EXPECT_GT(new_pin->goddag().element_count(), old_elements);
}

TEST(SnapshotTest, CommitIsAllOrNothing) {
  auto doc = PaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto writer = doc->NewWriter();
  writer.AddVirtualHierarchy("ok", {VirtualElement{"m", TextRange(1, 5), {}}});
  // Empty range: invalid. The valid op queued before it must not land.
  writer.AddVirtualHierarchy("bad",
                             {VirtualElement{"m", TextRange(7, 7), {}}});
  auto version = writer.Commit();
  EXPECT_FALSE(version.ok());
  EXPECT_EQ(doc->version(), 1u);
  auto pin = doc->PinSnapshot();
  for (goddag::HierarchyId id = 0; id < pin->goddag().hierarchy_table_size();
       ++id) {
    EXPECT_NE(pin->goddag().hierarchy(id).name, "ok");
  }
  // A Writer commits at most once.
  auto writer2 = doc->NewWriter();
  ASSERT_TRUE(writer2.Commit().ok());  // empty commit publishes version 2
  EXPECT_FALSE(writer2.Commit().ok());
}

TEST(SnapshotTest, LastPinDropFreesTheVersion) {
  const size_t before = DocumentSnapshot::live_count();
  {
    auto doc = PaperDocument();
    ASSERT_TRUE(doc.ok()) << doc.status();
    EXPECT_EQ(DocumentSnapshot::live_count(), before + 1);
    auto pin = doc->PinSnapshot();
    auto writer = doc->NewWriter();
    writer.AddVirtualHierarchy("damage",
                               {VirtualElement{"gap", TextRange(4, 9), {}}});
    ASSERT_TRUE(writer.Commit().ok());
    // Old version alive (pinned) + new version published.
    EXPECT_EQ(DocumentSnapshot::live_count(), before + 2);
    pin.reset();
    // The old version retired the moment its last pin dropped.
    EXPECT_EQ(DocumentSnapshot::live_count(), before + 1);
  }
  // Document gone: nothing left alive. (Under ASan a leaked snapshot or a
  // use-after-free on the retired version would fail the binary, not just
  // this counter check.)
  EXPECT_EQ(DocumentSnapshot::live_count(), before);
}

TEST(SnapshotTest, KeptHandlePinsItsSnapshotPastEngineDeath) {
  const size_t before = DocumentSnapshot::live_count();
  xquery::KeptTemporaries held;
  {
    auto doc = PaperDocument();
    ASSERT_TRUE(doc.ok()) << doc.status();
    auto kept = doc->engine()->EvaluateKeepingTemporaries(
        "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
        " \".*un<a>a</a>we.*\")");
    ASSERT_TRUE(kept.ok()) << kept.status();
    EXPECT_EQ(kept->temporaries.hierarchy_count(), 1u);
    held = std::move(kept->temporaries);
    EXPECT_NE(held.snapshot(), nullptr);
  }
  // Document and engine are gone; the handle's snapshot keeps the version
  // (whose goddag its overlays annotate) alive and readable.
  EXPECT_EQ(DocumentSnapshot::live_count(), before + 1);
  ASSERT_NE(held.snapshot(), nullptr);
  EXPECT_EQ(held.snapshot()->version(), 1u);
  EXPECT_FALSE(held.snapshot()->goddag().leaves().empty());
  held.Release();
  EXPECT_EQ(held.snapshot(), nullptr);
  EXPECT_EQ(DocumentSnapshot::live_count(), before);
}

// --- readers vs writers ------------------------------------------------------

// A writer publishes version 2 while 8 reader threads evaluate; every
// racing result must be byte-identical to one of the two quiesced
// references (the query sees version 1 or version 2, never a mix).
TEST(SnapshotTest, WriterPublishUnderActiveReadersIsByteIdentical) {
  const char* kQuery = "count(/descendant::*[overlapping::gap])";
  const std::vector<VirtualElement> damage = {
      VirtualElement{"gap", TextRange(4, 9), {}},
      VirtualElement{"gap", TextRange(30, 41), {}}};

  // Quiesced references for both versions.
  auto ref_old = PaperDocument();
  ASSERT_TRUE(ref_old.ok()) << ref_old.status();
  const std::string expected_old = *ref_old->Query(kQuery);
  {
    auto writer = ref_old->NewWriter();
    writer.AddVirtualHierarchy("damage", damage);
    ASSERT_TRUE(writer.Commit().ok());
  }
  const std::string expected_new = *ref_old->Query(kQuery);
  ASSERT_NE(expected_old, expected_new);

  auto doc = PaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->Query(kQuery).ok());  // warm engine + index

  std::atomic<int> failures{0};
  std::atomic<int> saw_old{0};
  std::atomic<int> saw_new{0};
  std::atomic<bool> start{false};
  std::atomic<bool> committed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (!start.load()) std::this_thread::yield();
      for (int i = 0; i < 40; ++i) {
        auto out = doc->Query(kQuery);
        if (!out.ok()) {
          ++failures;
        } else if (*out == expected_old) {
          ++saw_old;
        } else if (*out == expected_new) {
          ++saw_new;
        } else {
          ++failures;  // a torn read: neither version's answer
        }
      }
      // The racing phase above may drain before the commit lands (fast
      // readers are the point, not a bug), so the visibility claim gets
      // its own deterministic read: wait out the publish, then pin once
      // more — a pin taken after the epoch swap must see the new version.
      while (!committed.load()) std::this_thread::yield();
      auto out = doc->Query(kQuery);
      if (out.ok() && *out == expected_new) {
        ++saw_new;
      } else {
        ++failures;
      }
    });
  }
  std::thread writer_thread([&] {
    start.store(true);
    std::this_thread::yield();
    auto writer = doc->NewWriter();
    writer.AddVirtualHierarchy("damage", damage);
    auto version = writer.Commit();
    if (!version.ok()) ++failures;
    committed.store(true);
  });
  for (std::thread& thread : threads) thread.join();
  writer_thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Every reader repinned after the publish: the new version was seen.
  EXPECT_GT(saw_new.load(), 0);
}

// MVCC commits must not charge readers an index rebuild: the writer
// prebuilds the published version's index, so the engine's count stays at
// the single build it paid for version 1.
TEST(SnapshotTest, CommitsDoNotRebuildTheIndexForReaders) {
  auto doc = PaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_TRUE(doc->Query(workload::kQueryI1).ok());
  EXPECT_EQ(doc->engine()->index_rebuild_count(), 1u);
  for (int i = 0; i < 3; ++i) {
    auto writer = doc->NewWriter();
    writer.AddVirtualHierarchy(
        "v" + std::to_string(i),
        {VirtualElement{"m", TextRange(2, 9 + static_cast<size_t>(i)), {}}});
    ASSERT_TRUE(writer.Commit().ok());
    ASSERT_TRUE(doc->Query(workload::kQueryI1).ok());
  }
  EXPECT_EQ(doc->engine()->index_rebuild_count(), 1u);
  // The legacy escape hatch still pays, once, as ever.
  ASSERT_TRUE(doc->mutable_goddag()
                  ->AddVirtualHierarchy(
                      "legacy", {VirtualElement{"m", TextRange(1, 4), {}}})
                  .ok());
  ASSERT_TRUE(doc->Query(workload::kQueryI1).ok());
  EXPECT_EQ(doc->engine()->index_rebuild_count(), 2u);
}

TEST(SnapshotTest, RemoveVirtualHierarchyPicksHighestSlotAndErrsOnMissing) {
  auto doc = PaperDocument();
  ASSERT_TRUE(doc.ok()) << doc.status();
  {
    auto writer = doc->NewWriter();
    writer.AddVirtualHierarchy("damage",
                               {VirtualElement{"gap", TextRange(1, 5), {}}});
    ASSERT_TRUE(writer.Commit().ok());
  }
  {
    auto writer = doc->NewWriter();
    writer.RemoveVirtualHierarchy("damage");
    ASSERT_TRUE(writer.Commit().ok());
  }
  {
    auto writer = doc->NewWriter();
    writer.RemoveVirtualHierarchy("damage");
    auto version = writer.Commit();
    EXPECT_FALSE(version.ok());
    EXPECT_EQ(version.status().code(), StatusCode::kNotFound);
  }
}

}  // namespace
}  // namespace mhx
