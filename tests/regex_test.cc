// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "regex/regex.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace mhx::regex {
namespace {

Regex MustCompile(const char* pattern) {
  auto re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << re.status();
  return std::move(re).value();
}

std::vector<TextRange> MatchRanges(const Regex& re, std::string_view text) {
  std::vector<TextRange> out;
  for (const Regex::Match& m : re.FindAll(text)) out.push_back(m.range);
  return out;
}

// --- compilation and syntax errors -----------------------------------------

TEST(RegexCompileTest, AcceptsTheBenchmarkPatterns) {
  EXPECT_TRUE(Regex::Compile("sceaft").ok());
  EXPECT_TRUE(Regex::Compile("[aeiou][^aeiou ]+").ok());
  EXPECT_TRUE(Regex::Compile("sceaft|hweo|thyt|frean").ok());
  EXPECT_TRUE(Regex::Compile("(s(c)e)(aft)").ok());
  EXPECT_TRUE(Regex::Compile(".*ea.*").ok());
  EXPECT_TRUE(Regex::Compile("(a|a)*b").ok());
  EXPECT_TRUE(Regex::Compile("(un)(a(we)?|[b-d]+){1,3}(end|ne)$").ok());
}

TEST(RegexCompileTest, SyntaxErrorsAreAnchoredInvalidArgument) {
  for (const char* bad : {"(ab", "ab)", "[ab", "a{2,1}", "a{", "*a", "+",
                          "a\\", "a{9999}", "[z-a]", "a**"}) {
    auto re = Regex::Compile(bad);
    ASSERT_FALSE(re.ok()) << "pattern '" << bad << "' compiled";
    EXPECT_EQ(re.status().code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(re.status().message().find("offset"), std::string::npos) << bad;
  }
}

// --- matching semantics ----------------------------------------------------

TEST(RegexMatchTest, LiteralFindAll) {
  Regex re = MustCompile("ab");
  EXPECT_EQ(MatchRanges(re, "abxxabab"),
            (std::vector<TextRange>{{0, 2}, {4, 6}, {6, 8}}));
  EXPECT_TRUE(re.FindAll("xyz").empty());
}

TEST(RegexMatchTest, LeftmostLongestWinsOverAlternationOrder) {
  // A leftmost-first (Perl) engine would match "a"; leftmost-longest
  // matches "ab".
  Regex re = MustCompile("a|ab");
  auto matches = re.FindAll("ab");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].range, TextRange(0, 2));
}

TEST(RegexMatchTest, LeftmostWinsOverLonger) {
  // The match at offset 0 wins even though a longer one starts later.
  Regex re = MustCompile("ab|bcd");
  auto matches = re.FindAll("abcd");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].range, TextRange(0, 2));
}

TEST(RegexMatchTest, ClassesAndNegation) {
  Regex re = MustCompile("[aeiou][^aeiou ]+");
  auto matches = MatchRanges(re, "sceaft");
  // The only vowel followed by at least one non-vowel is the 'a' of "aft"
  // ('e' is followed by the vowel 'a').
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], TextRange(3, 6));  // "aft"
}

TEST(RegexMatchTest, EscapedClassRangeEndpoints) {
  // Range endpoints go through escape translation: [a-\n] is 'a'..0x0a,
  // an invalid (reversed) range — not the silent 'a'..'n' a raw read gives.
  EXPECT_FALSE(Regex::Compile("[a-\\n]").ok());
  Regex tab = MustCompile("[\\t-\\r]+");  // 0x09..0x0d, all whitespace ctrls
  EXPECT_TRUE(tab.FullMatch("\t\n\r"));
  EXPECT_FALSE(tab.ContainsMatch("mno"));  // must NOT match the raw letters
  EXPECT_FALSE(Regex::Compile("[0-\\d]").ok());  // \d cannot end a range
}

TEST(RegexMatchTest, EscapesAndPerlClasses) {
  EXPECT_TRUE(MustCompile("\\d+").FullMatch("12345"));
  EXPECT_FALSE(MustCompile("\\d+").FullMatch("12a45"));
  EXPECT_TRUE(MustCompile("\\w+").FullMatch("un_awe9"));
  EXPECT_TRUE(MustCompile("a\\.b").FullMatch("a.b"));
  EXPECT_FALSE(MustCompile("a\\.b").FullMatch("axb"));
  EXPECT_TRUE(MustCompile("a\\\\b").FullMatch("a\\b"));
  EXPECT_TRUE(MustCompile("[\\d]+").FullMatch("42"));
}

TEST(RegexMatchTest, CapturesReportGroupRanges) {
  Regex re = MustCompile("(s(c)e)(aft)");
  auto matches = re.FindAll("xsceaftx");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].range, TextRange(1, 7));
  ASSERT_EQ(matches[0].groups.size(), 3u);
  EXPECT_EQ(matches[0].groups[0], TextRange(1, 4));  // "sce"
  EXPECT_EQ(matches[0].groups[1], TextRange(2, 3));  // "c"
  EXPECT_EQ(matches[0].groups[2], TextRange(4, 7));  // "aft"
}

TEST(RegexMatchTest, UnmatchedGroupsAreEmptyAtZero) {
  Regex re = MustCompile("a(b)?c");
  auto matches = re.FindAll("ac");
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_EQ(matches[0].groups.size(), 1u);
  EXPECT_EQ(matches[0].groups[0], TextRange(0, 0));
}

TEST(RegexMatchTest, QuantifierEdgeCases) {
  EXPECT_TRUE(MustCompile("a{3}").FullMatch("aaa"));
  EXPECT_FALSE(MustCompile("a{3}").FullMatch("aa"));
  EXPECT_TRUE(MustCompile("a{2,}").FullMatch("aaaaa"));
  EXPECT_FALSE(MustCompile("a{2,}").FullMatch("a"));
  EXPECT_TRUE(MustCompile("a{0,2}").FullMatch(""));
  EXPECT_TRUE(MustCompile("a{0,2}").FullMatch("aa"));
  EXPECT_FALSE(MustCompile("a{0,2}").FullMatch("aaa"));
  EXPECT_TRUE(MustCompile("(ab){1,3}").FullMatch("ababab"));
  EXPECT_FALSE(MustCompile("(ab){1,3}").FullMatch("abababab"));
  // Greedy repetition still backs off to let the suffix match.
  EXPECT_TRUE(MustCompile("a*ab").FullMatch("aaab"));
  // An empty-matching body must not loop the VM.
  EXPECT_TRUE(MustCompile("(a?)*b").FullMatch("aab"));
}

TEST(RegexMatchTest, AnchorsBindToTextEnds) {
  Regex re = MustCompile("(end|ne)$");
  EXPECT_TRUE(re.ContainsMatch("unawend-ne"));
  EXPECT_FALSE(re.ContainsMatch("ne-wyrd"));
  Regex caret = MustCompile("^un");
  EXPECT_TRUE(caret.ContainsMatch("unawe"));
  EXPECT_FALSE(caret.ContainsMatch("aunwe"));
}

TEST(RegexMatchTest, ContainsAndFullMatch) {
  Regex re = MustCompile("ea");
  EXPECT_TRUE(re.ContainsMatch("sceaft"));
  EXPECT_FALSE(re.ContainsMatch("wyrd"));
  EXPECT_TRUE(re.FullMatch("ea"));
  EXPECT_FALSE(re.FullMatch("sceaft"));
  EXPECT_TRUE(MustCompile(".*ea.*").FullMatch("sceaft"));
}

TEST(RegexMatchTest, WildcardContextShape) {
  Regex re = MustCompile(".*un(a)we.*");
  auto matches = re.FindAll("unawendendne");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].range, TextRange(0, 12));  // leftmost-longest: all
  ASSERT_EQ(matches[0].groups.size(), 1u);
  EXPECT_EQ(matches[0].groups[0], TextRange(2, 3));
}

TEST(RegexMatchTest, PathologicalPatternStaysLinear) {
  // (a|a)*b over a^n: exponential for backtrackers. The thread population
  // is bounded by the program size, so this returns quickly even at 4096.
  Regex re = MustCompile("(a|a)*b");
  std::string text(4096, 'a');
  EXPECT_FALSE(re.FullMatch(text));
  text.push_back('b');
  EXPECT_TRUE(re.FullMatch(text));
}

TEST(RegexCompileTest, DeepGroupNestingErrorsInsteadOfOverflowing) {
  std::string pattern(100000, '(');
  pattern += "a";
  pattern.append(100000, ')');
  auto re = Regex::Compile(pattern);
  ASSERT_FALSE(re.ok());
  EXPECT_EQ(re.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(re.status().message().find("nested deeper"), std::string::npos);
}

TEST(RegexMatchTest, EmptyMatchesDoNotLoopFindAll) {
  Regex re = MustCompile("a*");
  auto matches = re.FindAll("ba");
  // One empty match at 0, then "a" at [1,2), then one empty match at end.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].range, TextRange(0, 0));
  EXPECT_EQ(matches[1].range, TextRange(1, 2));
  EXPECT_EQ(matches[2].range, TextRange(2, 2));
}

}  // namespace
}  // namespace mhx::regex
