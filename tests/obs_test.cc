// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The observability layer in isolation: registry export formats (the
// Prometheus text contract CI validates end-to-end via check_metrics.py),
// concurrent counter bumps, histogram aggregation through registered
// timers, trace span recording, and the slow-query ring's wrap and
// concurrency behaviour. The cross-stack integration — stage spans from
// a real corpus query, slot attribution from the scheduler — is covered
// by corpus_test and tools/metrics_smoke.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "base/histogram.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"

namespace mhx::obs {
namespace {

TEST(SanitizeMetricNameTest, PassesValidNamesThrough) {
  EXPECT_EQ(SanitizeMetricName("mhx_corpus_builds_total"),
            "mhx_corpus_builds_total");
  EXPECT_EQ(SanitizeMetricName("a:b_c9"), "a:b_c9");
}

TEST(SanitizeMetricNameTest, ClampsInvalidCharacters) {
  EXPECT_EQ(SanitizeMetricName("mhx.corpus-builds/total"),
            "mhx_corpus_builds_total");
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(MetricsRegistryTest, OwnedCounterRegisterOnce) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("mhx_test_total", "a test counter");
  Counter* b = registry.AddCounter("mhx_test_total", "ignored");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same name -> same instrument
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(registry.metric_count(), 1u);
}

TEST(MetricsRegistryTest, TextExportShape) {
  MetricsRegistry registry;
  registry.AddCounter("mhx_ops_total", "operations")->Add(7);
  registry.AddGauge("mhx_level", "current level")->Set(-2);
  base::LatencyHistogram* timer =
      registry.AddTimer("mhx_latency_us", "latency");
  timer->Record(100);
  timer->Record(200);

  const std::string text = registry.TextExport();
  EXPECT_NE(text.find("# HELP mhx_ops_total operations\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mhx_ops_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("mhx_ops_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mhx_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("mhx_level -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mhx_latency_us summary\n"), std::string::npos);
  EXPECT_NE(text.find("mhx_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mhx_latency_us_sum 300\n"), std::string::npos);
  EXPECT_NE(text.find("mhx_latency_us_count 2\n"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExportShape) {
  MetricsRegistry registry;
  registry.AddCounter("mhx_ops_total", "ops")->Add(5);
  base::LatencyHistogram* timer = registry.AddTimer("mhx_lat_us", "lat");
  timer->Record(10);

  const std::string json = registry.JsonExport();
  EXPECT_NE(json.find("\"mhx_ops_total\":5"), std::string::npos);
  EXPECT_NE(json.find("\"mhx_lat_us\":{\"count\":1,\"sum\":10"),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, ExternalInstrumentsReadThrough) {
  Counter external;
  MetricsRegistry registry;
  registry.RegisterCounter("mhx_external_total", "external", &external);
  registry.RegisterGauge("mhx_callback", "via callback",
                         [] { return int64_t{42}; });
  external.Add(9);
  const std::string text = registry.TextExport();
  EXPECT_NE(text.find("mhx_external_total 9\n"), std::string::npos);
  EXPECT_NE(text.find("mhx_callback 42\n"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentBumpsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("mhx_bumps_total", "bumps");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, RegisteredTimerAggregatesMergedHistograms) {
  // The bench_corpus shape: per-worker histograms merged into one the
  // registry exports.
  base::LatencyHistogram worker_a;
  base::LatencyHistogram worker_b;
  for (uint64_t v = 1; v <= 100; ++v) worker_a.Record(v);
  for (uint64_t v = 101; v <= 200; ++v) worker_b.Record(v);

  base::LatencyHistogram merged;
  merged.Merge(worker_a);
  merged.Merge(worker_b);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_EQ(merged.TotalCount(), 200u);
  EXPECT_EQ(merged.Sum(), worker_a.Sum() + worker_b.Sum());

  MetricsRegistry registry;
  registry.RegisterTimer("mhx_merged_us", "merged", &merged);
  const std::string text = registry.TextExport();
  EXPECT_NE(text.find("mhx_merged_us_count 200\n"), std::string::npos);
}

TEST(QueryTraceTest, StageTimerRecordsOrderedSpans) {
  QueryTrace trace;
  { StageTimer stage(&trace, "first"); }
  { StageTimer stage(&trace, "second"); }
  const std::vector<QueryTrace::Span> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "first");
  EXPECT_EQ(spans[1].name, "second");
  EXPECT_LE(spans[0].begin_ns, spans[0].end_ns);
  // Consecutive stages: the second begins at or after the first ended.
  EXPECT_GE(spans[1].begin_ns, spans[0].end_ns);
  EXPECT_NE(trace.DebugString().find("first ["), std::string::npos);
}

TEST(QueryTraceTest, NullTraceIsANoOp) {
  // The zero-cost contract: a null trace must be constructible and
  // destructible with no side effects (and, by inspection, no clock
  // reads or locks).
  StageTimer stage(nullptr, "never");
}

TEST(QueryTraceTest, ConcurrentAddSpanIsSafe) {
  QueryTrace trace;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < kPerThread; ++i) {
        StageTimer stage(&trace, "racing");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(trace.spans().size(),
            static_cast<size_t>(kThreads) * kPerThread);
}

TEST(SlowQueryLogTest, CapturesAndDumpsInOrder) {
  SlowQueryLog log(/*capacity=*/4);
  for (uint64_t i = 0; i < 3; ++i) {
    SlowQueryRecord record;
    record.query = "q" + std::to_string(i);
    record.total_us = 100 + i;
    log.Record(std::move(record));
  }
  const std::vector<SlowQueryRecord> dump = log.DumpSlowQueries();
  ASSERT_EQ(dump.size(), 3u);
  EXPECT_EQ(dump[0].query, "q0");
  EXPECT_EQ(dump[2].query, "q2");
  EXPECT_EQ(dump[0].sequence, 0u);
  EXPECT_EQ(log.recorded(), 3u);
}

TEST(SlowQueryLogTest, RingOverwritesOldest) {
  SlowQueryLog log(/*capacity=*/2);
  for (uint64_t i = 0; i < 5; ++i) {
    SlowQueryRecord record;
    record.query = "q" + std::to_string(i);
    log.Record(std::move(record));
  }
  const std::vector<SlowQueryRecord> dump = log.DumpSlowQueries();
  ASSERT_EQ(dump.size(), 2u);
  EXPECT_EQ(dump[0].query, "q3");
  EXPECT_EQ(dump[1].query, "q4");
  EXPECT_EQ(log.recorded(), 5u);
}

TEST(SlowQueryLogTest, ZeroCapacityDropsEverything) {
  SlowQueryLog log(/*capacity=*/0);
  SlowQueryRecord record;
  record.query = "dropped";
  log.Record(std::move(record));
  EXPECT_TRUE(log.DumpSlowQueries().empty());
}

TEST(SlowQueryLogTest, ConcurrentRecordAndDump) {
  SlowQueryLog log(/*capacity=*/8);
  std::atomic<bool> stop{false};
  std::thread dumper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const SlowQueryRecord& r : log.DumpSlowQueries()) {
        ASSERT_FALSE(r.query.empty());  // never a torn/partial record
      }
    }
  });
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        SlowQueryRecord record;
        record.query = "w" + std::to_string(w) + "/" + std::to_string(i);
        record.total_us = static_cast<uint64_t>(i);
        log.Record(std::move(record));
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  dumper.join();
  EXPECT_EQ(log.recorded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(log.DumpSlowQueries().size(), 8u);
}

TEST(HistogramMergeTest, MergeIdentityOnEmpty) {
  base::LatencyHistogram a;
  base::LatencyHistogram empty;
  for (uint64_t v : {5u, 50u, 500u}) a.Record(v);
  const uint64_t p50 = a.ValueAtQuantile(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Sum(), 555u);
  EXPECT_EQ(a.ValueAtQuantile(0.5), p50);  // quantiles unchanged
}

TEST(HistogramMergeTest, MergedQuantilesMatchSharedRecording) {
  base::LatencyHistogram shared;
  base::LatencyHistogram part_a;
  base::LatencyHistogram part_b;
  for (uint64_t v = 1; v <= 1000; ++v) {
    shared.Record(v);
    (v % 2 == 0 ? part_a : part_b).Record(v);
  }
  base::LatencyHistogram merged;
  merged.Merge(part_a);
  merged.Merge(part_b);
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_EQ(merged.ValueAtQuantile(q), shared.ValueAtQuantile(q)) << q;
  }
  EXPECT_EQ(merged.max(), shared.max());
  EXPECT_EQ(merged.Sum(), shared.Sum());
  EXPECT_EQ(merged.TotalCount(), shared.TotalCount());
}

}  // namespace
}  // namespace mhx::obs
