// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// CorpusService: LRU residency and eviction order, capacity-1 thrash,
// cross-document plan-cache sharing, admission-control backpressure, and
// the eviction-vs-pin lifetime rules.

#include "corpus/corpus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace mhx::corpus {
namespace {

workload::EditionConfig SmallEdition(uint64_t seed) {
  workload::EditionConfig config;
  config.seed = seed;
  config.word_count = 40;
  return config;
}

CorpusOptions SerialOptions(size_t capacity) {
  CorpusOptions options;
  options.capacity = capacity;
  options.pool_threads = 0;
  return options;
}

constexpr char kPathQuery[] = "/descendant::line";
constexpr char kHeavyQuery[] =
    "for $w in /descendant::w[matches(string(.), \".*a.*\")]\n"
    "return analyze-string($w, \".*a.*\")";

TEST(CorpusServiceTest, QueryMatchesDirectDocument) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(7)).ok());

  auto direct = workload::BuildEditionDocument(SmallEdition(7));
  ASSERT_TRUE(direct.ok());
  auto expected = direct->Query(kPathQuery);
  ASSERT_TRUE(expected.ok());

  auto out = corpus.Query("a", kPathQuery);
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_EQ(*out, *expected);
}

TEST(CorpusServiceTest, UnknownDocumentAndDuplicateRegistration) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  EXPECT_EQ(corpus.Register("a", SmallEdition(2)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(corpus.Query("missing", kPathQuery).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(corpus.BuildCount("missing").status().code(),
            StatusCode::kNotFound);
}

TEST(CorpusServiceTest, ParseErrorsSurfaceWithoutBuildingTheDocument) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  EXPECT_FALSE(corpus.Query("a", "for $x in").ok());
  EXPECT_EQ(*corpus.BuildCount("a"), 0u);
  EXPECT_EQ(corpus.stats().resident_documents, 0u);
}

TEST(CorpusServiceTest, EvictsLeastRecentlyQueriedDocument) {
  CorpusService corpus(SerialOptions(2));
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        corpus.Register("doc" + std::to_string(i), SmallEdition(i + 1)).ok());
  }
  ASSERT_TRUE(corpus.Query("doc0", kPathQuery).ok());
  ASSERT_TRUE(corpus.Query("doc1", kPathQuery).ok());
  // Touch doc0 so doc1 is the LRU victim when doc2 arrives.
  ASSERT_TRUE(corpus.Query("doc0", kPathQuery).ok());
  ASSERT_TRUE(corpus.Query("doc2", kPathQuery).ok());

  EXPECT_EQ(corpus.stats().resident_documents, 2u);
  EXPECT_EQ(corpus.stats().evictions, 1u);
  // doc0 and doc2 are resident (no rebuild); doc1 was evicted and rebuilds.
  ASSERT_TRUE(corpus.Query("doc0", kPathQuery).ok());
  ASSERT_TRUE(corpus.Query("doc2", kPathQuery).ok());
  EXPECT_EQ(*corpus.BuildCount("doc0"), 1u);
  EXPECT_EQ(*corpus.BuildCount("doc2"), 1u);
  ASSERT_TRUE(corpus.Query("doc1", kPathQuery).ok());
  EXPECT_EQ(*corpus.BuildCount("doc1"), 2u);
}

TEST(CorpusServiceTest, CapacityOneThrashRebuildsEveryAlternation) {
  CorpusService corpus(SerialOptions(1));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Register("b", SmallEdition(2)).ok());
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());
    ASSERT_TRUE(corpus.Query("b", kPathQuery).ok());
  }
  EXPECT_EQ(corpus.stats().resident_documents, 1u);
  EXPECT_EQ(*corpus.BuildCount("a"), 3u);
  EXPECT_EQ(*corpus.BuildCount("b"), 3u);
  EXPECT_EQ(corpus.stats().evictions, 5u);
  // Repeating one name stops the churn.
  ASSERT_TRUE(corpus.Query("b", kPathQuery).ok());
  EXPECT_EQ(*corpus.BuildCount("b"), 3u);
}

TEST(CorpusServiceTest, PlanCacheIsSharedAcrossDocuments) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Register("b", SmallEdition(2)).ok());
  ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());
  const size_t misses_after_first = corpus.stats().plan_misses;
  EXPECT_EQ(misses_after_first, 1u);
  // The same text against another document parses zero more times.
  ASSERT_TRUE(corpus.Query("b", kPathQuery).ok());
  EXPECT_EQ(corpus.stats().plan_misses, misses_after_first);
  EXPECT_GT(corpus.stats().plan_hits, 0u);
  EXPECT_EQ(corpus.plans()->plan_count(), 1u);
}

TEST(CorpusServiceTest, PlanCacheSurvivesEviction) {
  CorpusService corpus(SerialOptions(1));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Register("b", SmallEdition(2)).ok());
  ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());
  ASSERT_TRUE(corpus.Query("b", kPathQuery).ok());  // evicts a
  ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());  // rebuilds a, plan hits
  EXPECT_EQ(corpus.stats().plan_misses, 1u);
}

TEST(CorpusServiceTest, PinKeepsDocumentUsableAcrossEviction) {
  CorpusService corpus(SerialOptions(1));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Register("b", SmallEdition(2)).ok());

  auto pinned = corpus.Pin("a");
  ASSERT_TRUE(pinned.ok());
  auto before = (*pinned)->Query(kPathQuery);
  ASSERT_TRUE(before.ok());

  ASSERT_TRUE(corpus.Query("b", kPathQuery).ok());  // evicts a
  EXPECT_EQ(corpus.stats().evictions, 1u);

  // The service dropped its reference; the pin still owns a live document.
  auto after = (*pinned)->Query(kPathQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
}

TEST(AdmissionControllerTest, RejectsWhenSlotsAndQueueAreFull) {
  AdmissionController admission(/*slots=*/1, /*queue_limit=*/0);
  ASSERT_TRUE(admission.Acquire().ok());
  EXPECT_EQ(admission.in_flight(), 1u);
  Status second = admission.Acquire();
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(admission.rejected(), 1u);
  admission.Release();
  EXPECT_TRUE(admission.Acquire().ok());
  admission.Release();
}

TEST(AdmissionControllerTest, QueuedAcquireWaitsForRelease) {
  AdmissionController admission(/*slots=*/1, /*queue_limit=*/4);
  ASSERT_TRUE(admission.Acquire().ok());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    ASSERT_TRUE(admission.Acquire().ok());
    acquired = true;
    admission.Release();
  });
  EXPECT_FALSE(acquired.load());
  admission.Release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(admission.rejected(), 0u);
}

TEST(CorpusServiceTest, HeavyQueriesAreRejectedWithBackpressureStatus) {
  CorpusOptions options = SerialOptions(4);
  options.max_heavy_in_flight = 0;  // every heavy query bounces
  CorpusService corpus(options);
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());

  // Cheap path queries are never admission-controlled.
  ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());

  auto heavy = corpus.Query("a", kHeavyQuery);
  EXPECT_EQ(heavy.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(corpus.stats().heavy_rejections, 1u);
  EXPECT_EQ(corpus.stats().heavy_in_flight, 0u);
}

TEST(CorpusServiceTest, HeavyQueriesRunWhenAdmitted) {
  CorpusOptions options = SerialOptions(4);
  options.max_heavy_in_flight = 2;
  CorpusService corpus(options);
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());

  auto direct = workload::BuildEditionDocument(SmallEdition(1));
  ASSERT_TRUE(direct.ok());
  auto expected = direct->Query(kHeavyQuery);
  ASSERT_TRUE(expected.ok());

  auto out = corpus.Query("a", kHeavyQuery);
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_EQ(*out, *expected);
  EXPECT_EQ(corpus.stats().heavy_in_flight, 0u);  // ticket released
  EXPECT_EQ(corpus.stats().heavy_rejections, 0u);
}

TEST(CorpusServiceTest, CommitIsVisibleToLaterQueriesWithoutRebuilding) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(7)).ok());
  auto before = corpus.Query("a", "count(/descendant::*[self::gap])");
  ASSERT_TRUE(before.ok());

  auto version = corpus.CommitVirtualHierarchy(
      "a", "damage", {goddag::VirtualElement{"gap", TextRange(2, 9), {}}});
  ASSERT_TRUE(version.ok()) << version.status();
  EXPECT_EQ(*version, 2u);

  auto after = corpus.Query("a", "count(/descendant::*[self::gap])");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(*after, *before);
  // The commit mutated the resident document in place (MVCC version, not a
  // rebuild) and is counted.
  EXPECT_EQ(*corpus.BuildCount("a"), 1u);
  EXPECT_EQ(corpus.stats().writes, 1u);
  EXPECT_EQ(corpus.stats().write_rejections, 0u);

  auto removed = corpus.RemoveVirtualHierarchy("a", "damage");
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 3u);
  auto restored = corpus.Query("a", "count(/descendant::*[self::gap])");
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, *before);
  EXPECT_EQ(corpus.stats().writes, 2u);
}

TEST(CorpusServiceTest, WritesAreRejectedWithBackpressureStatus) {
  CorpusOptions options = SerialOptions(4);
  options.max_writers_in_flight = 0;  // every write bounces
  CorpusService corpus(options);
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  auto version = corpus.CommitVirtualHierarchy(
      "a", "damage", {goddag::VirtualElement{"gap", TextRange(2, 9), {}}});
  EXPECT_EQ(version.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(corpus.stats().write_rejections, 1u);
  EXPECT_EQ(corpus.stats().writes, 0u);
  // A rejected write never built the (cold) document.
  EXPECT_EQ(*corpus.BuildCount("a"), 0u);
}

TEST(CorpusServiceTest, WriteErrorsSurfaceAndUnknownDocumentIsNotFound) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  EXPECT_EQ(corpus
                .CommitVirtualHierarchy(
                    "missing", "damage",
                    {goddag::VirtualElement{"gap", TextRange(2, 9), {}}})
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(corpus.RemoveVirtualHierarchy("a", "never-added").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(corpus.stats().writes, 0u);
}

TEST(CorpusServiceTest, MvccMetricsAreExported) {
  CorpusService corpus(SerialOptions(4));
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Query("a", kPathQuery).ok());
  ASSERT_TRUE(corpus
                  .CommitVirtualHierarchy(
                      "a", "damage",
                      {goddag::VirtualElement{"gap", TextRange(2, 9), {}}})
                  .ok());
  const std::string text = corpus.metrics().TextExport();
  EXPECT_NE(text.find("mhx_corpus_writes_total 1"), std::string::npos);
  EXPECT_NE(text.find("mhx_corpus_write_rejected_total 0"),
            std::string::npos);
  EXPECT_NE(text.find("mhx_goddag_live_snapshots"), std::string::npos);
  EXPECT_NE(text.find("mhx_engine_snapshot_pins_total"), std::string::npos);
  EXPECT_NE(text.find("mhx_engine_overlay_id_exhausted_total 0"),
            std::string::npos);
  EXPECT_GT(corpus.stats().snapshot_pins, 0u);
  EXPECT_GT(corpus.stats().live_snapshots, 0u);
  EXPECT_EQ(corpus.stats().overlay_id_exhausted, 0u);
}

TEST(CorpusServiceTest, SharedPoolServesParallelQueriesAcrossDocuments) {
  CorpusOptions options;
  options.capacity = 4;
  options.pool_threads = 2;
  CorpusService corpus(options);
  ASSERT_TRUE(corpus.Register("a", SmallEdition(1)).ok());
  ASSERT_TRUE(corpus.Register("b", SmallEdition(2)).ok());

  QueryOptions parallel;
  parallel.threads = 4;
  for (const char* name : {"a", "b"}) {
    auto config = SmallEdition(name[0] == 'a' ? 1 : 2);
    auto direct = workload::BuildEditionDocument(config);
    ASSERT_TRUE(direct.ok());
    auto expected = direct->Query(kHeavyQuery);
    ASSERT_TRUE(expected.ok());
    auto out = corpus.Query(name, kHeavyQuery, parallel);
    ASSERT_TRUE(out.ok()) << out.status().message();
    EXPECT_EQ(*out, *expected) << name;
  }
}

}  // namespace
}  // namespace mhx::corpus
