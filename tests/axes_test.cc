// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xpath/axes.h"

namespace mhx::xpath {
namespace {

using goddag::GNodeKind;
using goddag::KyGoddag;
using goddag::NodeId;

constexpr Axis kExtendedAxes[] = {Axis::kXAncestor, Axis::kXDescendant,
                                  Axis::kOverlapping, Axis::kXFollowing,
                                  Axis::kXPreceding};

NodeId FindElement(const KyGoddag& kg, goddag::HierarchyId h,
                   const std::string& name, const std::string& text) {
  for (NodeId id : kg.hierarchy(h).nodes) {
    if (kg.node(id).name == name && kg.NodeString(id) == text) return id;
  }
  ADD_FAILURE() << "no <" << name << "> with text '" << text << "'";
  return goddag::kInvalidNode;
}

std::vector<std::string> Names(const KyGoddag& kg,
                               const std::vector<NodeId>& ids) {
  std::vector<std::string> out;
  for (NodeId id : ids) out.push_back(kg.node(id).name);
  return out;
}

class PaperAxesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = workload::BuildPaperDocument();
    ASSERT_TRUE(doc.ok()) << doc.status();
    doc_ = std::make_unique<MultihierarchicalDocument>(std::move(doc).value());
  }

  std::unique_ptr<MultihierarchicalDocument> doc_;
};

TEST_F(PaperAxesTest, WordCrossingLinesOverlapsBoth) {
  const KyGoddag& kg = doc_->goddag();
  AxisEvaluator axes(&kg);
  NodeId word = FindElement(kg, 1, "w", "unawendendne");
  auto lines = axes.Evaluate(word, Axis::kOverlapping, NodeTest::Name("line"));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(kg.NodeString(lines[0]), "thaet is unawen");
  EXPECT_EQ(kg.NodeString(lines[1]), "dendne sceaft and ea");
  // A word wholly inside one line overlaps none (the line contains it).
  NodeId wyrd = FindElement(kg, 1, "w", "wyrd");
  EXPECT_TRUE(
      axes.Evaluate(wyrd, Axis::kOverlapping, NodeTest::Name("line")).empty());
}

TEST_F(PaperAxesTest, XAncestorSeesAcrossHierarchies) {
  const KyGoddag& kg = doc_->goddag();
  AxisEvaluator axes(&kg);
  // "eac" [33,36) sits inside dmg [30,38), line-crossing damage.
  NodeId eac = FindElement(kg, 1, "w", "eac");
  auto ancestors = axes.EvaluateAxisOnly(eac, Axis::kXAncestor);
  std::vector<std::string> names = Names(kg, ancestors);
  // Own chain: text, s; physical: sheet, page; condition: cond, dmg;
  // restoration: rest.
  for (const char* expected : {"text", "s", "sheet", "page", "cond", "dmg",
                               "rest"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing xancestor " << expected;
  }
  // "eac" crosses the line boundary at 35, so no line *contains* it (the
  // lines show up on overlapping::, not xancestor::), and the word itself is
  // never its own xancestor.
  EXPECT_EQ(std::find(names.begin(), names.end(), "line"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "w"), names.end());
}

TEST_F(PaperAxesTest, XDescendantFindsDamageInsideWord) {
  const KyGoddag& kg = doc_->goddag();
  AxisEvaluator axes(&kg);
  NodeId word = FindElement(kg, 1, "w", "unawendendne");
  auto dmg = axes.Evaluate(word, Axis::kXDescendant, NodeTest::Name("dmg"));
  ASSERT_EQ(dmg.size(), 1u);
  EXPECT_EQ(kg.NodeString(dmg[0]), "nawe");
  // "sceaft" contains no damage.
  NodeId sceaft = FindElement(kg, 1, "w", "sceaft");
  EXPECT_TRUE(
      axes.Evaluate(sceaft, Axis::kXDescendant, NodeTest::Name("dmg")).empty());
}

TEST_F(PaperAxesTest, OrderingAxes) {
  const KyGoddag& kg = doc_->goddag();
  AxisEvaluator axes(&kg);
  NodeId sceaft = FindElement(kg, 1, "w", "sceaft");  // [22,28)
  auto following = axes.Evaluate(sceaft, Axis::kXFollowing,
                                 NodeTest::Name("w"));
  EXPECT_EQ(Names(kg, following).size(), 5u);  // and eac swa some wyrd
  auto preceding = axes.Evaluate(sceaft, Axis::kXPreceding,
                                 NodeTest::Name("line"));
  ASSERT_EQ(preceding.size(), 1u);  // only line 1 [0,15) ends before 22
  EXPECT_EQ(kg.NodeString(preceding[0]), "thaet is unawen");
}

TEST_F(PaperAxesTest, StandardAxes) {
  const KyGoddag& kg = doc_->goddag();
  AxisEvaluator axes(&kg);
  NodeId root = kg.root();
  auto all = axes.EvaluateAxisOnly(root, Axis::kDescendant);
  EXPECT_EQ(all.size(), kg.element_count());
  NodeId eac = FindElement(kg, 1, "w", "eac");
  auto parent = axes.EvaluateAxisOnly(eac, Axis::kParent);
  ASSERT_EQ(parent.size(), 1u);
  EXPECT_EQ(kg.node(parent[0]).name, "s");
  auto ancestors = axes.EvaluateAxisOnly(eac, Axis::kAncestor);
  // s, text, GODDAG root — never crosses into other hierarchies.
  EXPECT_EQ(ancestors.size(), 3u);
  auto siblings = axes.EvaluateAxisOnly(eac, Axis::kFollowingSibling);
  EXPECT_EQ(Names(kg, siblings),
            (std::vector<std::string>{"w", "w", "w"}));  // swa some wyrd
  auto preceding_siblings = axes.EvaluateAxisOnly(eac, Axis::kPrecedingSibling);
  EXPECT_EQ(preceding_siblings.size(), 1u);  // and
  auto self = axes.EvaluateAxisOnly(eac, Axis::kSelf);
  EXPECT_EQ(self, std::vector<NodeId>{eac});
  // Standard following stays within the hierarchy.
  auto following = axes.EvaluateAxisOnly(eac, Axis::kFollowing);
  for (NodeId id : following) {
    EXPECT_EQ(kg.node(id).hierarchy, kg.node(eac).hierarchy);
  }
}

// The tentpole equivalence: naive Definition-1 scan and indexed evaluation
// must return identical node sets for every extended axis and every element
// context, on the paper document and on a generated edition with virtual
// hierarchies layered on top.
void ExpectNaiveIndexedAgree(const KyGoddag& kg) {
  AxisEvaluator naive(&kg, AxisOptions{/*use_index=*/false});
  AxisEvaluator indexed(&kg, AxisOptions{/*use_index=*/true});
  for (NodeId id = 0; id < kg.node_table_size(); ++id) {
    if (kg.node(id).kind != GNodeKind::kElement) continue;
    for (Axis axis : kExtendedAxes) {
      EXPECT_EQ(naive.EvaluateAxisOnly(id, axis),
                indexed.EvaluateAxisOnly(id, axis))
          << "axis " << AxisName(axis) << " context node " << id << " '"
          << kg.node(id).name << "'";
    }
  }
}

TEST_F(PaperAxesTest, NaiveAndIndexedAgreeOnPaperDocument) {
  ExpectNaiveIndexedAgree(doc_->goddag());
}

TEST(EditionAxesTest, NaiveAndIndexedAgreeOnGeneratedEdition) {
  workload::EditionConfig config;
  config.seed = 11;
  config.word_count = 90;
  config.chars_per_line = 19;
  config.damage_coverage = 0.25;
  config.restoration_coverage = 0.2;
  auto doc = workload::BuildEditionDocument(config);
  ASSERT_TRUE(doc.ok()) << doc.status();
  KyGoddag* kg = doc->mutable_goddag();
  // Layer a virtual hierarchy on top so recycled node ids are exercised too.
  auto h = kg->AddVirtualHierarchy(
      "match", {goddag::VirtualElement{"m", TextRange(10, 60), {}},
                goddag::VirtualElement{"g", TextRange(20, 40), {}}});
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(kg->RemoveVirtualHierarchy(*h).ok());
  auto h2 = kg->AddVirtualHierarchy(
      "match2", {goddag::VirtualElement{"m", TextRange(15, 75), {}}});
  ASSERT_TRUE(h2.ok());
  ExpectNaiveIndexedAgree(*kg);
}

TEST(EditionAxesTest, EvaluatorRebuildsIndexAfterMutation) {
  auto doc = workload::BuildPaperDocument();
  ASSERT_TRUE(doc.ok());
  KyGoddag* kg = doc->mutable_goddag();
  AxisEvaluator axes(kg, AxisOptions{/*use_index=*/true});
  NodeId word = FindElement(*kg, 1, "w", "unawendendne");
  size_t before = axes.EvaluateAxisOnly(word, Axis::kXAncestor).size();
  auto h = kg->AddVirtualHierarchy(
      "v", {goddag::VirtualElement{"x", TextRange(9, 21), {}}});
  ASSERT_TRUE(h.ok());
  // The new <x> (same range as the word) plus the virtual root <v> must show
  // up — the evaluator detects the revision change and reindexes.
  EXPECT_EQ(axes.EvaluateAxisOnly(word, Axis::kXAncestor).size(), before + 2);
  ASSERT_TRUE(kg->RemoveVirtualHierarchy(*h).ok());
  EXPECT_EQ(axes.EvaluateAxisOnly(word, Axis::kXAncestor).size(), before);
}

TEST(AxisNameTest, RoundTrips) {
  for (Axis axis : {Axis::kSelf, Axis::kChild, Axis::kParent, Axis::kDescendant,
                    Axis::kDescendantOrSelf, Axis::kAncestor,
                    Axis::kAncestorOrSelf, Axis::kFollowingSibling,
                    Axis::kPrecedingSibling, Axis::kFollowing, Axis::kPreceding,
                    Axis::kXAncestor, Axis::kXDescendant, Axis::kOverlapping,
                    Axis::kXFollowing, Axis::kXPreceding}) {
    auto parsed = AxisFromName(AxisName(axis));
    ASSERT_TRUE(parsed.ok()) << AxisName(axis);
    EXPECT_EQ(*parsed, axis);
  }
  EXPECT_FALSE(AxisFromName("sideways").ok());
  EXPECT_TRUE(IsExtendedAxis(Axis::kOverlapping));
  EXPECT_FALSE(IsExtendedAxis(Axis::kDescendant));
}

}  // namespace
}  // namespace mhx::xpath
