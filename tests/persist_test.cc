// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The zero-copy persistence suite (goddag/persist.h):
//   * round-trip byte-identity — the paper's pinned queries evaluate to
//     the same bytes on the parsed document and on its adopted arena,
//     across every plan mode and thread count;
//   * reject-don't-crash — truncation, wrong magic/version, checksum
//     damage, out-of-bounds indices, and a deterministic corruption fuzz
//     all fail with InvalidArgument, never UB (the sanitizer lanes run
//     this file);
//   * mapped-snapshot lifetime — a pinned mapped snapshot stays readable
//     after the file is unlinked, the MappedSnapshot struct dies, and
//     newer versions publish (CONCURRENCY.md);
//   * the corpus spill path — churn counters, corrupt-file fallback.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <stdlib.h>
#include <unistd.h>
#define MHX_PERSIST_TEST_POSIX 1
#endif

#include "corpus/corpus.h"
#include "document.h"
#include "goddag/arena.h"
#include "goddag/persist.h"
#include "goddag/snapshot.h"
#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/engine.h"
#include "xquery/planner.h"
#include "xquery/serialize.h"

namespace mhx {
namespace {

using goddag::AdoptArenaBuffer;
using goddag::ArenaHeader;
using goddag::InspectArenaFile;
using goddag::LoadSnapshotFile;
using goddag::MappedSnapshot;
using goddag::SerializeSnapshot;
using goddag::WriteSnapshotFile;
using xquery::PlanMode;

workload::EditionConfig TestEdition(uint64_t seed = 7,
                                    size_t words = 220) {
  workload::EditionConfig config;
  config.seed = seed;
  config.word_count = words;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

StatusOr<std::string> ImageOf(const MultihierarchicalDocument& doc) {
  return SerializeSnapshot(*doc.PinSnapshot());
}

StatusOr<MappedSnapshot> Adopt(std::string image) {
  return AdoptArenaBuffer(
      std::make_shared<const std::string>(std::move(image)));
}

MultihierarchicalDocument DocumentOf(MappedSnapshot mapped) {
  return MultihierarchicalDocument::FromSnapshot(std::move(mapped.head),
                                                 std::move(mapped.snapshot));
}

// A scratch directory for the file-based tests, removed on teardown as far
// as the tests' own files go.
std::string ScratchDir() {
#if defined(MHX_PERSIST_TEST_POSIX)
  char dir_template[] = "/tmp/mhx_persist_test.XXXXXX";
  char* dir = mkdtemp(dir_template);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string(".") : std::string(dir);
#else
  return ".";
#endif
}

// --- Round-trip byte-identity ------------------------------------------------

TEST(PersistTest, PaperQueriesByteIdenticalAcrossPlanModesAndThreads) {
  auto parsed = workload::BuildPaperDocument();
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  auto image = ImageOf(*parsed);
  ASSERT_TRUE(image.ok()) << image.status().message();
  auto mapped = Adopt(*image);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));

  // The pinned expectations for II.1/III.1 are the coalesced forms (runs
  // of adjacent leaves under one tag merged), matching xquery_engine_test.
  struct Pinned {
    const char* query;
    const char* expected;
    bool coalesce;
  };
  const Pinned kPinned[] = {
      {workload::kQueryI1, workload::kExpectedI1, false},
      {workload::kQueryI2, workload::kExpectedI2, false},
      {workload::kQueryII1, workload::kExpectedII1Coalesced, true},
      {workload::kQueryIII1Intent, workload::kExpectedIII1IntentCoalesced,
       true},
  };
  const PlanMode kModes[] = {PlanMode::kAuto, PlanMode::kForceNaive,
                             PlanMode::kForceIndexed, PlanMode::kForceSort};
  for (const Pinned& p : kPinned) {
    for (PlanMode mode : kModes) {
      for (unsigned threads : {1u, 4u, 8u}) {
        QueryOptions options;
        options.threads = threads;
        options.plan_mode = mode;
        auto from_parse = parsed->Query(p.query, options);
        auto from_arena = loaded.Query(p.query, options);
        ASSERT_TRUE(from_parse.ok()) << from_parse.status().message();
        ASSERT_TRUE(from_arena.ok()) << from_arena.status().message();
        EXPECT_EQ(p.coalesce ? xquery::CoalesceRuns(*from_parse)
                             : *from_parse,
                  p.expected)
            << "mode=" << static_cast<int>(mode) << " threads=" << threads;
        EXPECT_EQ(*from_arena, *from_parse)
            << "mode=" << static_cast<int>(mode) << " threads=" << threads;
      }
    }
  }
}

TEST(PersistTest, GeneratedEditionRoundTripsThroughAFile) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/edition.mhxa";
  auto parsed = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(WriteSnapshotFile(*parsed->PinSnapshot(), path).ok());

  auto mapped = LoadSnapshotFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_GT(mapped->arena_bytes, sizeof(ArenaHeader));
  EXPECT_EQ(mapped->snapshot->version(), parsed->version());
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));
  const char* kQueries[] = {
      "/descendant::w[xancestor::dmg]",
      "for $w in /descendant::w return $w/overlapping::line",
      "/descendant::line/xdescendant::w",
      "for $leaf in /descendant::leaf() "
      "return if ($leaf/xancestor::res) then <i>{$leaf}</i> else $leaf",
  };
  for (const char* query : kQueries) {
    auto a = parsed->Query(query);
    auto b = loaded.Query(query);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b) << query;
  }
#if defined(MHX_PERSIST_TEST_POSIX)
  unlink(path.c_str());
  rmdir(dir.c_str());
#endif
}

TEST(PersistTest, CommittedVersionRoundTrips) {
  auto doc = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(doc.ok());
  auto writer = doc->NewWriter();
  writer.AddVirtualHierarchy(
      "notes", {goddag::VirtualElement{"note", TextRange(3, 19), {}},
                goddag::VirtualElement{"note", TextRange(25, 60), {}}});
  ASSERT_TRUE(writer.Commit().ok());

  auto image = ImageOf(*doc);
  ASSERT_TRUE(image.ok()) << image.status().message();
  auto mapped = Adopt(*image);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_EQ(mapped->snapshot->version(), 2u);
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));
  const char* kQuery = "/descendant::note/xdescendant::w";
  auto a = doc->Query(kQuery);
  auto b = loaded.Query(kQuery);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_FALSE(a->empty());
}

TEST(PersistTest, LoadedDocumentAcceptsNewCommits) {
  // The head from an adopted arena owns all of its bytes: clone-and-commit
  // works, and the new version no longer references the arena buffer.
  auto parsed = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(parsed.ok());
  auto image = ImageOf(*parsed);
  ASSERT_TRUE(image.ok());
  auto mapped = Adopt(*image);
  ASSERT_TRUE(mapped.ok());
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));

  auto writer = loaded.NewWriter();
  writer.AddVirtualHierarchy(
      "anno", {goddag::VirtualElement{"a", TextRange(2, 30), {}}});
  auto version = writer.Commit();
  ASSERT_TRUE(version.ok()) << version.status().message();
  EXPECT_EQ(*version, 2u);
  auto out = loaded.Query("/descendant::a");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->empty());
}

TEST(PersistTest, WriterPersistToWritesTheCommittedVersion) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/committed.mhxa";
  auto doc = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(doc.ok());
  auto writer = doc->NewWriter();
  writer.AddVirtualHierarchy(
      "notes", {goddag::VirtualElement{"note", TextRange(5, 40), {}}});
  writer.PersistTo(path);
  ASSERT_TRUE(writer.Commit().ok());

  auto mapped = LoadSnapshotFile(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().message();
  EXPECT_EQ(mapped->snapshot->version(), doc->version());
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));
  auto a = doc->Query("/descendant::note");
  auto b = loaded.Query("/descendant::note");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
#if defined(MHX_PERSIST_TEST_POSIX)
  unlink(path.c_str());
  rmdir(dir.c_str());
#endif
}

TEST(PersistTest, AdoptedSnapshotNeverRebuildsItsIndex) {
  auto parsed = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(parsed.ok());
  auto image = ImageOf(*parsed);
  ASSERT_TRUE(image.ok());
  auto mapped = Adopt(*image);
  ASSERT_TRUE(mapped.ok());
  // EnsureIndex/EnsureStats report "this call built" — both must be no-ops
  // on an adopted snapshot, which is what keeps `index_rebuilds` flat.
  EXPECT_FALSE(mapped->snapshot->EnsureIndex());
  EXPECT_GT(mapped->snapshot->index().size(), 0u);
  EXPECT_EQ(mapped->snapshot->index().revision(),
            parsed->goddag().revision());
}

// --- Reject, don't crash -----------------------------------------------------

StatusOr<std::string> ValidImage() {
  auto doc = workload::BuildEditionDocument(TestEdition(11, 120));
  if (!doc.ok()) return doc.status();
  return ImageOf(*doc);
}

void ExpectRejected(std::string image, const char* what) {
  auto mapped = Adopt(std::move(image));
  ASSERT_FALSE(mapped.ok()) << "accepted a corrupt arena: " << what;
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument) << what;
}

TEST(PersistTest, RejectsTruncation) {
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  ExpectRejected("", "empty file");
  ExpectRejected(image->substr(0, 8), "shorter than the header");
  ExpectRejected(image->substr(0, sizeof(ArenaHeader)), "header only");
  ExpectRejected(image->substr(0, image->size() / 2), "half the file");
  ExpectRejected(image->substr(0, image->size() - 1), "one byte short");
}

TEST(PersistTest, RejectsWrongMagicAndVersion) {
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  {
    std::string bad = *image;
    bad[0] = 'Z';  // magic
    ExpectRejected(std::move(bad), "wrong magic");
  }
  {
    // One past the current format version, so the test stays correct when
    // the version bumps.
    std::string bad = *image;
    bad[4] = static_cast<char>(goddag::kArenaFormatVersion + 1);
    ExpectRejected(std::move(bad), "future format version");
  }
}

TEST(PersistTest, RejectsChecksumDamage) {
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  {
    // Flip one payload byte: the body checksum must catch it.
    std::string bad = *image;
    bad[bad.size() - 3] ^= 0x40;
    ExpectRejected(std::move(bad), "flipped body byte");
  }
  {
    // Flip one section-table byte: the header checksum must catch it.
    std::string bad = *image;
    bad[sizeof(ArenaHeader) + 9] ^= 0x01;
    ExpectRejected(std::move(bad), "flipped section-table byte");
  }
}

TEST(PersistTest, RejectsOutOfBoundsWithoutChecksums) {
  // With the body checksum off, structural validation alone must reject
  // out-of-bounds section claims (checksum-off is a supported load mode,
  // so it gets its own safety net).
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  std::string bad = *image;
  // First section entry's offset field (u64 at +8 into the entry): point
  // it past the file.
  const size_t entry = sizeof(ArenaHeader);
  uint64_t huge = static_cast<uint64_t>(bad.size()) * 2;
  for (int i = 0; i < 8; ++i) {
    bad[entry + 8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  goddag::LoadOptions unchecked;
  unchecked.verify_body_checksum = false;
  auto mapped = AdoptArenaBuffer(
      std::make_shared<const std::string>(std::move(bad)), unchecked);
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
}

TEST(PersistTest, CorruptionFuzzEveryFlipFailsClosed) {
  // Deterministic fuzz: hundreds of single-byte flips and truncations over
  // a valid arena. The dual checksums mean EVERY flip must fail the load;
  // the sanitizer lanes additionally prove "no UB on the way to the
  // error". Seeded, so a failure reproduces.
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  std::mt19937_64 rng(0xC0FFEEull);
  std::uniform_int_distribution<size_t> pos_dist(0, image->size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  int flips = 0;
  for (int i = 0; i < 300; ++i) {
    std::string bad = *image;
    const size_t pos = pos_dist(rng);
    const char mask = static_cast<char>(1 << bit_dist(rng));
    bad[pos] ^= mask;  // never a no-op: XOR with a nonzero mask
    auto mapped = Adopt(std::move(bad));
    ASSERT_FALSE(mapped.ok())
        << "flip at byte " << pos << " mask " << static_cast<int>(mask)
        << " loaded successfully";
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
    ++flips;
  }
  std::uniform_int_distribution<size_t> cut_dist(0, image->size() - 1);
  for (int i = 0; i < 100; ++i) {
    auto mapped = Adopt(image->substr(0, cut_dist(rng)));
    ASSERT_FALSE(mapped.ok());
    EXPECT_EQ(mapped.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(flips, 300);
}

TEST(PersistTest, MissingFileIsNotFound) {
  auto mapped = LoadSnapshotFile("/nonexistent/definitely/missing.mhxa");
  ASSERT_FALSE(mapped.ok());
  EXPECT_EQ(mapped.status().code(), StatusCode::kNotFound);
}

TEST(PersistTest, InspectReportsSectionsAndChecksumVerdict) {
  auto image = ValidImage();
  ASSERT_TRUE(image.ok());
  const std::string dir = ScratchDir();
  const std::string path = dir + "/inspect.mhxa";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(image->data(), 1, image->size(), f),
              image->size());
    std::fclose(f);
  }
  auto info = InspectArenaFile(path);
  ASSERT_TRUE(info.ok()) << info.status().message();
  EXPECT_EQ(info->header.magic, goddag::kArenaMagic);
  EXPECT_EQ(info->sections.size(), goddag::kArenaSectionKinds);
  EXPECT_TRUE(info->body_checksum_ok);
  EXPECT_FALSE(goddag::FormatArenaInfo(*info).empty());

  // Damage one body byte: inspect still succeeds (header and table are
  // intact) but reports the body verdict — that asymmetry is the tool's
  // point.
  {
    std::string bad = *image;
    bad[bad.size() - 2] ^= 0x10;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bad.data(), 1, bad.size(), f), bad.size());
    std::fclose(f);
  }
  auto damaged = InspectArenaFile(path);
  ASSERT_TRUE(damaged.ok());
  EXPECT_FALSE(damaged->body_checksum_ok);
#if defined(MHX_PERSIST_TEST_POSIX)
  unlink(path.c_str());
  rmdir(dir.c_str());
#endif
}

// --- Mapped-snapshot lifetime ------------------------------------------------

TEST(PersistTest, MappedSnapshotSurvivesUnlinkAndStructDeath) {
#if !defined(MHX_PERSIST_TEST_POSIX)
  GTEST_SKIP() << "unlink semantics are POSIX";
#else
  const std::string dir = ScratchDir();
  const std::string path = dir + "/unlinked.mhxa";
  auto parsed = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(WriteSnapshotFile(*parsed->PinSnapshot(), path).ok());
  auto expected = parsed->Query("/descendant::w[xancestor::dmg]");
  ASSERT_TRUE(expected.ok());

  std::shared_ptr<const goddag::DocumentSnapshot> pinned;
  std::unique_ptr<MultihierarchicalDocument> loaded;
  {
    auto mapped = LoadSnapshotFile(path);
    ASSERT_TRUE(mapped.ok());
    pinned = mapped->snapshot;
    loaded = std::make_unique<MultihierarchicalDocument>(
        DocumentOf(std::move(*mapped)));
    // The MappedSnapshot struct dies here; the pin and the document keep
    // the mapping alive.
  }
  ASSERT_EQ(unlink(path.c_str()), 0);
  rmdir(dir.c_str());

  // Post-unlink, the mapped pages must still serve queries (POSIX keeps
  // the mapping valid) and index probes through the pinned snapshot.
  auto out = loaded->Query("/descendant::w[xancestor::dmg]");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, *expected);
  EXPECT_GT(pinned->index().size(), 0u);
  EXPECT_GT(pinned->stats().element_count(), 0u);
#endif
}

TEST(PersistTest, PinnedMappedSnapshotReadableAfterNewerPublishes) {
  auto parsed = workload::BuildEditionDocument(TestEdition());
  ASSERT_TRUE(parsed.ok());
  auto image = ImageOf(*parsed);
  ASSERT_TRUE(image.ok());
  auto mapped = Adopt(*image);
  ASSERT_TRUE(mapped.ok());
  MultihierarchicalDocument loaded = DocumentOf(std::move(*mapped));

  // Pin version 1, publish versions 2 and 3, then read through the old pin:
  // MVCC says the pinned (mapped) version is immutable and intact.
  auto pin = loaded.PinSnapshot();
  const size_t pinned_elements = pin->index().size();
  for (int i = 0; i < 2; ++i) {
    auto writer = loaded.NewWriter();
    writer.AddVirtualHierarchy(
        "gen" + std::to_string(i),
        {goddag::VirtualElement{"g", TextRange(1, 9), {}}});
    ASSERT_TRUE(writer.Commit().ok());
  }
  EXPECT_EQ(loaded.version(), 3u);
  EXPECT_EQ(pin->version(), 1u);
  EXPECT_EQ(pin->index().size(), pinned_elements);
  EXPECT_GT(pin->stats().element_count(), 0u);
}

// --- The corpus spill path ---------------------------------------------------

TEST(PersistTest, CorpusSpillServesEvictionsFromArenas) {
#if !defined(MHX_PERSIST_TEST_POSIX)
  GTEST_SKIP() << "spill churn test uses mkdtemp";
#else
  const std::string dir = ScratchDir();
  corpus::CorpusOptions options;
  options.capacity = 1;  // every alternation evicts
  options.pool_threads = 0;
  options.spill_dir = dir;
  corpus::CorpusService service(options);
  ASSERT_TRUE(service.Register("a", TestEdition(21, 140)).ok());
  ASSERT_TRUE(service.Register("b", TestEdition(22, 140)).ok());
  const char* kQuery = "/descendant::w[xancestor::dmg]";

  auto first = service.Query("a", kQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(service.Query("b", kQuery).ok());  // evicts a
  auto again = service.Query("a", kQuery);       // reloads a from its arena
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);  // mapped reload is byte-identical

  auto stats = service.stats();
  EXPECT_GE(stats.snapshots_persisted, 2u);
  EXPECT_GE(stats.mmap_loads, 1u);
  EXPECT_EQ(stats.load_fallbacks, 0u);
  EXPECT_GE(stats.evictions, 2u);
#endif
}

TEST(PersistTest, CorpusSpillFallsBackOnCorruptArena) {
#if !defined(MHX_PERSIST_TEST_POSIX)
  GTEST_SKIP() << "spill churn test uses mkdtemp";
#else
  const std::string dir = ScratchDir();
  corpus::CorpusOptions options;
  options.capacity = 1;
  options.pool_threads = 0;
  options.spill_dir = dir;
  corpus::CorpusService service(options);
  ASSERT_TRUE(service.Register("a", TestEdition(31, 140)).ok());
  ASSERT_TRUE(service.Register("b", TestEdition(32, 140)).ok());
  const char* kQuery = "/descendant::w[xancestor::dmg]";
  auto first = service.Query("a", kQuery);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(service.Query("b", kQuery).ok());  // evicts a; a's arena spilled

  // Corrupt a's arena in place, then touch it cold: the service must fall
  // back to the parse build, count the fallback, and still serve the right
  // bytes. The spill file name is an implementation detail, so corrupt
  // every .mhxa in the directory.
  size_t corrupted = 0;
  {
    std::string cmd_dir = dir;
    DIR* d = opendir(cmd_dir.c_str());
    ASSERT_NE(d, nullptr);
    while (struct dirent* entry = readdir(d)) {
      const std::string name = entry->d_name;
      if (name.size() < 5 ||
          name.compare(name.size() - 5, 5, ".mhxa") != 0) {
        continue;
      }
      std::FILE* f = std::fopen((cmd_dir + "/" + name).c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fputs("garbage, not an arena", f);
      std::fclose(f);
      ++corrupted;
    }
    closedir(d);
  }
  ASSERT_GE(corrupted, 2u);

  auto again = service.Query("a", kQuery);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);
  auto stats = service.stats();
  EXPECT_GE(stats.load_fallbacks, 1u);
  // The fallback parse re-spilled a fresh arena; the next eviction cycle
  // loads it cleanly.
  ASSERT_TRUE(service.Query("b", kQuery).ok());
  auto third = service.Query("a", kQuery);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, *first);
  EXPECT_GE(service.stats().mmap_loads, 1u);
#endif
}

}  // namespace
}  // namespace mhx
