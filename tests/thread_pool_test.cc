// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

namespace mhx::base {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(2);
  // Two tasks that each wait for the other's side effect: they can only
  // both finish if two workers run them at the same time.
  std::atomic<int> arrivals{0};
  auto rendezvous = [&arrivals] {
    ++arrivals;
    while (arrivals.load() < 2) std::this_thread::yield();
    return arrivals.load();
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  EXPECT_EQ(a.get(), 2);
  EXPECT_EQ(b.get(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++executed;
      }));
    }
    // Destruction joins after the queue drains.
  }
  EXPECT_EQ(executed.load(), 16);
  for (auto& future : futures) future.get();  // all ready, none broken
}

TEST(ThreadPoolTest, MoveOnlyResultsAndVoidTasks) {
  ThreadPool pool(2);
  auto moved = pool.Submit([] { return std::make_unique<int>(41); });
  auto voided = pool.Submit([] {});
  EXPECT_EQ(*moved.get(), 41);
  voided.get();
}

}  // namespace
}  // namespace mhx::base
