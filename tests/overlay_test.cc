// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The evaluation-scoped overlay layer: id-block allocation, overlay
// construction and resolution through OverlayView, the merged leaf
// partition, and view-aware axis evaluation (base index + overlay scan).

#include "goddag/overlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "workload/paper_data.h"
#include "xml/parser.h"
#include "xpath/axes.h"

namespace mhx::goddag {
namespace {

KyGoddag PaperGoddag() {
  KyGoddag kg(mhx::workload::kPaperBaseText);
  auto phys = mhx::xml::Parse(mhx::workload::kPaperPhysicalXml);
  auto strut = mhx::xml::Parse(mhx::workload::kPaperStructuralXml);
  EXPECT_TRUE(phys.ok());
  EXPECT_TRUE(strut.ok());
  EXPECT_TRUE(kg.AddHierarchy("physical", *phys).ok());
  EXPECT_TRUE(kg.AddHierarchy("structural", *strut).ok());
  return kg;
}

std::shared_ptr<const GoddagOverlay> MustCreate(
    const KyGoddag* base, std::shared_ptr<OverlayIdAllocator> ids,
    const std::string& name, std::vector<VirtualElement> elements) {
  auto overlay =
      GoddagOverlay::Create(base, std::move(ids), name, std::move(elements));
  EXPECT_TRUE(overlay.ok()) << overlay.status();
  return *overlay;
}

TEST(OverlayIdAllocatorTest, BlocksAreDisjointAndTagged) {
  OverlayIdAllocator ids;
  NodeId a = ids.Allocate(3);
  NodeId b = ids.Allocate(5);
  EXPECT_TRUE(IsOverlayId(a));
  EXPECT_TRUE(IsOverlayId(b));
  EXPECT_GE(b, a + 3);  // disjoint, monotonic
  ids.Release(a, 3);
  ids.Release(b, 5);
}

TEST(OverlayIdAllocatorTest, RewindsWhenDrainedAndFailsWhenExhausted) {
  OverlayIdAllocator ids;
  // Nearly exhaust the 2^31 - 1 namespace with one huge lease (ids are
  // counters, not memory — nothing this size is materialised).
  NodeId big = ids.Allocate(0x7FFFFF00u);
  ASSERT_NE(big, kInvalidNode);
  NodeId small = ids.Allocate(0x80);
  EXPECT_NE(small, kInvalidNode);                // still fits
  EXPECT_EQ(ids.Allocate(0x100), kInvalidNode);  // does not
  ids.Release(small, 0x80);
  EXPECT_EQ(ids.Allocate(0x100), kInvalidNode);  // big block still leased
  ids.Release(big, 0x7FFFFF00u);
  // Fully drained: the cursor rewinds and the namespace is fresh again.
  NodeId again = ids.Allocate(0x100);
  EXPECT_EQ(again, kOverlayIdBit);
  ids.Release(again, 0x100);
}

TEST(OverlayIdAllocatorTest, TailRewindReclaimsChurnAboveAPinnedBlock) {
  OverlayIdAllocator ids;
  // A long-lived kept block pinned low in the namespace...
  NodeId pinned = ids.Allocate(4);
  ASSERT_NE(pinned, kInvalidNode);
  // ...must not stop released churn above it from being reclaimed: each
  // freed tail block rewinds the cursor, so the same ids recycle forever
  // instead of the namespace exhausting after 2^31 cumulative nodes.
  NodeId first = ids.Allocate(8);
  ids.Release(first, 8);
  for (int i = 0; i < 100; ++i) {
    NodeId block = ids.Allocate(8);
    EXPECT_EQ(block, first) << "iteration " << i;
    ids.Release(block, 8);
  }
  // Out-of-order release under a live block reclaims once the tail frees.
  NodeId lower = ids.Allocate(8);
  NodeId upper = ids.Allocate(8);
  ids.Release(lower, 8);   // sandwiched under `upper`: parked
  ids.Release(upper, 8);   // tail frees: rewind absorbs both
  EXPECT_EQ(ids.Allocate(8), lower);
  ids.Release(lower, 8);
  ids.Release(pinned, 4);
}

TEST(OverlayIdAllocatorTest, FirstFitReusesHolesUnderLiveBlocks) {
  OverlayIdAllocator ids;
  // Holes sandwiched under live blocks — many long-lived engines churning
  // in one process — are recycled directly, not parked until the blocks
  // above them release.
  NodeId a = ids.Allocate(8);
  NodeId pinned = ids.Allocate(4);  // stays live above the hole
  ids.Release(a, 8);
  EXPECT_EQ(ids.Allocate(8), a);  // exact fit, same ids
  ids.Release(a, 8);
  // A smaller block carves the hole's front; the remainder stays free.
  EXPECT_EQ(ids.Allocate(3), a);
  EXPECT_EQ(ids.Allocate(5), a + 3);
  // A block too large for the hole falls through to the tail.
  ids.Release(a, 3);
  NodeId tail = ids.Allocate(16);
  EXPECT_GE(tail & ~kOverlayIdBit, pinned & ~kOverlayIdBit);
  ids.Release(a + 3, 5);
  ids.Release(tail, 16);
  ids.Release(pinned, 4);
}

TEST(OverlayIdAllocatorTest, ReleaseCoalescesAdjacentHoles) {
  OverlayIdAllocator ids;
  NodeId a = ids.Allocate(4);
  NodeId b = ids.Allocate(4);
  NodeId c = ids.Allocate(4);
  NodeId pinned = ids.Allocate(4);
  // Release out of order: a and c are separate holes until b joins them.
  ids.Release(a, 4);
  ids.Release(c, 4);
  EXPECT_EQ(ids.Allocate(8), kOverlayIdBit | 16);  // no 8-hole yet: tail
  ids.Release(b, 4);  // bridges a..c into one 12-id hole
  EXPECT_EQ(ids.Allocate(12), a);
  ids.Release(a, 12);
  ids.Release(kOverlayIdBit | 16, 8);
  ids.Release(pinned, 4);
}

TEST(OverlayIdAllocatorTest, FirstFitPrefersTheLowestFittingHole) {
  OverlayIdAllocator ids;
  NodeId a = ids.Allocate(2);
  NodeId live1 = ids.Allocate(2);
  NodeId b = ids.Allocate(8);
  NodeId live2 = ids.Allocate(2);
  ids.Release(a, 2);
  ids.Release(b, 8);
  // Both holes fit a 2-block; the lower one wins even though the higher
  // was freed more recently and fits exactly its own size too.
  EXPECT_EQ(ids.Allocate(2), a);
  // The 8-hole serves the next fitting request.
  EXPECT_EQ(ids.Allocate(8), b);
  ids.Release(a, 2);
  ids.Release(b, 8);
  ids.Release(live1, 2);
  ids.Release(live2, 2);
}

TEST(GoddagOverlayTest, BuildsRootedTreeInItsOwnNamespace) {
  KyGoddag kg = PaperGoddag();
  auto ids = std::make_shared<OverlayIdAllocator>();
  auto overlay = MustCreate(&kg, ids, "result",
                            {VirtualElement{"m", TextRange(9, 14), {}},
                             VirtualElement{"a", TextRange(11, 12), {}}});
  ASSERT_EQ(overlay->node_count(), 3u);
  EXPECT_TRUE(IsOverlayId(overlay->root()));
  const GNode& root = overlay->node(overlay->root());
  EXPECT_EQ(root.name, "result");
  EXPECT_EQ(root.range, TextRange(0, kg.base_text().size()));
  // The overlay root hangs off the *base* GODDAG root, but the base is
  // untouched: no new children, no revision bump, no element count change.
  EXPECT_EQ(root.parent, kg.root());
  EXPECT_EQ(kg.node(kg.root()).children.size(), 2u);
  EXPECT_EQ(kg.element_count(), 17u);
  // m nests under the root, a under m; all ids in the overlay namespace.
  const NodeId m = overlay->elements_begin();
  EXPECT_EQ(overlay->node(m).name, "m");
  EXPECT_EQ(overlay->node(m).parent, overlay->root());
  const NodeId a = m + 1;
  EXPECT_EQ(overlay->node(a).name, "a");
  EXPECT_EQ(overlay->node(a).parent, m);
}

TEST(GoddagOverlayTest, RejectsOverlappingElements) {
  KyGoddag kg = PaperGoddag();
  auto ids = std::make_shared<OverlayIdAllocator>();
  auto overlay = GoddagOverlay::Create(
      &kg, ids, "bad",
      {VirtualElement{"x", TextRange(0, 10), {}},
       VirtualElement{"y", TextRange(5, 15), {}}});
  EXPECT_FALSE(overlay.ok());
  EXPECT_EQ(overlay.status().code(), StatusCode::kInvalidArgument);
  // Validation failed before any lease: the namespace is untouched.
  NodeId probe = ids->Allocate(1);
  EXPECT_EQ(probe, kOverlayIdBit);
  ids->Release(probe, 1);
}

TEST(OverlayViewTest, ResolvesBaseAndOverlayIds) {
  KyGoddag kg = PaperGoddag();
  kg.leaves();  // materialise, as the engine does before evaluating
  auto ids = std::make_shared<OverlayIdAllocator>();
  OverlayView view(&kg);
  EXPECT_EQ(&view.node(kg.root()), &kg.node(kg.root()));

  auto overlay = MustCreate(&kg, ids, "result",
                            {VirtualElement{"m", TextRange(9, 14), {}}});
  const NodeId m = overlay->elements_begin();
  view.AddOverlay(overlay);
  EXPECT_EQ(view.overlay_of(m), overlay.get());
  EXPECT_EQ(view.node(m).name, "m");
  EXPECT_EQ(view.NodeString(m), "unawe");
  // Ids outside every registered block resolve to no overlay.
  EXPECT_EQ(view.overlay_of(overlay->id_end()), nullptr);
}

TEST(OverlayViewTest, MergedLeavesSplitAtOverlayBoundaries) {
  KyGoddag kg = PaperGoddag();
  const size_t base_cells = kg.leaves().size();
  auto ids = std::make_shared<OverlayIdAllocator>();
  OverlayView view(&kg);
  // Without overlays the view serves the base partition itself.
  EXPECT_EQ(&view.leaves(), &kg.leaves());

  // "unawendendne" is [9,21); 11 and 12 are fresh boundaries, 9 is already
  // a word boundary in the base partition.
  view.AddOverlay(MustCreate(&kg, ids, "result",
                             {VirtualElement{"a", TextRange(11, 12), {}}}));
  const std::vector<Leaf>& merged = view.leaves();
  EXPECT_EQ(merged.size(), base_cells + 2);
  EXPECT_EQ(kg.leaves().size(), base_cells);  // base partition untouched
  // The merged partition still tiles [0, n).
  EXPECT_EQ(merged.front().range.begin, 0u);
  EXPECT_EQ(merged.back().range.end, kg.base_text().size());
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    EXPECT_EQ(merged[i].range.end, merged[i + 1].range.begin);
  }
  // Splicing an existing boundary is a no-op.
  view.AddOverlay(MustCreate(&kg, ids, "again",
                             {VirtualElement{"b", TextRange(11, 12), {}}}));
  EXPECT_EQ(view.leaves().size(), base_cells + 2);
}

TEST(OverlayViewTest, ExtendedAxesReadBaseIndexPlusOverlayScan) {
  KyGoddag kg = PaperGoddag();
  kg.leaves();
  auto ids = std::make_shared<OverlayIdAllocator>();
  OverlayView view(&kg);
  xpath::AxisEvaluator axes(&kg);

  // The persistent <w> spanning "unawendendne" [9,21).
  NodeId word = kInvalidNode;
  for (NodeId id = 0; id < kg.node_table_size(); ++id) {
    if (kg.node(id).kind == GNodeKind::kElement &&
        kg.node(id).name == "w" && kg.node(id).range == TextRange(9, 21)) {
      word = id;
    }
  }
  ASSERT_NE(word, kInvalidNode);

  const size_t base_hits =
      axes.Evaluate(view, word, xpath::Axis::kXDescendant,
                    xpath::NodeTest::Any())
          .size();
  auto overlay = MustCreate(&kg, ids, "result",
                            {VirtualElement{"m", TextRange(9, 14), {}},
                             VirtualElement{"a", TextRange(11, 12), {}}});
  const NodeId m = overlay->elements_begin();
  view.AddOverlay(overlay);

  // xdescendant from the base word now also sees both overlay elements —
  // in document order, with the base-only overload unchanged.
  auto hits = axes.EvaluateAxisOnly(view, word, xpath::Axis::kXDescendant);
  EXPECT_EQ(hits.size(), base_hits + 2);
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end(),
                             [&](NodeId a, NodeId b) {
                               if (view.node(a).range != view.node(b).range) {
                                 return view.node(a).range <
                                        view.node(b).range;
                               }
                               return a < b;
                             }));
  EXPECT_EQ(axes.EvaluateAxisOnly(word, xpath::Axis::kXDescendant).size(),
            base_hits);

  // From the overlay side: xancestor of <a> climbs into the base document.
  const NodeId a = m + 1;
  auto ancestors = axes.Evaluate(view, a, xpath::Axis::kXAncestor,
                                 xpath::NodeTest::Name("w"));
  ASSERT_EQ(ancestors.size(), 1u);
  EXPECT_EQ(ancestors[0], word);

  // The plumbing root never leaks into extended axes.
  for (NodeId hit :
       axes.EvaluateAxisOnly(view, word, xpath::Axis::kXAncestor)) {
    EXPECT_NE(hit, overlay->root());
  }

  // EvaluateRange (leaf contexts): base index + overlay scan, unified.
  auto range_hits =
      axes.EvaluateRange(view, TextRange(11, 12), xpath::Axis::kXAncestor);
  EXPECT_NE(std::find(range_hits.begin(), range_hits.end(), m),
            range_hits.end());
  EXPECT_NE(std::find(range_hits.begin(), range_hits.end(), word),
            range_hits.end());
}

TEST(OverlayViewTest, StandardAxesNavigateWithinTheOverlay) {
  KyGoddag kg = PaperGoddag();
  kg.leaves();
  auto ids = std::make_shared<OverlayIdAllocator>();
  OverlayView view(&kg);
  xpath::AxisEvaluator axes(&kg);
  auto overlay = MustCreate(&kg, ids, "result",
                            {VirtualElement{"m", TextRange(4, 6), {}},
                             VirtualElement{"m", TextRange(9, 14), {}}});
  view.AddOverlay(overlay);
  const NodeId first = overlay->elements_begin();
  const NodeId second = first + 1;

  auto children = axes.EvaluateAxisOnly(view, overlay->root(),
                                        xpath::Axis::kChild);
  EXPECT_EQ(children, (std::vector<NodeId>{first, second}));
  // following/preceding stay within the overlay "hierarchy".
  auto following =
      axes.EvaluateAxisOnly(view, first, xpath::Axis::kFollowing);
  EXPECT_EQ(following, (std::vector<NodeId>{second}));
  auto preceding =
      axes.EvaluateAxisOnly(view, second, xpath::Axis::kPreceding);
  EXPECT_EQ(preceding, (std::vector<NodeId>{first}));
  // ancestor climbs through the overlay root into the base GODDAG root.
  auto ancestors = axes.EvaluateAxisOnly(view, first, xpath::Axis::kAncestor);
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(ancestors[0], kg.root());
  EXPECT_EQ(ancestors[1], overlay->root());
}

TEST(OverlayViewTest, BatchedSpliceHandlesManyBoundariesInOnePass) {
  // One overlay carrying many nested elements inside a single word: every
  // boundary must land, exactly once, no matter how they batch up before
  // the first leaves() call.
  KyGoddag kg = PaperGoddag();
  const size_t base_cells = kg.leaves().size();
  auto ids = std::make_shared<OverlayIdAllocator>();
  OverlayView view(&kg);
  // "unawendendne" is [9,21): nested elements [9,21) ⊃ [10,20) ⊃ ... make
  // 10 fresh interior boundaries (10..14 and 16..20); 9/21/15 stay word or
  // sibling edges.
  std::vector<VirtualElement> elements;
  for (size_t d = 0; d < 6; ++d) {
    elements.push_back(
        VirtualElement{"n", TextRange(9 + d, 21 - d), {}});
  }
  view.AddOverlay(MustCreate(&kg, ids, "deep", std::move(elements)));
  const std::vector<Leaf>& merged = view.leaves();
  EXPECT_EQ(merged.size(), base_cells + 10);
  EXPECT_EQ(merged.front().range.begin, 0u);
  EXPECT_EQ(merged.back().range.end, kg.base_text().size());
  for (size_t i = 0; i + 1 < merged.size(); ++i) {
    EXPECT_EQ(merged[i].range.end, merged[i + 1].range.begin);
    EXPECT_LT(merged[i].range.begin, merged[i].range.end);
  }
  // A second batch drains incrementally on top of the merged partition.
  view.AddOverlay(MustCreate(&kg, ids, "more",
                             {VirtualElement{"a", TextRange(2, 3), {}}}));
  EXPECT_EQ(view.leaves().size(), base_cells + 12);
}

TEST(OverlayViewTest, ForkedViewReadsThroughAndWritesPrivately) {
  KyGoddag kg = PaperGoddag();
  kg.leaves();
  auto ids = std::make_shared<OverlayIdAllocator>();
  xpath::AxisEvaluator axes(&kg);

  // Coordinator view with one overlay ("the evaluation so far").
  OverlayView coordinator(&kg);
  auto kept = MustCreate(&kg, ids, "kept",
                         {VirtualElement{"m", TextRange(9, 14), {}}});
  const NodeId kept_m = kept->elements_begin();
  coordinator.AddOverlay(kept);
  const size_t coordinator_cells = coordinator.leaves().size();

  // A worker forks off the coordinator and creates its own overlay.
  OverlayView worker(&coordinator);
  EXPECT_EQ(worker.parent(), &coordinator);
  auto private_overlay = MustCreate(
      &kg, ids, "private", {VirtualElement{"a", TextRange(25, 27), {}}});
  const NodeId private_a = private_overlay->elements_begin();
  worker.AddOverlay(private_overlay);

  // Read-through: the fork resolves base ids, the coordinator's overlay
  // ids, and its own.
  EXPECT_EQ(&worker.node(kg.root()), &kg.node(kg.root()));
  EXPECT_EQ(worker.overlay_of(kept_m), kept.get());
  EXPECT_EQ(worker.node(kept_m).name, "m");
  EXPECT_EQ(worker.overlay_of(private_a), private_overlay.get());
  // Write isolation: the coordinator never sees the fork's overlay.
  EXPECT_EQ(coordinator.overlay_of(private_a), nullptr);
  EXPECT_EQ(coordinator.leaves().size(), coordinator_cells);
  // The fork's partition = the coordinator's partition re-split at its own
  // overlay's boundaries only ([25,27) adds two fresh cuts).
  EXPECT_EQ(worker.leaves().size(), coordinator_cells + 2);

  // Axis scans walk the fork chain: from a base context inside [9,14),
  // xancestor sees the coordinator's m through the fork...
  auto hits = axes.EvaluateRange(worker, TextRange(11, 12),
                                 xpath::Axis::kXAncestor);
  EXPECT_NE(std::find(hits.begin(), hits.end(), kept_m), hits.end());
  // ...and the fork's private element is invisible through the
  // coordinator's view.
  auto parent_hits = axes.EvaluateRange(coordinator, TextRange(25, 27),
                                        xpath::Axis::kXAncestor);
  EXPECT_EQ(std::find(parent_hits.begin(), parent_hits.end(), private_a),
            parent_hits.end());
  auto fork_hits = axes.EvaluateRange(worker, TextRange(25, 27),
                                      xpath::Axis::kXAncestor);
  EXPECT_NE(std::find(fork_hits.begin(), fork_hits.end(), private_a),
            fork_hits.end());

  // Merge at join: re-registering the fork's overlay on the coordinator
  // makes it visible there, exactly as the engine does in binding order.
  coordinator.AddOverlay(private_overlay);
  EXPECT_EQ(coordinator.overlay_of(private_a), private_overlay.get());
  EXPECT_EQ(coordinator.leaves().size(), coordinator_cells + 2);
}

}  // namespace
}  // namespace mhx::goddag
