// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/parser.h"

#include <gtest/gtest.h>

#include "workload/paper_data.h"
#include "xquery/ast.h"

namespace mhx::xquery {
namespace {

std::string Parsed(std::string_view query) {
  auto expr = ParseQuery(query);
  EXPECT_TRUE(expr.ok()) << expr.status();
  if (!expr.ok()) return "<parse error>";
  return DebugString((*expr)->root());
}

// --- AST shapes ------------------------------------------------------------

TEST(XQueryParserTest, LiteralsVariablesAndSequences) {
  EXPECT_EQ(Parsed("42"), "42");
  EXPECT_EQ(Parsed("'abc'"), "\"abc\"");
  EXPECT_EQ(Parsed("\"a''b\""), "\"a''b\"");
  EXPECT_EQ(Parsed("$w"), "$w");
  EXPECT_EQ(Parsed("()"), "(seq)");
  EXPECT_EQ(Parsed("(1, 2, 3)"), "(seq 1 2 3)");
  EXPECT_EQ(Parsed("1 + 2 * 3"), "(+ 1 (* 2 3))");
  EXPECT_EQ(Parsed("-1"), "(- 0 1)");
}

TEST(XQueryParserTest, PathsWithStandardAndExtendedAxes) {
  EXPECT_EQ(Parsed("/descendant::line"), "(path / descendant::line)");
  EXPECT_EQ(Parsed("/descendant::leaf()"), "(path / descendant::leaf())");
  EXPECT_EQ(Parsed("$l/descendant::leaf()"),
            "(path $l descendant::leaf())");
  EXPECT_EQ(Parsed("$leaf/xancestor::res"), "(path $leaf xancestor::res)");
  EXPECT_EQ(Parsed("xdescendant::w"), "(path xdescendant::w)");
  EXPECT_EQ(Parsed("//w"), "(path / descendant::w)");
  EXPECT_EQ(Parsed("/descendant::*"), "(path / descendant::*)");
  EXPECT_EQ(Parsed("w"), "(path child::w)");
}

TEST(XQueryParserTest, PredicatesNestAndCombine) {
  EXPECT_EQ(
      Parsed("/descendant::w[string(.) = 'x']"),
      "(path / descendant::w[(= (call string .) \"x\")])");
  EXPECT_EQ(
      Parsed("$leaf[ancestor::w[xancestor::dmg or overlapping::dmg]]"),
      "(path $leaf[(path ancestor::w[(or (path xancestor::dmg) "
      "(path overlapping::dmg))])])");
}

TEST(XQueryParserTest, FlworIfAndQuantifiers) {
  EXPECT_EQ(Parsed("for $w in /descendant::w return string($w)"),
            "(for $w (path / descendant::w) (call string $w))");
  EXPECT_EQ(Parsed("let $r := 1 return $r"), "(let $r 1 $r)");
  EXPECT_EQ(Parsed("for $a in 1, $b in 2 return $b"),
            "(for $a 1 (for $b 2 $b))");
  EXPECT_EQ(Parsed("if (1) then 2 else 3"), "(if 1 2 3)");
  EXPECT_EQ(
      Parsed("some $w in xdescendant::w satisfies string-length(string($w)) "
             "> 10"),
      "(some $w (path xdescendant::w) (> (call string-length "
      "(call string $w)) 10))");
}

TEST(XQueryParserTest, DirectConstructors) {
  EXPECT_EQ(Parsed("<br/>"), "(elem br)");
  EXPECT_EQ(Parsed("<b>{$leaf}</b>"), "(elem b (content {$leaf}))");
  EXPECT_EQ(Parsed("<line>{string($l)}</line>"),
            "(elem line (content {(call string $l)}))");
  EXPECT_EQ(
      Parsed("<span id=\"{name($w)}\"><b>{$w}</b></span>"),
      "(elem span @id=( {(call name $w)}) (content {(elem b "
      "(content {$w}))}))");
  EXPECT_EQ(Parsed("<x>ab {1} cd</x>"),
            "(elem x (content \"ab \" {1} \" cd\"))");
}

TEST(XQueryParserTest, KeywordsStayNamesOutsideTheirContexts) {
  // `for` only heads a FLWOR when a variable follows; here it is a step.
  EXPECT_EQ(Parsed("/descendant::for"), "(path / descendant::for)");
  EXPECT_EQ(Parsed("child::if"), "(path child::if)");
}

TEST(XQueryParserTest, PaperQueriesParse) {
  for (const char* query :
       {mhx::workload::kQueryI1, mhx::workload::kQueryI2,
        mhx::workload::kQueryII1, mhx::workload::kQueryIII1Intent}) {
    auto expr = ParseQuery(query);
    EXPECT_TRUE(expr.ok()) << query << "\n" << expr.status();
  }
}

// --- anchored errors -------------------------------------------------------

TEST(XQueryParserTest, ErrorsAreAnchoredToOffsets) {
  struct Case {
    const char* query;
    const char* fragment;
  };
  for (const Case& c : {
           Case{"for $w in", "expected an expression"},
           Case{"for $w in 1", "expected 'return'"},
           Case{"1 +", "expected an expression"},
           Case{"(1, 2", "expected ')'"},
           Case{"/descendant::", "expected a node test"},
           Case{"/sideways::w", "unknown axis 'sideways'"},
           Case{"$w[1", "expected ']'"},
           Case{"<a>{1}</b>", "mismatched closing tag"},
           Case{"<a>oops", "unterminated content"},
           Case{"<a>x}y</a>", "unescaped '}'"},
           Case{"<a b=\"x}y\"/>", "unescaped '}'"},
           Case{"'unterminated", "unterminated string literal"},
           Case{"if (1) then 2", "expected 'else'"},
       }) {
    auto expr = ParseQuery(c.query);
    ASSERT_FALSE(expr.ok()) << c.query;
    EXPECT_EQ(expr.status().code(), StatusCode::kInvalidArgument) << c.query;
    EXPECT_NE(expr.status().message().find("offset"), std::string::npos)
        << c.query << " -> " << expr.status().message();
    EXPECT_NE(expr.status().message().find(c.fragment), std::string::npos)
        << c.query << " -> " << expr.status().message();
  }
}

TEST(XQueryParserTest, HostileNestingErrorsInsteadOfOverflowing) {
  std::string deep(100000, '(');
  deep += "1";
  deep.append(100000, ')');
  auto expr = ParseQuery(deep);
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("nested deeper"), std::string::npos);

  std::string ctors;
  for (int i = 0; i < 100000; ++i) ctors += "<a>";
  expr = ParseQuery(ctors);
  ASSERT_FALSE(expr.ok());

  std::string chain = "1";
  for (int i = 0; i < 100000; ++i) chain += "+1";
  expr = ParseQuery(chain);
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("operator chain"),
            std::string::npos);

  std::string minuses(100000, '-');
  expr = ParseQuery(minuses + "1");
  ASSERT_FALSE(expr.ok());

  // Chains and parenthesis nesting share one depth budget: 200-long chains
  // nested 200 deep stay under each per-construct count but must still be
  // rejected (the AST would otherwise be ~40000 deep).
  std::string unit = "1";
  for (int i = 0; i < 200; ++i) unit += "+1";
  std::string composed;
  for (int i = 0; i < 200; ++i) composed += unit + "+(";
  composed += "1";
  composed.append(200, ')');
  expr = ParseQuery(composed);
  ASSERT_FALSE(expr.ok());
}

TEST(XQueryParserTest, IntegerLiteralOverflowIsAnError) {
  auto expr = ParseQuery("99999999999999999999999999");
  ASSERT_FALSE(expr.ok());
  EXPECT_NE(expr.status().message().find("integer literal out of range"),
            std::string::npos);
  // The maximum int64 still parses.
  EXPECT_TRUE(ParseQuery("9223372036854775807").ok());
  EXPECT_FALSE(ParseQuery("9223372036854775808").ok());
}

TEST(XQueryParserTest, ErrorOffsetsPointAtTheProblem) {
  auto expr = ParseQuery("/descendant::line[");
  ASSERT_FALSE(expr.ok());
  // The unterminated predicate is reported at the end of input, offset 18.
  EXPECT_NE(expr.status().message().find("offset 18"), std::string::npos)
      << expr.status().message();
}

}  // namespace
}  // namespace mhx::xquery
