// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include "xml/parser.h"

namespace mhx::xml {
namespace {

TEST(XmlParserTest, SimpleDocumentWithRanges) {
  auto doc = Parse("<a>hello <b>brave</b> world</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->text, "hello brave world");
  EXPECT_EQ(doc->element_count, 2u);
  EXPECT_EQ(doc->root.name, "a");
  EXPECT_EQ(doc->root.range, TextRange(0, 17));
  ASSERT_EQ(doc->root.children.size(), 1u);
  const Element& b = doc->root.children[0];
  EXPECT_EQ(b.name, "b");
  EXPECT_EQ(b.range, TextRange(6, 11));
  EXPECT_EQ(doc->text.substr(b.range.begin, b.range.length()), "brave");
}

TEST(XmlParserTest, AttributesAndSelfClosing) {
  auto doc = Parse("<r a=\"1\" b='two'><hr/><x c=\"&lt;3\"/></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  ASSERT_EQ(doc->root.attributes.size(), 2u);
  EXPECT_EQ(doc->root.attributes[0].first, "a");
  EXPECT_EQ(doc->root.attributes[0].second, "1");
  EXPECT_EQ(doc->root.attributes[1].second, "two");
  ASSERT_EQ(doc->root.children.size(), 2u);
  EXPECT_TRUE(doc->root.children[0].range.empty());
  ASSERT_NE(doc->root.children[1].FindAttribute("c"), nullptr);
  EXPECT_EQ(*doc->root.children[1].FindAttribute("c"), "<3");
  EXPECT_EQ(doc->root.children[1].FindAttribute("zz"), nullptr);
}

TEST(XmlParserTest, EntitiesAndCharacterReferences) {
  auto doc = Parse("<t>a&amp;b&lt;c&gt;d&apos;e&quot;f&#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->text, "a&b<c>d'e\"fAB");
}

TEST(XmlParserTest, CommentsCdataPrologAndPi) {
  auto doc = Parse(
      "<?xml version=\"1.0\"?>\n<!DOCTYPE t>\n<!-- head -->\n"
      "<t>one<!-- mid -->two<![CDATA[<raw&>]]><?pi data?>three</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->text, "onetwo<raw&>three");
}

TEST(XmlParserTest, NestedRangesShareBoundaries) {
  auto doc = Parse("<a><b><c>x</c></b>y</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const Element& b = doc->root.children[0];
  const Element& c = b.children[0];
  EXPECT_EQ(doc->root.range, TextRange(0, 2));
  EXPECT_EQ(b.range, TextRange(0, 1));
  EXPECT_EQ(c.range, TextRange(0, 1));
}

TEST(XmlParserTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("just text").ok());
  EXPECT_FALSE(Parse("<a>").ok());                  // unclosed
  EXPECT_FALSE(Parse("<a></b>").ok());              // mismatched
  EXPECT_FALSE(Parse("<a></a><b></b>").ok());       // two roots
  EXPECT_FALSE(Parse("<a>text</a>tail").ok());      // data after root
  EXPECT_FALSE(Parse("<a x=1></a>").ok());          // unquoted attribute
  EXPECT_FALSE(Parse("<a x=\"1\" x=\"2\"></a>").ok());  // duplicate attribute
  EXPECT_FALSE(Parse("<a>&unknown;</a>").ok());
  EXPECT_FALSE(Parse("<a>&#xZZ;</a>").ok());
  EXPECT_FALSE(Parse("<1tag></1tag>").ok());
}

TEST(XmlParserTest, RejectsPathologicalNestingInsteadOfOverflowing) {
  std::string deep;
  for (int i = 0; i < 100000; ++i) deep += "<a>";
  auto doc = Parse(deep);
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("nesting"), std::string::npos);
  // Moderate nesting still parses.
  std::string moderate;
  for (int i = 0; i < 100; ++i) moderate += "<a>";
  moderate += "x";
  for (int i = 0; i < 100; ++i) moderate += "</a>";
  EXPECT_TRUE(Parse(moderate).ok());
}

TEST(XmlParserTest, ErrorMentionsByteOffset) {
  auto doc = Parse("<a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.status().message().find("byte"), std::string::npos);
}

TEST(XmlParserTest, EscapeTextRoundTrips) {
  std::string raw = "a<b>&'\"c";
  auto doc = Parse("<t>" + EscapeText(raw) + "</t>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->text, raw);
}

}  // namespace
}  // namespace mhx::xml
