// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "base/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

namespace mhx::base {
namespace {

TEST(LatencyHistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0u);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.max(), 15u);
  // Rank k of 16 samples 0..15 is the value k-1, and below 16 each value
  // has its own bucket.
  EXPECT_EQ(h.ValueAtQuantile(1.0 / 16), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 7u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 15u);
}

TEST(LatencyHistogramTest, QuantileErrorIsBoundedByOneSixteenth) {
  LatencyHistogram h;
  // A deterministic spread over several orders of magnitude.
  std::vector<uint64_t> values;
  uint64_t v = 1;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(v);
    h.Record(v);
    v = v * 17 % 999983 + 1;
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.95, 0.99}) {
    const uint64_t exact =
        values[static_cast<size_t>(q * values.size()) - 1];
    const uint64_t est = h.ValueAtQuantile(q);
    // The bucket's upper bound never understates its samples and
    // overstates by at most the sub-bucket width.
    EXPECT_GE(est, exact) << q;
    EXPECT_LE(static_cast<double>(est), static_cast<double>(exact) * 1.0745)
        << q;
  }
}

TEST(LatencyHistogramTest, SingleValuePercentilesLandInItsBucket) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(1000);
  const uint64_t p50 = h.ValueAtQuantile(0.5);
  EXPECT_GE(p50, 1000u);
  EXPECT_LE(p50, 1063u);  // 1000 lives in sub-bucket [960, 1024)
  EXPECT_EQ(h.ValueAtQuantile(0.99), p50);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LatencyHistogramTest, SumAndTotalCountTrackRecords) {
  LatencyHistogram h;
  EXPECT_EQ(h.Sum(), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  h.Record(3);
  h.Record(1000);
  h.Record(70);
  EXPECT_EQ(h.Sum(), 1073u);
  EXPECT_EQ(h.TotalCount(), 3u);
  EXPECT_EQ(h.TotalCount(), h.count());
}

TEST(LatencyHistogramTest, MergeFoldsBucketsCountSumAndMax) {
  LatencyHistogram a;
  LatencyHistogram b;
  for (uint64_t v = 0; v < 16; ++v) a.Record(v);
  b.Record(5000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 17u);
  EXPECT_EQ(a.TotalCount(), 17u);
  EXPECT_EQ(a.Sum(), 120u + 5000u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_GE(a.ValueAtQuantile(1.0), 5000u);
  // b is untouched.
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.Sum(), 5000u);
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllLand) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t * 1000 + i % 997));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GE(h.ValueAtQuantile(1.0), h.ValueAtQuantile(0.5));
}

}  // namespace
}  // namespace mhx::base
