// Copyright (c) mhxq authors. Licensed under the MIT license.

#include <gtest/gtest.h>

#include <utility>

#include "document.h"
#include "workload/paper_data.h"

namespace mhx {
namespace {

TEST(DocumentBuilderTest, BuildsFromAlignedHierarchies) {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText("ab cd");
  builder.AddHierarchy("words", "<t><w>ab</w> <w>cd</w></t>");
  builder.AddHierarchy("halves", "<h><p>ab c</p><p>d</p></h>");
  auto doc = builder.Build();
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->base_text(), "ab cd");
  EXPECT_EQ(doc->goddag().hierarchy(0).name, "words");
  EXPECT_EQ(doc->goddag().hierarchy(1).name, "halves");
  EXPECT_EQ(doc->goddag().element_count(), 6u);  // t + 2 w, h + 2 p
}

TEST(DocumentBuilderTest, RequiresBaseText) {
  MultihierarchicalDocument::Builder builder;
  builder.AddHierarchy("words", "<t>x</t>");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kFailedPrecondition);
}

TEST(DocumentBuilderTest, RejectsMalformedXml) {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText("x");
  builder.AddHierarchy("bad", "<t>x");
  auto doc = builder.Build();
  ASSERT_FALSE(doc.ok());
  // The error names the offending hierarchy.
  EXPECT_NE(doc.status().message().find("bad"), std::string::npos);
}

TEST(DocumentBuilderTest, RejectsMisalignedHierarchy) {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText("ab cd");
  builder.AddHierarchy("words", "<t><w>ab</w> <w>ce</w></t>");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DocumentBuilderTest, RejectsDuplicateHierarchyNames) {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText("x");
  builder.AddHierarchy("h", "<t>x</t>");
  builder.AddHierarchy("h", "<u>x</u>");
  EXPECT_EQ(builder.Build().status().code(), StatusCode::kInvalidArgument);
}

TEST(DocumentTest, MoveKeepsGoddagAndEngineStable) {
  auto built = workload::BuildPaperDocument();
  ASSERT_TRUE(built.ok());
  const goddag::KyGoddag* goddag_before = &built->goddag();
  // Create the engine before the move: its back-reference must follow.
  xquery::Engine* engine_before = built->engine();
  MultihierarchicalDocument doc(std::move(built).value());
  EXPECT_EQ(&doc.goddag(), goddag_before);
  EXPECT_EQ(doc.mutable_goddag(), goddag_before);
  EXPECT_EQ(doc.engine(), engine_before);
  EXPECT_EQ(doc.engine()->document(), &doc);
}

TEST(DocumentTest, QueryEvaluatesThroughTheEngine) {
  auto doc = workload::BuildPaperDocument();
  ASSERT_TRUE(doc.ok());
  auto out = doc->Query(workload::kQueryI1);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, workload::kExpectedI1);
  auto* engine = doc->engine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine, doc->engine());  // stable across calls
  auto kept = engine->EvaluateKeepingTemporaries("(1, 2)");
  ASSERT_TRUE(kept.ok()) << kept.status();
  EXPECT_EQ(kept->items, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(kept->temporaries.hierarchy_count(), 0u);  // nothing to keep
  engine->CleanupTemporaries();  // no temporaries: must be a no-op
}

}  // namespace
}  // namespace mhx
