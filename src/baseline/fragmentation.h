// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The single-document fragmentation encoding the paper compares against
// (the authors' earlier DEXA'05 approach): all hierarchies are forced into
// ONE tree by splitting every element at the boundaries of elements it
// properly overlaps. The fragments of any one element tile its original
// range, and the resulting fragment family is laminar (any two fragments
// nest or are disjoint), so it serialises as a single well-formed document.
//
// The price is paid at query time: any whole-element question — overlap
// joins, containment filters, even comparing an element's string value —
// must first reassemble fragments back into logical elements. The E8
// benchmarks (bench_vs_fragmentation.cc) measure exactly that gap against
// KyGODDAG extended axes, with fragment count growing as overlap density
// rises.

#ifndef MHX_BASELINE_FRAGMENTATION_H_
#define MHX_BASELINE_FRAGMENTATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/text_range.h"
#include "goddag/kygoddag.h"

namespace mhx::baseline {

// The DEXA'05 single-document fragmentation baseline the paper (and E8)
// compares the KyGODDAG against; see the file comment for the encoding.
class FragmentationEncoding {
 public:
  // One logical element rebuilt from its fragments.
  struct ReassembledElement {
    std::string name;
    TextRange range;
    std::string text;
  };

  // Fragments every live element of `goddag` (hierarchy roots included; they
  // span the whole text and conflict with nothing).
  static FragmentationEncoding Encode(const goddag::KyGoddag& goddag);

  // Total number of fragments in the encoding; equals the number of logical
  // elements only when no hierarchies conflict.
  size_t fragment_count() const { return fragments_.size(); }
  size_t element_count() const { return elements_.size(); }

  // Scans the fragment table in document order and reassembles every logical
  // element with the given name — the mandatory first step of any
  // whole-element query under this encoding.
  std::vector<ReassembledElement> Reassemble(std::string_view name) const;

  // Number of (a, b) element pairs whose ranges properly overlap.
  size_t CountOverlapping(std::string_view a_name,
                          std::string_view b_name) const;

  // Number of a-elements whose range contains at least one b-element.
  size_t CountContaining(std::string_view a_name,
                         std::string_view b_name) const;

  // The a-elements whose reassembled text equals `text`.
  std::vector<ReassembledElement> FindByString(std::string_view name,
                                               std::string_view text) const;

 private:
  struct ElementInfo {
    std::string name;
    TextRange range;
  };
  struct Fragment {
    uint32_t element_uid;  // index into elements_
    TextRange range;
  };

  std::string base_text_;
  std::vector<ElementInfo> elements_;
  std::vector<Fragment> fragments_;  // document order
};

}  // namespace mhx::baseline

#endif  // MHX_BASELINE_FRAGMENTATION_H_
