// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "baseline/fragmentation.h"

#include <algorithm>
#include <unordered_map>

#include "goddag/index.h"

namespace mhx::baseline {

FragmentationEncoding FragmentationEncoding::Encode(
    const goddag::KyGoddag& goddag) {
  FragmentationEncoding enc;
  enc.base_text_ = goddag.base_text();

  // Collect the logical elements.
  std::vector<goddag::NodeId> node_of_element;
  enc.elements_.reserve(goddag.element_count());
  for (goddag::NodeId id = 0; id < goddag.node_table_size(); ++id) {
    const goddag::GNode& node = goddag.node(id);
    if (node.kind != goddag::GNodeKind::kElement) continue;
    enc.elements_.push_back(ElementInfo{node.name, node.range});
    node_of_element.push_back(id);
  }

  // Cut points per element: the endpoints of every element it properly
  // overlaps, found through the interval index rather than an O(n^2) sweep.
  goddag::RangeIndex index(&goddag);
  std::unordered_map<goddag::NodeId, uint32_t> uid_of_node;
  uid_of_node.reserve(node_of_element.size());
  for (uint32_t uid = 0; uid < node_of_element.size(); ++uid) {
    uid_of_node[node_of_element[uid]] = uid;
  }
  std::vector<std::vector<size_t>> cuts(enc.elements_.size());
  for (uint32_t uid = 0; uid < enc.elements_.size(); ++uid) {
    const TextRange& range = enc.elements_[uid].range;
    for (goddag::NodeId other : index.NodesOverlapping(range)) {
      const TextRange& o = goddag.node(other).range;
      if (range.Contains(o.begin) && o.begin != range.begin) {
        cuts[uid].push_back(o.begin);
      }
      if (range.Contains(o.end) && o.end != range.begin) {
        cuts[uid].push_back(o.end);
      }
    }
  }

  // Emit fragments, element by element, then sort into document order.
  for (uint32_t uid = 0; uid < enc.elements_.size(); ++uid) {
    const TextRange& range = enc.elements_[uid].range;
    std::vector<size_t>& cut = cuts[uid];
    std::sort(cut.begin(), cut.end());
    cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
    size_t begin = range.begin;
    for (size_t pos : cut) {
      enc.fragments_.push_back(Fragment{uid, TextRange(begin, pos)});
      begin = pos;
    }
    enc.fragments_.push_back(Fragment{uid, TextRange(begin, range.end)});
  }
  std::sort(enc.fragments_.begin(), enc.fragments_.end(),
            [](const Fragment& a, const Fragment& b) {
              if (a.range != b.range) return a.range < b.range;
              return a.element_uid < b.element_uid;
            });
  return enc;
}

std::vector<FragmentationEncoding::ReassembledElement>
FragmentationEncoding::Reassemble(std::string_view name) const {
  // Scan the whole fragment table in document order, stitching fragments of
  // matching elements back together. The scan is deliberately global — under
  // a fused encoding there is no per-element index to shortcut it.
  std::vector<ReassembledElement> out;
  std::unordered_map<uint32_t, size_t> slot_of_uid;
  for (const Fragment& fragment : fragments_) {
    const ElementInfo& element = elements_[fragment.element_uid];
    if (element.name != name) continue;
    auto [it, inserted] = slot_of_uid.try_emplace(fragment.element_uid,
                                                  out.size());
    if (inserted) {
      out.push_back(ReassembledElement{element.name, fragment.range, {}});
    }
    ReassembledElement& r = out[it->second];
    r.range.begin = std::min(r.range.begin, fragment.range.begin);
    r.range.end = std::max(r.range.end, fragment.range.end);
    r.text.append(base_text_, fragment.range.begin, fragment.range.length());
  }
  return out;
}

size_t FragmentationEncoding::CountOverlapping(std::string_view a_name,
                                               std::string_view b_name) const {
  std::vector<ReassembledElement> as = Reassemble(a_name);
  std::vector<ReassembledElement> bs = Reassemble(b_name);
  size_t pairs = 0;
  for (const ReassembledElement& a : as) {
    for (const ReassembledElement& b : bs) {
      if (OverlappingRange(a.range, b.range)) ++pairs;
    }
  }
  return pairs;
}

size_t FragmentationEncoding::CountContaining(std::string_view a_name,
                                              std::string_view b_name) const {
  std::vector<ReassembledElement> as = Reassemble(a_name);
  std::vector<ReassembledElement> bs = Reassemble(b_name);
  size_t count = 0;
  for (const ReassembledElement& a : as) {
    for (const ReassembledElement& b : bs) {
      if (a.range.Contains(b.range)) {
        ++count;
        break;
      }
    }
  }
  return count;
}

std::vector<FragmentationEncoding::ReassembledElement>
FragmentationEncoding::FindByString(std::string_view name,
                                    std::string_view text) const {
  std::vector<ReassembledElement> all = Reassemble(name);
  std::vector<ReassembledElement> hits;
  for (ReassembledElement& element : all) {
    if (element.text == text) hits.push_back(std::move(element));
  }
  return hits;
}

}  // namespace mhx::baseline
