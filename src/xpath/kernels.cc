// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xpath/kernels.h"

#include <atomic>
#include <climits>
#include <cstddef>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace mhx::xpath {

namespace {

using goddag::NodeId;
using goddag::RangeSoA;
using goddag::kNoNameKey;

std::atomic<uint64_t> g_simd_dispatch{0};

// --- portable scalar core --------------------------------------------------
//
// Branch-light on purpose: the inner loops write one byte of match flag per
// element with no data-dependent control flow, which gcc and clang
// autovectorize; the conversion pass then walks the flags. Early exits and
// push_back inside the compare loop would both defeat that.

constexpr size_t kBlock = 4096;

template <typename Pred>
void ScalarScan(const RangeSoA& soa, Pred pred, uint32_t name_key,
                NodeId exclude, std::vector<NodeId>* out) {
  const uint32_t* b = soa.begin.data();
  const uint32_t* e = soa.end.data();
  const uint32_t* k = soa.name_key.data();
  const NodeId* ids = soa.id.data();
  const size_t n = soa.id.size();
  unsigned char match[kBlock];
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t m = (n - base < kBlock) ? n - base : kBlock;
    if (name_key == kNoNameKey) {
      for (size_t i = 0; i < m; ++i) {
        match[i] = pred(b[base + i], e[base + i]);
      }
    } else {
      for (size_t i = 0; i < m; ++i) {
        match[i] = pred(b[base + i], e[base + i]) &
                   static_cast<unsigned char>(k[base + i] == name_key);
      }
    }
    for (size_t i = 0; i < m; ++i) {
      if (match[i] && ids[base + i] != exclude) {
        out->push_back(ids[base + i]);
      }
    }
  }
}

// Runs the scalar core with the per-axis Definition-1 predicate
// (ExtendedAxisMatches, specialised to flat uint32 operands).
void ScalarScanAxis(const RangeSoA& soa, Axis axis, uint32_t cb, uint32_t ce,
                    uint32_t name_key, NodeId exclude,
                    std::vector<NodeId>* out) {
  switch (axis) {
    case Axis::kXAncestor:
      ScalarScan(
          soa,
          [cb, ce](uint32_t b, uint32_t e) {
            return static_cast<unsigned char>((b <= cb) & (ce <= e));
          },
          name_key, exclude, out);
      return;
    case Axis::kXDescendant:
      ScalarScan(
          soa,
          [cb, ce](uint32_t b, uint32_t e) {
            return static_cast<unsigned char>((cb <= b) & (e <= ce));
          },
          name_key, exclude, out);
      return;
    case Axis::kOverlapping:
      // Intersects (both non-empty, ranges cross) and neither contains the
      // other; the context's own non-emptiness is checked by the caller.
      ScalarScan(
          soa,
          [cb, ce](uint32_t b, uint32_t e) {
            const unsigned char intersects =
                (b < e) & (cb < e) & (b < ce);
            const unsigned char ctx_contains = (cb <= b) & (e <= ce);
            const unsigned char cand_contains = (b <= cb) & (ce <= e);
            return static_cast<unsigned char>(
                intersects & static_cast<unsigned char>(1 - ctx_contains) &
                static_cast<unsigned char>(1 - cand_contains));
          },
          name_key, exclude, out);
      return;
    case Axis::kXFollowing:
      ScalarScan(
          soa,
          [ce](uint32_t b, uint32_t e) {
            (void)e;
            return static_cast<unsigned char>(b >= ce);
          },
          name_key, exclude, out);
      return;
    case Axis::kXPreceding:
      ScalarScan(
          soa,
          [cb](uint32_t b, uint32_t e) {
            (void)b;
            return static_cast<unsigned char>(e <= cb);
          },
          name_key, exclude, out);
      return;
    default:
      return;
  }
}

#if defined(__x86_64__)

// --- explicit SIMD paths ---------------------------------------------------
//
// Offsets compare as signed int32 lanes (no unsigned compare below AVX-512);
// RangeSoA guarantees every value < INT32_MAX, so the sign bit is never set
// and signed order == unsigned order. Each block produces a per-lane match
// mask (one bit per element via movemask) that the tail of the loop converts
// to NodeIds — the "bitset to node list in one pass" step.

// One bit per 32-bit lane of a 128-bit compare result.
inline uint32_t LaneMask128(__m128i v) {
  return static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(v)));
}

// The 4-lane match mask of one SSE2 block for `axis` (lane bits set =
// match). `cb`/`ce` are the context bounds splatted across lanes.
inline uint32_t Sse2AxisMask(Axis axis, __m128i cb, __m128i ce, __m128i vb,
                             __m128i ve) {
  switch (axis) {
    case Axis::kXAncestor:
      // b <= cb && ce <= e  ==  !(b > cb) && !(ce > e)
      return (LaneMask128(_mm_cmpgt_epi32(vb, cb)) |
              LaneMask128(_mm_cmpgt_epi32(ce, ve))) ^
             0xfu;
    case Axis::kXDescendant:
      return (LaneMask128(_mm_cmpgt_epi32(cb, vb)) |
              LaneMask128(_mm_cmpgt_epi32(ve, ce))) ^
             0xfu;
    case Axis::kOverlapping: {
      // intersects && !ctx_contains && !cand_contains, combined entirely in
      // the vector domain so one movemask covers all seven compares:
      // !contains == (strictly-starts-before || strictly-ends-after).
      const __m128i intersects = _mm_and_si128(
          _mm_cmpgt_epi32(ve, vb), _mm_and_si128(_mm_cmpgt_epi32(ve, cb),
                                                 _mm_cmpgt_epi32(ce, vb)));
      const __m128i not_ctx_contains = _mm_or_si128(
          _mm_cmpgt_epi32(cb, vb), _mm_cmpgt_epi32(ve, ce));
      const __m128i not_cand_contains = _mm_or_si128(
          _mm_cmpgt_epi32(vb, cb), _mm_cmpgt_epi32(ce, ve));
      return LaneMask128(_mm_and_si128(
          intersects, _mm_and_si128(not_ctx_contains, not_cand_contains)));
    }
    case Axis::kXFollowing:
      // b >= ce  ==  !(ce > b)
      return LaneMask128(_mm_cmpgt_epi32(ce, vb)) ^ 0xfu;
    case Axis::kXPreceding:
      // e <= cb  ==  !(e > cb)
      return LaneMask128(_mm_cmpgt_epi32(ve, cb)) ^ 0xfu;
    default:
      return 0;
  }
}

// SSE2 is the x86_64 baseline: no target attribute needed. Emission goes
// through a raw cursor into pre-grown storage (no per-hit capacity check),
// and the context node is dropped by folding an id-equality compare into
// the lane mask instead of branching per hit.
size_t Sse2Scan(const RangeSoA& soa, Axis axis, uint32_t ctx_begin,
                uint32_t ctx_end, uint32_t name_key, NodeId exclude,
                std::vector<NodeId>* out) {
  const uint32_t* b = soa.begin.data();
  const uint32_t* e = soa.end.data();
  const uint32_t* k = soa.name_key.data();
  const NodeId* ids = soa.id.data();
  const size_t n = soa.id.size();
  const __m128i cb = _mm_set1_epi32(static_cast<int>(ctx_begin));
  const __m128i ce = _mm_set1_epi32(static_cast<int>(ctx_end));
  const __m128i key = _mm_set1_epi32(static_cast<int>(name_key));
  const __m128i excl = _mm_set1_epi32(static_cast<int>(exclude));
  constexpr size_t kBufCap = 256;
  NodeId buf[kBufCap + 4];  // +4: one block may land past the flush line
  NodeId* dst = buf;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    const __m128i ve =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(e + i));
    uint32_t mask = Sse2AxisMask(axis, cb, ce, vb, ve);
    if (name_key != kNoNameKey) {
      const __m128i vk =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(k + i));
      mask &= LaneMask128(_mm_cmpeq_epi32(vk, key));
    }
    // Interval queries leave long all-zero (and all-one) mask runs, so this
    // branch predicts well and skips the emission work on sparse axes.
    if (mask == 0) continue;
    const __m128i vid =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ids + i));
    mask &= ~LaneMask128(_mm_cmpeq_epi32(vid, excl)) & 0xfu;
    while (mask != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      *dst++ = ids[i + lane];
    }
    if (static_cast<size_t>(dst - buf) >= kBufCap) {
      out->insert(out->end(), buf, dst);
      dst = buf;
    }
  }
  out->insert(out->end(), buf, dst);
  return i;  // elements consumed; the caller scalar-scans the remainder
}

// 8-lane left-pack shuffles for _mm256_permutevar8x32_epi32: entry m lists
// the set-bit lanes of mask m in ascending order, so one permute + store
// emits a block's matching ids with no per-lane branches — dense masks
// (the ordering axes match ~half the document) cost the same as sparse.
struct CompressLut {
  alignas(32) uint32_t idx[256][8];
  constexpr CompressLut() : idx() {
    for (int m = 0; m < 256; ++m) {
      int packed = 0;
      for (int lane = 0; lane < 8; ++lane) {
        if ((m >> lane) & 1) idx[m][packed++] = static_cast<uint32_t>(lane);
      }
      for (; packed < 8; ++packed) idx[m][packed] = 0;
    }
  }
};
constexpr CompressLut kCompressLut{};

// One bit per 32-bit lane of a 256-bit compare result.
__attribute__((target("avx2"))) inline uint32_t LaneMask256(__m256i v) {
  return static_cast<uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(v)));
}

// The 8-lane match mask of one AVX2 block for `axis`.
__attribute__((target("avx2"))) inline uint32_t Avx2AxisMask(
    Axis axis, __m256i cb, __m256i ce, __m256i vb, __m256i ve) {
  switch (axis) {
    case Axis::kXAncestor:
      return (LaneMask256(_mm256_cmpgt_epi32(vb, cb)) |
              LaneMask256(_mm256_cmpgt_epi32(ce, ve))) ^
             0xffu;
    case Axis::kXDescendant:
      return (LaneMask256(_mm256_cmpgt_epi32(cb, vb)) |
              LaneMask256(_mm256_cmpgt_epi32(ve, ce))) ^
             0xffu;
    case Axis::kOverlapping: {
      // Same vector-domain combine as the SSE2 mask: seven compares, six
      // and/or folds, a single movemask at the end.
      const __m256i intersects = _mm256_and_si256(
          _mm256_cmpgt_epi32(ve, vb),
          _mm256_and_si256(_mm256_cmpgt_epi32(ve, cb),
                           _mm256_cmpgt_epi32(ce, vb)));
      const __m256i not_ctx_contains = _mm256_or_si256(
          _mm256_cmpgt_epi32(cb, vb), _mm256_cmpgt_epi32(ve, ce));
      const __m256i not_cand_contains = _mm256_or_si256(
          _mm256_cmpgt_epi32(vb, cb), _mm256_cmpgt_epi32(ce, ve));
      return LaneMask256(_mm256_and_si256(
          intersects,
          _mm256_and_si256(not_ctx_contains, not_cand_contains)));
    }
    case Axis::kXFollowing:
      return LaneMask256(_mm256_cmpgt_epi32(ce, vb)) ^ 0xffu;
    case Axis::kXPreceding:
      return LaneMask256(_mm256_cmpgt_epi32(ve, cb)) ^ 0xffu;
    default:
      return 0;
  }
}

// Non-empty blocks emit branchlessly: one permutevar8x32 through
// kCompressLut left-packs the matching ids, a full 8-lane store writes
// them into the stack chunk, and the cursor advances by popcount — dense
// masks (the ordering axes match ~half the document) cost the same as a
// single hit. All-zero blocks skip emission entirely; interval masks run
// in long same-value stretches, so that branch predicts well.
__attribute__((target("avx2"))) size_t Avx2Scan(
    const RangeSoA& soa, Axis axis, uint32_t ctx_begin, uint32_t ctx_end,
    uint32_t name_key, NodeId exclude, std::vector<NodeId>* out) {
  const uint32_t* b = soa.begin.data();
  const uint32_t* e = soa.end.data();
  const uint32_t* k = soa.name_key.data();
  const NodeId* ids = soa.id.data();
  const size_t n = soa.id.size();
  const __m256i cb = _mm256_set1_epi32(static_cast<int>(ctx_begin));
  const __m256i ce = _mm256_set1_epi32(static_cast<int>(ctx_end));
  const __m256i key = _mm256_set1_epi32(static_cast<int>(name_key));
  const __m256i excl = _mm256_set1_epi32(static_cast<int>(exclude));
  constexpr size_t kBufCap = 256;
  // +8: the full-width store may write past the flush line; the cursor
  // only advances by popcount, so at most 8 lanes of slack are needed.
  alignas(32) NodeId buf[kBufCap + 8];
  NodeId* dst = buf;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i ve =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + i));
    uint32_t mask = Avx2AxisMask(axis, cb, ce, vb, ve);
    if (name_key != kNoNameKey) {
      const __m256i vk =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k + i));
      mask &= LaneMask256(_mm256_cmpeq_epi32(vk, key));
    }
    if (mask == 0) continue;
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    mask &= ~LaneMask256(_mm256_cmpeq_epi32(vid, excl)) & 0xffu;
    const __m256i shuffle = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kCompressLut.idx[mask]));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst),
                        _mm256_permutevar8x32_epi32(vid, shuffle));
    dst += __builtin_popcount(mask);
    if (static_cast<size_t>(dst - buf) >= kBufCap) {
      out->insert(out->end(), buf, dst);
      dst = buf;
    }
  }
  out->insert(out->end(), buf, dst);
  return i;
}

#endif  // defined(__x86_64__)

// The scalar tail after a SIMD loop consumed `done` elements: a trimmed SoA
// view starting there would be cleaner, but the scalar core is block-based
// anyway, so re-running it over a sub-span is simplest.
void ScalarTail(const RangeSoA& soa, Axis axis, uint32_t cb, uint32_t ce,
                uint32_t name_key, NodeId exclude, size_t done,
                std::vector<NodeId>* out) {
  const size_t n = soa.id.size();
  for (size_t i = done; i < n; ++i) {
    bool m = false;
    const uint32_t b = soa.begin[i];
    const uint32_t e = soa.end[i];
    switch (axis) {
      case Axis::kXAncestor:
        m = b <= cb && ce <= e;
        break;
      case Axis::kXDescendant:
        m = cb <= b && e <= ce;
        break;
      case Axis::kOverlapping:
        m = b < e && cb < e && b < ce && !(cb <= b && e <= ce) &&
            !(b <= cb && ce <= e);
        break;
      case Axis::kXFollowing:
        m = b >= ce;
        break;
      case Axis::kXPreceding:
        m = e <= cb;
        break;
      default:
        break;
    }
    if (m && (name_key == kNoNameKey || soa.name_key[i] == name_key) &&
        soa.id[i] != exclude) {
      out->push_back(soa.id[i]);
    }
  }
}

}  // namespace

std::string_view KernelIsaName(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kAuto:
      return "auto";
    case KernelIsa::kScalar:
      return "scalar";
    case KernelIsa::kSse2:
      return "sse2";
    case KernelIsa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

KernelIsa DispatchedKernelIsa() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  static const KernelIsa isa =
      __builtin_cpu_supports("avx2") ? KernelIsa::kAvx2 : KernelIsa::kSse2;
  return isa;
#else
  return KernelIsa::kScalar;
#endif
}

bool ScanExtendedAxis(const RangeSoA& soa, Axis axis,
                      const TextRange& context, NodeId exclude,
                      uint32_t name_key, KernelIsa isa,
                      std::vector<NodeId>* out) {
  if (!soa.valid) return false;
  if (context.begin >= static_cast<size_t>(INT32_MAX) ||
      context.end >= static_cast<size_t>(INT32_MAX)) {
    // A context range beyond the packed domain cannot be splatted into
    // signed lanes; scan the node table instead.
    return false;
  }
  if (axis == Axis::kOverlapping && context.empty()) {
    // An empty range intersects nothing, so `overlapping` is empty; the
    // kernels' lane predicates assume a non-empty context.
    return true;
  }
  const uint32_t cb = static_cast<uint32_t>(context.begin);
  const uint32_t ce = static_cast<uint32_t>(context.end);
  KernelIsa resolved = isa == KernelIsa::kAuto ? DispatchedKernelIsa() : isa;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (resolved == KernelIsa::kAvx2 && !__builtin_cpu_supports("avx2")) {
    resolved = KernelIsa::kSse2;  // explicit request clamps, never faults
  }
#else
  resolved = KernelIsa::kScalar;
#endif
#if defined(__x86_64__)
  if (resolved == KernelIsa::kAvx2) {
    g_simd_dispatch.fetch_add(1, std::memory_order_relaxed);
    const size_t done = Avx2Scan(soa, axis, cb, ce, name_key, exclude, out);
    ScalarTail(soa, axis, cb, ce, name_key, exclude, done, out);
    return true;
  }
  if (resolved == KernelIsa::kSse2) {
    g_simd_dispatch.fetch_add(1, std::memory_order_relaxed);
    const size_t done = Sse2Scan(soa, axis, cb, ce, name_key, exclude, out);
    ScalarTail(soa, axis, cb, ce, name_key, exclude, done, out);
    return true;
  }
#endif
  ScalarScanAxis(soa, axis, cb, ce, name_key, exclude, out);
  return true;
}

uint64_t simd_dispatch_count() {
  return g_simd_dispatch.load(std::memory_order_relaxed);
}

}  // namespace mhx::xpath
