// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Vectorized extended-axis scan kernels over goddag::RangeSoA — the fast
// half of the "full scan" physical plan. The Definition-1 extended axes are
// pure interval arithmetic over (begin, end) pairs, so a scan over the
// snapshot's flat begin[]/end[] arrays replaces the per-GNode node-table
// walk (strings and child vectors dragged through cache) with branch-light
// packed compares:
//
//   * a portable scalar core written so gcc/clang autovectorize it (one
//     byte of match flag per element, no early exits), and
//   * explicit SSE2 / AVX2 paths (8/16 int32 lanes per iteration via the
//     two arrays) selected once per process by runtime CPU dispatch.
//
// Every path evaluates exactly ExtendedAxisMatches (xpath/axes.h) —
// byte-identity to the naive scan is pinned by tests — and emits matches
// into a bitset that one conversion pass turns into a NodeId list. Offsets
// are compared as *signed* 32-bit lanes (SSE2/AVX2 have no unsigned
// compare); RangeSoA is only built when the base text fits INT32_MAX, so
// the reinterpretation is exact. An optional interned name key (pushdown,
// goddag::kNoNameKey = off) folds the element-name test into the same scan.
//
// Thread-safety: kernels are pure functions over immutable snapshot state;
// the only shared mutation is the relaxed dispatch counter.

#ifndef MHX_XPATH_KERNELS_H_
#define MHX_XPATH_KERNELS_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "goddag/stats.h"
#include "xpath/axes.h"

namespace mhx::xpath {

// The instruction sets a kernel invocation can run on. kAuto resolves to
// the widest path the CPU supports, probed once per process.
enum class KernelIsa {
  kAuto,
  kScalar,
  kSse2,
  kAvx2,
};

std::string_view KernelIsaName(KernelIsa isa);

// The ISA kAuto resolves to on this machine (never kAuto itself).
KernelIsa DispatchedKernelIsa();

// Scans `soa` for elements matching `axis` against `context`
// (ExtendedAxisMatches semantics), appending matching NodeIds to `out` in
// soa order (== NodeId order). `exclude` (the context node, or
// goddag::kInvalidNode) is dropped; `name_key` != goddag::kNoNameKey
// additionally requires the element's interned name to equal it. Returns
// false — appending nothing — when `soa` is invalid (text too large for
// the packed layout); the caller then falls back to the GNode scan.
// `isa` selects the code path (kAuto = runtime dispatch); wider requests
// than the CPU supports clamp down, never fault.
bool ScanExtendedAxis(const goddag::RangeSoA& soa, Axis axis,
                      const TextRange& context, goddag::NodeId exclude,
                      uint32_t name_key, KernelIsa isa,
                      std::vector<goddag::NodeId>* out);

// Kernel invocations that ran an explicit SIMD path (SSE2 or AVX2), for
// the mhx_kernel_simd_dispatch_total metric. Relaxed monotonic,
// process-wide.
uint64_t simd_dispatch_count();

}  // namespace mhx::xpath

#endif  // MHX_XPATH_KERNELS_H_
