// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xpath/axes.h"

#include <algorithm>

#include "xpath/kernels.h"

namespace mhx::xpath {

using goddag::GNode;
using goddag::GNodeKind;
using goddag::KyGoddag;
using goddag::NodeId;
using goddag::kInvalidNode;

bool IsExtendedAxis(Axis axis) {
  switch (axis) {
    case Axis::kXAncestor:
    case Axis::kXDescendant:
    case Axis::kOverlapping:
    case Axis::kXFollowing:
    case Axis::kXPreceding:
      return true;
    default:
      return false;
  }
}

std::string_view AxisName(Axis axis) {
  switch (axis) {
    case Axis::kSelf:
      return "self";
    case Axis::kChild:
      return "child";
    case Axis::kParent:
      return "parent";
    case Axis::kDescendant:
      return "descendant";
    case Axis::kDescendantOrSelf:
      return "descendant-or-self";
    case Axis::kAncestor:
      return "ancestor";
    case Axis::kAncestorOrSelf:
      return "ancestor-or-self";
    case Axis::kFollowingSibling:
      return "following-sibling";
    case Axis::kPrecedingSibling:
      return "preceding-sibling";
    case Axis::kFollowing:
      return "following";
    case Axis::kPreceding:
      return "preceding";
    case Axis::kXAncestor:
      return "xancestor";
    case Axis::kXDescendant:
      return "xdescendant";
    case Axis::kOverlapping:
      return "overlapping";
    case Axis::kXFollowing:
      return "xfollowing";
    case Axis::kXPreceding:
      return "xpreceding";
  }
  return "unknown";
}

std::string_view OrderingName(Ordering ordering) {
  switch (ordering) {
    case Ordering::kDocOrderNoDupes:
      return "doc-order-no-dupes";
    case Ordering::kSortedMayDupe:
      return "sorted-may-dupe";
    case Ordering::kUnordered:
      return "unordered";
  }
  return "unknown";
}

bool ExtendedAxisMatches(Axis axis, const TextRange& context,
                         const TextRange& candidate) {
  switch (axis) {
    case Axis::kXAncestor:
      return candidate.Contains(context);
    case Axis::kXDescendant:
      return context.Contains(candidate);
    case Axis::kOverlapping:
      return OverlappingRange(context, candidate);
    case Axis::kXFollowing:
      return candidate.begin >= context.end;
    case Axis::kXPreceding:
      return candidate.end <= context.begin;
    default:
      return false;
  }
}

StatusOr<Axis> AxisFromName(std::string_view name) {
  static const std::map<std::string_view, Axis> kByName = {
      {"self", Axis::kSelf},
      {"child", Axis::kChild},
      {"parent", Axis::kParent},
      {"descendant", Axis::kDescendant},
      {"descendant-or-self", Axis::kDescendantOrSelf},
      {"ancestor", Axis::kAncestor},
      {"ancestor-or-self", Axis::kAncestorOrSelf},
      {"following-sibling", Axis::kFollowingSibling},
      {"preceding-sibling", Axis::kPrecedingSibling},
      {"following", Axis::kFollowing},
      {"preceding", Axis::kPreceding},
      {"xancestor", Axis::kXAncestor},
      {"xdescendant", Axis::kXDescendant},
      {"overlapping", Axis::kOverlapping},
      {"xfollowing", Axis::kXFollowing},
      {"xpreceding", Axis::kXPreceding},
  };
  auto it = kByName.find(name);
  if (it == kByName.end()) {
    return InvalidArgumentError("unknown axis '" + std::string(name) + "'");
  }
  return it->second;
}

NodeTest NodeTest::Any() { return NodeTest(Kind::kAny, {}); }

NodeTest NodeTest::Name(std::string name) {
  return NodeTest(Kind::kName, std::move(name));
}

bool NodeTest::Matches(const GNode& node) const {
  switch (kind_) {
    case Kind::kAny:
      return node.kind != GNodeKind::kFree;
    case Kind::kName:
      return node.kind == GNodeKind::kElement && node.name == name_;
  }
  return false;
}

AxisEvaluator::AxisEvaluator(const KyGoddag* goddag, AxisOptions options)
    : goddag_(goddag), options_(options) {}

AxisEvaluator::AxisEvaluator(const goddag::DocumentSnapshot* snapshot,
                             AxisOptions options)
    : goddag_(&snapshot->goddag()), snapshot_(snapshot), options_(options) {}

const goddag::RangeIndex& AxisEvaluator::index() const {
  // Snapshot-bound and unedited since publish: serve the snapshot's
  // build-once index. A writer-prebuilt index costs this evaluator nothing;
  // a lazily indexed snapshot is built exactly once, and the builder counts
  // it (EnsureIndex reports whether this call built).
  if (snapshot_ != nullptr &&
      goddag_->revision() == snapshot_->goddag_revision()) {
    if (snapshot_->EnsureIndex()) ++index_rebuild_count_;
    return snapshot_->index();
  }
  // Bare-goddag evaluators, and the legacy escape hatch: mutable_goddag()
  // edited the head in place past the snapshot stamp, so rebuild privately
  // against the live revision.
  if (index_ == nullptr || index_->revision() != goddag_->revision()) {
    index_ = std::make_unique<goddag::RangeIndex>(goddag_);
    ++index_rebuild_count_;
  }
  return *index_;
}

Ordering AxisEvaluator::ResultOrdering(Axis axis) {
  // Every axis: each traversal visits a node at most once, and
  // NormalizeDocumentOrder establishes document order before returning.
  (void)axis;
  return Ordering::kDocOrderNoDupes;
}

void AxisEvaluator::NormalizeDocumentOrder(const goddag::OverlayView* view,
                                           std::vector<NodeId>* ids) const {
  if (ids->size() < 2) return;
  auto cmp = [this, view](NodeId a, NodeId b) {
    const TextRange& ra = NodeAt(view, a).range;
    const TextRange& rb = NodeAt(view, b).range;
    if (ra != rb) return ra < rb;
    return a < b;
  };
  if (std::is_sorted(ids->begin(), ids->end(), cmp)) {
    sorts_skipped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::sort(ids->begin(), ids->end(), cmp);
}

void AxisEvaluator::EvaluateExtendedNaive(const GNode& context_node,
                                          NodeId context, Axis axis,
                                          std::vector<NodeId>* out) const {
  EvaluateExtendedNaiveRange(context_node.range, context, axis, out);
}

void AxisEvaluator::EvaluateExtendedNaiveRange(const TextRange& context,
                                               NodeId exclude, Axis axis,
                                               std::vector<NodeId>* out) const {
  const size_t table = goddag_->node_table_size();
  for (NodeId id = 0; id < table; ++id) {
    if (id == exclude) continue;
    const GNode& node = goddag_->node(id);
    if (node.kind != GNodeKind::kElement) continue;
    if (ExtendedAxisMatches(axis, context, node.range)) out->push_back(id);
  }
}

void AxisEvaluator::EvaluateExtendedIndexed(const GNode& context_node,
                                            NodeId context, Axis axis,
                                            const goddag::ProbeFilter& filter,
                                            std::vector<NodeId>* out) const {
  const TextRange& c = context_node.range;
  const goddag::RangeIndex& idx = index();
  std::vector<NodeId> hits;
  switch (axis) {
    case Axis::kXAncestor:
      hits = idx.NodesContaining(c, filter);
      break;
    case Axis::kXDescendant:
      hits = idx.NodesContainedIn(c, filter);
      break;
    case Axis::kOverlapping:
      hits = idx.NodesOverlapping(c, filter);
      break;
    case Axis::kXFollowing:
      hits = idx.NodesBeginningAtOrAfter(c.end, filter);
      break;
    case Axis::kXPreceding:
      hits = idx.NodesEndingAtOrBefore(c.begin, filter);
      break;
    default:
      return;
  }
  out->reserve(hits.size());
  for (NodeId id : hits) {
    if (id != context) out->push_back(id);
  }
}

const goddag::SnapshotStats* AxisEvaluator::StatsOrNull() const {
  // Same validity rule as index(): the snapshot's build-once stats describe
  // the published revision; a legacy in-place edit makes them stale, so the
  // planned paths fall back to unassisted evaluation.
  if (snapshot_ != nullptr &&
      goddag_->revision() == snapshot_->goddag_revision()) {
    return &snapshot_->stats();
  }
  return nullptr;
}

void AxisEvaluator::AppendOverlayMatches(const goddag::OverlayView& view,
                                         Axis axis,
                                         const TextRange& context_range,
                                         NodeId exclude, const NodeTest* test,
                                         std::vector<NodeId>* out) const {
  // A forked worker view holds only the overlays its own evaluation
  // created; everything else visible to it (kept hierarchies, the
  // coordinator's overlays) lives up the parent chain.
  for (const goddag::OverlayView* v = &view; v != nullptr; v = v->parent()) {
    for (const auto& overlay : v->overlays()) {
      // The auto-created whole-text root is plumbing, not a result: start
      // at elements_begin() so it never shows up as an xancestor of
      // everything.
      for (NodeId id = overlay->elements_begin(); id < overlay->id_end();
           ++id) {
        if (id == exclude) continue;
        const GNode& node = overlay->node(id);
        if (test != nullptr && !test->Matches(node)) continue;
        if (ExtendedAxisMatches(axis, context_range, node.range)) {
          out->push_back(id);
        }
      }
    }
  }
}

void AxisEvaluator::EvaluateStandard(const goddag::OverlayView* view,
                                     NodeId context, Axis axis,
                                     std::vector<NodeId>* out) const {
  const GNode& node = NodeAt(view, context);
  switch (axis) {
    case Axis::kSelf:
      out->push_back(context);
      return;
    case Axis::kChild:
      *out = node.children;
      return;
    case Axis::kParent:
      if (node.parent != kInvalidNode) out->push_back(node.parent);
      return;
    case Axis::kDescendantOrSelf:
      out->push_back(context);
      [[fallthrough]];
    case Axis::kDescendant: {
      // Iterative pre-order DFS over arcs.
      std::vector<NodeId> stack(node.children.rbegin(), node.children.rend());
      while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        out->push_back(id);
        const GNode& n = NodeAt(view, id);
        stack.insert(stack.end(), n.children.rbegin(), n.children.rend());
      }
      return;
    }
    case Axis::kAncestorOrSelf:
      out->push_back(context);
      [[fallthrough]];
    case Axis::kAncestor: {
      // An overlay root's parent is the base GODDAG root, so the chain may
      // cross from overlay into base ids; NodeAt resolves both.
      for (NodeId p = node.parent; p != kInvalidNode;
           p = NodeAt(view, p).parent) {
        out->push_back(p);
      }
      // The walk-up visits innermost-first — exactly reverse document order.
      // Reverse here so normalisation sees a sorted chain and skips the sort.
      std::reverse(out->begin(), out->end());
      return;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      if (node.parent == kInvalidNode) return;
      const std::vector<NodeId>& siblings =
          NodeAt(view, node.parent).children;
      auto self = std::find(siblings.begin(), siblings.end(), context);
      if (self == siblings.end()) return;
      if (axis == Axis::kFollowingSibling) {
        out->insert(out->end(), self + 1, siblings.end());
      } else {
        out->insert(out->end(), siblings.begin(), self);
      }
      return;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      // Within the context's own hierarchy. Because same-hierarchy ranges
      // nest or are disjoint, document-order following reduces to "begins at
      // or after my end" and preceding to "ends at or before my start". An
      // overlay node's hierarchy is its overlay.
      if (node.kind != GNodeKind::kElement) return;
      if (goddag::IsOverlayId(context)) {
        const goddag::GoddagOverlay* overlay = view->overlay_of(context);
        for (NodeId id = overlay->elements_begin(); id < overlay->id_end();
             ++id) {
          const GNode& n = overlay->node(id);
          bool hit = axis == Axis::kFollowing
                         ? n.range.begin >= node.range.end
                         : n.range.end <= node.range.begin;
          if (hit && id != context) out->push_back(id);
        }
        return;
      }
      const goddag::Hierarchy& h = goddag_->hierarchy(node.hierarchy);
      for (NodeId id : h.nodes) {
        const GNode& n = goddag_->node(id);
        bool hit = axis == Axis::kFollowing ? n.range.begin >= node.range.end
                                           : n.range.end <= node.range.begin;
        if (hit && id != context) out->push_back(id);
      }
      return;
    }
    default:
      return;
  }
}

std::vector<NodeId> AxisEvaluator::EvaluateAxisOnlyImpl(
    const goddag::OverlayView* view, NodeId context, Axis axis) const {
  std::vector<NodeId> out;
  if (goddag::IsOverlayId(context)) {
    if (view == nullptr || view->overlay_of(context) == nullptr) return out;
  } else if (context >= goddag_->node_table_size()) {
    return out;
  }
  const GNode& context_node = NodeAt(view, context);
  if (context_node.kind == GNodeKind::kFree) return out;
  if (IsExtendedAxis(axis)) {
    if (options_.use_index) {
      EvaluateExtendedIndexed(context_node, context, axis, {}, &out);
    } else {
      EvaluateExtendedNaive(context_node, context, axis, &out);
    }
    if (view != nullptr) {
      AppendOverlayMatches(*view, axis, context_node.range, context,
                           /*test=*/nullptr, &out);
    }
  } else {
    EvaluateStandard(view, context, axis, &out);
  }
  NormalizeDocumentOrder(view, &out);
  return out;
}

std::vector<NodeId> AxisEvaluator::EvaluateAxisOnly(NodeId context,
                                                    Axis axis) const {
  return EvaluateAxisOnlyImpl(nullptr, context, axis);
}

std::vector<NodeId> AxisEvaluator::EvaluateAxisOnly(
    const goddag::OverlayView& view, NodeId context, Axis axis) const {
  return EvaluateAxisOnlyImpl(&view, context, axis);
}

std::vector<NodeId> AxisEvaluator::Evaluate(NodeId context, Axis axis,
                                            const NodeTest& test) const {
  std::vector<NodeId> out = EvaluateAxisOnlyImpl(nullptr, context, axis);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [this, &test](NodeId id) {
                             return !test.Matches(goddag_->node(id));
                           }),
            out.end());
  return out;
}

std::vector<NodeId> AxisEvaluator::Evaluate(const goddag::OverlayView& view,
                                            NodeId context, Axis axis,
                                            const NodeTest& test) const {
  std::vector<NodeId> out = EvaluateAxisOnlyImpl(&view, context, axis);
  out.erase(std::remove_if(out.begin(), out.end(),
                           [&view, &test](NodeId id) {
                             return !test.Matches(view.node(id));
                           }),
            out.end());
  return out;
}

std::vector<NodeId> AxisEvaluator::EvaluateRange(
    const goddag::OverlayView& view, const TextRange& context,
    Axis axis) const {
  std::vector<NodeId> out;
  const goddag::RangeIndex& idx = index();
  switch (axis) {
    case Axis::kXAncestor:
      out = idx.NodesContaining(context);
      break;
    case Axis::kXDescendant:
      out = idx.NodesContainedIn(context);
      break;
    case Axis::kOverlapping:
      out = idx.NodesOverlapping(context);
      break;
    case Axis::kXFollowing:
      out = idx.NodesBeginningAtOrAfter(context.end);
      break;
    case Axis::kXPreceding:
      out = idx.NodesEndingAtOrBefore(context.begin);
      break;
    default:
      return out;
  }
  AppendOverlayMatches(view, axis, context, kInvalidNode, /*test=*/nullptr,
                       &out);
  return out;
}

bool AxisEvaluator::EvaluateExtendedPlannedBase(
    const TextRange& context_range, NodeId exclude, Axis axis,
    const NodeTest& test, const StepExec& exec,
    std::vector<NodeId>* out) const {
  const goddag::SnapshotStats* stats = StatsOrNull();
  uint32_t key = goddag::kNoNameKey;
  bool pushdown = false;
  if (exec.pushdown && test.is_name() && stats != nullptr) {
    key = stats->name_key(test.name());
    pushdown = true;
    if (key == goddag::kNoNameKey) {
      // No live base element bears this name: the base half is empty by
      // the statistics alone (overlay hits are the caller's job).
      return true;
    }
  }
  if (exec.use_index) {
    goddag::ProbeFilter filter;
    if (pushdown) filter = {stats->node_name_keys().data(), key};
    // Reuse the node-context probe: a GNode stand-in carrying the range.
    GNode probe;
    probe.range = context_range;
    EvaluateExtendedIndexed(probe, exclude, axis, filter, out);
    return pushdown;
  }
  // Scan side: the vectorized RangeSoA kernels when the snapshot's packed
  // layout applies, the scalar node-table walk otherwise.
  if (stats != nullptr &&
      ScanExtendedAxis(stats->soa(), axis, context_range, exclude,
                       pushdown ? key : goddag::kNoNameKey, KernelIsa::kAuto,
                       out)) {
    return pushdown;
  }
  EvaluateExtendedNaiveRange(context_range, exclude, axis, out);
  return false;
}

std::vector<NodeId> AxisEvaluator::EvaluatePlanned(
    const goddag::OverlayView& view, NodeId context, Axis axis,
    const NodeTest& test, const StepExec& exec) const {
  if (!IsExtendedAxis(axis)) return Evaluate(view, context, axis, test);
  std::vector<NodeId> out;
  if (goddag::IsOverlayId(context)) {
    if (view.overlay_of(context) == nullptr) return out;
  } else if (context >= goddag_->node_table_size()) {
    return out;
  }
  const GNode& context_node = view.node(context);
  if (context_node.kind == GNodeKind::kFree) return out;
  const bool base_filtered = EvaluateExtendedPlannedBase(
      context_node.range, context, axis, test, exec, &out);
  if (!base_filtered) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [this, &test](NodeId id) {
                               return !test.Matches(goddag_->node(id));
                             }),
              out.end());
  }
  AppendOverlayMatches(view, axis, context_node.range, context, &test, &out);
  // Filtering before the sort returns the same bytes as Evaluate's
  // sort-then-filter: the comparator is a strict total order and removal
  // is subset-stable.
  NormalizeDocumentOrder(&view, &out);
  return out;
}

std::vector<NodeId> AxisEvaluator::EvaluateRangePlanned(
    const goddag::OverlayView& view, const TextRange& context, Axis axis,
    const NodeTest& test, const StepExec& exec) const {
  std::vector<NodeId> out;
  const bool base_filtered = EvaluateExtendedPlannedBase(
      context, kInvalidNode, axis, test, exec, &out);
  if (!base_filtered) {
    out.erase(std::remove_if(out.begin(), out.end(),
                             [this, &test](NodeId id) {
                               return !test.Matches(goddag_->node(id));
                             }),
              out.end());
  }
  AppendOverlayMatches(view, axis, context, kInvalidNode, &test, &out);
  return out;
}

}  // namespace mhx::xpath
