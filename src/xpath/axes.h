// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// AxisEvaluator implements XPath axis steps over a KyGoddag: the standard
// single-hierarchy tree axes, plus the paper's five extended axes that see
// across hierarchies (Definition 1, restated over node ranges in DESIGN.md):
//
//   xancestor::    nodes (any hierarchy) whose range contains the context's
//   xdescendant::  nodes whose range is contained in the context's
//   overlapping::  nodes whose range properly overlaps the context's
//   xfollowing::   nodes whose range begins at or after the context's end
//   xpreceding::   nodes whose range ends at or before the context's start
//
// Every extended axis has two evaluation strategies, switched by
// AxisOptions: the literal Definition-1 scan over the whole node table
// (naive), and lookups against a RangeIndex (indexed). Both return the same
// node set in document order — the E9 benchmark and the unit tests hold
// them to that.
//
// Overlay views: every entry point has a goddag::OverlayView overload that
// evaluates against an evaluation's overlay namespace as well as the base
// document. Extended axes then read uniformly as "base index (or naive base
// scan) + overlay scan" — overlay nodes are never indexed, their delta is
// tiny — and standard axes resolve parent/child arcs through the view.
// Views fork (goddag/overlay.h): a parallel worker's private view chains to
// the coordinator's, and both the overlay scan here and the view's own id
// resolution walk that chain. The base RangeIndex snapshot is
// revision-checked against the base KyGoddag only: overlay churn never
// invalidates it, which is what keeps analyze-string() cycles rebuild-free
// (index_rebuild_count()).
//
// MVCC binding: an evaluator constructed over a goddag::DocumentSnapshot
// serves index() from the snapshot's build-once RangeIndex — prebuilt by
// the writer that published the snapshot, so readers repinning after a
// commit pay zero rebuilds (CONCURRENCY.md). The private rebuild path
// remains only for the legacy escape hatch: a mutable_goddag() edit bumps
// the live revision past the snapshot's publish stamp, and index() then
// rebuilds privately, exactly as the plain-goddag constructor always did.

#ifndef MHX_XPATH_AXES_H_
#define MHX_XPATH_AXES_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "goddag/index.h"
#include "goddag/kygoddag.h"
#include "goddag/overlay.h"
#include "goddag/snapshot.h"
#include "goddag/stats.h"

namespace mhx::xpath {

// Every axis a path step can name: the standard XPath axes plus the
// paper's five extended (overlap-aware) axes.
enum class Axis {
  // Standard XPath axes, evaluated within the context node's hierarchy.
  kSelf,
  kChild,
  kParent,
  kDescendant,
  kDescendantOrSelf,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
  // The paper's extended multihierarchical axes.
  kXAncestor,
  kXDescendant,
  kOverlapping,
  kXFollowing,
  kXPreceding,
};

bool IsExtendedAxis(Axis axis);
std::string_view AxisName(Axis axis);
StatusOr<Axis> AxisFromName(std::string_view name);

// What a producer of a node/leaf sequence guarantees about its output. The
// XQuery engine's step loop keys off this to replace its former
// unconditional sort+dedup with the cheapest sufficient fix-up: nothing for
// kDocOrderNoDupes, a linear dedup pass for kSortedMayDupe (the state a
// linear merge of doc-ordered runs leaves behind), a full sort+dedup only
// for kUnordered.
enum class Ordering {
  kDocOrderNoDupes,  // document order, every item at most once
  kSortedMayDupe,    // document order, items may repeat
  kUnordered,        // no guarantee
};

std::string_view OrderingName(Ordering ordering);

// The Definition-1 range predicate of one extended axis: does `candidate`
// stand in `axis` relation to a context with range `context`? Shared by the
// naive base-table scan and by the overlay scan half of every extended-axis
// evaluation.
bool ExtendedAxisMatches(Axis axis, const TextRange& context,
                         const TextRange& candidate);

// Node test applied after axis navigation.
class NodeTest {
 public:
  // Matches any document node (elements and the GODDAG root).
  static NodeTest Any();
  // Matches elements with the given name.
  static NodeTest Name(std::string name);

  bool Matches(const goddag::GNode& node) const;

  // True for name tests — what the planner's pushdown keys off.
  bool is_name() const { return kind_ == Kind::kName; }

  // The tested element name (empty for Any()).
  const std::string& name() const { return name_; }

 private:
  enum class Kind { kAny, kName };
  NodeTest(Kind kind, std::string name)
      : kind_(kind), name_(std::move(name)) {}

  Kind kind_;
  std::string name_;
};

struct AxisOptions {
  // Extended axes consult a RangeIndex when true, otherwise run the naive
  // Definition-1 scan. Standard tree axes always walk arcs. Overlay nodes
  // are scanned either way (they are never indexed).
  //
  // Deprecated for engine traffic: the XQuery engine now chooses per step
  // via the cost-based planner (xquery/planner.h, QueryOptions::plan_mode)
  // and calls EvaluatePlanned, which ignores this flag. Kept for direct
  // AxisEvaluator users — unit tests and the axis benchmarks — that pin
  // one strategy for a whole evaluator.
  bool use_index = true;
};

// One path step's physical execution choice, produced per step by the
// XQuery planner (xquery/planner.h) or pinned by a forced plan mode:
// indexed probe vs. (vectorized) full scan for the extended axes, and
// whether a name test is pushed down into the probe/kernel so base
// candidates are filtered before they materialise. Every combination
// returns byte-identical node sets — the planner only moves cost.
struct StepExec {
  bool use_index = true;
  bool pushdown = false;
};

class AxisEvaluator {
 public:
  explicit AxisEvaluator(const goddag::KyGoddag* goddag,
                         AxisOptions options = AxisOptions());

  // Binds the evaluator to a pinned MVCC snapshot: navigation reads the
  // snapshot's goddag, and index() serves the snapshot's build-once index
  // as long as the goddag revision still matches the publish stamp (see
  // index() for the legacy-mutation fallback). `snapshot` must outlive the
  // evaluator — the XQuery engine pairs the two in one pinned entry.
  explicit AxisEvaluator(const goddag::DocumentSnapshot* snapshot,
                         AxisOptions options = AxisOptions());

  // Nodes reachable from `context` along `axis`, in document order
  // (range.begin ascending, longer ranges first, NodeId as tiebreak).
  // The base-only overloads see the base document alone; the OverlayView
  // overloads additionally see (and resolve ids of) the view's overlays.
  std::vector<goddag::NodeId> EvaluateAxisOnly(goddag::NodeId context,
                                               Axis axis) const;
  std::vector<goddag::NodeId> EvaluateAxisOnly(
      const goddag::OverlayView& view, goddag::NodeId context,
      Axis axis) const;

  // EvaluateAxisOnly filtered by a node test.
  std::vector<goddag::NodeId> Evaluate(goddag::NodeId context, Axis axis,
                                       const NodeTest& test) const;
  std::vector<goddag::NodeId> Evaluate(const goddag::OverlayView& view,
                                       goddag::NodeId context, Axis axis,
                                       const NodeTest& test) const;

  // Extended-axis hits for a bare text range (the XQuery engine's leaf
  // contexts): base RangeIndex lookup plus overlay scan, not normalised —
  // index traversal order is not document order, so callers treat the
  // result as Ordering::kUnordered. `axis` must be an extended axis.
  std::vector<goddag::NodeId> EvaluateRange(const goddag::OverlayView& view,
                                            const TextRange& context,
                                            Axis axis) const;

  // Planner-driven Evaluate: the extended-axis strategy comes from `exec`
  // instead of AxisOptions — scans run the vectorized RangeSoA kernels
  // (xpath/kernels.h) when this evaluator is snapshot-bound and the packed
  // layout applies, falling back to the scalar node-table scan otherwise —
  // and exec.pushdown folds a name test into the probe/kernel as an
  // interned-key compare, so base candidates are pre-filtered. Output is
  // byte-identical to Evaluate(view, context, axis, test) for every exec;
  // standard axes ignore exec and walk arcs as always.
  std::vector<goddag::NodeId> EvaluatePlanned(const goddag::OverlayView& view,
                                              goddag::NodeId context,
                                              Axis axis, const NodeTest& test,
                                              const StepExec& exec) const;

  // Planner-driven EvaluateRange: same strategy/pushdown contract as
  // EvaluatePlanned, for the engine's leaf contexts. Unlike EvaluateRange,
  // the result is already filtered by `test` (base hits inside the
  // probe/kernel when pushed down, overlay hits as they append), so
  // callers skip their own re-filter. Ordering::kUnordered, like
  // EvaluateRange. `axis` must be an extended axis.
  std::vector<goddag::NodeId> EvaluateRangePlanned(
      const goddag::OverlayView& view, const TextRange& context, Axis axis,
      const NodeTest& test, const StepExec& exec) const;

  // The ordering guarantee Evaluate/EvaluateAxisOnly declare for `axis`:
  // always kDocOrderNoDupes — every traversal visits a node at most once
  // (base ids and overlay ids are disjoint namespaces), and the evaluator
  // normalises the rare traversals that are not already in document order.
  // Downstream step loops may therefore skip their own sort+dedup for
  // single-context axis results (the XQuery engine does, and counts the
  // skips). Declared per axis so callers key off the contract, not off
  // evaluator internals.
  static Ordering ResultOrdering(Axis axis);

  // Document-order sorts EvaluateAxisOnly avoided because the traversal was
  // already sorted (child/descendant walks, sibling slices, the reversed
  // ancestor chain). Relaxed atomic: bumped from const evaluation, read by
  // benchmarks; exactness across racing readers is not required.
  size_t sorts_skipped() const {
    return sorts_skipped_.load(std::memory_order_relaxed);
  }

  const AxisOptions& options() const { return options_; }

  // The index backing indexed mode, revision-checked against the *base*
  // document only (overlay churn never invalidates it). Snapshot-bound
  // evaluators serve the snapshot's build-once index — writer-prebuilt
  // snapshots cost this evaluator zero rebuilds; a lazily indexed snapshot
  // (the Build()-time initial version) is built exactly once here. The
  // private rebuild path runs only when a legacy mutable_goddag() edit has
  // pushed the live revision past the snapshot stamp (or for evaluators
  // constructed over a bare KyGoddag). Once materialised (the XQuery
  // engine forces this before evaluation) concurrent readers never trigger
  // a rebuild.
  const goddag::RangeIndex& index() const;

  // Number of RangeIndex constructions this evaluator has paid for — the
  // observable that proves analyze-string() overlay cycles never rebuild
  // the base index.
  size_t index_rebuild_count() const { return index_rebuild_count_; }

 private:
  // Shared implementations; `view` is null for the base-only overloads.
  std::vector<goddag::NodeId> EvaluateAxisOnlyImpl(
      const goddag::OverlayView* view, goddag::NodeId context,
      Axis axis) const;
  const goddag::GNode& NodeAt(const goddag::OverlayView* view,
                              goddag::NodeId id) const {
    return view != nullptr ? view->node(id) : goddag_->node(id);
  }
  void EvaluateExtendedNaive(const goddag::GNode& context_node,
                             goddag::NodeId context, Axis axis,
                             std::vector<goddag::NodeId>* out) const;
  // The literal Definition-1 node-table scan for a bare range; `exclude`
  // drops the context node (kInvalidNode for leaf contexts).
  void EvaluateExtendedNaiveRange(const TextRange& context,
                                  goddag::NodeId exclude, Axis axis,
                                  std::vector<goddag::NodeId>* out) const;
  void EvaluateExtendedIndexed(const goddag::GNode& context_node,
                               goddag::NodeId context, Axis axis,
                               const goddag::ProbeFilter& filter,
                               std::vector<goddag::NodeId>* out) const;
  // The snapshot's statistics block (kernel scan surface + pushdown keys),
  // or null when this evaluator is not snapshot-bound or a legacy
  // mutable_goddag() edit has invalidated the snapshot.
  const goddag::SnapshotStats* StatsOrNull() const;
  // The base-table half of a planned extended-axis evaluation: indexed
  // probe or (vectorized) scan per `exec`, pushdown folded in. Returns
  // true when the appended hits are already filtered by `test`.
  bool EvaluateExtendedPlannedBase(const TextRange& context_range,
                                   goddag::NodeId exclude, Axis axis,
                                   const NodeTest& test, const StepExec& exec,
                                   std::vector<goddag::NodeId>* out) const;
  // The overlay half of every extended-axis evaluation: a linear scan of
  // the view's overlay elements (plumbing roots excluded) against the
  // Definition-1 predicate. Walks the view's fork chain, so a worker's
  // private view scans the coordinator's overlays and the kept
  // hierarchies as well as its own. A non-null `test` filters matches as
  // they append (the planned path, where base hits are pre-filtered).
  void AppendOverlayMatches(const goddag::OverlayView& view, Axis axis,
                            const TextRange& context_range,
                            goddag::NodeId exclude, const NodeTest* test,
                            std::vector<goddag::NodeId>* out) const;
  void EvaluateStandard(const goddag::OverlayView* view,
                        goddag::NodeId context, Axis axis,
                        std::vector<goddag::NodeId>* out) const;
  // Establishes document order: a linear is_sorted scan first (counted as a
  // skipped sort when it passes on 2+ elements), the O(n log n) sort only
  // when the scan finds an inversion. The scan, rather than a purely static
  // per-axis whitelist, is what makes the guarantee honest: overlay hits
  // append after base hits, and a cross-hierarchy descendant walk from the
  // GODDAG root interleaves hierarchies.
  void NormalizeDocumentOrder(const goddag::OverlayView* view,
                              std::vector<goddag::NodeId>* ids) const;

  const goddag::KyGoddag* goddag_;
  // Non-null iff snapshot-bound; goddag_ then points at snapshot_->goddag().
  const goddag::DocumentSnapshot* snapshot_ = nullptr;
  AxisOptions options_;
  mutable std::unique_ptr<goddag::RangeIndex> index_;
  mutable size_t index_rebuild_count_ = 0;
  mutable std::atomic<size_t> sorts_skipped_{0};
};

}  // namespace mhx::xpath

#endif  // MHX_XPATH_AXES_H_
