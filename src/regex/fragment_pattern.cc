// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "regex/fragment_pattern.h"

#include "base/chars.h"

namespace mhx::regex {

StatusOr<FragmentPattern> TranslateFragmentPattern(std::string_view pattern) {
  FragmentPattern out;
  std::vector<std::string> open_stack;
  // Inside [...] nothing is markup or a group. Mirrors the regex parser's
  // class lexing: a ']' directly after '[' or '[^' is a literal member.
  bool in_class = false;
  bool class_start = false;
  size_t i = 0;
  while (i < pattern.size()) {
    char c = pattern[i];
    if (c == '\\' && i + 1 < pattern.size()) {
      // Escapes pass through untouched (including \< and \>).
      out.regex.push_back(pattern[i]);
      out.regex.push_back(pattern[i + 1]);
      i += 2;
      class_start = false;
      continue;
    }
    if (in_class) {
      if (c == ']' && !class_start) {
        in_class = false;
      } else if (!(c == '^' && class_start)) {
        // '^' right after '[' keeps the start slot open for a literal ']'.
        class_start = false;
      }
      out.regex.push_back(c);
      ++i;
      continue;
    }
    if (c == '[') {
      in_class = true;
      class_start = true;
    }
    if (c == '(') {
      // A plain capture group written by the user: it consumes a group
      // number in the residual regex, so record a placeholder to keep
      // group_names aligned with group numbering.
      out.group_names.emplace_back();
    }
    if (c != '<') {
      out.regex.push_back(c);
      ++i;
      continue;
    }
    // Markup: <name> or </name>.
    bool closing = i + 1 < pattern.size() && pattern[i + 1] == '/';
    size_t name_begin = i + (closing ? 2 : 1);
    size_t name_end = name_begin;
    while (name_end < pattern.size() && IsXmlNameChar(pattern[name_end])) {
      ++name_end;
    }
    if (name_end == name_begin || name_end >= pattern.size() ||
        pattern[name_end] != '>') {
      return InvalidArgumentError(
          "malformed fragment markup at offset " + std::to_string(i) +
          " in pattern '" + std::string(pattern) + "'");
    }
    std::string name(pattern.substr(name_begin, name_end - name_begin));
    if (closing) {
      if (open_stack.empty() || open_stack.back() != name) {
        return InvalidArgumentError("mismatched closing tag </" + name +
                                    "> in pattern '" + std::string(pattern) +
                                    "'");
      }
      open_stack.pop_back();
      out.regex.push_back(')');
    } else {
      open_stack.push_back(name);
      out.group_names.push_back(name);
      out.regex.push_back('(');
    }
    i = name_end + 1;
  }
  if (!open_stack.empty()) {
    return InvalidArgumentError("unclosed fragment tag <" + open_stack.back() +
                                "> in pattern '" + std::string(pattern) + "'");
  }
  return out;
}

std::string StripContextWildcards(std::string_view pattern) {
  if (pattern.size() >= 2 && pattern.substr(0, 2) == ".*") {
    pattern.remove_prefix(2);
  }
  if (pattern.size() >= 2 && pattern.substr(pattern.size() - 2) == ".*") {
    // Do not strip an escaped ".\*" or a quantified ". *"; a preceding
    // backslash means the '.' is literal only when it escapes the dot, but
    // "\.*" ends with an escaped dot + star, which is not a context
    // wildcard.
    if (pattern.size() < 3 || pattern[pattern.size() - 3] != '\\') {
      pattern.remove_suffix(2);
    }
  }
  return std::string(pattern);
}

}  // namespace mhx::regex
