// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "regex/regex.h"

namespace mhx::regex {

StatusOr<Regex> Regex::Compile(std::string_view /*pattern*/) {
  return UnimplementedError(
      "the Pike-VM regex engine is not implemented yet; gate callers behind "
      "MHX_BUILD_ALL_BENCH until it lands");
}

std::vector<Regex::Match> Regex::FindAll(std::string_view /*text*/) const {
  return {};
}

bool Regex::ContainsMatch(std::string_view /*text*/) const { return false; }

bool Regex::FullMatch(std::string_view /*text*/) const { return false; }

}  // namespace mhx::regex
