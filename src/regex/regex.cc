// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "regex/regex.h"

#include <algorithm>
#include <cstddef>

#include "base/status_macros.h"

namespace mhx::regex {

namespace {

using internal::CharClass;
using internal::Inst;

constexpr size_t kUnset = internal::kUnsetPos;
// Bounded repetition is compiled by fragment copying; cap it (and the total
// program size) so hostile patterns cannot allocate without limit.
constexpr uint32_t kMaxBoundedRepeat = 512;
constexpr size_t kMaxProgramSize = 1 << 16;
// Parser (and therefore compiler/destructor) recursion is proportional to
// group nesting; cap it so hostile patterns error instead of overflowing
// the stack.
constexpr int kMaxGroupDepth = 200;

void ClassAdd(CharClass* cls, unsigned char c) {
  (*cls)[c >> 6] |= uint64_t{1} << (c & 63);
}

void ClassAddRange(CharClass* cls, unsigned char lo, unsigned char hi) {
  for (unsigned c = lo; c <= hi; ++c) ClassAdd(cls, static_cast<char>(c));
}

bool ClassHas(const CharClass& cls, unsigned char c) {
  return (cls[c >> 6] >> (c & 63)) & 1;
}

// The perl-style class escapes shared by atoms and bracket expressions.
bool AddEscapeClass(char e, CharClass* cls) {
  CharClass base{};
  switch (e) {
    case 'd':
    case 'D':
      ClassAddRange(&base, '0', '9');
      break;
    case 'w':
    case 'W':
      ClassAddRange(&base, 'a', 'z');
      ClassAddRange(&base, 'A', 'Z');
      ClassAddRange(&base, '0', '9');
      ClassAdd(&base, '_');
      break;
    case 's':
    case 'S':
      for (char c : {' ', '\t', '\n', '\r', '\f', '\v'}) ClassAdd(&base, c);
      break;
    default:
      return false;
  }
  if (e == 'D' || e == 'W' || e == 'S') {
    for (auto& word : base) word = ~word;
  }
  for (size_t i = 0; i < base.size(); ++i) (*cls)[i] |= base[i];
  return true;
}

// --- Pattern AST -----------------------------------------------------------

struct RNode {
  enum class Kind {
    kEmpty,
    kChar,
    kAny,
    kClass,
    kConcat,
    kAlt,
    kRepeat,
    kGroup,
    kAnchorStart,
    kAnchorEnd,
  };
  Kind kind = Kind::kEmpty;
  char ch = 0;
  uint32_t class_index = 0;
  uint32_t group = 0;                // kGroup: 1-based capture index
  uint32_t min = 0, max = 0;         // kRepeat; max == kNoUpperBound for {m,}
  std::vector<RNode> children;

  static constexpr uint32_t kNoUpperBound = static_cast<uint32_t>(-1);
};

// Recursive-descent pattern parser. Every error is anchored to a pattern
// offset so Compile callers can report precise syntax diagnostics.
class PatternParser {
 public:
  PatternParser(std::string_view pattern, std::vector<CharClass>* classes)
      : p_(pattern), classes_(classes) {}

  StatusOr<RNode> Parse() {
    MHX_ASSIGN_OR_RETURN(RNode root, ParseAlternation());
    if (pos_ != p_.size()) {
      return Error("unmatched ')'");
    }
    return root;
  }

  uint32_t group_count() const { return group_count_; }

 private:
  Status Error(const std::string& what) const {
    // Quote at most the head of a hostile-sized pattern.
    std::string shown(p_.substr(0, 128));
    if (p_.size() > 128) shown += "...";
    return InvalidArgumentError("regex syntax error at offset " +
                                std::to_string(pos_) + " in '" + shown +
                                "': " + what);
  }

  bool AtEnd() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }

  StatusOr<RNode> ParseAlternation() {
    RNode alt;
    alt.kind = RNode::Kind::kAlt;
    MHX_ASSIGN_OR_RETURN(RNode first, ParseConcat());
    alt.children.push_back(std::move(first));
    while (!AtEnd() && Peek() == '|') {
      ++pos_;
      MHX_ASSIGN_OR_RETURN(RNode next, ParseConcat());
      alt.children.push_back(std::move(next));
    }
    if (alt.children.size() == 1) return std::move(alt.children.front());
    return alt;
  }

  StatusOr<RNode> ParseConcat() {
    RNode cat;
    cat.kind = RNode::Kind::kConcat;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      MHX_ASSIGN_OR_RETURN(RNode item, ParseRepeat());
      cat.children.push_back(std::move(item));
    }
    if (cat.children.empty()) {
      cat.kind = RNode::Kind::kEmpty;
      cat.children.clear();
    } else if (cat.children.size() == 1) {
      return std::move(cat.children.front());
    }
    return cat;
  }

  StatusOr<RNode> ParseRepeat() {
    MHX_ASSIGN_OR_RETURN(RNode atom, ParseAtom());
    bool quantified = false;
    while (!AtEnd()) {
      char c = Peek();
      uint32_t min = 0, max = 0;
      if (c == '*') {
        min = 0;
        max = RNode::kNoUpperBound;
        ++pos_;
      } else if (c == '+') {
        min = 1;
        max = RNode::kNoUpperBound;
        ++pos_;
      } else if (c == '?') {
        min = 0;
        max = 1;
        ++pos_;
      } else if (c == '{') {
        MHX_RETURN_IF_ERROR(ParseBounds(&min, &max));
      } else {
        break;
      }
      if (quantified) return Error("double quantifier");
      quantified = true;
      RNode rep;
      rep.kind = RNode::Kind::kRepeat;
      rep.min = min;
      rep.max = max;
      rep.children.push_back(std::move(atom));
      atom = std::move(rep);
    }
    return atom;
  }

  Status ParseBounds(uint32_t* min, uint32_t* max) {
    ++pos_;  // '{'
    MHX_ASSIGN_OR_RETURN(*min, ParseBoundNumber());
    if (!AtEnd() && Peek() == ',') {
      ++pos_;
      if (!AtEnd() && Peek() == '}') {
        *max = RNode::kNoUpperBound;
      } else {
        MHX_ASSIGN_OR_RETURN(*max, ParseBoundNumber());
      }
    } else {
      *max = *min;
    }
    if (AtEnd() || Peek() != '}') return Error("expected '}' in bounds");
    ++pos_;
    if (*max != RNode::kNoUpperBound && *max < *min) {
      return Error("bounds {m,n} with m > n");
    }
    return OkStatus();
  }

  StatusOr<uint32_t> ParseBoundNumber() {
    if (AtEnd() || Peek() < '0' || Peek() > '9') {
      return Error("expected number in bounds");
    }
    uint32_t value = 0;
    while (!AtEnd() && Peek() >= '0' && Peek() <= '9') {
      value = value * 10 + static_cast<uint32_t>(Peek() - '0');
      if (value > kMaxBoundedRepeat) {
        return Error("repetition bound exceeds " +
                     std::to_string(kMaxBoundedRepeat));
      }
      ++pos_;
    }
    return value;
  }

  StatusOr<RNode> ParseAtom() {
    RNode node;
    char c = Peek();
    switch (c) {
      case '(': {
        if (depth_ >= kMaxGroupDepth) {
          return Error("groups nested deeper than " +
                       std::to_string(kMaxGroupDepth));
        }
        ++depth_;
        ++pos_;
        uint32_t group = ++group_count_;
        auto parsed = ParseAlternation();
        --depth_;
        if (!parsed.ok()) return parsed.status();
        RNode sub = std::move(parsed).value();
        if (AtEnd() || Peek() != ')') return Error("unclosed group");
        ++pos_;
        node.kind = RNode::Kind::kGroup;
        node.group = group;
        node.children.push_back(std::move(sub));
        return node;
      }
      case '[':
        return ParseClass();
      case '.':
        ++pos_;
        node.kind = RNode::Kind::kAny;
        return node;
      case '^':
        ++pos_;
        node.kind = RNode::Kind::kAnchorStart;
        return node;
      case '$':
        ++pos_;
        node.kind = RNode::Kind::kAnchorEnd;
        return node;
      case '*':
      case '+':
      case '?':
      case '{':
        return Error(std::string("nothing to repeat before '") + c + "'");
      case '\\': {
        if (pos_ + 1 >= p_.size()) return Error("trailing backslash");
        char e = p_[pos_ + 1];
        pos_ += 2;
        CharClass cls{};
        if (AddEscapeClass(e, &cls)) {
          node.kind = RNode::Kind::kClass;
          node.class_index = static_cast<uint32_t>(classes_->size());
          classes_->push_back(cls);
          return node;
        }
        node.kind = RNode::Kind::kChar;
        node.ch = e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
        return node;
      }
      default:
        ++pos_;
        node.kind = RNode::Kind::kChar;
        node.ch = c;
        return node;
    }
  }

  StatusOr<RNode> ParseClass() {
    ++pos_;  // '['
    bool negate = false;
    if (!AtEnd() && Peek() == '^') {
      negate = true;
      ++pos_;
    }
    CharClass cls{};
    bool first = true;
    while (true) {
      if (AtEnd()) return Error("unterminated character class");
      char c = Peek();
      if (c == ']' && !first) break;
      first = false;
      ++pos_;
      if (c == '\\') {
        if (AtEnd()) return Error("trailing backslash in class");
        char e = Peek();
        ++pos_;
        if (AddEscapeClass(e, &cls)) continue;
        c = e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
      }
      // Range `c-hi` unless the '-' is the trailing literal.
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < p_.size() &&
          p_[pos_ + 1] != ']') {
        char hi = p_[pos_ + 1];
        pos_ += 2;
        if (hi == '\\') {
          if (AtEnd()) return Error("trailing backslash in class");
          char e = Peek();
          ++pos_;
          // Multi-character escapes cannot bound a range.
          if (e == 'd' || e == 'D' || e == 'w' || e == 'W' || e == 's' ||
              e == 'S') {
            return Error(std::string("class escape \\") + e +
                         " cannot end a range");
          }
          hi = e == 'n' ? '\n' : e == 't' ? '\t' : e == 'r' ? '\r' : e;
        }
        if (static_cast<unsigned char>(c) > static_cast<unsigned char>(hi)) {
          return Error("invalid class range");
        }
        ClassAddRange(&cls, static_cast<unsigned char>(c),
                      static_cast<unsigned char>(hi));
        continue;
      }
      ClassAdd(&cls, static_cast<unsigned char>(c));
    }
    ++pos_;  // ']'
    if (negate) {
      for (auto& word : cls) word = ~word;
    }
    RNode node;
    node.kind = RNode::Kind::kClass;
    node.class_index = static_cast<uint32_t>(classes_->size());
    classes_->push_back(cls);
    return node;
  }

  std::string_view p_;
  size_t pos_ = 0;
  uint32_t group_count_ = 0;
  int depth_ = 0;
  std::vector<CharClass>* classes_;
};

}  // namespace

// Flattens the AST into the bytecode program. Kept a friend class (not a
// free function) so it can append into the Regex being built.
class RegexCompiler {
 public:
  explicit RegexCompiler(Regex* re) : re_(re) {}

  Status CompileProgram(const RNode& root) {
    EmitSave(0);
    MHX_RETURN_IF_ERROR(Emit(root));
    EmitSave(1);
    Append(Inst{Inst::Op::kMatch});
    return OkStatus();
  }

 private:
  std::vector<Inst>& prog() { return re_->program_; }

  uint32_t Append(Inst inst) {
    prog().push_back(inst);
    return static_cast<uint32_t>(prog().size() - 1);
  }

  void EmitSave(uint32_t slot) {
    Inst inst{Inst::Op::kSave};
    inst.arg = slot;
    Append(inst);
  }

  Status Emit(const RNode& n) {
    if (prog().size() > kMaxProgramSize) {
      return InvalidArgumentError("regex program exceeds " +
                                  std::to_string(kMaxProgramSize) +
                                  " instructions");
    }
    switch (n.kind) {
      case RNode::Kind::kEmpty:
        return OkStatus();
      case RNode::Kind::kChar: {
        Inst inst{Inst::Op::kChar};
        inst.ch = n.ch;
        Append(inst);
        return OkStatus();
      }
      case RNode::Kind::kAny:
        Append(Inst{Inst::Op::kAnyChar});
        return OkStatus();
      case RNode::Kind::kClass: {
        Inst inst{Inst::Op::kClass};
        inst.arg = n.class_index;
        Append(inst);
        return OkStatus();
      }
      case RNode::Kind::kAnchorStart:
        Append(Inst{Inst::Op::kAssertStart});
        return OkStatus();
      case RNode::Kind::kAnchorEnd:
        Append(Inst{Inst::Op::kAssertEnd});
        return OkStatus();
      case RNode::Kind::kConcat:
        for (const RNode& child : n.children) {
          MHX_RETURN_IF_ERROR(Emit(child));
        }
        return OkStatus();
      case RNode::Kind::kGroup:
        EmitSave(2 * n.group);
        MHX_RETURN_IF_ERROR(Emit(n.children.front()));
        EmitSave(2 * n.group + 1);
        return OkStatus();
      case RNode::Kind::kAlt: {
        // split -> alt0, next-alt; every alternative jumps to the common end.
        std::vector<uint32_t> jumps;
        for (size_t i = 0; i < n.children.size(); ++i) {
          uint32_t split = 0;
          if (i + 1 < n.children.size()) split = Append(Inst{Inst::Op::kSplit});
          MHX_RETURN_IF_ERROR(Emit(n.children[i]));
          if (i + 1 < n.children.size()) {
            jumps.push_back(Append(Inst{Inst::Op::kJmp}));
            prog()[split].next_a = split + 1;
            prog()[split].next_b = static_cast<uint32_t>(prog().size());
          }
        }
        uint32_t end = static_cast<uint32_t>(prog().size());
        for (uint32_t j : jumps) prog()[j].next_a = end;
        return OkStatus();
      }
      case RNode::Kind::kRepeat: {
        const RNode& body = n.children.front();
        for (uint32_t i = 0; i < n.min; ++i) {
          MHX_RETURN_IF_ERROR(Emit(body));
        }
        if (n.max == RNode::kNoUpperBound) {
          // Greedy loop: split(body, out); body; jmp split.
          uint32_t split = Append(Inst{Inst::Op::kSplit});
          MHX_RETURN_IF_ERROR(Emit(body));
          Inst jmp{Inst::Op::kJmp};
          jmp.next_a = split;
          Append(jmp);
          prog()[split].next_a = split + 1;
          prog()[split].next_b = static_cast<uint32_t>(prog().size());
          return OkStatus();
        }
        // (max - min) optional greedy copies, all bailing to the common end.
        std::vector<uint32_t> splits;
        for (uint32_t i = n.min; i < n.max; ++i) {
          splits.push_back(Append(Inst{Inst::Op::kSplit}));
          MHX_RETURN_IF_ERROR(Emit(body));
        }
        uint32_t end = static_cast<uint32_t>(prog().size());
        for (uint32_t s : splits) {
          prog()[s].next_a = s + 1;
          prog()[s].next_b = end;
        }
        return OkStatus();
      }
    }
    return InternalError("unhandled regex AST node");
  }

  Regex* re_;
};

StatusOr<Regex> Regex::Compile(std::string_view pattern) {
  Regex re{std::string(pattern)};
  PatternParser parser(re.pattern_, &re.classes_);
  MHX_ASSIGN_OR_RETURN(RNode root, parser.Parse());
  re.group_count_ = parser.group_count();
  RegexCompiler compiler(&re);
  MHX_RETURN_IF_ERROR(compiler.CompileProgram(root));
  return re;
}

namespace {

using internal::PendingThread;
using internal::SearchScratch;
using internal::SlotPool;
using internal::ThreadList;

using Pending = PendingThread;

struct AddContext {
  const std::vector<Inst>* program;
  std::vector<uint64_t>* mark;
  SlotPool* pool;
  // Reused epsilon-closure work stack (always drained on return), so the
  // hot loop allocates nothing.
  std::vector<Pending>* stack;
  uint64_t generation;
  size_t pos;
  size_t text_size;
};

// Follows epsilon transitions from `pc`, appending every runnable (or
// matching) instruction to `list` exactly once per step. Iterative with an
// explicit work stack (popping the preferred Split branch first preserves
// the depth-first priority order), so epsilon-chain length — which grows
// with the compiled program — cannot overflow the call stack. Takes
// ownership of one reference on `start_saves`; forks share the block
// (kSplit bumps the refcount) and only a kSave on a shared block clones.
void AddThread(const AddContext& ctx, ThreadList* list, uint32_t start_pc,
               uint32_t start_saves) {
  SlotPool& pool = *ctx.pool;
  std::vector<Pending>& stack = *ctx.stack;
  stack.push_back(Pending{start_pc, start_saves});
  while (!stack.empty()) {
    Pending t = stack.back();
    stack.pop_back();
    if ((*ctx.mark)[t.pc] == ctx.generation) {
      pool.Unref(t.saves);
      continue;
    }
    (*ctx.mark)[t.pc] = ctx.generation;
    const Inst& inst = (*ctx.program)[t.pc];
    switch (inst.op) {
      case Inst::Op::kJmp:
        stack.push_back(Pending{inst.next_a, t.saves});
        break;
      case Inst::Op::kSplit:
        pool.Ref(t.saves);
        stack.push_back(Pending{inst.next_b, t.saves});
        stack.push_back(Pending{inst.next_a, t.saves});
        break;
      case Inst::Op::kSave:
        stack.push_back(
            Pending{t.pc + 1, pool.SetSlot(t.saves, inst.arg, ctx.pos)});
        break;
      case Inst::Op::kAssertStart:
        if (ctx.pos == 0) {
          stack.push_back(Pending{t.pc + 1, t.saves});
        } else {
          pool.Unref(t.saves);
        }
        break;
      case Inst::Op::kAssertEnd:
        if (ctx.pos == ctx.text_size) {
          stack.push_back(Pending{t.pc + 1, t.saves});
        } else {
          pool.Unref(t.saves);
        }
        break;
      default:
        list->pcs.push_back(t.pc);
        list->saves.push_back(t.saves);
        break;
    }
  }
}

}  // namespace

bool Regex::Search(std::string_view text, size_t from, bool anchored,
                   bool full, bool first_only,
                   internal::SearchScratch* scratch,
                   SearchResult* out) const {
  const size_t n = text.size();
  const size_t nslots = 2 * (group_count_ + 1);
  ThreadList& clist = scratch->clist;
  ThreadList& nlist = scratch->nlist;
  SlotPool& pool = scratch->slots;
  clist.Clear();
  nlist.Clear();
  // Reclaims blocks still referenced by a previous Search's abandoned
  // threads (first_only early returns leave them behind by design).
  pool.Reset(nslots);
  // Stale marks from earlier Search calls on this scratch are harmless:
  // the generation counter only ever increases.
  std::vector<uint64_t>& mark = scratch->mark;
  mark.resize(program_.size());
  uint64_t& generation = scratch->generation;

  bool have_best = false;
  SearchResult best;

  for (size_t pos = from; pos <= n; ++pos) {
    ++generation;
    // Threads in clist run at `pos`; threads they spawn run at `pos + 1` and
    // deduplicate against the *next* generation's visited marks.
    AddContext seed_ctx{&program_, &mark,         &pool, &scratch->closure_stack,
                        generation, pos,          n};
    AddContext step_ctx{&program_,      &mark,   &pool, &scratch->closure_stack,
                        generation + 1, pos + 1, n};
    // Seed a new start thread (lowest priority) while a leftmost match has
    // not been found yet; later starts could not be leftmost anymore.
    if ((pos == from || (!anchored && !have_best))) {
      AddThread(seed_ctx, &clist, 0, pool.Alloc());
    }
    if (clist.empty()) break;
    for (size_t t = 0; t < clist.pcs.size(); ++t) {
      const uint32_t pc = clist.pcs[t];
      const uint32_t saves = clist.saves[t];
      // A thread that starts after the best match's start can never improve
      // on leftmost-longest; drop it.
      if (have_best && pool.values(saves)[0] != kUnset &&
          pool.values(saves)[0] > best.begin) {
        pool.Unref(saves);
        continue;
      }
      const Inst& inst = program_[pc];
      switch (inst.op) {
        case Inst::Op::kChar:
          if (pos < n && text[pos] == inst.ch) {
            AddThread(step_ctx, &nlist, pc + 1, saves);
          } else {
            pool.Unref(saves);
          }
          break;
        case Inst::Op::kClass:
          if (pos < n &&
              ClassHas(classes_[inst.arg],
                       static_cast<unsigned char>(text[pos]))) {
            AddThread(step_ctx, &nlist, pc + 1, saves);
          } else {
            pool.Unref(saves);
          }
          break;
        case Inst::Op::kAnyChar:
          if (pos < n && text[pos] != '\n') {
            AddThread(step_ctx, &nlist, pc + 1, saves);
          } else {
            pool.Unref(saves);
          }
          break;
        case Inst::Op::kMatch: {
          if (full && pos != n) {
            pool.Unref(saves);
            break;
          }
          const std::vector<size_t>& slots = pool.values(saves);
          const size_t begin = slots[0];
          if (!have_best || begin < best.begin ||
              (begin == best.begin && pos > best.end)) {
            best.begin = begin;
            best.end = pos;
            best.saves = slots;  // copy out: best outlives the pool block
            have_best = true;
            if (first_only) {
              pool.Unref(saves);
              *out = std::move(best);
              return true;
            }
          }
          pool.Unref(saves);
          break;
        }
        default:
          pool.Unref(saves);
          break;  // epsilon ops never appear in a thread list
      }
    }
    // The next loop iteration's ++generation lands exactly on step_ctx's
    // generation, so its seed dedups against threads already advanced here.
    clist.Clear();
    std::swap(clist, nlist);
  }
  if (have_best) *out = std::move(best);
  return have_best;
}

std::vector<Regex::Match> Regex::FindAll(std::string_view text) const {
  std::vector<Match> matches;
  SearchScratch scratch;
  size_t pos = 0;
  while (pos <= text.size()) {
    SearchResult r;
    if (!Search(text, pos, /*anchored=*/false, /*full=*/false,
                /*first_only=*/false, &scratch, &r)) {
      break;
    }
    Match m;
    m.range = TextRange(r.begin, r.end);
    m.groups.reserve(group_count_);
    for (size_t g = 1; g <= group_count_; ++g) {
      const size_t b = r.saves[2 * g], e = r.saves[2 * g + 1];
      m.groups.push_back(b == kUnset || e == kUnset ? TextRange(0, 0)
                                                    : TextRange(b, e));
    }
    matches.push_back(std::move(m));
    pos = r.end > r.begin ? r.end : r.end + 1;  // never loop on empty matches
  }
  return matches;
}

bool Regex::ContainsMatch(std::string_view text) const {
  SearchScratch scratch;
  SearchResult r;
  return Search(text, 0, /*anchored=*/false, /*full=*/false,
                /*first_only=*/true, &scratch, &r);
}

bool Regex::FullMatch(std::string_view text) const {
  SearchScratch scratch;
  SearchResult r;
  return Search(text, 0, /*anchored=*/true, /*full=*/true,
                /*first_only=*/true, &scratch, &r);
}

}  // namespace mhx::regex
