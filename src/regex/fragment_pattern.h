// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The paper's analyze-string() takes *fragment patterns*: regular
// expressions interleaved with XML markup, e.g. ".*un<a>a</a>we.*". The
// markup does not match text — it names the sub-fragments to materialise as
// a virtual hierarchy over each match. TranslateFragmentPattern splits the
// two concerns: it validates the embedded markup, strips it, and records
// each element as a capture group of the residual plain regex, so
//
//   ".*un<a>a<b>w</b>e</a>nden<c>dne</c>.*"
//
// becomes the regex ".*un(a(w)e)nden(dne).*" with fragment elements
// a -> group 1, b -> group 2, c -> group 3. The engine then compiles the
// residual regex and builds <a>/<b>/<c> virtual elements from the group
// ranges of each match.

#ifndef MHX_REGEX_FRAGMENT_PATTERN_H_
#define MHX_REGEX_FRAGMENT_PATTERN_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace mhx::regex {

// A translated XML fragment pattern: the residual regex plus the fragment
// element names its capture groups correspond to.
struct FragmentPattern {
  // The residual regular expression with every fragment element turned into
  // a capture group.
  std::string regex;
  // Element name per capture group of the residual regex, in group-number
  // order (group i + 1). A plain capture group the user wrote directly
  // (e.g. an alternation group) keeps its group number but gets an empty
  // name — it does not materialise a fragment element.
  std::vector<std::string> group_names;
};

// Fails with InvalidArgument on mismatched or malformed markup.
StatusOr<FragmentPattern> TranslateFragmentPattern(std::string_view pattern);

// Removes a leading and/or trailing ".*" context wildcard, the normalisation
// analyze-string() applies before fragment translation so context wildcards
// never become part of a fragment.
std::string StripContextWildcards(std::string_view pattern);

}  // namespace mhx::regex

#endif  // MHX_REGEX_FRAGMENT_PATTERN_H_
