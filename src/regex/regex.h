// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The regular-expression substrate behind the XQuery matches() and
// analyze-string() built-ins: a Pike-VM style NFA simulation (linear time
// even on the (a|a)*b pathologies benchmarked in bench_regex.cc) over the
// XPath/XQuery regex dialect subset — literals, '.', classes, alternation,
// grouping with captures, the ^/$ anchors, and the ?/*/+/{m,n} quantifiers.
//
// Compile parses the pattern into a small AST, then flattens it into a
// bytecode program (kChar/kClass/kSplit/kJmp/kSave/kMatch plus the two
// assertions). The matcher advances every live NFA thread one input
// character at a time, deduplicating threads by program counter, so run time
// is O(|text| * |program|) regardless of the pattern. Submatches ride along
// as per-thread save slots; FindAll selects leftmost-longest (POSIX-style)
// rather than leftmost-first matches.

#ifndef MHX_REGEX_REGEX_H_
#define MHX_REGEX_REGEX_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "base/text_range.h"

namespace mhx::regex {

namespace internal {

// One instruction of the compiled NFA program.
struct Inst {
  enum class Op : uint8_t {
    kChar,         // match the single character `ch`
    kClass,        // match any character in classes[arg]
    kAnyChar,      // match any character except '\n'
    kSplit,        // fork: continue at both next_a (preferred) and next_b
    kJmp,          // continue at next_a
    kSave,         // store the current position in save slot `arg`
    kAssertStart,  // succeed only at position 0
    kAssertEnd,    // succeed only at end of text
    kMatch,        // the whole pattern matched
  };
  Op op;
  char ch = 0;
  uint32_t arg = 0;
  uint32_t next_a = 0;
  uint32_t next_b = 0;
};

// A 256-bit character-set bitmap.
using CharClass = std::array<uint64_t, 4>;

// "Position not recorded" marker for capture save slots.
inline constexpr size_t kUnsetPos = static_cast<size_t>(-1);

// Copy-on-write storage for the per-thread capture save slots. NFA threads
// used to carry their own std::vector<size_t>, copied wholesale on every
// kSplit — one allocation per forked thread per input character in
// capture-heavy patterns. Here a thread holds a refcounted handle to a slot
// block instead: forks bump a refcount, and only a kSave landing on a
// shared block pays a clone. Freed blocks go to a free list and are reused
// with their vector capacity intact, so a warmed-up FindAll scan allocates
// nothing at all.
class SlotPool {
 public:
  // Prepares the pool for a Search over `nslots`-wide threads. Any blocks
  // still referenced by the previous Search's abandoned threads (early
  // returns leave some behind deliberately) are reclaimed here.
  void Reset(size_t nslots) {
    nslots_ = nslots;
    free_.clear();
    free_.reserve(blocks_.size());
    for (size_t i = 0; i < blocks_.size(); ++i) {
      blocks_[i].refs = 0;
      free_.push_back(static_cast<uint32_t>(i));
    }
  }

  // A fresh block with every slot kUnsetPos, refcount 1.
  uint32_t Alloc() {
    const uint32_t handle = TakeBlock();
    blocks_[handle].values.assign(nslots_, kUnsetPos);
    return handle;
  }

  void Ref(uint32_t handle) { ++blocks_[handle].refs; }

  void Unref(uint32_t handle) {
    if (--blocks_[handle].refs == 0) free_.push_back(handle);
  }

  // Writes `value` into `slot`, cloning first when the block is shared.
  // Returns the handle holding the write (the original when exclusive).
  uint32_t SetSlot(uint32_t handle, uint32_t slot, size_t value) {
    if (blocks_[handle].refs == 1) {
      blocks_[handle].values[slot] = value;
      return handle;
    }
    --blocks_[handle].refs;
    const uint32_t clone = TakeBlock();
    // Index, not reference: TakeBlock may have grown blocks_.
    blocks_[clone].values = blocks_[handle].values;
    blocks_[clone].values[slot] = value;
    return clone;
  }

  const std::vector<size_t>& values(uint32_t handle) const {
    return blocks_[handle].values;
  }

  size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::vector<size_t> values;
    uint32_t refs = 0;
  };

  uint32_t TakeBlock() {
    if (!free_.empty()) {
      const uint32_t handle = free_.back();
      free_.pop_back();
      blocks_[handle].refs = 1;
      return handle;
    }
    blocks_.emplace_back();
    blocks_.back().refs = 1;
    return static_cast<uint32_t>(blocks_.size() - 1);
  }

  std::vector<Block> blocks_;
  std::vector<uint32_t> free_;
  size_t nslots_ = 0;
};

// One step's worth of runnable threads, in priority order. `saves` holds
// SlotPool handles; each listed thread owns one reference.
struct ThreadList {
  std::vector<uint32_t> pcs;
  std::vector<uint32_t> saves;
  void Clear() {
    pcs.clear();
    saves.clear();
  }
  bool empty() const { return pcs.empty(); }
};

// An epsilon-closure work item: a pc plus a SlotPool handle the pending
// thread owns one reference on.
struct PendingThread {
  uint32_t pc;
  uint32_t saves;
};

// Reusable per-scan state. FindAll shares one across its per-match Search
// calls so the visited-marks array, the closure work stack, and the
// save-slot blocks are allocated once per scan (the generation counter and
// SlotPool::Reset take care of the implicit clearing).
struct SearchScratch {
  std::vector<uint64_t> mark;
  ThreadList clist, nlist;
  SlotPool slots;
  std::vector<PendingThread> closure_stack;
  uint64_t generation = 0;
};

}  // namespace internal

// A compiled pattern. Immutable after Compile, so one Regex may be matched
// from any number of threads (each match carries its own thread state).
class Regex {
 public:
  struct Match {
    // Whole-match range over the searched text.
    TextRange range;
    // Capture-group ranges, 1-indexed group k at groups[k - 1]; unmatched
    // groups are empty ranges at position 0.
    std::vector<TextRange> groups;
  };

  // Compiles `pattern` or returns InvalidArgument describing the syntax
  // error.
  static StatusOr<Regex> Compile(std::string_view pattern);

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;

  // All non-overlapping matches, leftmost-longest, in text order.
  std::vector<Match> FindAll(std::string_view text) const;

  // True when some substring of `text` matches.
  bool ContainsMatch(std::string_view text) const;

  // True when the whole of `text` matches.
  bool FullMatch(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }
  size_t group_count() const { return group_count_; }
  // Program length — the per-character work bound of the Pike VM.
  size_t program_size() const { return program_.size(); }

 private:
  struct SearchResult {
    size_t begin = 0;
    size_t end = 0;
    std::vector<size_t> saves;
  };

  explicit Regex(std::string pattern) : pattern_(std::move(pattern)) {}

  // Runs the VM over text[from..). `anchored` admits only threads starting
  // at `from`; `full` admits only matches ending at text.size(). Returns
  // false when no match exists. With `first_only` the search stops at the
  // first completed match (existence tests); otherwise it returns the
  // leftmost-longest one. `scratch` may be reused across calls.
  bool Search(std::string_view text, size_t from, bool anchored, bool full,
              bool first_only, internal::SearchScratch* scratch,
              SearchResult* out) const;

  std::string pattern_;
  std::vector<internal::Inst> program_;
  std::vector<internal::CharClass> classes_;
  size_t group_count_ = 0;

  friend class RegexCompiler;
};

}  // namespace mhx::regex

#endif  // MHX_REGEX_REGEX_H_
