// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The regular-expression substrate behind the XQuery matches() and
// analyze-string() built-ins. The planned implementation is a Pike-VM style
// NFA simulation (linear time even on the (a|a)*b pathologies benchmarked in
// bench_regex.cc) over the XPath/XQuery regex dialect subset: literals,
// classes, alternation, grouping with captures, and the {m,n} quantifiers.
//
// Declared API only for now: Compile returns Unimplemented until the regex
// PR lands; bench_regex.cc is gated behind MHX_BUILD_ALL_BENCH.

#ifndef MHX_REGEX_REGEX_H_
#define MHX_REGEX_REGEX_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "base/text_range.h"

namespace mhx::regex {

class Regex {
 public:
  struct Match {
    // Whole-match range over the searched text.
    TextRange range;
    // Capture-group ranges, 1-indexed group k at groups[k - 1]; unmatched
    // groups are empty ranges at position 0.
    std::vector<TextRange> groups;
  };

  // Compiles `pattern` or returns InvalidArgument describing the syntax
  // error.
  static StatusOr<Regex> Compile(std::string_view pattern);

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;

  // All non-overlapping matches, leftmost-longest, in text order.
  std::vector<Match> FindAll(std::string_view text) const;

  // True when some substring of `text` matches.
  bool ContainsMatch(std::string_view text) const;

  // True when the whole of `text` matches.
  bool FullMatch(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

 private:
  explicit Regex(std::string pattern) : pattern_(std::move(pattern)) {}

  std::string pattern_;
};

}  // namespace mhx::regex

#endif  // MHX_REGEX_REGEX_H_
