// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The regular-expression substrate behind the XQuery matches() and
// analyze-string() built-ins: a Pike-VM style NFA simulation (linear time
// even on the (a|a)*b pathologies benchmarked in bench_regex.cc) over the
// XPath/XQuery regex dialect subset — literals, '.', classes, alternation,
// grouping with captures, the ^/$ anchors, and the ?/*/+/{m,n} quantifiers.
//
// Compile parses the pattern into a small AST, then flattens it into a
// bytecode program (kChar/kClass/kSplit/kJmp/kSave/kMatch plus the two
// assertions). The matcher advances every live NFA thread one input
// character at a time, deduplicating threads by program counter, so run time
// is O(|text| * |program|) regardless of the pattern. Submatches ride along
// as per-thread save slots; FindAll selects leftmost-longest (POSIX-style)
// rather than leftmost-first matches.

#ifndef MHX_REGEX_REGEX_H_
#define MHX_REGEX_REGEX_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "base/text_range.h"

namespace mhx::regex {

namespace internal {

// One instruction of the compiled NFA program.
struct Inst {
  enum class Op : uint8_t {
    kChar,         // match the single character `ch`
    kClass,        // match any character in classes[arg]
    kAnyChar,      // match any character except '\n'
    kSplit,        // fork: continue at both next_a (preferred) and next_b
    kJmp,          // continue at next_a
    kSave,         // store the current position in save slot `arg`
    kAssertStart,  // succeed only at position 0
    kAssertEnd,    // succeed only at end of text
    kMatch,        // the whole pattern matched
  };
  Op op;
  char ch = 0;
  uint32_t arg = 0;
  uint32_t next_a = 0;
  uint32_t next_b = 0;
};

// A 256-bit character-set bitmap.
using CharClass = std::array<uint64_t, 4>;

// One step's worth of runnable threads, in priority order.
struct ThreadList {
  std::vector<uint32_t> pcs;
  std::vector<std::vector<size_t>> saves;
  void Clear() {
    pcs.clear();
    saves.clear();
  }
  bool empty() const { return pcs.empty(); }
};

// Reusable per-scan state. FindAll shares one across its per-match Search
// calls so the visited-marks array is allocated (and implicitly reset, via
// the ever-increasing generation counter) only once per scan.
struct SearchScratch {
  std::vector<uint64_t> mark;
  ThreadList clist, nlist;
  uint64_t generation = 0;
};

}  // namespace internal

class Regex {
 public:
  struct Match {
    // Whole-match range over the searched text.
    TextRange range;
    // Capture-group ranges, 1-indexed group k at groups[k - 1]; unmatched
    // groups are empty ranges at position 0.
    std::vector<TextRange> groups;
  };

  // Compiles `pattern` or returns InvalidArgument describing the syntax
  // error.
  static StatusOr<Regex> Compile(std::string_view pattern);

  Regex(Regex&&) = default;
  Regex& operator=(Regex&&) = default;

  // All non-overlapping matches, leftmost-longest, in text order.
  std::vector<Match> FindAll(std::string_view text) const;

  // True when some substring of `text` matches.
  bool ContainsMatch(std::string_view text) const;

  // True when the whole of `text` matches.
  bool FullMatch(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }
  size_t group_count() const { return group_count_; }
  // Program length — the per-character work bound of the Pike VM.
  size_t program_size() const { return program_.size(); }

 private:
  struct SearchResult {
    size_t begin = 0;
    size_t end = 0;
    std::vector<size_t> saves;
  };

  explicit Regex(std::string pattern) : pattern_(std::move(pattern)) {}

  // Runs the VM over text[from..). `anchored` admits only threads starting
  // at `from`; `full` admits only matches ending at text.size(). Returns
  // false when no match exists. With `first_only` the search stops at the
  // first completed match (existence tests); otherwise it returns the
  // leftmost-longest one. `scratch` may be reused across calls.
  bool Search(std::string_view text, size_t from, bool anchored, bool full,
              bool first_only, internal::SearchScratch* scratch,
              SearchResult* out) const;

  std::string pattern_;
  std::vector<internal::Inst> program_;
  std::vector<internal::CharClass> classes_;
  size_t group_count_ = 0;

  friend class RegexCompiler;
};

}  // namespace mhx::regex

#endif  // MHX_REGEX_REGEX_H_
