// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "document.h"

#include "base/status_macros.h"
#include "xml/parser.h"

namespace mhx {

MultihierarchicalDocument::Builder& MultihierarchicalDocument::Builder::
    SetBaseText(std::string text) {
  base_text_ = std::move(text);
  base_text_set_ = true;
  return *this;
}

MultihierarchicalDocument::Builder& MultihierarchicalDocument::Builder::
    AddHierarchy(std::string name, std::string xml) {
  hierarchies_.emplace_back(std::move(name), std::move(xml));
  return *this;
}

StatusOr<MultihierarchicalDocument> MultihierarchicalDocument::Builder::
    Build() {
  if (!base_text_set_) {
    return FailedPreconditionError("SetBaseText was never called");
  }
  for (size_t i = 0; i < hierarchies_.size(); ++i) {
    for (size_t j = i + 1; j < hierarchies_.size(); ++j) {
      if (hierarchies_[i].first == hierarchies_[j].first) {
        return InvalidArgumentError("duplicate hierarchy name '" +
                                    hierarchies_[i].first + "'");
      }
    }
  }
  auto goddag = std::make_unique<goddag::KyGoddag>(base_text_);
  for (const auto& [name, xml_source] : hierarchies_) {
    auto parsed = xml::Parse(xml_source);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "hierarchy '" + name + "': " + parsed.status().message());
    }
    auto hid = goddag->AddHierarchy(name, *parsed);
    if (!hid.ok()) return hid.status();
  }
  return MultihierarchicalDocument(std::move(goddag));
}

StatusOr<std::string> MultihierarchicalDocument::Query(
    std::string_view query) const {
  return engine()->Evaluate(query);
}

StatusOr<std::string> MultihierarchicalDocument::Query(
    std::string_view query, const QueryOptions& options) const {
  return engine()->Evaluate(query, options);
}

xquery::Engine* MultihierarchicalDocument::engine() const {
  std::lock_guard<std::mutex> lock(*engine_mu_);
  if (engine_ == nullptr) {
    engine_ = std::make_unique<xquery::Engine>(this, engine_plans_,
                                               engine_pool_,
                                               engine_counters_);
  }
  return engine_.get();
}

Status MultihierarchicalDocument::ConfigureEngine(
    std::shared_ptr<xquery::PlanCache> plans,
    std::shared_ptr<base::ThreadPool> pool,
    std::shared_ptr<xquery::EngineCounters> counters) const {
  std::lock_guard<std::mutex> lock(*engine_mu_);
  if (engine_ != nullptr) {
    return FailedPreconditionError(
        "ConfigureEngine must run before the engine is created");
  }
  engine_plans_ = std::move(plans);
  engine_pool_ = std::move(pool);
  engine_counters_ = std::move(counters);
  return OkStatus();
}

}  // namespace mhx
