// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "document.h"

#include "base/status_macros.h"
#include "goddag/persist.h"
#include "xml/parser.h"

namespace mhx {

MultihierarchicalDocument::Builder& MultihierarchicalDocument::Builder::
    SetBaseText(std::string text) {
  base_text_ = std::move(text);
  base_text_set_ = true;
  return *this;
}

MultihierarchicalDocument::Builder& MultihierarchicalDocument::Builder::
    AddHierarchy(std::string name, std::string xml) {
  hierarchies_.emplace_back(std::move(name), std::move(xml));
  return *this;
}

StatusOr<MultihierarchicalDocument> MultihierarchicalDocument::Builder::
    Build() {
  if (!base_text_set_) {
    return FailedPreconditionError("SetBaseText was never called");
  }
  for (size_t i = 0; i < hierarchies_.size(); ++i) {
    for (size_t j = i + 1; j < hierarchies_.size(); ++j) {
      if (hierarchies_[i].first == hierarchies_[j].first) {
        return InvalidArgumentError("duplicate hierarchy name '" +
                                    hierarchies_[i].first + "'");
      }
    }
  }
  auto goddag = std::make_unique<goddag::KyGoddag>(base_text_);
  for (const auto& [name, xml_source] : hierarchies_) {
    auto parsed = xml::Parse(xml_source);
    if (!parsed.ok()) {
      return Status(parsed.status().code(),
                    "hierarchy '" + name + "': " + parsed.status().message());
    }
    auto hid = goddag->AddHierarchy(name, *parsed);
    if (!hid.ok()) return hid.status();
  }
  return MultihierarchicalDocument(std::move(goddag));
}

MultihierarchicalDocument::MultihierarchicalDocument(
    std::unique_ptr<goddag::KyGoddag> g)
    : head_(std::move(g)),
      // Version 1; the index stays lazy so Build() cost is unchanged — the
      // engine's first evaluation builds it once.
      current_(goddag::DocumentSnapshot::Create(head_, /*version=*/1,
                                                /*prebuild_index=*/false)),
      engine_mu_(std::make_unique<std::mutex>()),
      snapshot_mu_(std::make_unique<std::mutex>()),
      writer_mu_(std::make_unique<std::mutex>()) {}

MultihierarchicalDocument::MultihierarchicalDocument(
    std::shared_ptr<goddag::KyGoddag> head,
    std::shared_ptr<const goddag::DocumentSnapshot> snapshot)
    : head_(std::move(head)),
      current_(std::move(snapshot)),
      engine_mu_(std::make_unique<std::mutex>()),
      snapshot_mu_(std::make_unique<std::mutex>()),
      writer_mu_(std::make_unique<std::mutex>()) {}

std::shared_ptr<const goddag::DocumentSnapshot>
MultihierarchicalDocument::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(*snapshot_mu_);
  return current_;
}

uint64_t MultihierarchicalDocument::version() const {
  std::lock_guard<std::mutex> lock(*snapshot_mu_);
  return current_->version();
}

// --- Writer ------------------------------------------------------------------

MultihierarchicalDocument::Writer& MultihierarchicalDocument::Writer::
    AddHierarchy(std::string name, std::string xml) {
  Op op;
  op.kind = Op::Kind::kAddXml;
  op.name = std::move(name);
  op.xml = std::move(xml);
  ops_.push_back(std::move(op));
  return *this;
}

MultihierarchicalDocument::Writer& MultihierarchicalDocument::Writer::
    AddVirtualHierarchy(std::string name,
                        std::vector<goddag::VirtualElement> elements) {
  Op op;
  op.kind = Op::Kind::kAddVirtual;
  op.name = std::move(name);
  op.elements = std::move(elements);
  ops_.push_back(std::move(op));
  return *this;
}

MultihierarchicalDocument::Writer& MultihierarchicalDocument::Writer::
    RemoveVirtualHierarchy(std::string hierarchy_name) {
  Op op;
  op.kind = Op::Kind::kRemoveVirtual;
  op.name = std::move(hierarchy_name);
  ops_.push_back(std::move(op));
  return *this;
}

MultihierarchicalDocument::Writer& MultihierarchicalDocument::Writer::
    PersistTo(std::string path) {
  persist_path_ = std::move(path);
  return *this;
}

namespace {

// An active virtual hierarchy named `name` — the highest table slot when
// several share the name — or NotFound.
StatusOr<goddag::HierarchyId> FindActiveVirtualHierarchy(
    const goddag::KyGoddag& g, const std::string& name) {
  bool found = false;
  goddag::HierarchyId result = 0;
  for (goddag::HierarchyId id = 0; id < g.hierarchy_table_size(); ++id) {
    const goddag::Hierarchy& h = g.hierarchy(id);
    if (h.active && h.is_virtual && h.name == name) {
      result = id;
      found = true;
    }
  }
  if (!found) {
    return NotFoundError("no active virtual hierarchy named '" + name + "'");
  }
  return result;
}

Status CheckHierarchyNameFree(const goddag::KyGoddag& g,
                              const std::string& name) {
  for (goddag::HierarchyId id = 0; id < g.hierarchy_table_size(); ++id) {
    const goddag::Hierarchy& h = g.hierarchy(id);
    if (h.active && h.name == name) {
      return InvalidArgumentError("hierarchy name '" + name +
                                  "' is already in use");
    }
  }
  return OkStatus();
}

}  // namespace

StatusOr<uint64_t> MultihierarchicalDocument::Writer::Commit() {
  if (committed_) {
    return FailedPreconditionError("Writer::Commit may only run once");
  }
  committed_ = true;
  MultihierarchicalDocument* doc = doc_;
  // Serialise against other committing writers only; readers pinning the
  // published snapshot never touch writer_mu_.
  std::lock_guard<std::mutex> writer_lock(*doc->writer_mu_);
  std::shared_ptr<const goddag::DocumentSnapshot> base = doc->PinSnapshot();
  // Copy-on-write: every mutation lands in a private clone. An error below
  // drops the clone; nothing was published.
  std::shared_ptr<goddag::KyGoddag> next = base->goddag().Clone();
  for (Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kAddXml: {
        MHX_RETURN_IF_ERROR(CheckHierarchyNameFree(*next, op.name));
        auto parsed = xml::Parse(op.xml);
        if (!parsed.ok()) {
          return Status(parsed.status().code(),
                        "hierarchy '" + op.name +
                            "': " + parsed.status().message());
        }
        auto hid = next->AddHierarchy(op.name, *parsed);
        if (!hid.ok()) return hid.status();
        break;
      }
      case Op::Kind::kAddVirtual: {
        auto hid =
            next->AddVirtualHierarchy(op.name, std::move(op.elements));
        if (!hid.ok()) return hid.status();
        break;
      }
      case Op::Kind::kRemoveVirtual: {
        MHX_ASSIGN_OR_RETURN(goddag::HierarchyId hid,
                             FindActiveVirtualHierarchy(*next, op.name));
        MHX_RETURN_IF_ERROR(next->RemoveVirtualHierarchy(hid));
        break;
      }
    }
  }
  // The writer pays for the new version's leaf partition and RangeIndex
  // here, before publication, so readers repinning after the swap never
  // rebuild anything (`index_rebuilds` stays flat across commits).
  auto snapshot = goddag::DocumentSnapshot::Create(
      next, base->version() + 1, /*prebuild_index=*/true);
  // Persist before the epoch swap: a failed write aborts the commit with
  // nothing published, keeping document and spill file in agreement.
  if (!persist_path_.empty()) {
    MHX_RETURN_IF_ERROR(goddag::WriteSnapshotFile(*snapshot, persist_path_));
  }
  const uint64_t version = snapshot->version();
  {
    // The entire epoch swap: two pointer assignments under the pin mutex.
    std::lock_guard<std::mutex> lock(*doc->snapshot_mu_);
    doc->head_ = std::move(next);
    doc->current_ = std::move(snapshot);
  }
  return version;
}

// --- queries -----------------------------------------------------------------

StatusOr<std::string> MultihierarchicalDocument::Query(
    std::string_view query) const {
  return engine()->Evaluate(query);
}

StatusOr<std::string> MultihierarchicalDocument::Query(
    std::string_view query, const QueryOptions& options) const {
  return engine()->Evaluate(query, options);
}

xquery::Engine* MultihierarchicalDocument::engine() const {
  std::lock_guard<std::mutex> lock(*engine_mu_);
  if (engine_ == nullptr) {
    engine_ = std::make_unique<xquery::Engine>(this, engine_plans_,
                                               engine_pool_,
                                               engine_counters_);
  }
  return engine_.get();
}

Status MultihierarchicalDocument::ConfigureEngine(
    std::shared_ptr<xquery::PlanCache> plans,
    std::shared_ptr<base::ThreadPool> pool,
    std::shared_ptr<xquery::EngineCounters> counters) const {
  std::lock_guard<std::mutex> lock(*engine_mu_);
  if (engine_ != nullptr) {
    return FailedPreconditionError(
        "ConfigureEngine must run before the engine is created");
  }
  engine_plans_ = std::move(plans);
  engine_pool_ = std::move(pool);
  engine_counters_ = std::move(counters);
  return OkStatus();
}

}  // namespace mhx
