// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "obs/metrics.h"

#include <cstdio>
#include <utility>

namespace mhx::obs {

namespace {

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

// HELP text escaping per the exposition format: backslash and newline.
std::string EscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || !IsNameChar(name[0], /*first=*/true)) out += '_';
  for (size_t i = 0; i < name.size(); ++i) {
    out += IsNameChar(name[i], /*first=*/i == 0 && out.empty())
               ? name[i]
               : '_';
  }
  return out;
}

uint64_t MetricsRegistry::Entry::CounterValue() const {
  if (counter != nullptr) return counter->value();
  if (owned_counter != nullptr) return owned_counter->value();
  if (counter_fn) return counter_fn();
  return 0;
}

int64_t MetricsRegistry::Entry::GaugeValue() const {
  if (owned_gauge != nullptr) return owned_gauge->value();
  if (gauge_fn) return gauge_fn();
  return 0;
}

const base::LatencyHistogram* MetricsRegistry::Entry::Timer() const {
  if (timer != nullptr) return timer;
  return owned_timer.get();
}

MetricsRegistry::Entry& MetricsRegistry::Reset(std::string name,
                                               Entry::Kind kind,
                                               std::string_view help) {
  Entry& entry = entries_[std::move(name)];
  entry = Entry{};
  entry.kind = kind;
  entry.help = std::string(help);
  return entry;
}

Counter* MetricsRegistry::AddCounter(std::string_view name,
                                     std::string_view help) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Register-once: the same owned counter comes back; anything else
    // under this name is a wiring bug the caller must notice.
    return it->second.owned_counter.get();
  }
  Entry& entry = Reset(std::move(key), Entry::Kind::kCounter, help);
  entry.owned_counter = std::make_unique<Counter>();
  return entry.owned_counter.get();
}

Gauge* MetricsRegistry::AddGauge(std::string_view name,
                                 std::string_view help) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.owned_gauge.get();
  Entry& entry = Reset(std::move(key), Entry::Kind::kGauge, help);
  entry.owned_gauge = std::make_unique<Gauge>();
  return entry.owned_gauge.get();
}

base::LatencyHistogram* MetricsRegistry::AddTimer(std::string_view name,
                                                  std::string_view help) {
  std::string key = SanitizeMetricName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) return it->second.owned_timer.get();
  Entry& entry = Reset(std::move(key), Entry::Kind::kTimer, help);
  entry.owned_timer = std::make_unique<base::LatencyHistogram>();
  return entry.owned_timer.get();
}

void MetricsRegistry::RegisterCounter(std::string_view name,
                                      std::string_view help,
                                      const Counter* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  Reset(SanitizeMetricName(name), Entry::Kind::kCounter, help).counter =
      counter;
}

void MetricsRegistry::RegisterCounter(std::string_view name,
                                      std::string_view help,
                                      std::function<uint64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Reset(SanitizeMetricName(name), Entry::Kind::kCounter, help).counter_fn =
      std::move(read);
}

void MetricsRegistry::RegisterGauge(std::string_view name,
                                    std::string_view help,
                                    std::function<int64_t()> read) {
  std::lock_guard<std::mutex> lock(mu_);
  Reset(SanitizeMetricName(name), Entry::Kind::kGauge, help).gauge_fn =
      std::move(read);
}

void MetricsRegistry::RegisterTimer(std::string_view name,
                                    std::string_view help,
                                    const base::LatencyHistogram* timer) {
  std::lock_guard<std::mutex> lock(mu_);
  Reset(SanitizeMetricName(name), Entry::Kind::kTimer, help).timer = timer;
}

std::string MetricsRegistry::TextExport() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    out += "# HELP " + name + " " + EscapeHelp(entry.help) + "\n";
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(entry.CounterValue()) + "\n";
        break;
      case Entry::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(entry.GaugeValue()) + "\n";
        break;
      case Entry::Kind::kTimer: {
        const base::LatencyHistogram* h = entry.Timer();
        out += "# TYPE " + name + " summary\n";
        out += name + "{quantile=\"0.5\"} " +
               std::to_string(h->ValueAtQuantile(0.5)) + "\n";
        out += name + "{quantile=\"0.95\"} " +
               std::to_string(h->ValueAtQuantile(0.95)) + "\n";
        out += name + "{quantile=\"0.99\"} " +
               std::to_string(h->ValueAtQuantile(0.99)) + "\n";
        out += name + "_sum " + std::to_string(h->Sum()) + "\n";
        out += name + "_count " + std::to_string(h->count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::JsonExport() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) + "\":";
    switch (entry.kind) {
      case Entry::Kind::kCounter:
        out += std::to_string(entry.CounterValue());
        break;
      case Entry::Kind::kGauge:
        out += std::to_string(entry.GaugeValue());
        break;
      case Entry::Kind::kTimer: {
        const base::LatencyHistogram* h = entry.Timer();
        out += "{\"count\":" + std::to_string(h->count()) +
               ",\"sum\":" + std::to_string(h->Sum()) +
               ",\"max\":" + std::to_string(h->max()) +
               ",\"p50\":" + std::to_string(h->ValueAtQuantile(0.5)) +
               ",\"p95\":" + std::to_string(h->ValueAtQuantile(0.95)) +
               ",\"p99\":" + std::to_string(h->ValueAtQuantile(0.99)) + "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace mhx::obs
