// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// A fixed-capacity ring of the most recent slow queries. Writers claim a
// slot with one atomic ticket fetch_add — no writer ever waits for
// another writer on a distinct slot — then fill the slot under that
// slot's own mutex. The per-slot mutex exists because entries carry
// strings (query text, doc name, span names) that cannot be published
// with a bare atomic; it is uncontended unless the ring wraps onto a
// slot whose previous writer is still mid-copy, or a DumpSlowQueries()
// reader lands on an in-flight slot. Either way the critical section is
// a few string copies, never an allocation-heavy query.
//
// Recording is decided by the caller (CorpusService compares the trace's
// wall time against CorpusOptions::slow_query_threshold_us); the log
// itself only stores and snapshots.

#ifndef MHX_OBS_SLOW_QUERY_LOG_H_
#define MHX_OBS_SLOW_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace mhx::obs {

// One completed slow query: identity, wall time, the trace's stage
// breakdown, and the per-query counter deltas captured at completion.
struct SlowQueryRecord {
  uint64_t sequence = 0;       // monotonically increasing capture order
  uint64_t query_hash = 0;     // std::hash of the query text
  std::string doc_name;
  std::string query;           // full text; slow queries are rare
  uint64_t total_us = 0;
  std::vector<QueryTrace::Span> spans;
  uint64_t parallel_tasks = 0;
  uint64_t steals = 0;
};

// The fixed-capacity lock-light ring of SlowQueryRecords (see the file
// comment for the capture and overwrite semantics).
class SlowQueryLog {
 public:
  // Capacity is fixed at construction; 0 disables recording entirely.
  explicit SlowQueryLog(size_t capacity);
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Stores a copy of `record` (its sequence field is assigned here),
  // overwriting the oldest entry once the ring is full.
  void Record(SlowQueryRecord record);

  // Snapshot of the currently retained records, oldest first. Records
  // being overwritten during the walk appear as either the old or the
  // new version, never torn.
  std::vector<SlowQueryRecord> DumpSlowQueries() const;

  // Total queries ever recorded (not capped by capacity).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  struct Slot {
    mutable std::mutex mu;
    bool filled = false;
    SlowQueryRecord record;
  };

  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_{0};  // ticket counter; slot = ticket % capacity
};

}  // namespace mhx::obs

#endif  // MHX_OBS_SLOW_QUERY_LOG_H_
