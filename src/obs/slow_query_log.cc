// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "obs/slow_query_log.h"

#include <algorithm>
#include <utility>

namespace mhx::obs {

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity),
      slots_(capacity > 0 ? std::make_unique<Slot[]>(capacity) : nullptr) {}

void SlowQueryLog::Record(SlowQueryRecord record) {
  if (capacity_ == 0) return;
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  record.sequence = ticket;
  Slot& slot = slots_[ticket % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A writer that wrapped a full lap while we waited has a higher ticket;
  // keep the newer record.
  if (slot.filled && slot.record.sequence > ticket) return;
  slot.record = std::move(record);
  slot.filled = true;
}

std::vector<SlowQueryRecord> SlowQueryLog::DumpSlowQueries() const {
  std::vector<SlowQueryRecord> out;
  if (capacity_ == 0) return out;
  out.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled) out.push_back(slot.record);
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryRecord& a, const SlowQueryRecord& b) {
              return a.sequence < b.sequence;
            });
  return out;
}

}  // namespace mhx::obs
