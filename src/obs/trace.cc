// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace mhx::obs {

void QueryTrace::AddSpan(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

void QueryTrace::AddStage(std::string_view name, uint64_t begin_ns,
                          uint64_t end_ns) {
  Span span;
  span.name = std::string(name);
  span.kind = SpanKind::kStage;
  span.begin_ns = begin_ns;
  span.end_ns = end_ns;
  AddSpan(std::move(span));
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::string QueryTrace::DebugString() const {
  std::vector<Span> sorted = spans();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Span& a, const Span& b) {
                     return a.begin_ns < b.begin_ns;
                   });
  std::string out;
  for (const Span& span : sorted) {
    out += span.name + " [" + std::to_string(span.begin_ns / 1000) + ".." +
           std::to_string(span.end_ns / 1000) + "]us dur=" +
           std::to_string((span.end_ns - span.begin_ns) / 1000) + "us";
    if (span.kind == SpanKind::kSlot) {
      out += " (slot " + std::to_string(span.slot) + ", bindings " +
             std::to_string(span.bindings) + ", steals " +
             std::to_string(span.steals) + ")";
    }
    out += "\n";
  }
  const uint64_t total_steals = steals();
  const uint64_t tasks = parallel_tasks();
  if (tasks > 0 || total_steals > 0) {
    out += "parallel_tasks=" + std::to_string(tasks) +
           " steals=" + std::to_string(total_steals) + "\n";
  }
  return out;
}

}  // namespace mhx::obs
