// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Per-query stage tracing: a QueryTrace rides through QueryOptions and
// collects monotonic-clock spans for each stage of a query's life —
// parse, plan-cache lookup, admission wait, document build, index
// materialisation, evaluation, serialisation — plus, when the query fans
// out, one span per work-stealing scheduler slot with the slot's binding
// count and steal attribution.
//
// Contract:
//   * Zero cost when absent. QueryOptions::trace defaults to nullptr and
//     every instrumentation site is gated on that pointer; an untraced
//     query pays exactly one branch per site, no clock reads, no
//     allocation, no locks.
//   * Thread-safe when present. AddSpan() is mutex-guarded (only traced
//     queries pay it); parallel-loop slot spans are written slot-private
//     inside the loop and merged by the coordinator at the join, sorted
//     by each slot's first binding index, so a traced parallel query is
//     TSan-clean and its span list is deterministic given the steal
//     pattern.
//
// Span model (see DESIGN.md "Observability"): `kind == kStage` spans are
// the top-level pipeline — consecutive, non-overlapping, and together
// covering nearly the query's wall time (the gaps are map lookups and
// option plumbing). `kind == kSlot` spans are per-slot evaluation detail
// inside the "evaluate" stage and do overlap each other by design —
// that's the parallelism being shown.

#ifndef MHX_OBS_TRACE_H_
#define MHX_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mhx::obs {

class QueryTrace {
 public:
  enum class SpanKind {
    kStage,  // one top-level pipeline stage; stages never overlap
    kSlot,   // one scheduler slot's share of a parallel loop
  };

  struct Span {
    std::string name;       // "parse", "evaluate", "loop@12/slot3", ...
    SpanKind kind = SpanKind::kStage;
    uint64_t begin_ns = 0;  // on this trace's clock (0 = construction)
    uint64_t end_ns = 0;
    // kSlot attribution: which slot, how many bindings it evaluated, how
    // many of its claims were steals out of a sibling's deque.
    uint64_t slot = 0;
    uint64_t bindings = 0;
    uint64_t steals = 0;
  };

  QueryTrace() : epoch_(std::chrono::steady_clock::now()) {}
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  // Monotonic nanoseconds since this trace was constructed.
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  // Thread-safe; spans() returns them in insertion order.
  void AddSpan(Span span);
  void AddStage(std::string_view name, uint64_t begin_ns, uint64_t end_ns);

  std::vector<Span> spans() const;

  // Per-query totals accumulated at parallel-loop joins (relaxed; nested
  // loops join on worker threads).
  void NoteSteals(uint64_t n) {
    steals_.fetch_add(n, std::memory_order_relaxed);
  }
  void NoteParallelTasks(uint64_t n) {
    parallel_tasks_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  uint64_t parallel_tasks() const {
    return parallel_tasks_.load(std::memory_order_relaxed);
  }

  // One line per span, sorted by begin time: name, [begin..end] in µs,
  // duration, and slot attribution where present.
  std::string DebugString() const;

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::atomic<uint64_t> steals_{0};
  std::atomic<uint64_t> parallel_tasks_{0};
};

// Records one kStage span over its scope. A null trace makes construction
// and destruction a branch each — the zero-cost-when-disabled contract.
class StageTimer {
 public:
  StageTimer(QueryTrace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) {
      name_ = name;
      begin_ns_ = trace_->NowNs();
    }
  }
  ~StageTimer() {
    if (trace_ != nullptr) {
      trace_->AddStage(name_, begin_ns_, trace_->NowNs());
    }
  }
  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  QueryTrace* trace_;
  const char* name_ = "";
  uint64_t begin_ns_ = 0;
};

}  // namespace mhx::obs

#endif  // MHX_OBS_TRACE_H_
