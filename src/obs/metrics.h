// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The process observability registry: named counters, gauges, and
// latency timers behind one export surface. The hot path is a plain
// relaxed atomic — obs::Counter / obs::Gauge are standalone value types a
// component owns and bumps exactly like the raw std::atomic it replaces —
// and the registry is only a directory over them: instruments register
// once at wiring time (CorpusService construction), and TextExport() /
// JsonExport() walk the directory on demand. Nothing on a query's path
// ever takes the registry lock.
//
// Two registration styles:
//   * Owned: AddCounter/AddGauge/AddTimer create the instrument inside the
//     registry and hand back a stable pointer — for metrics that have no
//     other natural owner (query totals, slow-log capture counts).
//   * External: RegisterCounter/RegisterGauge/RegisterTimer point the
//     registry at an instrument (or a read callback) owned elsewhere — how
//     the pre-existing PlanCache / Engine / CorpusService counters migrate
//     without moving. The referent must outlive the registry; in the
//     corpus service both are members with nested lifetimes.
//
// Naming scheme (see DESIGN.md "Observability"): Prometheus conventions —
// `mhx_<component>_<what>[_total]`, `_total` for monotonic counters, unit
// suffixes spelled out (`_us`). Names are sanitised to the Prometheus
// charset on registration, so TextExport() is always valid exposition
// text: counters and gauges export as their bare sample, timers as a
// summary (quantile samples + `_sum` + `_count`).

#ifndef MHX_OBS_METRICS_H_
#define MHX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "base/histogram.h"

namespace mhx::obs {

// A relaxed monotonic counter. Add() is one fetch_add; safe from any
// number of threads; exact once traffic quiesces.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// A relaxed settable gauge (current level, may go down).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// The directory over owned and external instruments described in the file
// comment; mutex-guarded at registration and export time only.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned instruments. The returned pointer is stable for the registry's
  // lifetime. Calling again with a name that already holds an owned
  // instrument of the same kind returns that instrument (register-once);
  // a kind collision returns nullptr.
  Counter* AddCounter(std::string_view name, std::string_view help);
  Gauge* AddGauge(std::string_view name, std::string_view help);
  base::LatencyHistogram* AddTimer(std::string_view name,
                                   std::string_view help);

  // External instruments, read through at export time. The pointer (or
  // everything a callback captures) must outlive the registry. A repeated
  // name replaces the earlier registration.
  void RegisterCounter(std::string_view name, std::string_view help,
                       const Counter* counter);
  void RegisterCounter(std::string_view name, std::string_view help,
                       std::function<uint64_t()> read);
  void RegisterGauge(std::string_view name, std::string_view help,
                     std::function<int64_t()> read);
  void RegisterTimer(std::string_view name, std::string_view help,
                     const base::LatencyHistogram* timer);

  // Prometheus text exposition format: per metric a # HELP line, a # TYPE
  // line, and the sample(s) — timers as summaries with quantile labels
  // 0.5 / 0.95 / 0.99 plus _sum and _count. Metrics export sorted by name.
  std::string TextExport() const;

  // One JSON object keyed by metric name: counters and gauges as numbers,
  // timers as {"count","sum","max","p50","p95","p99"} — the snapshot
  // bench_corpus embeds in its bench-JSON label.
  std::string JsonExport() const;

  size_t metric_count() const;

 private:
  struct Entry {
    enum class Kind { kCounter, kGauge, kTimer };
    Kind kind = Kind::kCounter;
    std::string help;
    // At most one of each group is set, matching `kind`.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<base::LatencyHistogram> owned_timer;
    const Counter* counter = nullptr;
    const base::LatencyHistogram* timer = nullptr;
    std::function<uint64_t()> counter_fn;
    std::function<int64_t()> gauge_fn;

    uint64_t CounterValue() const;
    int64_t GaugeValue() const;
    const base::LatencyHistogram* Timer() const;
  };

  Entry& Reset(std::string name, Entry::Kind kind, std::string_view help);

  // Registration and export only; never a query hot path.
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// Clamps `name` to the Prometheus metric-name charset
// ([a-zA-Z_:][a-zA-Z0-9_:]*): every invalid character becomes '_', an
// empty or digit-leading name gains a '_' prefix.
std::string SanitizeMetricName(std::string_view name);

}  // namespace mhx::obs

#endif  // MHX_OBS_METRICS_H_
