// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Evaluation-scoped hierarchy overlays. A GoddagOverlay is one temporary
// virtual hierarchy (the kind analyze-string() materialises) held in a
// private node arena *outside* the base KyGoddag: the base document is never
// mutated, so any number of evaluations can build, read, and drop overlays
// concurrently while sharing one immutable base.
//
// Id namespace: overlay nodes live in the upper half of the NodeId space
// (kOverlayIdBit set). Blocks of ids are leased from an OverlayIdAllocator
// shared by every overlay that can ever meet in one view, so overlay ids
// never collide with base ids or with each other. An OverlayView is the
// single node-resolution seam readers go through: it resolves base ids
// against the KyGoddag, overlay ids against the (few) overlays registered
// with it, and maintains the merged leaf partition (base leaves re-split at
// overlay element boundaries).
//
// Lifetime rules: an overlay is immutable after Create and refcounted
// (shared_ptr); it releases its id block on destruction. A view registers
// overlays but never outlives the evaluation that owns it; the XQuery
// engine keeps an evaluation's overlays alive past the evaluation only
// through the KeptTemporaries handle (xquery/engine.h).
//
// Overlays sit *above* the MVCC document-version layer: an overlay
// annotates the one immutable snapshot its evaluation pinned and is never
// part of any published version — Writer commits and overlay builds never
// meet in a write. CONCURRENCY.md is the authoritative statement of the
// layering and of every lifetime rule summarised here.

#ifndef MHX_GODDAG_OVERLAY_H_
#define MHX_GODDAG_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "base/statusor.h"
#include "goddag/kygoddag.h"

namespace mhx::goddag {

// Overlay node ids occupy the upper half of the NodeId space. kInvalidNode
// also has the bit set and is never a valid overlay id.
inline constexpr NodeId kOverlayIdBit = 0x80000000u;

inline bool IsOverlayId(NodeId id) {
  return (id & kOverlayIdBit) != 0 && id != kInvalidNode;
}

// GNode::hierarchy value for overlay nodes: overlays are not entries of the
// base hierarchy table, so the field deliberately points nowhere.
inline constexpr HierarchyId kOverlayHierarchy = static_cast<HierarchyId>(-1);

// Thread-safe lessor of contiguous overlay-id blocks. All overlays that can
// appear together in one OverlayView must draw from the same allocator (the
// XQuery engine owns one per engine, shared with every overlay it creates
// so an overlay kept alive past the engine still releases safely). The
// namespace holds 2^31 - 1 ids; blocks come from a first-fit scan of the
// free list (released holes, coalesced when adjacent) and only then from
// the monotonic tail cursor. Reclamation is two-tier: tail rewind pulls
// the cursor back over a released suffix, and holes sandwiched under
// live blocks — the corpus reality of many long-lived engines sharing one
// process — are reused directly by first fit instead of waiting for the
// blocks above them to go. Exhaustion therefore requires ~2^31 overlay
// nodes in *live* blocks plus unfillable fragmentation slack.
class OverlayIdAllocator {
 public:
  // Leases a block of `count` ids and returns its first id (overlay bit
  // set), or kInvalidNode if the namespace is exhausted.
  NodeId Allocate(size_t count);
  // Returns a block previously obtained from Allocate, identified by its
  // first id.
  void Release(NodeId begin, size_t count);

 private:
  std::mutex mu_;
  uint32_t next_ = 0;
  uint64_t outstanding_ = 0;
  // Released blocks (offset -> count) not yet absorbed by a tail rewind:
  // blocks freed underneath a still-live block wait here and are reclaimed
  // the moment everything above them releases.
  std::map<uint32_t, uint32_t> freed_;
};

// One temporary virtual hierarchy over an immutable base document: an
// auto-created root element spanning the whole base text (plumbing — kept
// out of extended-axis scans, exactly like the root KyGoddag's virtual
// hierarchies auto-create) plus the given elements, which must pairwise
// nest or be disjoint. Nodes live at the contiguous id block
// [id_begin(), id_end()); the root is id_begin(), the elements follow in
// document order. Immutable after Create.
class GoddagOverlay {
 public:
  // Validates `elements` (same rules as KyGoddag::AddVirtualHierarchy) and
  // builds the hierarchy. Fails with the validation error, or with
  // ResourceExhausted when `ids` cannot lease a block. The overlay shares
  // ownership of the allocator, so it may outlive the engine that created
  // it (a KeptTemporaries handle held past engine destruction stays safe).
  static StatusOr<std::shared_ptr<const GoddagOverlay>> Create(
      const KyGoddag* base, std::shared_ptr<OverlayIdAllocator> ids,
      const std::string& name, std::vector<VirtualElement> elements);

  ~GoddagOverlay();

  GoddagOverlay(const GoddagOverlay&) = delete;
  GoddagOverlay& operator=(const GoddagOverlay&) = delete;

  // The leased contiguous id block [id_begin(), id_end()). Immutable, so
  // every accessor on this class is safe from any thread without locking.
  NodeId id_begin() const { return id_begin_; }
  // One past the last id of the block.
  NodeId id_end() const {
    return id_begin_ + static_cast<NodeId>(arena_.size());
  }
  // Number of nodes (root + elements) in the overlay.
  size_t node_count() const { return arena_.size(); }
  // Whether `id` falls inside this overlay's id block.
  bool Contains(NodeId id) const {
    return id >= id_begin_ && id < id_end();
  }
  // The auto-created whole-text root. Plumbing, not a result: extended-axis
  // scans skip it (it would otherwise be an xancestor of every node).
  NodeId root() const { return id_begin_; }
  // First non-root element id; elements occupy [elements_begin(), id_end())
  // in document order.
  NodeId elements_begin() const { return id_begin_ + 1; }

  // The node stored at `id`; `Contains(id)` is the caller's precondition
  // (resolution normally goes through OverlayView::node).
  const GNode& node(NodeId id) const { return arena_[id - id_begin_]; }

 private:
  GoddagOverlay(std::shared_ptr<OverlayIdAllocator> ids, NodeId id_begin)
      : ids_(std::move(ids)), id_begin_(id_begin) {}

  std::shared_ptr<OverlayIdAllocator> ids_;
  NodeId id_begin_;
  std::vector<GNode> arena_;
};

// The read seam of one evaluation: an immutable base KyGoddag plus every
// overlay visible to the evaluation (hierarchies kept by earlier
// EvaluateKeepingTemporaries calls, then the evaluation's own). Node
// resolution, node-to-string, and the leaf partition all go through here.
//
// Views form a fork tree: a parallel worker forks a child view off the
// coordinator's view and registers its own overlays there, so
// analyze-string() inside a fanned-out binding body writes worker-private
// state only. A child resolves ids it does not own — and reads the leaf
// partition it re-splits — through its parent, so the coordinator's
// overlays stay visible without being copied. At join the engine re-adds
// the workers' overlays to the coordinator's view in binding order.
//
// Not thread-safe for mutation: AddOverlay may only be called by the
// evaluation (or worker) that owns the view, never concurrently with its
// readers. A parent view must be frozen — no AddOverlay — while forked
// children exist; the engine guarantees this because the forking evaluator
// blocks in the join for as long as its workers run. Reads are const and
// safe to share across threads (the lazily merged leaf partition is
// mutex-guarded).
class OverlayView {
 public:
  // A root view over `base`, which must stay alive and structurally
  // unchanged for the view's lifetime — the engine satisfies this by
  // pointing views at the goddag of a pinned DocumentSnapshot.
  explicit OverlayView(const KyGoddag* base) : base_(base) {}

  // Forks a worker-private child view: ids the child does not own resolve
  // through `parent` (recursively up the fork tree), and the child's leaf
  // partition starts from the parent's merged partition. `parent` must
  // outlive the child and stay frozen while the child exists.
  explicit OverlayView(const OverlayView* parent)
      : base_(parent->base_), parent_(parent) {}

  // The parent this view was forked from, or nullptr for a root view.
  const OverlayView* parent() const { return parent_; }

  // The base document, its text, and the GODDAG root — straight
  // pass-throughs to the (immutable) base; safe from any thread.
  const KyGoddag& base() const { return *base_; }
  // The shared base text every hierarchy and overlay annotates.
  const std::string& base_text() const { return base_->base_text(); }
  // The base GODDAG's unique root node id.
  NodeId root() const { return base_->root(); }

  // Registers an overlay (kept sorted by id_begin for binary-search
  // resolution) and queues it for the merged leaf partition, which is
  // spliced lazily by the next leaves() call: all queued overlays'
  // boundaries are folded in one batched sorted pass (O(partition + N) for
  // N boundaries, not O(partition * N) per-boundary inserts). Evaluations
  // that never run a leaf() step pay nothing for their overlays. Requires
  // the base leaf partition to be materialised (the engine does this
  // before evaluation starts).
  void AddOverlay(std::shared_ptr<const GoddagOverlay> overlay);

  // Overlays registered on THIS view — a forked child's parents hold
  // theirs; readers that must see every overlay visible to the view (the
  // axis layer's overlay scans) walk the parent() chain.
  bool has_overlays() const { return !overlays_.empty(); }
  const std::vector<std::shared_ptr<const GoddagOverlay>>& overlays() const {
    return overlays_;
  }

  // The overlay owning `id` — searched here, then up the parent chain —
  // or nullptr. `id` must be an overlay id.
  const GoddagOverlay* overlay_of(NodeId id) const;

  // Resolves any node id — base ids against the base document, overlay ids
  // against the registered overlays. Like KyGoddag::node, resolving an id
  // that does not exist is undefined behaviour.
  const GNode& node(NodeId id) const {
    return IsOverlayId(id) ? overlay_of(id)->node(id) : base_->node(id);
  }

  // Base-text content dominated by a node (any namespace).
  std::string NodeString(NodeId id) const;

  // The leaf partition this evaluation sees: the parent partition (or, for
  // a root view, the base partition) re-split at every own-overlay element
  // boundary, in text order. Without own overlays this is the parent/base
  // partition itself, no copy; with overlays the merged partition
  // materialises on first use (mutex-guarded: parallel workers sharing the
  // view may race the first call, and leaf() steps are parallel-safe).
  const std::vector<Leaf>& leaves() const;

 private:
  // The partition this view's own splices start from: the parent's merged
  // partition for forked views, the base partition otherwise.
  const std::vector<Leaf>& inherited_leaves() const {
    return parent_ != nullptr ? parent_->leaves() : base_->leaves();
  }
  // Folds every queued overlay's boundaries into merged_leaves_ in one
  // sorted pass. Caller holds leaves_mu_.
  void SpliceQueuedBoundaries() const;

  const KyGoddag* base_;
  const OverlayView* parent_ = nullptr;
  // Sorted by id_begin (allocator blocks are disjoint, so this is a total
  // order).
  std::vector<std::shared_ptr<const GoddagOverlay>> overlays_;
  // Lazily merged partition cache; guarded by leaves_mu_ (AddOverlay needs
  // no guard — only the owning evaluation mutates the view, never while
  // workers read it). unspliced_ holds overlays queued by AddOverlay and
  // not yet folded into merged_leaves_; draining is batched, so a query
  // interleaving analyze-string() with leaf() steps pays one linear merge
  // pass per drain no matter how many boundaries queued up.
  mutable std::mutex leaves_mu_;
  mutable bool merged_init_ = false;
  mutable std::vector<Leaf> merged_leaves_;
  mutable std::vector<std::shared_ptr<const GoddagOverlay>> unspliced_;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_OVERLAY_H_
