// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// TieredLeafPartition: the shared leaf partition behind KyGoddag::leaves(),
// stored as a tiered vector (a sorted sequence of bounded chunks) so a
// persistent boundary splice costs O(log chunks + chunk) instead of the
// O(partition) single-vector insert the E10 ablation pinned. The partition
// is still logically the flat, text-ordered list of leaf cells; Flatten()
// materialises (and caches) that flat view for the read API, which stays
// `const std::vector<Leaf>&`.
//
// Thread-safety: unsynchronized. KyGoddag mutates its partition only on the
// writer path (document build, MVCC clone-and-commit, or a legacy
// mutable_goddag() edit) and publishes it to readers via an immutable
// DocumentSnapshot (goddag/snapshot.h); readers only ever call Flatten() on
// a partition that is no longer mutated.

#ifndef MHX_GODDAG_LEAVES_H_
#define MHX_GODDAG_LEAVES_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "base/text_range.h"

namespace mhx::goddag {

// One cell of the shared leaf partition.
struct Leaf {
  TextRange range;
};

class TieredLeafPartition {
 public:
  // Copyable: a KyGoddag clone (the MVCC writer path) carries its partition
  // over so the clone's own splices start incremental, not from a rebuild.
  TieredLeafPartition() = default;
  TieredLeafPartition(const TieredLeafPartition&) = default;
  TieredLeafPartition& operator=(const TieredLeafPartition&) = default;
  TieredLeafPartition(TieredLeafPartition&&) = default;
  TieredLeafPartition& operator=(TieredLeafPartition&&) = default;

  // Rebuilds the partition from the sorted boundary offsets (the keys of
  // KyGoddag's refcount map). Fewer than two boundaries means an empty base
  // text and an empty partition.
  void AssignFromBoundaries(const std::map<size_t, uint32_t>& boundary_refs);

  // Adopts an already-flat, text-ordered, gap-free partition wholesale: the
  // chunks are carved out of `flat` and the flat view itself is cached, so
  // no per-boundary work happens. The arena loader uses this to stand the
  // partition up straight from validated on-disk boundaries.
  void AssignFlat(std::vector<Leaf> flat);

  // Splits the leaf strictly containing `pos` in two at `pos`. Precondition
  // (guaranteed by the caller's refcount map): `pos` is strictly inside an
  // existing leaf — never 0, the text size, or an existing boundary.
  void InsertBoundary(size_t pos);

  // Merges the leaf ending at `pos` with its successor. Precondition: `pos`
  // is an existing interior boundary (so both the leaf and its successor
  // exist).
  void EraseBoundary(size_t pos);

  // The flat text-ordered partition; rebuilt lazily after mutations and
  // cached, so repeated reads between mutations are free.
  const std::vector<Leaf>& Flatten() const;

  void Clear();

  size_t leaf_count() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Exposed for the tier-sizing tests.
  size_t chunk_count() const { return chunks_.size(); }

 private:
  // Chunks are split when they grow past 2x this, keeping every splice
  // O(log chunks) to locate + O(chunk) to shift.
  static constexpr size_t kTargetChunkCells = 256;

  void SplitChunkIfOversized(size_t chunk_index);

  // Non-empty chunks in text order; chunk_ends_[i] caches
  // chunks_[i].back().range.end for the binary search.
  std::vector<std::vector<Leaf>> chunks_;
  std::vector<size_t> chunk_ends_;
  size_t size_ = 0;
  // Cached flat view for Flatten().
  mutable std::vector<Leaf> flat_;
  mutable bool flat_dirty_ = false;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_LEAVES_H_
