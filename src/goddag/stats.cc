// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/stats.h"

#include <climits>

namespace mhx::goddag {

namespace {
// floor(log2(length)), with length 0 mapped to bucket 0.
size_t LengthBucket(size_t length) {
  size_t bucket = 0;
  while (length > 1) {
    length >>= 1;
    ++bucket;
  }
  return bucket;
}
}  // namespace

SnapshotStats::SnapshotStats(const KyGoddag* goddag) {
  text_size_ = goddag->base_text().size();
  node_table_size_ = goddag->node_table_size();
  for (HierarchyId h = 0; h < goddag->hierarchy_table_size(); ++h) {
    if (goddag->hierarchy(h).active) ++hierarchy_count_;
  }
  per_hierarchy_.resize(goddag->hierarchy_table_size(), 0);
  std::vector<uint32_t> node_name_keys(node_table_size_, kNoNameKey);
  std::vector<uint32_t> soa_begin, soa_end, soa_name_key;
  std::vector<NodeId> soa_id;
  length_log2_.assign(33, 0);
  const bool pack = text_size_ < static_cast<size_t>(INT32_MAX);
  for (NodeId id = 0; id < node_table_size_; ++id) {
    const GNode& node = goddag->node(id);
    if (node.kind != GNodeKind::kElement) continue;
    ++element_count_;
    if (node.hierarchy < per_hierarchy_.size()) {
      ++per_hierarchy_[node.hierarchy];
    }
    auto [it, inserted] = name_keys_.try_emplace(
        node.name, static_cast<uint32_t>(name_counts_.size()));
    if (inserted) name_counts_.push_back(0);
    ++name_counts_[it->second];
    node_name_keys[id] = it->second;
    total_range_length_ += node.range.length();
    ++length_log2_[LengthBucket(node.range.length())];
    if (pack) {
      soa_begin.push_back(static_cast<uint32_t>(node.range.begin));
      soa_end.push_back(static_cast<uint32_t>(node.range.end));
      soa_name_key.push_back(it->second);
      soa_id.push_back(id);
    }
  }
  node_name_keys_ = base::ArrayRef<uint32_t>(std::move(node_name_keys));
  soa_.begin = base::ArrayRef<uint32_t>(std::move(soa_begin));
  soa_.end = base::ArrayRef<uint32_t>(std::move(soa_end));
  soa_.name_key = base::ArrayRef<uint32_t>(std::move(soa_name_key));
  soa_.id = base::ArrayRef<NodeId>(std::move(soa_id));
  soa_.valid = pack;
}

uint32_t SnapshotStats::name_key(std::string_view name) const {
  auto it = name_keys_.find(std::string(name));
  return it == name_keys_.end() ? kNoNameKey : it->second;
}

size_t SnapshotStats::name_count(std::string_view name) const {
  const uint32_t key = name_key(name);
  return key == kNoNameKey ? 0 : name_counts_[key];
}

}  // namespace mhx::goddag
