// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// DocumentSnapshot: one immutable published version of a document — the
// KyGoddag (node table, hierarchy arcs, materialised leaf partition) plus a
// build-once RangeIndex — the unit of the MVCC protocol described in
// CONCURRENCY.md. Readers pin the current snapshot (a shared_ptr copy under
// the document's epoch mutex) for an entire evaluation; writers clone the
// head goddag copy-on-write, apply their mutations off to the side, and
// publish a successor snapshot by swapping the document's pointer. No
// reader ever blocks on a writer: pin and publish are both O(1) pointer
// operations, and a snapshot — goddag and index — is never mutated after
// publication.
//
// Retirement: a snapshot dies when its last reference drops — the document
// repointing to a successor, the last pinned evaluation returning, or the
// last KeptTemporaries handle releasing, whichever comes last. live_count()
// exposes the process-wide population for the `mhx_goddag_live_snapshots`
// gauge and the retirement tests.
//
// Index discipline: the writer path prebuilds the RangeIndex before
// publishing (Create with prebuild_index = true), so readers switching to a
// new version never pay a rebuild — `index_rebuilds` stays flat across
// commits. The initial Build()-time snapshot defers the index to the first
// EnsureIndex() call (the engine's first evaluation), preserving lazy
// startup. EnsureIndex() is thread-safe (std::call_once) and reports
// whether the calling thread actually built, which is how the engine keeps
// its per-engine rebuild accounting exact.
//
// Thread-safety: every method is safe to call concurrently after Create
// returns. The one caveat is the *head* snapshot under the legacy
// mutable_goddag() escape hatch: an in-place edit mutates the shared goddag
// behind this snapshot, which is undefined behaviour while any evaluation
// reads it (see CONCURRENCY.md "legacy mutation path").

#ifndef MHX_GODDAG_SNAPSHOT_H_
#define MHX_GODDAG_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "goddag/index.h"
#include "goddag/kygoddag.h"
#include "goddag/stats.h"

namespace mhx::goddag {

class DocumentSnapshot {
 public:
  // Publishes `goddag` as version `version`: forces the leaf partition (so
  // readers never trigger the lazy rebuild) and, when `prebuild_index`,
  // builds the RangeIndex eagerly — the writer pays, readers never do.
  // `goddag` must be quiesced: no concurrent access during Create.
  static std::shared_ptr<const DocumentSnapshot> Create(
      std::shared_ptr<const KyGoddag> goddag, uint64_t version,
      bool prebuild_index);

  // Publishes a snapshot whose index and stats were materialised elsewhere
  // — the mmap-adoption path of goddag/persist.h, where both borrow arrays
  // straight out of an on-disk arena. `keepalive` is retained for the
  // snapshot's lifetime and keeps that backing storage (the mapping or the
  // loaded buffer) valid; EnsureIndex()/EnsureStats() become no-ops that
  // never rebuild, so `index_rebuilds` stays flat for mapped loads exactly
  // as it does for writer-prebuilt commits. `goddag` must be quiesced.
  static std::shared_ptr<const DocumentSnapshot> Adopt(
      std::shared_ptr<const KyGoddag> goddag, uint64_t version,
      std::unique_ptr<const RangeIndex> index,
      std::unique_ptr<const SnapshotStats> stats,
      std::shared_ptr<const void> keepalive);

  ~DocumentSnapshot();

  DocumentSnapshot(const DocumentSnapshot&) = delete;
  DocumentSnapshot& operator=(const DocumentSnapshot&) = delete;

  const KyGoddag& goddag() const { return *goddag_; }
  const std::shared_ptr<const KyGoddag>& shared_goddag() const {
    return goddag_;
  }

  // Monotonic document version, starting at 1 for Builder::Build's snapshot
  // and +1 per Writer::Commit.
  uint64_t version() const { return version_; }

  // The goddag's revision() when this snapshot was published. A live
  // goddag revision differing from this stamp means the head was edited in
  // place through the legacy mutable_goddag() path after publication.
  uint64_t goddag_revision() const { return revision_at_publish_; }

  // Builds the RangeIndex if no thread has yet (thread-safe, build-once).
  // Returns true iff THIS call performed the build — the engine's rebuild
  // accounting counts exactly those.
  bool EnsureIndex() const;

  // The snapshot's RangeIndex, building it on first use (see EnsureIndex).
  const RangeIndex& index() const;

  // Builds the SnapshotStats if no thread has yet (thread-safe, build-once,
  // same discipline as EnsureIndex). Stats are a pure function of the
  // snapshot's goddag: they follow this version, never the document head,
  // so a planner reading them during a concurrent Writer::Commit sees
  // exactly the statistics of the version it pinned.
  void EnsureStats() const;

  // The snapshot's statistics block, building it on first use.
  const SnapshotStats& stats() const;

  // Snapshots currently alive in the process (relaxed; exact once traffic
  // quiesces). Exported as the `mhx_goddag_live_snapshots` gauge.
  static size_t live_count();

 private:
  DocumentSnapshot(std::shared_ptr<const KyGoddag> goddag, uint64_t version);

  const std::shared_ptr<const KyGoddag> goddag_;
  const uint64_t version_;
  const uint64_t revision_at_publish_;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<const RangeIndex> index_;
  mutable std::once_flag stats_once_;
  mutable std::unique_ptr<const SnapshotStats> stats_;
  // Backing storage for adopted (mmap-loaded) snapshots; null otherwise.
  // Releasing a borrowing ArrayRef never touches the borrowed bytes, so
  // teardown order relative to index_/stats_ is immaterial — the mapping
  // just must live while any accessor can still run, which pinning the
  // snapshot guarantees.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_SNAPSHOT_H_
