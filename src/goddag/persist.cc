// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/persist.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "goddag/index.h"
#include "goddag/kygoddag.h"
#include "goddag/stats.h"

#if defined(__unix__) || defined(__APPLE__)
#define MHX_PERSIST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#include <cerrno>
#endif

namespace mhx::goddag {

namespace {

// The on-disk records are written and read by memcpy / in-place cast; any
// padding would make the format compiler-dependent. Pin every layout.
static_assert(sizeof(ArenaHeader) == 88, "header layout drifted");
static_assert(sizeof(ArenaSectionEntry) == 32, "section entry layout drifted");
static_assert(sizeof(ArenaStringRef) == 8, "string ref layout drifted");
static_assert(sizeof(ArenaNode) == 48, "node record layout drifted");
static_assert(sizeof(ArenaAttrRef) == 8, "attr record layout drifted");
static_assert(sizeof(ArenaHierarchy) == 24, "hierarchy record layout drifted");
static_assert(sizeof(ArenaBoundary) == 16, "boundary record layout drifted");
static_assert(sizeof(ArenaIndexEntry) == 24, "index entry layout drifted");
static_assert(std::is_trivially_copyable_v<ArenaHeader> &&
                  std::is_trivially_copyable_v<ArenaSectionEntry> &&
                  std::is_trivially_copyable_v<ArenaNode> &&
                  std::is_trivially_copyable_v<ArenaHierarchy> &&
                  std::is_trivially_copyable_v<ArenaBoundary> &&
                  std::is_trivially_copyable_v<ArenaIndexEntry>,
              "arena records must be memcpy-safe");

// The zero-copy casts assume a little-endian LP64 host; elsewhere the
// format functions refuse rather than byte-swap (see persist.h).
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
constexpr bool kHostLittleEndian = true;
#else
constexpr bool kHostLittleEndian = false;
#endif
constexpr bool kArenaHostCompatible =
    kHostLittleEndian && sizeof(size_t) == 8 && sizeof(NodeId) == 4;

constexpr uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

Status HostGate() {
  if (!kArenaHostCompatible) {
    return UnimplementedError(
        "arena persistence requires a little-endian LP64 host");
  }
  return OkStatus();
}

Status Malformed(const std::string& what) {
  return InvalidArgumentError("arena: " + what);
}

}  // namespace

// Serializes one published DocumentSnapshot into an arena image. Friend of
// RangeIndex and SnapshotStats: the prebuilt probe arrays and the stats
// block are written verbatim so the loader can adopt them without
// rebuilding.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const DocumentSnapshot& snapshot)
      : snapshot_(snapshot) {}

  StatusOr<std::string> Serialize() {
    MHX_RETURN_IF_ERROR(HostGate());
    const KyGoddag& g = snapshot_.goddag();
    const RangeIndex& index = snapshot_.index();
    const SnapshotStats& stats = snapshot_.stats();
    if (index.revision() != g.revision()) {
      return FailedPreconditionError(
          "arena: snapshot goddag was mutated after publication (index "
          "revision " +
          std::to_string(index.revision()) + " vs goddag revision " +
          std::to_string(g.revision()) + ")");
    }
    if (index.size() != g.element_count() ||
        stats.element_count() != g.element_count()) {
      return InternalError("arena: index/stats element count mismatch");
    }

    CollectNodes(g);
    CollectHierarchies(g);
    CollectBoundaries(g);
    CollectIndex(index);
    CollectStatsNameRefs(stats);
    if (blob_.size() > UINT32_MAX || children_pool_.size() > UINT32_MAX ||
        attr_pool_.size() > UINT32_MAX || hnode_pool_.size() > UINT32_MAX) {
      return UnimplementedError("arena: document exceeds format limits");
    }

    return Emit(g, index, stats);
  }

 private:
  struct Payload {
    ArenaSection kind;
    const void* data;
    uint64_t size;   // bytes
    uint64_t count;  // records
  };

  uint32_t Intern(const std::string& s) {
    auto [it, inserted] =
        interned_.try_emplace(s, static_cast<uint32_t>(string_table_.size()));
    if (inserted) {
      string_table_.push_back(ArenaStringRef{
          static_cast<uint32_t>(blob_.size()), static_cast<uint32_t>(s.size())});
      blob_ += s;
    }
    return it->second;
  }

  void CollectNodes(const KyGoddag& g) {
    nodes_.reserve(g.node_table_size());
    for (NodeId id = 0; id < g.node_table_size(); ++id) {
      const GNode& node = g.node(id);
      ArenaNode rec{};
      rec.begin = node.range.begin;
      rec.end = node.range.end;
      rec.parent = node.parent;
      rec.hierarchy = node.hierarchy;
      rec.kind = static_cast<uint32_t>(node.kind);
      rec.name_ref = node.kind == GNodeKind::kElement ? Intern(node.name)
                                                      : kArenaNoString;
      rec.children_begin = static_cast<uint32_t>(children_pool_.size());
      rec.children_count = static_cast<uint32_t>(node.children.size());
      children_pool_.insert(children_pool_.end(), node.children.begin(),
                            node.children.end());
      rec.attrs_begin = static_cast<uint32_t>(attr_pool_.size());
      rec.attrs_count = static_cast<uint32_t>(node.attributes.size());
      for (const auto& [key, value] : node.attributes) {
        attr_pool_.push_back(ArenaAttrRef{Intern(key), Intern(value)});
      }
      nodes_.push_back(rec);
    }
  }

  void CollectHierarchies(const KyGoddag& g) {
    hierarchies_.reserve(g.hierarchy_table_size());
    for (HierarchyId id = 0; id < g.hierarchy_table_size(); ++id) {
      const Hierarchy& h = g.hierarchy(id);
      ArenaHierarchy rec{};
      if (h.active) {
        rec.name_ref = Intern(h.name);
        rec.root = h.root;
        rec.nodes_begin = static_cast<uint32_t>(hnode_pool_.size());
        rec.nodes_count = static_cast<uint32_t>(h.nodes.size());
        hnode_pool_.insert(hnode_pool_.end(), h.nodes.begin(), h.nodes.end());
        rec.flags = kArenaHierarchyActive |
                    (h.is_virtual ? kArenaHierarchyVirtual : 0u);
      } else {
        rec.name_ref = kArenaNoString;
        rec.root = kInvalidNode;
      }
      hierarchies_.push_back(rec);
    }
  }

  // Recomputes the leaf-partition boundary refcounts exactly as
  // KyGoddag::RebuildLeaves does: permanent sentinels at 0 and text size,
  // one ref per live element endpoint. Writing the derived map (rather
  // than reaching into possibly-stale private state) keeps the arena a
  // pure function of the node table.
  void CollectBoundaries(const KyGoddag& g) {
    const size_t n = g.base_text().size();
    if (n == 0) return;
    std::map<size_t, uint32_t> refs;
    refs[0] = 1;
    refs[n] = 1;
    for (NodeId id = 0; id < g.node_table_size(); ++id) {
      const GNode& node = g.node(id);
      if (node.kind != GNodeKind::kElement) continue;
      ++refs[node.range.begin];
      ++refs[node.range.end];
    }
    boundaries_.reserve(refs.size());
    for (const auto& [pos, count] : refs) {
      boundaries_.push_back(ArenaBoundary{pos, count, 0});
    }
  }

  void CollectIndex(const RangeIndex& index) {
    by_begin_.reserve(index.by_begin_.size());
    for (const RangeIndex::Entry& e : index.by_begin_) {
      by_begin_.push_back(ArenaIndexEntry{e.range.begin, e.range.end, e.id, 0});
    }
    by_end_.reserve(index.by_end_.size());
    for (const RangeIndex::Entry& e : index.by_end_) {
      by_end_.push_back(ArenaIndexEntry{e.range.begin, e.range.end, e.id, 0});
    }
  }

  void CollectStatsNameRefs(const SnapshotStats& stats) {
    // Every stats name is some live element's name, so Intern only returns
    // refs already created by CollectNodes — iteration order of the
    // unordered map cannot perturb the blob.
    name_refs_.assign(stats.name_counts_.size(), kArenaNoString);
    for (const auto& [name, key] : stats.name_keys_) {
      name_refs_[key] = Intern(name);
    }
  }

  StatusOr<std::string> Emit(const KyGoddag& g, const RangeIndex& index,
                             const SnapshotStats& stats) {
    const RangeSoA& soa = stats.soa();
    const Payload payloads[kArenaSectionKinds] = {
        {ArenaSection::kStringBlob, blob_.data(), blob_.size(), blob_.size()},
        {ArenaSection::kStringTable, string_table_.data(),
         string_table_.size() * sizeof(ArenaStringRef), string_table_.size()},
        {ArenaSection::kBaseText, g.base_text().data(), g.base_text().size(),
         g.base_text().size()},
        {ArenaSection::kNodes, nodes_.data(), nodes_.size() * sizeof(ArenaNode),
         nodes_.size()},
        {ArenaSection::kChildren, children_pool_.data(),
         children_pool_.size() * sizeof(uint32_t), children_pool_.size()},
        {ArenaSection::kAttrs, attr_pool_.data(),
         attr_pool_.size() * sizeof(ArenaAttrRef), attr_pool_.size()},
        {ArenaSection::kHierarchies, hierarchies_.data(),
         hierarchies_.size() * sizeof(ArenaHierarchy), hierarchies_.size()},
        {ArenaSection::kHierarchyNodes, hnode_pool_.data(),
         hnode_pool_.size() * sizeof(uint32_t), hnode_pool_.size()},
        {ArenaSection::kLeafBoundaries, boundaries_.data(),
         boundaries_.size() * sizeof(ArenaBoundary), boundaries_.size()},
        {ArenaSection::kIndexByBegin, by_begin_.data(),
         by_begin_.size() * sizeof(ArenaIndexEntry), by_begin_.size()},
        {ArenaSection::kIndexByEnd, by_end_.data(),
         by_end_.size() * sizeof(ArenaIndexEntry), by_end_.size()},
        {ArenaSection::kIndexMaxEnd, index.max_end_.data(),
         index.max_end_.size() * sizeof(uint64_t), index.max_end_.size()},
        {ArenaSection::kSoaBegin, soa.begin.data(),
         soa.begin.size() * sizeof(uint32_t), soa.begin.size()},
        {ArenaSection::kSoaEnd, soa.end.data(),
         soa.end.size() * sizeof(uint32_t), soa.end.size()},
        {ArenaSection::kSoaNameKey, soa.name_key.data(),
         soa.name_key.size() * sizeof(uint32_t), soa.name_key.size()},
        {ArenaSection::kSoaId, soa.id.data(), soa.id.size() * sizeof(uint32_t),
         soa.id.size()},
        {ArenaSection::kNodeNameKeys, stats.node_name_keys().data(),
         stats.node_name_keys().size() * sizeof(uint32_t),
         stats.node_name_keys().size()},
        {ArenaSection::kStatsNameRefs, name_refs_.data(),
         name_refs_.size() * sizeof(uint32_t), name_refs_.size()},
        {ArenaSection::kStatsNameCounts, stats.name_counts_.data(),
         stats.name_counts_.size() * sizeof(uint64_t),
         stats.name_counts_.size()},
        {ArenaSection::kPerHierarchy, stats.per_hierarchy_.data(),
         stats.per_hierarchy_.size() * sizeof(uint64_t),
         stats.per_hierarchy_.size()},
        {ArenaSection::kLengthHistogram, stats.length_log2_.data(),
         stats.length_log2_.size() * sizeof(uint64_t), stats.length_log2_.size()},
    };

    const uint64_t table_offset = sizeof(ArenaHeader);
    const uint64_t body_offset = AlignUp(
        table_offset + kArenaSectionKinds * sizeof(ArenaSectionEntry),
        kArenaSectionAlign);
    ArenaSectionEntry table[kArenaSectionKinds];
    uint64_t cursor = body_offset;
    uint64_t file_size = body_offset;
    for (uint32_t i = 0; i < kArenaSectionKinds; ++i) {
      const Payload& p = payloads[i];
      table[i] = ArenaSectionEntry{static_cast<uint32_t>(p.kind), 0, cursor,
                                   p.size, p.count};
      file_size = cursor + p.size;
      cursor = AlignUp(file_size, kArenaSectionAlign);
    }

    ArenaHeader header{};
    header.magic = kArenaMagic;
    header.format_version = kArenaFormatVersion;
    header.file_size = file_size;
    header.section_count = kArenaSectionKinds;
    header.flags = soa.valid ? kArenaFlagSoaValid : 0u;
    header.doc_version = snapshot_.version();
    header.goddag_revision = g.revision();
    header.element_count = g.element_count();
    header.text_size = g.base_text().size();
    header.total_range_length = stats.total_range_length();
    header.body_offset = body_offset;

    std::string out(file_size, '\0');
    for (uint32_t i = 0; i < kArenaSectionKinds; ++i) {
      if (payloads[i].size == 0) continue;
      std::memcpy(&out[table[i].offset], payloads[i].data, payloads[i].size);
    }
    std::memcpy(&out[table_offset], table, sizeof(table));
    header.body_checksum =
        ArenaBodyChecksum(out.data() + body_offset, file_size - body_offset);
    ArenaHeader for_checksum = header;
    for_checksum.header_checksum = 0;
    header.header_checksum =
        ArenaFnv1a64(&out[table_offset], sizeof(table),
                     ArenaFnv1a64(&for_checksum, sizeof(for_checksum)));
    std::memcpy(&out[0], &header, sizeof(header));
    return out;
  }

  const DocumentSnapshot& snapshot_;
  std::string blob_;
  std::vector<ArenaStringRef> string_table_;
  std::unordered_map<std::string, uint32_t> interned_;
  std::vector<ArenaNode> nodes_;
  std::vector<uint32_t> children_pool_;
  std::vector<ArenaAttrRef> attr_pool_;
  std::vector<ArenaHierarchy> hierarchies_;
  std::vector<uint32_t> hnode_pool_;
  std::vector<ArenaBoundary> boundaries_;
  std::vector<ArenaIndexEntry> by_begin_;
  std::vector<ArenaIndexEntry> by_end_;
  std::vector<uint32_t> name_refs_;
};

// Validates an arena image and materialises it back into a KyGoddag plus
// an adopted DocumentSnapshot. Friend of KyGoddag, RangeIndex, and
// SnapshotStats. Validation is layered: O(header) structural checks, an
// optional full-body checksum, then per-record bounds checks folded into
// the single linear materialisation pass — every rejection is a clean
// InvalidArgument, never UB.
class ArenaLoader {
 public:
  // The zero-copy index adoption casts the kIndexByBegin/kIndexByEnd bytes
  // to RangeIndex::Entry; these pins make that cast a layout fact, not an
  // assumption.
  static_assert(sizeof(RangeIndex::Entry) == sizeof(ArenaIndexEntry),
                "index entry layouts diverged");
  static_assert(alignof(RangeIndex::Entry) == 8,
                "index entry alignment diverged");
  static_assert(offsetof(RangeIndex::Entry, range) == 0 &&
                    offsetof(RangeIndex::Entry, id) == 16,
                "index entry field offsets diverged");
  static_assert(offsetof(TextRange, begin) == 0 &&
                    offsetof(TextRange, end) == 8,
                "TextRange field offsets diverged");

  ArenaLoader(const char* data, size_t size) : data_(data), size_(size) {}

  StatusOr<MappedSnapshot> Load(const LoadOptions& options,
                                std::shared_ptr<const void> keepalive) {
    MHX_RETURN_IF_ERROR(HostGate());
    MHX_RETURN_IF_ERROR(ValidateHeaderAndTable());
    MHX_RETURN_IF_ERROR(CrossCheckCounts());

    auto goddag = std::shared_ptr<KyGoddag>(
        new KyGoddag(std::string(Bytes(ArenaSection::kBaseText),
                                 Sec(ArenaSection::kBaseText).size)));

    // The checksum runs before materialization only as belt-and-braces: the
    // materializers bounds-check everything they read anyway, but verifying
    // first means garbage never even gets copied.
    if (options.verify_body_checksum && !BodyChecksumOk()) {
      return Malformed("body checksum mismatch");
    }
    MHX_RETURN_IF_ERROR(MaterializeNodes(goddag.get()));
    MHX_RETURN_IF_ERROR(MaterializeHierarchies(goddag.get()));
    MHX_RETURN_IF_ERROR(MaterializeLeaves(goddag.get()));
    goddag->element_count_ = header_.element_count;
    goddag->revision_ = header_.goddag_revision;

    std::unique_ptr<RangeIndex> index(new RangeIndex());
    MHX_RETURN_IF_ERROR(AdoptIndex(index.get()));
    std::unique_ptr<SnapshotStats> stats(new SnapshotStats());
    MHX_RETURN_IF_ERROR(AdoptStats(goddag.get(), stats.get()));

    MappedSnapshot result;
    result.head = goddag;
    result.snapshot = DocumentSnapshot::Adopt(
        goddag, header_.doc_version, std::move(index), std::move(stats),
        std::move(keepalive));
    result.arena_bytes = size_;
    return result;
  }

  StatusOr<ArenaInfo> Inspect() {
    MHX_RETURN_IF_ERROR(ValidateHeaderAndTable());
    ArenaInfo info;
    info.header = header_;
    info.body_checksum_ok = BodyChecksumOk();
    for (uint32_t kind = 1; kind <= kArenaSectionKinds; ++kind) {
      const ArenaSectionEntry& e = sections_[kind];
      info.sections.push_back(ArenaSectionInfo{kind, ArenaSectionName(kind),
                                               e.offset, e.size, e.count});
    }
    return info;
  }

 private:
  const ArenaSectionEntry& Sec(ArenaSection kind) const {
    return sections_[static_cast<uint32_t>(kind)];
  }
  const char* Bytes(ArenaSection kind) const {
    return data_ + Sec(kind).offset;
  }
  template <typename T>
  const T* Records(ArenaSection kind) const {
    return reinterpret_cast<const T*>(data_ + Sec(kind).offset);
  }

  Status ValidateHeaderAndTable() {
    if (size_ < sizeof(ArenaHeader)) return Malformed("truncated header");
    std::memcpy(&header_, data_, sizeof(header_));
    if (header_.magic != kArenaMagic) return Malformed("bad magic");
    if (header_.format_version != kArenaFormatVersion) {
      return Malformed("unsupported format version " +
                       std::to_string(header_.format_version));
    }
    if (header_.file_size != size_) {
      return Malformed("file size mismatch (header says " +
                       std::to_string(header_.file_size) + ", have " +
                       std::to_string(size_) + ")");
    }
    if (header_.section_count != kArenaSectionKinds) {
      return Malformed("bad section count");
    }
    if ((header_.flags & ~kArenaFlagSoaValid) != 0) {
      return Malformed("unknown header flags");
    }
    const uint64_t table_bytes =
        uint64_t{kArenaSectionKinds} * sizeof(ArenaSectionEntry);
    if (header_.body_offset < sizeof(ArenaHeader) + table_bytes ||
        header_.body_offset > size_ || header_.body_offset % 8 != 0) {
      return Malformed("bad body offset");
    }
    ArenaHeader for_checksum = header_;
    for_checksum.header_checksum = 0;
    const uint64_t expect =
        ArenaFnv1a64(data_ + sizeof(ArenaHeader), table_bytes,
                     ArenaFnv1a64(&for_checksum, sizeof(for_checksum)));
    if (expect != header_.header_checksum) {
      return Malformed("header checksum mismatch");
    }
    ArenaSectionEntry table[kArenaSectionKinds];
    std::memcpy(table, data_ + sizeof(ArenaHeader), sizeof(table));
    bool seen[kArenaSectionKinds + 1] = {};
    for (const ArenaSectionEntry& e : table) {
      if (e.kind < 1 || e.kind > kArenaSectionKinds) {
        return Malformed("unknown section kind " + std::to_string(e.kind));
      }
      if (seen[e.kind]) {
        return Malformed(std::string("duplicate section ") +
                         ArenaSectionName(e.kind));
      }
      seen[e.kind] = true;
      const uint64_t record = ArenaRecordSize(e.kind);
      if (e.reserved != 0 || e.offset < header_.body_offset ||
          e.offset % 8 != 0 || e.offset > size_ || e.size > size_ - e.offset ||
          e.count != e.size / record || e.size % record != 0) {
        return Malformed(std::string("bad section bounds for ") +
                         ArenaSectionName(e.kind));
      }
      sections_[e.kind] = e;
    }
    if (Sec(ArenaSection::kLengthHistogram).count != 33) {
      return Malformed("length histogram must have 33 buckets");
    }
    return OkStatus();
  }

  bool BodyChecksumOk() const {
    return ArenaBodyChecksum(data_ + header_.body_offset,
                             size_ - header_.body_offset) ==
           header_.body_checksum;
  }

  Status CrossCheckCounts() const {
    const uint64_t nodes = Sec(ArenaSection::kNodes).count;
    const uint64_t elements = header_.element_count;
    if (Sec(ArenaSection::kBaseText).count != header_.text_size) {
      return Malformed("base text size disagrees with header");
    }
    if (nodes < 1 || nodes > kInvalidNode) {
      return Malformed("bad node table size");
    }
    if (elements >= nodes) return Malformed("element count exceeds node table");
    if (Sec(ArenaSection::kNodeNameKeys).count != nodes) {
      return Malformed("node name key table size disagrees with node table");
    }
    if (Sec(ArenaSection::kIndexByBegin).count != elements ||
        Sec(ArenaSection::kIndexByEnd).count != elements) {
      return Malformed("index entry count disagrees with element count");
    }
    const uint64_t want_tree = elements == 0 ? 0 : 4 * elements;
    if (Sec(ArenaSection::kIndexMaxEnd).count != want_tree) {
      return Malformed("index segment tree has wrong size");
    }
    const uint64_t want_soa = (header_.flags & kArenaFlagSoaValid) ? elements : 0;
    if (Sec(ArenaSection::kSoaBegin).count != want_soa ||
        Sec(ArenaSection::kSoaEnd).count != want_soa ||
        Sec(ArenaSection::kSoaNameKey).count != want_soa ||
        Sec(ArenaSection::kSoaId).count != want_soa) {
      return Malformed("SoA section counts disagree with header flags");
    }
    if (Sec(ArenaSection::kStatsNameRefs).count !=
        Sec(ArenaSection::kStatsNameCounts).count) {
      return Malformed("stats name table sections disagree");
    }
    if (Sec(ArenaSection::kPerHierarchy).count !=
        Sec(ArenaSection::kHierarchies).count) {
      return Malformed("per-hierarchy stats disagree with hierarchy table");
    }
    return OkStatus();
  }

  StatusOr<std::string_view> Str(uint32_t ref) const {
    if (ref >= Sec(ArenaSection::kStringTable).count) {
      return Malformed("string ref out of range");
    }
    ArenaStringRef rec;
    std::memcpy(&rec, Bytes(ArenaSection::kStringTable) + ref * sizeof(rec),
                sizeof(rec));
    const uint64_t blob = Sec(ArenaSection::kStringBlob).size;
    if (rec.offset > blob || rec.size > blob - rec.offset) {
      return Malformed("string bytes out of range");
    }
    return std::string_view(Bytes(ArenaSection::kStringBlob) + rec.offset,
                            rec.size);
  }

  Status MaterializeNodes(KyGoddag* g) const {
    const uint64_t node_count = Sec(ArenaSection::kNodes).count;
    const uint64_t child_pool = Sec(ArenaSection::kChildren).count;
    const uint64_t attr_pool = Sec(ArenaSection::kAttrs).count;
    const uint64_t h_count = Sec(ArenaSection::kHierarchies).count;
    const ArenaNode* recs = Records<ArenaNode>(ArenaSection::kNodes);
    const uint32_t* children = Records<uint32_t>(ArenaSection::kChildren);
    const ArenaAttrRef* attrs = Records<ArenaAttrRef>(ArenaSection::kAttrs);

    // Validate the child-id pool once up front so the per-node loop can bulk-
    // assign slices without a branch per child.
    for (uint64_t i = 0; i < child_pool; ++i) {
      if (children[i] >= node_count) return Malformed("child node id out of range");
    }
    g->nodes_.clear();
    g->nodes_.resize(node_count);
    uint64_t elements = 0;
    for (uint64_t id = 0; id < node_count; ++id) {
      const ArenaNode& rec = recs[id];
      GNode& node = g->nodes_[id];
      if (rec.kind > static_cast<uint32_t>(GNodeKind::kElement)) {
        return Malformed("bad node kind");
      }
      node.kind = static_cast<GNodeKind>(rec.kind);
      if ((id == 0) != (node.kind == GNodeKind::kRoot)) {
        return Malformed("the GODDAG root must be node 0 and only node 0");
      }
      if (rec.begin > rec.end || rec.end > header_.text_size) {
        return Malformed("node range out of bounds");
      }
      node.range = TextRange(rec.begin, rec.end);
      node.hierarchy = rec.hierarchy;
      node.parent = rec.parent;
      if (node.kind == GNodeKind::kElement) {
        ++elements;
        if (rec.hierarchy >= h_count) return Malformed("node hierarchy id out of range");
        if (rec.parent >= node_count) return Malformed("element parent out of range");
        MHX_ASSIGN_OR_RETURN(std::string_view name, Str(rec.name_ref));
        node.name.assign(name.data(), name.size());
      } else if (rec.name_ref != kArenaNoString) {
        return Malformed("non-element node carries a name");
      }
      if (rec.children_begin > child_pool ||
          rec.children_count > child_pool - rec.children_begin) {
        return Malformed("node child slice out of range");
      }
      node.children.assign(children + rec.children_begin,
                           children + rec.children_begin + rec.children_count);
      if (rec.attrs_begin > attr_pool ||
          rec.attrs_count > attr_pool - rec.attrs_begin) {
        return Malformed("node attribute slice out of range");
      }
      node.attributes.reserve(rec.attrs_count);
      for (uint32_t i = 0; i < rec.attrs_count; ++i) {
        const ArenaAttrRef& attr = attrs[rec.attrs_begin + i];
        MHX_ASSIGN_OR_RETURN(std::string_view key, Str(attr.key_ref));
        MHX_ASSIGN_OR_RETURN(std::string_view value, Str(attr.value_ref));
        node.attributes.emplace_back(std::string(key), std::string(value));
      }
    }
    if (elements != header_.element_count) {
      return Malformed("live element count disagrees with header");
    }
    // Rebuild the free list in descending id order so future allocations
    // fill the lowest recycled slot first (order only affects ids handed to
    // later writers, never query results).
    g->free_nodes_.clear();
    for (uint64_t id = node_count; id-- > 1;) {
      if (g->nodes_[id].kind == GNodeKind::kFree) {
        g->free_nodes_.push_back(static_cast<NodeId>(id));
      }
    }
    return OkStatus();
  }

  Status MaterializeHierarchies(KyGoddag* g) const {
    const uint64_t h_count = Sec(ArenaSection::kHierarchies).count;
    const uint64_t node_count = Sec(ArenaSection::kNodes).count;
    const uint64_t pool = Sec(ArenaSection::kHierarchyNodes).count;
    const ArenaHierarchy* recs =
        Records<ArenaHierarchy>(ArenaSection::kHierarchies);
    const uint32_t* pool_ids = Records<uint32_t>(ArenaSection::kHierarchyNodes);

    g->hierarchies_.clear();
    g->hierarchies_.resize(h_count);
    for (uint64_t id = 0; id < h_count; ++id) {
      const ArenaHierarchy& rec = recs[id];
      if ((rec.flags & ~(kArenaHierarchyActive | kArenaHierarchyVirtual)) != 0) {
        return Malformed("unknown hierarchy flags");
      }
      Hierarchy& h = g->hierarchies_[id];
      h.active = (rec.flags & kArenaHierarchyActive) != 0;
      if (!h.active) continue;
      h.is_virtual = (rec.flags & kArenaHierarchyVirtual) != 0;
      MHX_ASSIGN_OR_RETURN(std::string_view name, Str(rec.name_ref));
      h.name.assign(name.data(), name.size());
      if (rec.root >= node_count) return Malformed("hierarchy root out of range");
      h.root = rec.root;
      if (rec.nodes_begin > pool || rec.nodes_count > pool - rec.nodes_begin) {
        return Malformed("hierarchy node slice out of range");
      }
      h.nodes.reserve(rec.nodes_count);
      for (uint32_t i = 0; i < rec.nodes_count; ++i) {
        const uint32_t node = pool_ids[rec.nodes_begin + i];
        if (node >= node_count) return Malformed("hierarchy node id out of range");
        h.nodes.push_back(node);
      }
    }
    g->free_hierarchies_.clear();
    for (uint64_t id = h_count; id-- > 0;) {
      if (!g->hierarchies_[id].active) {
        g->free_hierarchies_.push_back(static_cast<HierarchyId>(id));
      }
    }
    return OkStatus();
  }

  Status MaterializeLeaves(KyGoddag* g) const {
    const uint64_t count = Sec(ArenaSection::kLeafBoundaries).count;
    const ArenaBoundary* recs =
        Records<ArenaBoundary>(ArenaSection::kLeafBoundaries);
    g->boundary_refs_.clear();
    if (header_.text_size == 0) {
      if (count != 0) return Malformed("boundaries present for empty text");
      g->leaves_.Clear();
      g->leaves_dirty_ = false;
      return OkStatus();
    }
    if (count < 2 || recs[0].pos != 0 ||
        recs[count - 1].pos != header_.text_size) {
      return Malformed("boundary sentinels missing");
    }
    // Build the flat partition straight from the records and leave the
    // boundary refcount map deferred (kygoddag.h): readers never consult it,
    // and skipping the O(boundaries) std::map build is a large slice of the
    // cold-start budget. The flat view is forced here, while still
    // single-threaded, as Create() does.
    std::vector<Leaf> flat;
    flat.reserve(count - 1);
    for (uint64_t i = 0; i < count; ++i) {
      if (recs[i].refs == 0 || (i > 0 && recs[i].pos <= recs[i - 1].pos)) {
        return Malformed("boundaries not strictly increasing");
      }
      if (i > 0) flat.push_back(Leaf{TextRange(recs[i - 1].pos, recs[i].pos)});
    }
    g->leaves_.AssignFlat(std::move(flat));
    g->boundary_refs_deferred_ = true;
    g->leaves_dirty_ = false;
    return OkStatus();
  }

  Status AdoptIndex(RangeIndex* index) const {
    const uint64_t n = header_.element_count;
    const uint64_t node_count = Sec(ArenaSection::kNodes).count;
    const auto* by_begin = reinterpret_cast<const RangeIndex::Entry*>(
        Bytes(ArenaSection::kIndexByBegin));
    const auto* by_end = reinterpret_cast<const RangeIndex::Entry*>(
        Bytes(ArenaSection::kIndexByEnd));
    for (uint64_t i = 0; i < n; ++i) {
      if (by_begin[i].id >= node_count || by_end[i].id >= node_count) {
        return Malformed("index entry node id out of range");
      }
      if (i == 0) continue;
      const RangeIndex::Entry& a = by_begin[i - 1];
      const RangeIndex::Entry& b = by_begin[i];
      if (std::make_tuple(a.range.begin, a.range.end, a.id) >=
          std::make_tuple(b.range.begin, b.range.end, b.id)) {
        return Malformed("begin-sorted index entries out of order");
      }
      const RangeIndex::Entry& c = by_end[i - 1];
      const RangeIndex::Entry& d = by_end[i];
      if (std::make_tuple(c.range.end, c.range.begin, c.id) >=
          std::make_tuple(d.range.end, d.range.begin, d.id)) {
        return Malformed("end-sorted index entries out of order");
      }
    }
    index->by_begin_ = base::ArrayRef<RangeIndex::Entry>(by_begin, n);
    index->by_end_ = base::ArrayRef<RangeIndex::Entry>(by_end, n);
    index->max_end_ = base::ArrayRef<uint64_t>(
        Records<uint64_t>(ArenaSection::kIndexMaxEnd),
        Sec(ArenaSection::kIndexMaxEnd).count);
    index->revision_ = header_.goddag_revision;
    return OkStatus();
  }

  Status AdoptStats(const KyGoddag* g, SnapshotStats* stats) const {
    const uint64_t node_count = Sec(ArenaSection::kNodes).count;
    const uint64_t names = Sec(ArenaSection::kStatsNameRefs).count;
    stats->element_count_ = header_.element_count;
    stats->text_size_ = header_.text_size;
    stats->node_table_size_ = node_count;
    stats->total_range_length_ = header_.total_range_length;
    stats->hierarchy_count_ = 0;
    for (const Hierarchy& h : g->hierarchies_) {
      if (h.active) ++stats->hierarchy_count_;
    }
    const uint64_t* per_h = Records<uint64_t>(ArenaSection::kPerHierarchy);
    stats->per_hierarchy_.assign(per_h,
                                 per_h + Sec(ArenaSection::kPerHierarchy).count);
    const uint32_t* name_refs = Records<uint32_t>(ArenaSection::kStatsNameRefs);
    const uint64_t* name_counts =
        Records<uint64_t>(ArenaSection::kStatsNameCounts);
    stats->name_counts_.assign(name_counts, name_counts + names);
    for (uint64_t key = 0; key < names; ++key) {
      MHX_ASSIGN_OR_RETURN(std::string_view name, Str(name_refs[key]));
      auto [it, inserted] = stats->name_keys_.emplace(
          std::string(name), static_cast<uint32_t>(key));
      if (!inserted) return Malformed("duplicate interned element name");
    }
    const uint64_t* hist = Records<uint64_t>(ArenaSection::kLengthHistogram);
    stats->length_log2_.assign(hist, hist + 33);
    stats->node_name_keys_ = base::ArrayRef<uint32_t>(
        Records<uint32_t>(ArenaSection::kNodeNameKeys), node_count);
    if (header_.flags & kArenaFlagSoaValid) {
      const uint64_t n = header_.element_count;
      const uint32_t* soa_id = Records<uint32_t>(ArenaSection::kSoaId);
      for (uint64_t i = 0; i < n; ++i) {
        if (soa_id[i] >= node_count) {
          return Malformed("SoA node id out of range");
        }
      }
      stats->soa_.begin = base::ArrayRef<uint32_t>(
          Records<uint32_t>(ArenaSection::kSoaBegin), n);
      stats->soa_.end =
          base::ArrayRef<uint32_t>(Records<uint32_t>(ArenaSection::kSoaEnd), n);
      stats->soa_.name_key = base::ArrayRef<uint32_t>(
          Records<uint32_t>(ArenaSection::kSoaNameKey), n);
      stats->soa_.id = base::ArrayRef<NodeId>(soa_id, n);
      stats->soa_.valid = true;
    }
    return OkStatus();
  }

  const char* data_;
  size_t size_;
  ArenaHeader header_{};
  // 1-indexed by section kind; ValidateHeaderAndTable fills every slot.
  ArenaSectionEntry sections_[kArenaSectionKinds + 1] = {};
};

StatusOr<std::string> SerializeSnapshot(const DocumentSnapshot& snapshot) {
  return SnapshotWriter(snapshot).Serialize();
}

Status WriteSnapshotFile(const DocumentSnapshot& snapshot,
                         const std::string& path) {
  MHX_ASSIGN_OR_RETURN(std::string image, SerializeSnapshot(snapshot));
  static std::atomic<uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(tmp_counter.fetch_add(1) + 1);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return InternalError("arena: cannot open " + tmp + " for write");
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return InternalError("arena: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("arena: cannot rename " + tmp + " to " + path);
  }
  return OkStatus();
}

StatusOr<MappedSnapshot> AdoptArenaBuffer(
    std::shared_ptr<const std::string> bytes, const LoadOptions& options) {
  if (bytes == nullptr) return Malformed("null buffer");
  if (reinterpret_cast<uintptr_t>(bytes->data()) % 8 != 0) {
    // The in-place casts need 8-byte alignment; realign into a fresh
    // uint64 buffer (heap strings are in practice already aligned).
    auto aligned =
        std::make_shared<std::vector<uint64_t>>((bytes->size() + 7) / 8);
    std::memcpy(aligned->data(), bytes->data(), bytes->size());
    ArenaLoader loader(reinterpret_cast<const char*>(aligned->data()),
                       bytes->size());
    return loader.Load(options, std::move(aligned));
  }
  ArenaLoader loader(bytes->data(), bytes->size());
  return loader.Load(options, std::move(bytes));
}

StatusOr<MappedSnapshot> LoadSnapshotFile(const std::string& path,
                                          const LoadOptions& options) {
#if MHX_PERSIST_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return NotFoundError("arena: no such file: " + path);
    return InternalError("arena: cannot open " + path + ": " +
                         std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    return Malformed("cannot stat or empty file: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // Pre-fault the whole mapping where the kernel supports it: a cold-start
  // load touches every section once (the checksum alone reads every byte),
  // and one batched populate beats a soft fault per page.
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  flags |= MAP_POPULATE;
#endif
  void* addr = ::mmap(nullptr, size, PROT_READ, flags, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    return InternalError("arena: mmap failed for " + path + ": " +
                         std::strerror(errno));
  }
#ifndef MAP_POPULATE
  // Ask for eager read-ahead: cold-start loads touch most sections once.
  ::madvise(addr, size, MADV_WILLNEED);
#endif
  std::shared_ptr<const void> mapping(
      addr, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  ArenaLoader loader(static_cast<const char*>(addr), size);
  return loader.Load(options, std::move(mapping));
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("arena: no such file: " + path);
  auto bytes = std::make_shared<std::string>(
      std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return AdoptArenaBuffer(std::move(bytes), options);
#endif
}

StatusOr<ArenaInfo> InspectArenaFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("arena: no such file: " + path);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ArenaLoader loader(bytes.data(), bytes.size());
  return loader.Inspect();
}

std::string FormatArenaInfo(const ArenaInfo& info) {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof(line),
                "arena: format v%u, %llu bytes, %u sections\n",
                info.header.format_version,
                static_cast<unsigned long long>(info.header.file_size),
                info.header.section_count);
  out += line;
  std::snprintf(
      line, sizeof(line),
      "doc_version=%llu goddag_revision=%llu elements=%llu text=%llu "
      "total_range_length=%llu flags=0x%x\n",
      static_cast<unsigned long long>(info.header.doc_version),
      static_cast<unsigned long long>(info.header.goddag_revision),
      static_cast<unsigned long long>(info.header.element_count),
      static_cast<unsigned long long>(info.header.text_size),
      static_cast<unsigned long long>(info.header.total_range_length),
      info.header.flags);
  out += line;
  std::snprintf(line, sizeof(line), "body checksum: %s\n",
                info.body_checksum_ok ? "OK" : "MISMATCH");
  out += line;
  std::snprintf(line, sizeof(line), "%4s  %-18s %10s %10s %10s\n", "kind",
                "name", "offset", "bytes", "count");
  out += line;
  for (const ArenaSectionInfo& s : info.sections) {
    std::snprintf(line, sizeof(line), "%4u  %-18s %10llu %10llu %10llu\n",
                  s.kind, s.name.c_str(),
                  static_cast<unsigned long long>(s.offset),
                  static_cast<unsigned long long>(s.size),
                  static_cast<unsigned long long>(s.count));
    out += line;
  }
  return out;
}

}  // namespace mhx::goddag
