// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/snapshot.h"

#include <atomic>
#include <utility>

namespace mhx::goddag {

namespace {
std::atomic<size_t> g_live_snapshots{0};
}  // namespace

DocumentSnapshot::DocumentSnapshot(std::shared_ptr<const KyGoddag> goddag,
                                   uint64_t version)
    : goddag_(std::move(goddag)),
      version_(version),
      revision_at_publish_(goddag_->revision()) {
  g_live_snapshots.fetch_add(1, std::memory_order_relaxed);
}

DocumentSnapshot::~DocumentSnapshot() {
  g_live_snapshots.fetch_sub(1, std::memory_order_relaxed);
}

std::shared_ptr<const DocumentSnapshot> DocumentSnapshot::Create(
    std::shared_ptr<const KyGoddag> goddag, uint64_t version,
    bool prebuild_index) {
  // Force the lazy leaf partition while the goddag is still quiesced:
  // readers of a published snapshot must only ever hit plain reads.
  goddag->leaves();
  auto snapshot = std::shared_ptr<const DocumentSnapshot>(
      new DocumentSnapshot(std::move(goddag), version));
  if (prebuild_index) {
    snapshot->EnsureIndex();
    // The planner's statistics ride the same writer-pays discipline as the
    // index: prebuilt before publication, so readers replanning on the new
    // version never block on a stats build.
    snapshot->EnsureStats();
  }
  return snapshot;
}

std::shared_ptr<const DocumentSnapshot> DocumentSnapshot::Adopt(
    std::shared_ptr<const KyGoddag> goddag, uint64_t version,
    std::unique_ptr<const RangeIndex> index,
    std::unique_ptr<const SnapshotStats> stats,
    std::shared_ptr<const void> keepalive) {
  goddag->leaves();
  auto snapshot =
      std::shared_ptr<DocumentSnapshot>(new DocumentSnapshot(std::move(goddag), version));
  snapshot->index_ = std::move(index);
  snapshot->stats_ = std::move(stats);
  snapshot->keepalive_ = std::move(keepalive);
  // Burn both once-flags so EnsureIndex()/EnsureStats() are cheap no-ops
  // that report "not built here" — adopted snapshots never rebuild.
  std::call_once(snapshot->index_once_, [] {});
  std::call_once(snapshot->stats_once_, [] {});
  return snapshot;
}

bool DocumentSnapshot::EnsureIndex() const {
  bool built = false;
  std::call_once(index_once_, [&] {
    index_ = std::make_unique<const RangeIndex>(goddag_.get());
    built = true;
  });
  return built;
}

const RangeIndex& DocumentSnapshot::index() const {
  EnsureIndex();
  return *index_;
}

void DocumentSnapshot::EnsureStats() const {
  std::call_once(stats_once_, [&] {
    stats_ = std::make_unique<const SnapshotStats>(goddag_.get());
  });
}

const SnapshotStats& DocumentSnapshot::stats() const {
  EnsureStats();
  return *stats_;
}

size_t DocumentSnapshot::live_count() {
  return g_live_snapshots.load(std::memory_order_relaxed);
}

}  // namespace mhx::goddag
