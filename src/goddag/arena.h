// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The on-disk arena format behind goddag/persist.h: one flat, offset-based
// serialization of a published DocumentSnapshot — node table, hierarchy
// arcs, leaf-partition boundaries, interned string pool, the prebuilt
// RangeIndex arrays, and the packed RangeSoA/stats block — laid out so a
// loader can adopt the expensive structures directly out of an mmap'ed
// file without rebuilding them (see DESIGN.md "On-disk format").
//
// Layout:  [ArenaHeader][ArenaSectionEntry x section_count][sections...]
//
//   * All multi-byte fields are little-endian, fixed-width, and written at
//     their natural alignment; section payloads start at offsets that are
//     multiples of kArenaSectionAlign so in-place casts are aligned.
//   * `header_checksum` is FNV-1a/64 over the header (with that field
//     zeroed) plus the section table; `body_checksum` covers every byte
//     from `body_offset` to `file_size` with the 4-lane word-at-a-time
//     variant (ArenaBodyChecksum) — the body is megabytes where the
//     header is bytes, and cold-start validation pays this on every load.
//     Together they cover the file.
//   * `format_version` is bumped on ANY layout change — readers reject
//     versions they do not know, never guess (no minor/patch semantics).
//
// The record structs below are the exact on-disk layout (static_asserts in
// persist.cc pin the sizes); they carry no pointers, only indices into
// sibling sections, which is what makes the arena position-independent.

#ifndef MHX_GODDAG_ARENA_H_
#define MHX_GODDAG_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace mhx::goddag {

// "MHXA" read as a little-endian uint32.
inline constexpr uint32_t kArenaMagic = 0x4158484du;
inline constexpr uint32_t kArenaFormatVersion = 1;
// Section payload offsets are multiples of this (cache-line sized, and far
// above the 8-byte alignment the in-place casts require).
inline constexpr uint64_t kArenaSectionAlign = 64;
// ArenaHeader::flags bit: the RangeSoA sections are populated (text < 2^31).
inline constexpr uint32_t kArenaFlagSoaValid = 1u << 0;
// "no string" sentinel for ArenaNode::name_ref (free slots, the root).
inline constexpr uint32_t kArenaNoString = 0xffffffffu;
// ArenaHierarchy::flags bits.
inline constexpr uint32_t kArenaHierarchyActive = 1u << 0;
inline constexpr uint32_t kArenaHierarchyVirtual = 1u << 1;

// Every section kind of format version 1, in file order. A valid arena
// contains each kind exactly once (possibly with count 0).
enum class ArenaSection : uint32_t {
  kStringBlob = 1,       // bytes: concatenated interned strings
  kStringTable = 2,      // ArenaStringRef per interned string
  kBaseText = 3,         // bytes: the document's base text
  kNodes = 4,            // ArenaNode per node-table slot (root included)
  kChildren = 5,         // uint32 NodeId pool (per-node child slices)
  kAttrs = 6,            // ArenaAttrRef pool (per-node attribute slices)
  kHierarchies = 7,      // ArenaHierarchy per hierarchy-table slot
  kHierarchyNodes = 8,   // uint32 NodeId pool (per-hierarchy node lists)
  kLeafBoundaries = 9,   // ArenaBoundary per leaf-partition boundary
  kIndexByBegin = 10,    // ArenaIndexEntry, RangeIndex begin-sorted order
  kIndexByEnd = 11,      // ArenaIndexEntry, RangeIndex end-sorted order
  kIndexMaxEnd = 12,     // uint64 segment tree over kIndexByBegin
  kSoaBegin = 13,        // uint32 per live element (RangeSoA)
  kSoaEnd = 14,          // uint32 per live element (RangeSoA)
  kSoaNameKey = 15,      // uint32 per live element (RangeSoA)
  kSoaId = 16,           // uint32 per live element (RangeSoA)
  kNodeNameKeys = 17,    // uint32 per node-table slot (stats pushdown keys)
  kStatsNameRefs = 18,   // uint32 string-table ref per interned name key
  kStatsNameCounts = 19, // uint64 live-element count per interned name key
  kPerHierarchy = 20,    // uint64 live-element count per hierarchy slot
  kLengthHistogram = 21, // uint64 x 33 log2 range-length buckets
};
inline constexpr uint32_t kArenaSectionKinds = 21;

// The fixed-size file header (88 bytes).
struct ArenaHeader {
  uint32_t magic;            // kArenaMagic
  uint32_t format_version;   // kArenaFormatVersion
  uint64_t file_size;        // total bytes, header included
  uint32_t section_count;    // kArenaSectionKinds for format version 1
  uint32_t flags;            // kArenaFlag* bits
  uint64_t doc_version;      // DocumentSnapshot::version()
  uint64_t goddag_revision;  // KyGoddag::revision() at serialization
  uint64_t element_count;    // live elements (== index/SoA entry counts)
  uint64_t text_size;        // base-text bytes (== kBaseText size)
  uint64_t total_range_length;  // SnapshotStats::total_range_length()
  uint64_t body_offset;      // first section byte; body checksum starts here
  uint64_t body_checksum;    // FNV-1a/64 over [body_offset, file_size)
  uint64_t header_checksum;  // FNV-1a/64, header (field zeroed) + table
};

// One section-table row (32 bytes). `offset` is absolute, `size` in bytes,
// `count` in records; size == count x record size for the kind.
struct ArenaSectionEntry {
  uint32_t kind;      // ArenaSection
  uint32_t reserved;  // zero
  uint64_t offset;
  uint64_t size;
  uint64_t count;
};

// One interned string: a slice of kStringBlob.
struct ArenaStringRef {
  uint32_t offset;
  uint32_t size;
};

// One node-table slot (48 bytes). Free slots carry kind kFree, name_ref
// kArenaNoString, parent kInvalidNode, and zeros elsewhere.
struct ArenaNode {
  uint64_t begin;           // TextRange
  uint64_t end;
  uint32_t parent;          // NodeId or kInvalidNode
  uint32_t hierarchy;       // HierarchyId
  uint32_t name_ref;        // kStringTable index or kArenaNoString
  uint32_t children_begin;  // slice of kChildren
  uint32_t children_count;
  uint32_t attrs_begin;     // slice of kAttrs
  uint32_t attrs_count;
  uint32_t kind;            // GNodeKind widened
};

// One attribute: interned key and value.
struct ArenaAttrRef {
  uint32_t key_ref;    // kStringTable index
  uint32_t value_ref;  // kStringTable index
};

// One hierarchy-table slot (24 bytes). Inactive slots are all-zero except
// a cleared kArenaHierarchyActive flag.
struct ArenaHierarchy {
  uint32_t name_ref;     // kStringTable index or kArenaNoString
  uint32_t root;         // NodeId or kInvalidNode
  uint32_t nodes_begin;  // slice of kHierarchyNodes (pre-order node list)
  uint32_t nodes_count;
  uint32_t flags;        // kArenaHierarchy* bits
  uint32_t reserved;     // zero
};

// One leaf-partition boundary: text offset + live endpoint refcount
// (KyGoddag::boundary_refs_, sentinels at 0 and text_size included).
struct ArenaBoundary {
  uint64_t pos;
  uint32_t refs;
  uint32_t reserved;  // zero
};

// One RangeIndex entry (24 bytes) — bit-compatible with the in-memory
// RangeIndex::Entry on LP64 little-endian targets, so kIndexByBegin /
// kIndexByEnd are adopted by pointer cast (asserted in persist.cc).
struct ArenaIndexEntry {
  uint64_t begin;
  uint64_t end;
  uint32_t id;
  uint32_t reserved;  // zero (the in-memory struct's tail padding)
};

// FNV-1a/64 over `size` bytes, optionally chained via `seed`. Used for the
// header checksum (sub-kilobyte input; byte-serial is fine there).
uint64_t ArenaFnv1a64(const void* data, size_t size,
                      uint64_t seed = 14695981039346656037ull);

// The body checksum: four independent FNV-style lanes over 64-bit
// little-endian words (lane j eats words 4i+j), tail bytes zero-padded
// into a final word, lanes and the length folded together with byte-FNV.
// ~8 bytes per multiply with 4-way ILP, an order of magnitude faster than
// byte-serial FNV on arena-sized inputs, with the same single-bit-flip
// detection the loader's corruption tests pin.
uint64_t ArenaBodyChecksum(const void* data, size_t size);

// Bytes per record of a section kind (1 for the byte sections, 0 for an
// unknown kind — which a loader must reject).
uint64_t ArenaRecordSize(uint32_t kind);

// Human-readable section-kind name for tools/mhx_pack --inspect.
const char* ArenaSectionName(uint32_t kind);

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_ARENA_H_
