// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// RangeIndex is a static interval index over every live element node of a
// KyGoddag at construction time: the bulk lookup primitive behind the
// indexed evaluation mode of the extended axes (xpath/axes.h) and behind
// whole-document joins such as the word x line overlap join of the
// fragmentation comparison.
//
// Internally it keeps the elements sorted by range start with a segment tree
// of maximum range ends (an array-backed interval tree), plus a second
// ordering by range end. Stabbing-style queries (intersect / contain) run in
// O(log n + k); the order queries (begin-at-or-after / end-at-or-before) are
// a binary search plus a suffix/prefix copy.
//
// The index is a snapshot: it does not observe later mutations of the
// KyGoddag. Callers that mutate (e.g. virtual hierarchies) should compare
// KyGoddag::revision() and rebuild, as AxisEvaluator does.

#ifndef MHX_GODDAG_INDEX_H_
#define MHX_GODDAG_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/array_ref.h"
#include "base/text_range.h"
#include "goddag/kygoddag.h"

namespace mhx::goddag {

// Optional predicate pushdown applied *inside* an index probe, before
// candidates materialise: `name_keys` points at a per-node interned-name
// array aligned with the node table (SnapshotStats::node_name_keys) and
// `key` is the interned element name to keep. Default-constructed = keep
// everything. The planner builds these from a path step's name test so a
// probe returns only name-matching nodes instead of a superset the caller
// re-filters.
struct ProbeFilter {
  const uint32_t* name_keys = nullptr;
  uint32_t key = 0;

  // Whether node `id` survives the filter.
  bool Pass(NodeId id) const {
    return name_keys == nullptr || name_keys[id] == key;
  }
};

class RangeIndex {
 public:
  explicit RangeIndex(const KyGoddag* goddag);

  // Nodes whose range properly overlaps `range` (intersects, neither
  // contains the other) — the `overlapping` axis predicate. Here and
  // below, `filter` drops non-matching nodes inside the probe.
  std::vector<NodeId> NodesOverlapping(const TextRange& range,
                                       const ProbeFilter& filter = {}) const;

  // Nodes whose range shares at least one position with `range`.
  std::vector<NodeId> NodesIntersecting(const TextRange& range,
                                        const ProbeFilter& filter = {}) const;

  // Nodes whose range contains `range` (equal ranges included).
  std::vector<NodeId> NodesContaining(const TextRange& range,
                                      const ProbeFilter& filter = {}) const;

  // Nodes whose range is contained in `range` (equal ranges included).
  std::vector<NodeId> NodesContainedIn(const TextRange& range,
                                       const ProbeFilter& filter = {}) const;

  // Nodes whose range begins at or after `pos` (the xfollowing predicate).
  std::vector<NodeId> NodesBeginningAtOrAfter(
      size_t pos, const ProbeFilter& filter = {}) const;

  // Nodes whose range ends at or before `pos` (the xpreceding predicate).
  std::vector<NodeId> NodesEndingAtOrBefore(
      size_t pos, const ProbeFilter& filter = {}) const;

  // Number of indexed element nodes.
  size_t size() const { return by_begin_.size(); }

  // Revision of the KyGoddag this index was built from.
  uint64_t revision() const { return revision_; }

 private:
  struct Entry {
    TextRange range;
    NodeId id;
  };

  // The mmap-adoption path (goddag/persist.cc) constructs an empty index
  // and points the three arrays straight into the arena's prebuilt
  // kIndexByBegin / kIndexByEnd / kIndexMaxEnd sections.
  friend class ArenaLoader;
  friend class SnapshotWriter;
  RangeIndex() = default;

  static void BuildMaxEndTree(const Entry* entries, size_t tree_node,
                              size_t lo, size_t hi, uint64_t* max_end);
  void CollectIntersecting(size_t tree_node, size_t lo, size_t hi,
                           const TextRange& range, const ProbeFilter& filter,
                           std::vector<NodeId>* out) const;
  void CollectContaining(size_t tree_node, size_t lo, size_t hi,
                         const TextRange& range, const ProbeFilter& filter,
                         std::vector<NodeId>* out) const;
  void CollectOverlapping(size_t tree_node, size_t lo, size_t hi,
                          const TextRange& range, const ProbeFilter& filter,
                          std::vector<NodeId>* out) const;

  // ArrayRefs so the build path owns the arrays while the mmap path borrows
  // them out of the arena (base/array_ref.h).
  base::ArrayRef<Entry> by_begin_;    // sorted by (begin asc, end asc, id)
  base::ArrayRef<Entry> by_end_;      // sorted by (end asc, begin asc, id)
  base::ArrayRef<uint64_t> max_end_;  // segment tree over by_begin_
  uint64_t revision_ = 0;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_INDEX_H_
