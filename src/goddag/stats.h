// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// SnapshotStats: per-snapshot summary statistics plus a structure-of-arrays
// range table, built once per published DocumentSnapshot alongside the
// RangeIndex and immutable thereafter (CONCURRENCY.md: build-once snapshot
// state under the pin/publish contract). Two consumers:
//
//   * The XQuery step planner (xquery/planner.h) reads the counts —
//     elements per hierarchy, elements per name, a log2 range-length
//     histogram — to estimate extended-axis hit counts and pick indexed
//     probe vs. full scan per path step, and to order conjunctive
//     predicates cheapest-first.
//   * The vectorized extended-axis kernels (xpath/kernels.h) scan the
//     RangeSoA: every live element's (begin, end) packed into flat
//     uint32 arrays — branch-light, cache-dense, and SIMD-friendly where
//     the per-GNode scan (~100+ bytes per node, strings and vectors
//     inline) is neither.
//
// Element names are interned to dense uint32 keys so a name test can be
// pushed down into an index probe or kernel scan as one integer compare:
// node_name_keys is aligned with the node table (kNoNameKey for non-element
// slots), and RangeSoA carries the same key per entry.

#ifndef MHX_GODDAG_STATS_H_
#define MHX_GODDAG_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/array_ref.h"
#include "goddag/kygoddag.h"

namespace mhx::goddag {

// The name key of node-table slots that are not elements, and of lookups
// for names the snapshot does not contain. Never equal to any interned key.
inline constexpr uint32_t kNoNameKey = 0xffffffffu;

// Flat structure-of-arrays view of every live element's range, in NodeId
// order — the kernels' scan surface. All four arrays share one length.
// Built only when the base text fits int32 (valid == true): the explicit
// SIMD paths compare begin/end as signed 32-bit lanes, which is exact
// precisely when every offset < INT32_MAX. Documents beyond 2 GiB of base
// text fall back to the scalar GNode scan. The arrays are ArrayRefs: the
// build path owns them, the mmap-adoption path (goddag/persist.h) borrows
// them straight out of the arena's SoA sections.
struct RangeSoA {
  base::ArrayRef<uint32_t> begin;     // range.begin per live element
  base::ArrayRef<uint32_t> end;       // range.end per live element
  base::ArrayRef<uint32_t> name_key;  // interned element name per entry
  base::ArrayRef<NodeId> id;          // node-table id per entry
  bool valid = false;

  // Number of packed elements (0 when !valid).
  size_t size() const { return id.size(); }
};

// The statistics block described in the file comment. Construction walks
// the node table once; every accessor afterwards is a plain read, safe from
// any number of threads.
class SnapshotStats {
 public:
  explicit SnapshotStats(const KyGoddag* goddag);

  // Live element nodes at build time (== RangeSoA::size when valid).
  size_t element_count() const { return element_count_; }

  // Base-text length in characters.
  size_t text_size() const { return text_size_; }

  // Node-table size at build time (free slots included) — the naive scan's
  // iteration count, which is what scan cost scales with.
  size_t node_table_size() const { return node_table_size_; }

  // Active hierarchies at build time.
  size_t hierarchy_count() const { return hierarchy_count_; }

  // Live elements of hierarchy `h` (0 for inactive/out-of-range slots).
  size_t hierarchy_element_count(HierarchyId h) const {
    return h < per_hierarchy_.size() ? per_hierarchy_[h] : 0;
  }

  // The interned key for an element name, or kNoNameKey when no live
  // element bears it — a kNoNameKey probe filter matches nothing.
  uint32_t name_key(std::string_view name) const;

  // Live elements named `name` (0 for unknown names).
  size_t name_count(std::string_view name) const;

  // Distinct live element names.
  size_t name_table_size() const { return name_counts_.size(); }

  // Per-node interned name keys, aligned with the node table: entry id is
  // kNoNameKey for non-element slots. The index/kernel pushdown filter
  // indexes this with candidate NodeIds.
  const base::ArrayRef<uint32_t>& node_name_keys() const {
    return node_name_keys_;
  }

  // Histogram of live-element range lengths: bucket b counts elements with
  // floor(log2(length)) == b (length 0 in bucket 0). 33 buckets cover every
  // size_t length a 32-bit text offset can produce.
  const std::vector<size_t>& range_length_log2_histogram() const {
    return length_log2_;
  }

  // Sum of all live-element range lengths. total / text_size is the mean
  // stabbing depth — the planner's xancestor hit estimate.
  size_t total_range_length() const { return total_range_length_; }

  // The packed scan surface (valid == false when the text exceeds int32).
  const RangeSoA& soa() const { return soa_; }

 private:
  // The mmap-adoption path (goddag/persist.cc) constructs an empty block
  // and fills it from the arena's stats sections, borrowing the two large
  // arrays (node_name_keys_, soa_) in place.
  friend class ArenaLoader;
  friend class SnapshotWriter;
  SnapshotStats() = default;

  size_t element_count_ = 0;
  size_t text_size_ = 0;
  size_t node_table_size_ = 0;
  size_t hierarchy_count_ = 0;
  size_t total_range_length_ = 0;
  std::vector<size_t> per_hierarchy_;
  std::unordered_map<std::string, uint32_t> name_keys_;
  std::vector<size_t> name_counts_;  // indexed by interned key
  base::ArrayRef<uint32_t> node_name_keys_;
  std::vector<size_t> length_log2_;
  RangeSoA soa_;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_STATS_H_
