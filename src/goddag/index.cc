// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/index.h"

#include <algorithm>

namespace mhx::goddag {

RangeIndex::RangeIndex(const KyGoddag* goddag) : revision_(goddag->revision()) {
  std::vector<Entry> by_begin;
  by_begin.reserve(goddag->element_count());
  for (NodeId id = 0; id < goddag->node_table_size(); ++id) {
    const GNode& node = goddag->node(id);
    if (node.kind != GNodeKind::kElement) continue;
    by_begin.push_back(Entry{node.range, id});
  }
  std::sort(by_begin.begin(), by_begin.end(),
            [](const Entry& a, const Entry& b) {
              if (a.range.begin != b.range.begin)
                return a.range.begin < b.range.begin;
              if (a.range.end != b.range.end) return a.range.end < b.range.end;
              return a.id < b.id;
            });
  std::vector<Entry> by_end = by_begin;
  std::sort(by_end.begin(), by_end.end(),
            [](const Entry& a, const Entry& b) {
              if (a.range.end != b.range.end) return a.range.end < b.range.end;
              if (a.range.begin != b.range.begin)
                return a.range.begin < b.range.begin;
              return a.id < b.id;
            });
  std::vector<uint64_t> max_end;
  if (!by_begin.empty()) {
    max_end.assign(4 * by_begin.size(), 0);
    BuildMaxEndTree(by_begin.data(), 1, 0, by_begin.size(), max_end.data());
  }
  by_begin_ = base::ArrayRef<Entry>(std::move(by_begin));
  by_end_ = base::ArrayRef<Entry>(std::move(by_end));
  max_end_ = base::ArrayRef<uint64_t>(std::move(max_end));
}

void RangeIndex::BuildMaxEndTree(const Entry* entries, size_t tree_node,
                                 size_t lo, size_t hi, uint64_t* max_end) {
  if (hi - lo == 1) {
    max_end[tree_node] = entries[lo].range.end;
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  BuildMaxEndTree(entries, 2 * tree_node, lo, mid, max_end);
  BuildMaxEndTree(entries, 2 * tree_node + 1, mid, hi, max_end);
  max_end[tree_node] =
      std::max(max_end[2 * tree_node], max_end[2 * tree_node + 1]);
}

void RangeIndex::CollectIntersecting(size_t tree_node, size_t lo, size_t hi,
                                     const TextRange& range,
                                     const ProbeFilter& filter,
                                     std::vector<NodeId>* out) const {
  // Prune: nothing in the segment ends after range.begin, or everything in
  // the segment begins at/after range.end (begins are sorted, so the
  // leftmost is the minimum).
  if (max_end_[tree_node] <= range.begin) return;
  if (by_begin_[lo].range.begin >= range.end) return;
  if (hi - lo == 1) {
    if (by_begin_[lo].range.Intersects(range) && filter.Pass(by_begin_[lo].id)) {
      out->push_back(by_begin_[lo].id);
    }
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  CollectIntersecting(2 * tree_node, lo, mid, range, filter, out);
  CollectIntersecting(2 * tree_node + 1, mid, hi, range, filter, out);
}

void RangeIndex::CollectContaining(size_t tree_node, size_t lo, size_t hi,
                                   const TextRange& range,
                                   const ProbeFilter& filter,
                                   std::vector<NodeId>* out) const {
  // A container must begin at or before range.begin and end at or after
  // range.end.
  if (max_end_[tree_node] < range.end) return;
  if (by_begin_[lo].range.begin > range.begin) return;
  if (hi - lo == 1) {
    if (by_begin_[lo].range.Contains(range) && filter.Pass(by_begin_[lo].id)) {
      out->push_back(by_begin_[lo].id);
    }
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  CollectContaining(2 * tree_node, lo, mid, range, filter, out);
  CollectContaining(2 * tree_node + 1, mid, hi, range, filter, out);
}

void RangeIndex::CollectOverlapping(size_t tree_node, size_t lo, size_t hi,
                                    const TextRange& range,
                                    const ProbeFilter& filter,
                                    std::vector<NodeId>* out) const {
  // Same pruning as the intersect pass; the proper-overlap refinement is
  // applied per entry.
  if (max_end_[tree_node] <= range.begin) return;
  if (by_begin_[lo].range.begin >= range.end) return;
  if (hi - lo == 1) {
    if (OverlappingRange(by_begin_[lo].range, range) &&
        filter.Pass(by_begin_[lo].id)) {
      out->push_back(by_begin_[lo].id);
    }
    return;
  }
  size_t mid = lo + (hi - lo) / 2;
  CollectOverlapping(2 * tree_node, lo, mid, range, filter, out);
  CollectOverlapping(2 * tree_node + 1, mid, hi, range, filter, out);
}

std::vector<NodeId> RangeIndex::NodesIntersecting(
    const TextRange& range, const ProbeFilter& filter) const {
  std::vector<NodeId> out;
  if (!by_begin_.empty() && !range.empty()) {
    CollectIntersecting(1, 0, by_begin_.size(), range, filter, &out);
  }
  return out;
}

std::vector<NodeId> RangeIndex::NodesOverlapping(
    const TextRange& range, const ProbeFilter& filter) const {
  std::vector<NodeId> out;
  if (!by_begin_.empty() && !range.empty()) {
    CollectOverlapping(1, 0, by_begin_.size(), range, filter, &out);
  }
  return out;
}

std::vector<NodeId> RangeIndex::NodesContaining(
    const TextRange& range, const ProbeFilter& filter) const {
  std::vector<NodeId> out;
  if (!by_begin_.empty()) {
    CollectContaining(1, 0, by_begin_.size(), range, filter, &out);
  }
  return out;
}

std::vector<NodeId> RangeIndex::NodesContainedIn(
    const TextRange& range, const ProbeFilter& filter) const {
  std::vector<NodeId> out;
  // Candidates begin within [range.begin, range.end]; filter by end.
  auto first = std::lower_bound(
      by_begin_.begin(), by_begin_.end(), range.begin,
      [](const Entry& e, size_t pos) { return e.range.begin < pos; });
  for (auto it = first; it != by_begin_.end() && it->range.begin <= range.end;
       ++it) {
    if (it->range.end <= range.end && filter.Pass(it->id)) {
      out.push_back(it->id);
    }
  }
  return out;
}

std::vector<NodeId> RangeIndex::NodesBeginningAtOrAfter(
    size_t pos, const ProbeFilter& filter) const {
  auto first = std::lower_bound(
      by_begin_.begin(), by_begin_.end(), pos,
      [](const Entry& e, size_t p) { return e.range.begin < p; });
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(by_begin_.end() - first));
  for (auto it = first; it != by_begin_.end(); ++it) {
    if (filter.Pass(it->id)) out.push_back(it->id);
  }
  return out;
}

std::vector<NodeId> RangeIndex::NodesEndingAtOrBefore(
    size_t pos, const ProbeFilter& filter) const {
  auto last = std::upper_bound(
      by_end_.begin(), by_end_.end(), pos,
      [](size_t p, const Entry& e) { return p < e.range.end; });
  std::vector<NodeId> out;
  out.reserve(static_cast<size_t>(last - by_end_.begin()));
  for (auto it = by_end_.begin(); it != last; ++it) {
    if (filter.Pass(it->id)) out.push_back(it->id);
  }
  return out;
}

}  // namespace mhx::goddag
