// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/kygoddag.h"

#include <algorithm>

namespace mhx::goddag {

KyGoddag::KyGoddag(std::string base_text)
    : base_text_(std::make_shared<const std::string>(std::move(base_text))) {
  GNode root;
  root.kind = GNodeKind::kRoot;
  root.range = TextRange(0, base_text_->size());
  nodes_.push_back(std::move(root));
}

NodeId KyGoddag::AllocateNode() {
  if (!free_nodes_.empty()) {
    NodeId id = free_nodes_.back();
    free_nodes_.pop_back();
    return id;
  }
  nodes_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

void KyGoddag::FreeNode(NodeId id) {
  GNode& n = nodes_[id];
  n.kind = GNodeKind::kFree;
  n.name.clear();
  n.attributes.clear();
  n.children.clear();
  n.parent = kInvalidNode;
  n.range = TextRange();
  free_nodes_.push_back(id);
}

HierarchyId KyGoddag::AllocateHierarchySlot() {
  if (!free_hierarchies_.empty()) {
    HierarchyId id = free_hierarchies_.back();
    free_hierarchies_.pop_back();
    return id;
  }
  hierarchies_.emplace_back();
  return static_cast<HierarchyId>(hierarchies_.size() - 1);
}

NodeId KyGoddag::ConvertXmlElement(const xml::Element& element,
                                   HierarchyId hierarchy, NodeId parent,
                                   Hierarchy* out) {
  // Recursion depth is bounded by the parser's kMaxElementDepth.
  NodeId id = AllocateNode();
  GNode& n = nodes_[id];
  n.kind = GNodeKind::kElement;
  n.hierarchy = hierarchy;
  n.name = element.name;
  n.attributes = element.attributes;
  n.range = element.range;
  n.parent = parent;
  out->nodes.push_back(id);
  NoteElementAdded(element.range);
  for (const xml::Element& child : element.children) {
    NodeId child_id = ConvertXmlElement(child, hierarchy, id, out);
    // Re-fetch: the nodes_ vector may have been reallocated by the recursion.
    nodes_[id].children.push_back(child_id);
  }
  return id;
}

StatusOr<HierarchyId> KyGoddag::AddHierarchy(const std::string& name,
                                             const xml::Document& doc) {
  const std::string& base = *base_text_;
  if (doc.text != base) {
    std::string detail;
    if (doc.text.size() != base.size()) {
      detail = "content length " + std::to_string(doc.text.size()) +
               " vs base " + std::to_string(base.size());
    } else {
      size_t diff = 0;
      while (diff < doc.text.size() && doc.text[diff] == base[diff]) {
        ++diff;
      }
      detail = "first difference at offset " + std::to_string(diff) + " ('" +
               doc.text.substr(diff, 8) + "' vs '" +
               base.substr(diff, 8) + "')";
    }
    return InvalidArgumentError("hierarchy '" + name +
                                "' does not encode the base text (" + detail +
                                ")");
  }
  HierarchyId hid = AllocateHierarchySlot();
  Hierarchy& h = hierarchies_[hid];
  h = Hierarchy();
  h.name = name;
  h.is_virtual = false;
  h.active = true;
  NodeId root_id = ConvertXmlElement(doc.root, hid, /*parent=*/0, &h);
  h.root = root_id;
  nodes_[0].children.push_back(root_id);
  ++revision_;
  return hid;
}

Status SortAndValidateVirtualElements(size_t text_size,
                                      std::vector<VirtualElement>* elements) {
  for (const VirtualElement& e : *elements) {
    if (e.range.empty()) {
      return InvalidArgumentError("virtual element '" + e.name +
                                  "' has an empty range " +
                                  e.range.ToString());
    }
    if (e.range.end > text_size) {
      return OutOfRangeError("virtual element '" + e.name + "' range " +
                             e.range.ToString() + " exceeds base text size " +
                             std::to_string(text_size));
    }
  }
  // Document order; with this ordering a containing element always comes
  // before the elements it contains, so a single stack pass both validates
  // nesting and builds the tree (overlap detection happens during the pass:
  // a popped element that still reaches into the next one is a conflict).
  std::sort(elements->begin(), elements->end(),
            [](const VirtualElement& a, const VirtualElement& b) {
              return a.range < b.range;
            });
  std::vector<const VirtualElement*> stack;
  for (const VirtualElement& e : *elements) {
    const VirtualElement* last_popped = nullptr;
    while (!stack.empty() && !stack.back()->range.Contains(e.range)) {
      last_popped = stack.back();
      stack.pop_back();
    }
    // Sorted order guarantees last_popped->range.begin <= e.range.begin and
    // rules out e containing last_popped, so reaching into e means proper
    // overlap.
    if (last_popped != nullptr && last_popped->range.end > e.range.begin) {
      return InvalidArgumentError(
          "virtual elements '" + last_popped->name + "' " +
          last_popped->range.ToString() + " and '" + e.name + "' " +
          e.range.ToString() + " overlap within one hierarchy");
    }
    stack.push_back(&e);
  }
  return OkStatus();
}

StatusOr<HierarchyId> KyGoddag::AddVirtualHierarchy(
    const std::string& name, std::vector<VirtualElement> elements) {
  const size_t n = base_text_->size();
  MHX_RETURN_IF_ERROR(SortAndValidateVirtualElements(n, &elements));

  HierarchyId hid = AllocateHierarchySlot();
  Hierarchy& h = hierarchies_[hid];
  h = Hierarchy();
  h.name = name;
  h.is_virtual = true;
  h.active = true;

  NodeId root_id = AllocateNode();
  {
    GNode& root = nodes_[root_id];
    root.kind = GNodeKind::kElement;
    root.hierarchy = hid;
    root.name = name;
    root.range = TextRange(0, n);
    root.parent = 0;
  }
  h.root = root_id;
  h.nodes.push_back(root_id);
  NoteElementAdded(nodes_[root_id].range);

  std::vector<NodeId> stack = {root_id};
  for (VirtualElement& e : elements) {
    while (stack.size() > 1 && !nodes_[stack.back()].range.Contains(e.range)) {
      stack.pop_back();
    }
    NodeId id = AllocateNode();
    GNode& node = nodes_[id];
    node.kind = GNodeKind::kElement;
    node.hierarchy = hid;
    node.name = std::move(e.name);
    node.attributes = std::move(e.attributes);
    node.range = e.range;
    node.parent = stack.back();
    nodes_[stack.back()].children.push_back(id);
    h.nodes.push_back(id);
    NoteElementAdded(node.range);
    stack.push_back(id);
  }

  nodes_[0].children.push_back(root_id);
  ++revision_;
  return hid;
}

Status KyGoddag::RemoveVirtualHierarchy(HierarchyId id) {
  if (id >= hierarchies_.size() || !hierarchies_[id].active) {
    return NotFoundError("no active hierarchy " + std::to_string(id));
  }
  Hierarchy& h = hierarchies_[id];
  if (!h.is_virtual) {
    return FailedPreconditionError("hierarchy '" + h.name +
                                   "' is persistent and cannot be removed");
  }
  for (NodeId node_id : h.nodes) {
    NoteElementRemoved(nodes_[node_id].range);
    FreeNode(node_id);
  }
  auto& root_children = nodes_[0].children;
  root_children.erase(
      std::remove(root_children.begin(), root_children.end(), h.root),
      root_children.end());
  h = Hierarchy();
  free_hierarchies_.push_back(id);
  ++revision_;
  return OkStatus();
}

void KyGoddag::set_incremental_leaves(bool incremental) {
  if (incremental_leaves_ == incremental) return;
  incremental_leaves_ = incremental;
  // The refcount map is only maintained while incremental and clean; resync
  // on the next leaves() call.
  leaves_dirty_ = true;
}

void KyGoddag::NoteElementAdded(const TextRange& range) {
  ++element_count_;
  NoteBoundaryAdded(range.begin);
  NoteBoundaryAdded(range.end);
}

void KyGoddag::NoteElementRemoved(const TextRange& range) {
  --element_count_;
  NoteBoundaryRemoved(range.begin);
  NoteBoundaryRemoved(range.end);
}

void KyGoddag::NoteBoundaryAdded(size_t pos) {
  if (base_text_->empty()) return;  // the partition is empty either way
  if (!incremental_leaves_ || leaves_dirty_ || boundary_refs_deferred_) {
    leaves_dirty_ = true;
    return;
  }
  if (++boundary_refs_[pos] != 1) return;
  // New boundary: split the leaf that strictly contains `pos`. (pos cannot
  // be 0 or n — those carry permanent sentinel refs.) The tiered partition
  // makes this O(log chunks + chunk), the E10 fix.
  leaves_.InsertBoundary(pos);
}

void KyGoddag::NoteBoundaryRemoved(size_t pos) {
  if (base_text_->empty()) return;
  if (!incremental_leaves_ || leaves_dirty_ || boundary_refs_deferred_) {
    leaves_dirty_ = true;
    return;
  }
  auto ref = boundary_refs_.find(pos);
  if (ref == boundary_refs_.end()) {  // invariant breach; fall back to rebuild
    leaves_dirty_ = true;
    return;
  }
  if (--ref->second != 0) return;
  boundary_refs_.erase(ref);
  // Merge the leaf ending at `pos` with its successor.
  leaves_.EraseBoundary(pos);
}

void KyGoddag::RebuildLeaves() const {
  boundary_refs_.clear();
  boundary_refs_deferred_ = false;
  const size_t n = base_text_->size();
  if (n == 0) {
    leaves_.Clear();
    leaves_dirty_ = false;
    return;
  }
  // Permanent sentinel refs keep 0 and n from ever being removed.
  boundary_refs_[0] = 1;
  boundary_refs_[n] = 1;
  for (const GNode& node : nodes_) {
    if (node.kind != GNodeKind::kElement) continue;
    ++boundary_refs_[node.range.begin];
    ++boundary_refs_[node.range.end];
  }
  leaves_.AssignFromBoundaries(boundary_refs_);
  leaves_dirty_ = false;
}

const std::vector<Leaf>& KyGoddag::leaves() const {
  if (leaves_dirty_) RebuildLeaves();
  return leaves_.Flatten();
}

std::string KyGoddag::NodeString(NodeId id) const {
  const TextRange& r = nodes_[id].range;
  return base_text_->substr(r.begin, r.length());
}

}  // namespace mhx::goddag
