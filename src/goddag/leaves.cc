// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/leaves.h"

#include <algorithm>

namespace mhx::goddag {

void TieredLeafPartition::Clear() {
  chunks_.clear();
  chunk_ends_.clear();
  size_ = 0;
  flat_.clear();
  flat_dirty_ = false;
}

void TieredLeafPartition::AssignFromBoundaries(
    const std::map<size_t, uint32_t>& boundary_refs) {
  Clear();
  if (boundary_refs.size() < 2) return;
  std::vector<Leaf> chunk;
  chunk.reserve(kTargetChunkCells);
  auto it = boundary_refs.begin();
  size_t prev = it->first;
  for (++it; it != boundary_refs.end(); ++it) {
    chunk.push_back(Leaf{TextRange(prev, it->first)});
    prev = it->first;
    ++size_;
    if (chunk.size() == kTargetChunkCells) {
      chunk_ends_.push_back(chunk.back().range.end);
      chunks_.push_back(std::move(chunk));
      chunk = {};
      chunk.reserve(kTargetChunkCells);
    }
  }
  if (!chunk.empty()) {
    chunk_ends_.push_back(chunk.back().range.end);
    chunks_.push_back(std::move(chunk));
  }
  flat_dirty_ = true;
}

void TieredLeafPartition::AssignFlat(std::vector<Leaf> flat) {
  Clear();
  size_ = flat.size();
  chunks_.reserve((flat.size() + kTargetChunkCells - 1) / kTargetChunkCells);
  for (size_t i = 0; i < flat.size(); i += kTargetChunkCells) {
    const size_t end = std::min(i + kTargetChunkCells, flat.size());
    chunks_.emplace_back(flat.begin() + i, flat.begin() + end);
    chunk_ends_.push_back(chunks_.back().back().range.end);
  }
  flat_ = std::move(flat);
  flat_dirty_ = false;
}

void TieredLeafPartition::InsertBoundary(size_t pos) {
  // The chunk containing `pos` is the first whose last end exceeds it (`pos`
  // is strictly inside a leaf, so it can never equal a chunk end).
  const size_t ci = static_cast<size_t>(
      std::upper_bound(chunk_ends_.begin(), chunk_ends_.end(), pos) -
      chunk_ends_.begin());
  std::vector<Leaf>& chunk = chunks_[ci];
  auto it = std::upper_bound(chunk.begin(), chunk.end(), pos,
                             [](size_t p, const Leaf& leaf) {
                               return p < leaf.range.end;
                             });
  // it -> the leaf whose end is the first > pos, i.e. the leaf containing
  // pos. Split it; the chunk's final end is unchanged.
  const size_t leaf_end = it->range.end;
  it->range.end = pos;
  chunk.insert(it + 1, Leaf{TextRange(pos, leaf_end)});
  ++size_;
  flat_dirty_ = true;
  SplitChunkIfOversized(ci);
}

void TieredLeafPartition::EraseBoundary(size_t pos) {
  // The leaf ending at `pos` may be the last of its chunk, so locate with
  // end >= pos (lower_bound), not end > pos.
  const size_t ci = static_cast<size_t>(
      std::lower_bound(chunk_ends_.begin(), chunk_ends_.end(), pos) -
      chunk_ends_.begin());
  std::vector<Leaf>& chunk = chunks_[ci];
  auto it = std::lower_bound(chunk.begin(), chunk.end(), pos,
                             [](const Leaf& leaf, size_t p) {
                               return leaf.range.end < p;
                             });
  // it -> the leaf with range.end == pos. Its successor absorbs it; `pos`
  // is interior, so a successor always exists (possibly in the next chunk).
  const size_t merged_begin = it->range.begin;
  if (it + 1 != chunk.end()) {
    (it + 1)->range.begin = merged_begin;
    chunk.erase(it);
  } else {
    chunk.erase(it);
    if (chunk.empty()) {
      chunks_.erase(chunks_.begin() + ci);
      chunk_ends_.erase(chunk_ends_.begin() + ci);
      chunks_[ci].front().range.begin = merged_begin;
    } else {
      chunk_ends_[ci] = chunk.back().range.end;
      chunks_[ci + 1].front().range.begin = merged_begin;
    }
  }
  --size_;
  flat_dirty_ = true;
}

void TieredLeafPartition::SplitChunkIfOversized(size_t chunk_index) {
  std::vector<Leaf>& chunk = chunks_[chunk_index];
  if (chunk.size() <= 2 * kTargetChunkCells) return;
  const size_t half = chunk.size() / 2;
  std::vector<Leaf> tail(chunk.begin() + half, chunk.end());
  chunk.resize(half);
  const size_t left_end = chunk.back().range.end;
  chunks_.insert(chunks_.begin() + chunk_index + 1, std::move(tail));
  // The original entry at chunk_index keeps the (unchanged) tail end; the
  // new left half's end slots in before it.
  chunk_ends_.insert(chunk_ends_.begin() + chunk_index, left_end);
}

const std::vector<Leaf>& TieredLeafPartition::Flatten() const {
  if (flat_dirty_) {
    flat_.clear();
    flat_.reserve(size_);
    for (const std::vector<Leaf>& chunk : chunks_) {
      flat_.insert(flat_.end(), chunk.begin(), chunk.end());
    }
    flat_dirty_ = false;
  }
  return flat_;
}

}  // namespace mhx::goddag
