// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/arena.h"

#include <cstring>

namespace mhx::goddag {

uint64_t ArenaFnv1a64(const void* data, size_t size, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= p[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t ArenaBodyChecksum(const void* data, size_t size) {
  constexpr uint64_t kPrime = 1099511628211ull;
  constexpr uint64_t kOffset = 14695981039346656037ull;
  // Distinct lane seeds so a word swapped between lanes changes the sum.
  uint64_t lane[4] = {kOffset, kOffset ^ kPrime, kOffset + kPrime,
                      kOffset ^ (kPrime << 1)};
  const unsigned char* p = static_cast<const unsigned char*>(data);
  size_t i = 0;
  // Word loads via memcpy: alignment-safe, and the compiler lowers them to
  // plain 8-byte reads. The four multiply chains are independent, so the
  // loop runs at multiplier throughput, not latency.
  for (; i + 32 <= size; i += 32) {
    uint64_t w[4];
    std::memcpy(w, p + i, sizeof(w));
    lane[0] = (lane[0] ^ w[0]) * kPrime;
    lane[1] = (lane[1] ^ w[1]) * kPrime;
    lane[2] = (lane[2] ^ w[2]) * kPrime;
    lane[3] = (lane[3] ^ w[3]) * kPrime;
  }
  // Tail: whole words round-robin, then the last partial word zero-padded.
  size_t j = 0;
  for (; i + 8 <= size; i += 8, ++j) {
    uint64_t w;
    std::memcpy(&w, p + i, sizeof(w));
    lane[j & 3] = (lane[j & 3] ^ w) * kPrime;
  }
  if (i < size) {
    uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    lane[j & 3] = (lane[j & 3] ^ w) * kPrime;
  }
  const uint64_t total = static_cast<uint64_t>(size);
  uint64_t hash = ArenaFnv1a64(lane, sizeof(lane));
  return ArenaFnv1a64(&total, sizeof(total), hash);
}

uint64_t ArenaRecordSize(uint32_t kind) {
  switch (static_cast<ArenaSection>(kind)) {
    case ArenaSection::kStringBlob:
    case ArenaSection::kBaseText:
      return 1;
    case ArenaSection::kStringTable:
      return sizeof(ArenaStringRef);
    case ArenaSection::kNodes:
      return sizeof(ArenaNode);
    case ArenaSection::kChildren:
    case ArenaSection::kHierarchyNodes:
    case ArenaSection::kSoaBegin:
    case ArenaSection::kSoaEnd:
    case ArenaSection::kSoaNameKey:
    case ArenaSection::kSoaId:
    case ArenaSection::kNodeNameKeys:
    case ArenaSection::kStatsNameRefs:
      return sizeof(uint32_t);
    case ArenaSection::kAttrs:
      return sizeof(ArenaAttrRef);
    case ArenaSection::kHierarchies:
      return sizeof(ArenaHierarchy);
    case ArenaSection::kLeafBoundaries:
      return sizeof(ArenaBoundary);
    case ArenaSection::kIndexByBegin:
    case ArenaSection::kIndexByEnd:
      return sizeof(ArenaIndexEntry);
    case ArenaSection::kIndexMaxEnd:
    case ArenaSection::kStatsNameCounts:
    case ArenaSection::kPerHierarchy:
    case ArenaSection::kLengthHistogram:
      return sizeof(uint64_t);
  }
  return 0;
}

const char* ArenaSectionName(uint32_t kind) {
  switch (static_cast<ArenaSection>(kind)) {
    case ArenaSection::kStringBlob:      return "string_blob";
    case ArenaSection::kStringTable:     return "string_table";
    case ArenaSection::kBaseText:        return "base_text";
    case ArenaSection::kNodes:           return "nodes";
    case ArenaSection::kChildren:        return "children";
    case ArenaSection::kAttrs:           return "attrs";
    case ArenaSection::kHierarchies:     return "hierarchies";
    case ArenaSection::kHierarchyNodes:  return "hierarchy_nodes";
    case ArenaSection::kLeafBoundaries:  return "leaf_boundaries";
    case ArenaSection::kIndexByBegin:    return "index_by_begin";
    case ArenaSection::kIndexByEnd:      return "index_by_end";
    case ArenaSection::kIndexMaxEnd:     return "index_max_end";
    case ArenaSection::kSoaBegin:        return "soa_begin";
    case ArenaSection::kSoaEnd:          return "soa_end";
    case ArenaSection::kSoaNameKey:      return "soa_name_key";
    case ArenaSection::kSoaId:           return "soa_id";
    case ArenaSection::kNodeNameKeys:    return "node_name_keys";
    case ArenaSection::kStatsNameRefs:   return "stats_name_refs";
    case ArenaSection::kStatsNameCounts: return "stats_name_counts";
    case ArenaSection::kPerHierarchy:    return "per_hierarchy";
    case ArenaSection::kLengthHistogram: return "length_histogram";
  }
  return "unknown";
}

}  // namespace mhx::goddag
