// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Zero-copy persistence for published DocumentSnapshots: serialize a
// snapshot into the single-arena on-disk format of goddag/arena.h, and
// adopt such an arena back — by mmap or from an in-memory buffer — as a
// normal DocumentSnapshot whose RangeIndex, RangeSoA, and stats arrays
// borrow the mapped bytes instead of being rebuilt. Cold-starting a
// document this way costs one O(header) validation pass plus an O(nodes)
// node-table materialisation — no XML reparse, no index sort, no SoA pack
// (see DESIGN.md "On-disk format").
//
// Lifetime (CONCURRENCY.md "mapped-snapshot lifetime"): the mapping (or
// the adopted buffer) is owned by the returned snapshot and released only
// when the snapshot itself dies — i.e. after the last pin drops. Readers
// holding a pinned mapped snapshot are safe across document commits,
// corpus eviction, and even deletion of the underlying file (POSIX keeps
// the mapping valid after unlink). The returned MappedSnapshot::head
// goddag owns all of its state, so writers may clone-and-commit from it
// with the mapping long gone.
//
// Failure model: every malformed input — truncation, wrong magic or
// format version, checksum mismatch, out-of-bounds offsets or indices —
// is rejected with InvalidArgument, never undefined behaviour. A missing
// file is NotFound (the corpus spill path's "cold but not corrupt"
// signal). Arenas are little-endian and LP64-shaped; loading or writing
// on a mismatched platform fails with Unimplemented rather than guessing.

#ifndef MHX_GODDAG_PERSIST_H_
#define MHX_GODDAG_PERSIST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/status_macros.h"
#include "base/statusor.h"
#include "goddag/arena.h"
#include "goddag/snapshot.h"

namespace mhx::goddag {

// The result of adopting an arena: a live document head plus its published
// snapshot. `head` owns every byte it points at (safe to clone/mutate after
// the mapping is gone); `snapshot` keeps the mapping alive for as long as it
// is pinned anywhere.
struct MappedSnapshot {
  std::shared_ptr<KyGoddag> head;
  std::shared_ptr<const DocumentSnapshot> snapshot;
  // Size of the backing arena in bytes (file size for mmap loads).
  size_t arena_bytes = 0;
};

// Knobs for the load path.
struct LoadOptions {
  // Verify the FNV-1a body checksum over every section byte before
  // adopting. Default on: with it, a corrupted arena can never load
  // successfully. Turning it off trades that guarantee for O(header)
  // validation only — structural bounds checks still run.
  bool verify_body_checksum = true;
};

// Serializes a published snapshot into an in-memory arena image (the exact
// bytes WriteSnapshotFile would write). Forces the snapshot's index and
// stats builds first, so the arena always carries them prebuilt.
StatusOr<std::string> SerializeSnapshot(const DocumentSnapshot& snapshot);

// Serializes `snapshot` and writes it to `path` atomically (temp file +
// rename): readers never observe a half-written arena, and a crash leaves
// either the old file or the new one.
Status WriteSnapshotFile(const DocumentSnapshot& snapshot,
                         const std::string& path);

// Adopts an arena image held in memory. The buffer is retained (as the
// snapshot's keepalive) for the lifetime of the returned snapshot; the
// caller must not mutate it afterwards.
StatusOr<MappedSnapshot> AdoptArenaBuffer(
    std::shared_ptr<const std::string> bytes, const LoadOptions& options = {});

// Maps `path` read-only (mmap + madvise(WILLNEED) on POSIX; a plain read
// into memory elsewhere) and adopts it. NotFound when the file does not
// exist; InvalidArgument for any malformed content.
StatusOr<MappedSnapshot> LoadSnapshotFile(const std::string& path,
                                          const LoadOptions& options = {});

// One section-table row, decoded for display.
struct ArenaSectionInfo {
  uint32_t kind = 0;
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t count = 0;
};

// Header + section table of an arena file, plus checksum verdicts — the
// data behind `mhx_pack inspect`.
struct ArenaInfo {
  ArenaHeader header{};
  std::vector<ArenaSectionInfo> sections;
  bool body_checksum_ok = false;
};

// Reads and validates `path`'s header and section table (InvalidArgument
// on any structural defect) and reports whether the body checksum matches.
// Unlike LoadSnapshotFile, a body-checksum mismatch is reported in the
// result, not an error — inspection of damaged files is the point.
StatusOr<ArenaInfo> InspectArenaFile(const std::string& path);

// Renders an ArenaInfo as a human-readable header + section table.
std::string FormatArenaInfo(const ArenaInfo& info);

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_PERSIST_H_
