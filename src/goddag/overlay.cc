// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/overlay.h"

#include <algorithm>

namespace mhx::goddag {

namespace {
// Ids run from kOverlayIdBit to kOverlayIdBit | kMaxOverlayOffset - 1;
// kInvalidNode (all bits set) stays unreachable.
constexpr uint32_t kMaxOverlayOffset = 0x7FFFFFFFu;
}  // namespace

NodeId OverlayIdAllocator::Allocate(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count > kMaxOverlayOffset - next_) return kInvalidNode;
  NodeId begin = kOverlayIdBit | next_;
  next_ += static_cast<uint32_t>(count);
  outstanding_ += count;
  return begin;
}

void OverlayIdAllocator::Release(NodeId begin, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_ -= count;
  if (outstanding_ == 0) {
    // Fully drained — the steady state between queries when nothing is
    // kept: reset wholesale.
    next_ = 0;
    freed_.clear();
    return;
  }
  freed_[begin & ~kOverlayIdBit] = static_cast<uint32_t>(count);
  // Rewind the cursor over the contiguous released suffix, so churn above
  // a long-lived kept block keeps reusing the same ids instead of walking
  // off the end of the namespace.
  while (!freed_.empty()) {
    auto last = std::prev(freed_.end());
    if (last->first + last->second != next_) break;
    next_ = last->first;
    freed_.erase(last);
  }
}

StatusOr<std::shared_ptr<const GoddagOverlay>> GoddagOverlay::Create(
    const KyGoddag* base, std::shared_ptr<OverlayIdAllocator> ids,
    const std::string& name, std::vector<VirtualElement> elements) {
  const size_t n = base->base_text().size();
  MHX_RETURN_IF_ERROR(SortAndValidateVirtualElements(n, &elements));

  const size_t count = elements.size() + 1;  // + auto-created root
  NodeId id_begin = ids->Allocate(count);
  if (id_begin == kInvalidNode) {
    return ResourceExhaustedError(
        "overlay id namespace exhausted (2^31 overlay nodes alive)");
  }
  auto overlay = std::shared_ptr<GoddagOverlay>(
      new GoddagOverlay(std::move(ids), id_begin));
  overlay->arena_.resize(count);

  GNode& root = overlay->arena_[0];
  root.kind = GNodeKind::kElement;
  root.hierarchy = kOverlayHierarchy;
  root.name = name;
  root.range = TextRange(0, n);
  root.parent = base->root();

  // Elements arrive in document order, so a single stack pass builds the
  // tree (exactly as KyGoddag::AddVirtualHierarchy does for its arena).
  std::vector<NodeId> stack = {id_begin};
  NodeId next = id_begin + 1;
  for (VirtualElement& e : elements) {
    while (stack.size() > 1 &&
           !overlay->node(stack.back()).range.Contains(e.range)) {
      stack.pop_back();
    }
    GNode& node = overlay->arena_[next - id_begin];
    node.kind = GNodeKind::kElement;
    node.hierarchy = kOverlayHierarchy;
    node.name = std::move(e.name);
    node.attributes = std::move(e.attributes);
    node.range = e.range;
    node.parent = stack.back();
    overlay->arena_[stack.back() - id_begin].children.push_back(next);
    stack.push_back(next);
    ++next;
  }
  return std::shared_ptr<const GoddagOverlay>(std::move(overlay));
}

GoddagOverlay::~GoddagOverlay() { ids_->Release(id_begin_, arena_.size()); }

void OverlayView::AddOverlay(std::shared_ptr<const GoddagOverlay> overlay) {
  auto it = std::upper_bound(
      overlays_.begin(), overlays_.end(), overlay->id_begin(),
      [](NodeId begin, const std::shared_ptr<const GoddagOverlay>& o) {
        return begin < o->id_begin();
      });
  overlays_.insert(it, overlay);
  unspliced_.push_back(std::move(overlay));
}

const std::vector<Leaf>& OverlayView::leaves() const {
  if (!has_overlays()) return base_->leaves();
  // Workers sharing the view may race the first materialisation; in the
  // steady state this is an empty-queue check under an uncontended mutex.
  // AddOverlay (owner only, never concurrent with readers) just queues.
  std::lock_guard<std::mutex> lock(leaves_mu_);
  if (!merged_init_) {
    merged_leaves_ = base_->leaves();
    merged_init_ = true;
  }
  // Drain incrementally: boundaries only accumulate within a view, so each
  // overlay is spliced exactly once no matter how AddOverlay calls
  // interleave with leaf() steps — never a from-scratch rebuild. (Each
  // root's 0/n boundaries are partition edges already, so splicing them
  // no-ops.)
  for (const auto& overlay : unspliced_) {
    for (NodeId id = overlay->root(); id < overlay->id_end(); ++id) {
      const TextRange& range = overlay->node(id).range;
      SpliceBoundary(range.begin);
      SpliceBoundary(range.end);
    }
  }
  unspliced_.clear();
  return merged_leaves_;
}

void OverlayView::SpliceBoundary(size_t pos) const {
  if (pos == 0 || pos >= base_->base_text().size()) return;
  // The partition tiles [0, n), so exactly one cell has end > pos; split it
  // unless pos is already one of its edges.
  auto it = std::upper_bound(merged_leaves_.begin(), merged_leaves_.end(),
                             pos, [](size_t p, const Leaf& leaf) {
                               return p < leaf.range.end;
                             });
  if (it == merged_leaves_.end() || it->range.begin >= pos) return;
  const size_t leaf_end = it->range.end;
  it->range.end = pos;
  merged_leaves_.insert(it + 1, Leaf{TextRange(pos, leaf_end)});
}

const GoddagOverlay* OverlayView::overlay_of(NodeId id) const {
  // The overlay whose id_begin is the last <= id; blocks are disjoint, so
  // either it contains the id or nothing does.
  auto it = std::upper_bound(
      overlays_.begin(), overlays_.end(), id,
      [](NodeId value, const std::shared_ptr<const GoddagOverlay>& o) {
        return value < o->id_begin();
      });
  if (it == overlays_.begin()) return nullptr;
  const GoddagOverlay* overlay = (it - 1)->get();
  return overlay->Contains(id) ? overlay : nullptr;
}

std::string OverlayView::NodeString(NodeId id) const {
  const TextRange& r = node(id).range;
  return base_->base_text().substr(r.begin, r.length());
}

}  // namespace mhx::goddag
