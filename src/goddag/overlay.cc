// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "goddag/overlay.h"

#include <algorithm>

namespace mhx::goddag {

namespace {
// Ids run from kOverlayIdBit to kOverlayIdBit | kMaxOverlayOffset - 1;
// kInvalidNode (all bits set) stays unreachable.
constexpr uint32_t kMaxOverlayOffset = 0x7FFFFFFFu;
}  // namespace

NodeId OverlayIdAllocator::Allocate(size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  // First fit: the lowest released hole that holds `count`. freed_ is
  // offset-ordered and holes are coalesced on release, so holes sandwiched
  // under live blocks — many long-lived engines churning in one process —
  // are recycled instead of waiting for a tail rewind that may never come.
  for (auto it = freed_.begin(); it != freed_.end(); ++it) {
    if (static_cast<uint64_t>(it->second) < count) continue;
    const uint32_t offset = it->first;
    const uint32_t remainder = it->second - static_cast<uint32_t>(count);
    freed_.erase(it);
    if (remainder > 0) {
      freed_.emplace(offset + static_cast<uint32_t>(count), remainder);
    }
    outstanding_ += count;
    return kOverlayIdBit | offset;
  }
  if (count > kMaxOverlayOffset - next_) return kInvalidNode;
  NodeId begin = kOverlayIdBit | next_;
  next_ += static_cast<uint32_t>(count);
  outstanding_ += count;
  return begin;
}

void OverlayIdAllocator::Release(NodeId begin, size_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  outstanding_ -= count;
  if (outstanding_ == 0) {
    // Fully drained — the steady state between queries when nothing is
    // kept: reset wholesale.
    next_ = 0;
    freed_.clear();
    return;
  }
  // Insert the hole, coalescing with adjacent holes so first-fit sees one
  // big hole rather than fragments no single block fits into.
  uint32_t offset = begin & ~kOverlayIdBit;
  uint32_t length = static_cast<uint32_t>(count);
  auto after = freed_.upper_bound(offset);
  if (after != freed_.begin()) {
    auto before = std::prev(after);
    if (before->first + before->second == offset) {
      offset = before->first;
      length += before->second;
      freed_.erase(before);
    }
  }
  if (after != freed_.end() && after->first == offset + length) {
    length += after->second;
    freed_.erase(after);
  }
  freed_[offset] = length;
  // Rewind the cursor over the contiguous released suffix, so churn above
  // a long-lived kept block keeps reusing the same ids instead of walking
  // off the end of the namespace.
  while (!freed_.empty()) {
    auto last = std::prev(freed_.end());
    if (last->first + last->second != next_) break;
    next_ = last->first;
    freed_.erase(last);
  }
}

StatusOr<std::shared_ptr<const GoddagOverlay>> GoddagOverlay::Create(
    const KyGoddag* base, std::shared_ptr<OverlayIdAllocator> ids,
    const std::string& name, std::vector<VirtualElement> elements) {
  const size_t n = base->base_text().size();
  MHX_RETURN_IF_ERROR(SortAndValidateVirtualElements(n, &elements));

  const size_t count = elements.size() + 1;  // + auto-created root
  NodeId id_begin = ids->Allocate(count);
  if (id_begin == kInvalidNode) {
    return ResourceExhaustedError(
        "overlay id namespace exhausted (2^31 overlay nodes alive)");
  }
  auto overlay = std::shared_ptr<GoddagOverlay>(
      new GoddagOverlay(std::move(ids), id_begin));
  overlay->arena_.resize(count);

  GNode& root = overlay->arena_[0];
  root.kind = GNodeKind::kElement;
  root.hierarchy = kOverlayHierarchy;
  root.name = name;
  root.range = TextRange(0, n);
  root.parent = base->root();

  // Elements arrive in document order, so a single stack pass builds the
  // tree (exactly as KyGoddag::AddVirtualHierarchy does for its arena).
  std::vector<NodeId> stack = {id_begin};
  NodeId next = id_begin + 1;
  for (VirtualElement& e : elements) {
    while (stack.size() > 1 &&
           !overlay->node(stack.back()).range.Contains(e.range)) {
      stack.pop_back();
    }
    GNode& node = overlay->arena_[next - id_begin];
    node.kind = GNodeKind::kElement;
    node.hierarchy = kOverlayHierarchy;
    node.name = std::move(e.name);
    node.attributes = std::move(e.attributes);
    node.range = e.range;
    node.parent = stack.back();
    overlay->arena_[stack.back() - id_begin].children.push_back(next);
    stack.push_back(next);
    ++next;
  }
  return std::shared_ptr<const GoddagOverlay>(std::move(overlay));
}

GoddagOverlay::~GoddagOverlay() { ids_->Release(id_begin_, arena_.size()); }

void OverlayView::AddOverlay(std::shared_ptr<const GoddagOverlay> overlay) {
  auto it = std::upper_bound(
      overlays_.begin(), overlays_.end(), overlay->id_begin(),
      [](NodeId begin, const std::shared_ptr<const GoddagOverlay>& o) {
        return begin < o->id_begin();
      });
  overlays_.insert(it, overlay);
  unspliced_.push_back(std::move(overlay));
}

const std::vector<Leaf>& OverlayView::leaves() const {
  if (!has_overlays()) return inherited_leaves();
  // Workers sharing the view may race the first materialisation; in the
  // steady state this is an empty-queue check under an uncontended mutex.
  // AddOverlay (owner only, never concurrent with readers) just queues.
  std::lock_guard<std::mutex> lock(leaves_mu_);
  if (!merged_init_) {
    merged_leaves_ = inherited_leaves();
    merged_init_ = true;
  }
  if (!unspliced_.empty()) SpliceQueuedBoundaries();
  return merged_leaves_;
}

void OverlayView::SpliceQueuedBoundaries() const {
  // Boundaries only accumulate within a view, so each overlay is spliced
  // exactly once no matter how AddOverlay calls interleave with leaf()
  // steps. The drain is batched: collect every queued boundary, sort once,
  // then rewrite the partition in a single merge pass — O(partition + N)
  // for N boundaries where the former per-boundary vector insert paid
  // O(partition) each. (Each root's 0/n boundaries are partition edges
  // already, so they are filtered with the other no-op cuts below.)
  const size_t text_size = base_->base_text().size();
  std::vector<size_t> cuts;
  for (const auto& overlay : unspliced_) {
    cuts.reserve(cuts.size() + 2 * overlay->node_count());
    for (NodeId id = overlay->root(); id < overlay->id_end(); ++id) {
      const TextRange& range = overlay->node(id).range;
      if (range.begin > 0 && range.begin < text_size) {
        cuts.push_back(range.begin);
      }
      if (range.end > 0 && range.end < text_size) cuts.push_back(range.end);
    }
  }
  unspliced_.clear();
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  if (cuts.empty()) return;

  // Rewrite the partition around the cuts: unaffected cell runs between
  // consecutive cuts bulk-copy (memmove fast path), only the cells a cut
  // actually splits are rebuilt piecewise — O(N log P) search plus one
  // O(P + N) copy, where the old per-boundary path paid an O(P) vector
  // insert for every boundary.
  std::vector<Leaf> merged;
  merged.reserve(merged_leaves_.size() + cuts.size());
  auto rest = merged_leaves_.cbegin();  // first cell not yet emitted
  for (auto cut = cuts.cbegin(); cut != cuts.cend();) {
    // The cell containing this cut: the first with end > cut, at or after
    // `rest` (cuts ascend, so the search window only narrows).
    auto cell = std::upper_bound(rest, merged_leaves_.cend(), *cut,
                                 [](size_t pos, const Leaf& leaf) {
                                   return pos < leaf.range.end;
                                 });
    merged.insert(merged.end(), rest, cell);
    rest = cell;
    if (cell == merged_leaves_.cend()) break;
    if (cell->range.begin >= *cut) {
      ++cut;  // an existing boundary — no-op
      continue;
    }
    // Split this cell at every cut inside it.
    size_t begin = cell->range.begin;
    for (; cut != cuts.cend() && *cut < cell->range.end; ++cut) {
      merged.push_back(Leaf{TextRange(begin, *cut)});
      begin = *cut;
    }
    merged.push_back(Leaf{TextRange(begin, cell->range.end)});
    rest = cell + 1;
  }
  merged.insert(merged.end(), rest, merged_leaves_.cend());
  merged_leaves_ = std::move(merged);
}

const GoddagOverlay* OverlayView::overlay_of(NodeId id) const {
  // The overlay whose id_begin is the last <= id; blocks are disjoint, so
  // either it contains the id or nothing does. Ids not registered here may
  // belong to the view this one was forked from.
  auto it = std::upper_bound(
      overlays_.begin(), overlays_.end(), id,
      [](NodeId value, const std::shared_ptr<const GoddagOverlay>& o) {
        return value < o->id_begin();
      });
  if (it != overlays_.begin()) {
    const GoddagOverlay* overlay = (it - 1)->get();
    if (overlay->Contains(id)) return overlay;
  }
  return parent_ != nullptr ? parent_->overlay_of(id) : nullptr;
}

std::string OverlayView::NodeString(NodeId id) const {
  const TextRange& r = node(id).range;
  return base_->base_text().substr(r.begin, r.length());
}

}  // namespace mhx::goddag
