// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// KyGoddag is the paper's keyed/numbered-hierarchy GODDAG (after
// Sperberg-McQueen & Huitfeldt's "general ordered-descendant directed acyclic
// graph" for overlapping markup): one shared base text, a shared leaf
// partition over that text, and any number of element hierarchies — each a
// tree on its own, all meeting in the common leaves. Hierarchies are either
// *persistent* (parsed from an XML encoding of the base text at build time)
// or *virtual* (added and removed at query time, which is how the paper's
// analyze-string() materialises match fragments as markup).
//
// Leaves are not materialised as graph nodes. Because every element range is
// a contiguous interval of the base text, the leaf partition is fully
// described by the sorted set of element boundary offsets, and all extended
// axis semantics reduce to interval arithmetic on node ranges (see
// xpath/axes.h). The partition is maintained either incrementally (boundary
// refcounts plus a tiered-vector splice, goddag/leaves.h — the default; a
// splice is O(log chunks + chunk), not O(partition)) or by a full lazy
// rebuild that rescans every node; `set_incremental_leaves` toggles the two
// so the E10 ablation can measure the difference.
//
// Thread-safety: unsynchronized — a KyGoddag is mutated only on the writer
// path (Builder::Build, Writer::Commit on a private Clone(), or the legacy
// mutable_goddag() escape hatch) and read concurrently only once published
// inside an immutable DocumentSnapshot (goddag/snapshot.h, CONCURRENCY.md).
// Clone() is the MVCC copy-on-write step: the node table, hierarchy table,
// and leaf partition are copied; the base text is shared (refcounted, never
// mutated after construction).

#ifndef MHX_GODDAG_KYGODDAG_H_
#define MHX_GODDAG_KYGODDAG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status_macros.h"
#include "base/statusor.h"
#include "base/text_range.h"
#include "goddag/leaves.h"
#include "xml/parser.h"

namespace mhx::goddag {

using NodeId = uint32_t;
using HierarchyId = uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

// What a node-table slot currently holds.
enum class GNodeKind : uint8_t {
  kFree = 0,  // recycled slot, not part of the document
  kRoot,      // the unique GODDAG root above all hierarchy roots
  kElement,
};

// One node-table entry: the element's identity plus its parent/children
// arcs within its own hierarchy and the base-text range it dominates.
struct GNode {
  GNodeKind kind = GNodeKind::kFree;
  HierarchyId hierarchy = 0;
  std::string name;
  TextRange range;
  std::vector<std::pair<std::string, std::string>> attributes;
  NodeId parent = kInvalidNode;   // within its hierarchy; GODDAG root for
                                  // hierarchy roots, kInvalidNode for the root
  std::vector<NodeId> children;   // element children in document order
};

// One markup hierarchy (persistent or virtual) over the shared base text.
struct Hierarchy {
  std::string name;
  NodeId root = kInvalidNode;
  // All element nodes of the hierarchy (root included) in document
  // (pre-order) order.
  std::vector<NodeId> nodes;
  bool is_virtual = false;
  bool active = false;
};

// One element of a virtual hierarchy, given by its range over the base text.
// Elements of one AddVirtualHierarchy call must pairwise nest or be disjoint.
struct VirtualElement {
  std::string name;
  TextRange range;
  std::vector<std::pair<std::string, std::string>> attributes;
};

// Sorts `elements` into document order (range begin ascending, containing
// element before contained) and validates them as one tree over a base text
// of `text_size` characters: every range non-empty and in bounds, no two
// elements properly overlapping. Shared by KyGoddag::AddVirtualHierarchy
// (document-resident virtual hierarchies) and GoddagOverlay (evaluation-
// scoped hierarchies, goddag/overlay.h).
Status SortAndValidateVirtualElements(size_t text_size,
                                      std::vector<VirtualElement>* elements);

class KyGoddag {
 public:
  explicit KyGoddag(std::string base_text);

  KyGoddag& operator=(const KyGoddag&) = delete;
  KyGoddag(KyGoddag&&) = default;
  KyGoddag& operator=(KyGoddag&&) = default;

  // Deep-copies the node table, hierarchy table, and leaf partition; shares
  // the (immutable) base text. The clone starts at this goddag's revision
  // and is the MVCC writer's private working copy — mutations to either
  // side are invisible to the other. O(nodes + leaves); unsynchronized,
  // the source must be quiesced (Writer::Commit clones a published
  // snapshot's goddag, which is).
  std::unique_ptr<KyGoddag> Clone() const {
    return std::unique_ptr<KyGoddag>(new KyGoddag(*this));
  }

  // Merges a parsed XML encoding of the base text as a new persistent
  // hierarchy. The document's character content must equal base_text().
  StatusOr<HierarchyId> AddHierarchy(const std::string& name,
                                     const xml::Document& doc);

  // Adds a virtual hierarchy under a fresh root element named `name` that
  // spans the whole base text. Fails if any range is empty, out of bounds,
  // or if two elements properly overlap (a single hierarchy must be a tree).
  StatusOr<HierarchyId> AddVirtualHierarchy(
      const std::string& name, std::vector<VirtualElement> elements);

  // Removes a hierarchy previously added with AddVirtualHierarchy; its node
  // and hierarchy slots are recycled. Persistent hierarchies cannot be
  // removed.
  Status RemoveVirtualHierarchy(HierarchyId id);

  const std::string& base_text() const { return *base_text_; }
  NodeId root() const { return 0; }

  const GNode& node(NodeId id) const { return nodes_[id]; }
  // Size of the node table including the GODDAG root and any free slots —
  // the iteration bound for full scans (check node(id).kind).
  size_t node_table_size() const { return nodes_.size(); }
  // Number of live element nodes across all hierarchies.
  size_t element_count() const { return element_count_; }

  const Hierarchy& hierarchy(HierarchyId id) const { return hierarchies_[id]; }
  // Size of the hierarchy table including inactive slots (check .active).
  size_t hierarchy_table_size() const { return hierarchies_.size(); }

  // The shared leaf partition, in text order, rebuilt lazily if stale.
  const std::vector<Leaf>& leaves() const;

  // Base-text content dominated by a node.
  std::string NodeString(NodeId id) const;

  // Toggles incremental leaf-partition maintenance (default on). When off,
  // any structural change invalidates the partition and the next leaves()
  // call pays a full rebuild that rescans every node.
  void set_incremental_leaves(bool incremental);
  bool incremental_leaves() const { return incremental_leaves_; }

  // Bumped on every structural change; index structures (goddag/index.h,
  // xpath/axes.h) use it to detect staleness.
  uint64_t revision() const { return revision_; }

 private:
  KyGoddag(const KyGoddag&) = default;  // via Clone() only

  // The arena loader (goddag/persist.cc) materialises a goddag field by
  // field from a validated on-disk snapshot instead of replaying the build.
  friend class ArenaLoader;

  NodeId AllocateNode();
  void FreeNode(NodeId id);
  NodeId ConvertXmlElement(const xml::Element& element, HierarchyId hierarchy,
                           NodeId parent, Hierarchy* out);
  HierarchyId AllocateHierarchySlot();
  void NoteBoundaryAdded(size_t pos);
  void NoteBoundaryRemoved(size_t pos);
  void NoteElementAdded(const TextRange& range);
  void NoteElementRemoved(const TextRange& range);
  void RebuildLeaves() const;

  // Shared across Clone() copies; immutable after construction.
  std::shared_ptr<const std::string> base_text_;
  std::vector<GNode> nodes_;
  std::vector<NodeId> free_nodes_;
  std::vector<Hierarchy> hierarchies_;
  std::vector<HierarchyId> free_hierarchies_;
  size_t element_count_ = 0;
  uint64_t revision_ = 0;

  bool incremental_leaves_ = true;
  // Leaf partition cache. `boundary_refs_` maps a boundary offset to the
  // number of live element endpoints at that offset (offsets 0 and n carry a
  // permanent sentinel ref). It is authoritative only while `!leaves_dirty_`
  // and `!boundary_refs_deferred_`; a full rebuild reconstructs it from the
  // node table. The partition itself is tiered (goddag/leaves.h) so
  // incremental splices are cheap; leaves() reads its cached flat view.
  //
  // The arena loader sets `boundary_refs_deferred_`: it adopts the partition
  // straight from the file but skips the O(boundaries) map build, since a
  // published snapshot's goddag never splices. The first boundary change on
  // such a goddag (a writer's private clone) falls back to one full rebuild,
  // after which maintenance is incremental again.
  mutable TieredLeafPartition leaves_;
  mutable std::map<size_t, uint32_t> boundary_refs_;
  mutable bool leaves_dirty_ = true;
  mutable bool boundary_refs_deferred_ = false;
};

}  // namespace mhx::goddag

#endif  // MHX_GODDAG_KYGODDAG_H_
