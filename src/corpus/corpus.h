// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The corpus service: one process serving mixed query traffic over many
// named editions — the ROADMAP's "millions of users" shape. A
// CorpusService owns a sharded map of named documents (deterministic
// workload/ editions), builds them lazily on first query, keeps at most
// `capacity` resident behind an LRU, and runs every query through shared
// process-wide resources: one xquery::PlanCache (each distinct query text
// parses once no matter how many editions it runs against) and one
// base::ThreadPool for intra-query fan-out.
//
// Locking, outermost first:
//   shard.mu     name -> entry lookup; entries are never erased, so an
//                Entry* is stable once found.
//   entry.build_mu  serialises builds of one document; concurrent callers
//                of a cold document wait here while exactly one builds.
//   lru_mu_      residency pointers + the LRU list + build/eviction
//                counters. Eviction happens entirely under lru_mu_ and
//                never takes a victim's build_mu, so the order is acyclic.
//
// Eviction vs. in-flight queries: a query pins its document with a
// shared_ptr before evaluating, so evicting the entry (dropping the
// service's reference) never frees a document mid-query — the pin does,
// when the last query returns. KeptTemporaries handles outlive eviction
// the same way they outlive engine death: they hold a weak registry and
// simply become inert (see xquery/engine.h).
//
// Admission control: queries whose plan ContainsAnalyzeString are "heavy"
// (they materialise temporary hierarchies and dominate evaluation cost).
// At most `max_heavy_in_flight` run at once; up to `heavy_queue_limit`
// more wait on a condition variable; beyond that Query returns
// ResourceExhausted immediately — backpressure the caller can see —
// so cheap path queries (never queued) aren't starved behind a wall of
// analyze-string work.
//
// Writes: CommitVirtualHierarchy / RemoveVirtualHierarchy route through the
// document's MVCC Writer (see CONCURRENCY.md), so commits never block the
// query traffic above — readers keep evaluating against their pinned
// snapshots while the writer prepares and publishes the next version.
// Writes get their own per-document admission (max_writers_in_flight /
// writer_queue_limit), separate from heavy-query admission: a burst of
// commits backs up on its own bounded queue instead of competing with
// analyze-string work.
//
// Spill (CorpusOptions::spill_dir): when set, the service persists every
// built document — and every committed version — as an mmap-able arena
// file (goddag/persist.h) under that directory, and a cold pin tries the
// arena first: page the snapshot in zero-copy instead of reparsing the
// edition's XML. A missing arena falls back to the parse build silently
// (first touch); a corrupt or unreadable one falls back too, counted in
// `mhx_load_fallbacks_total`, and the fresh build overwrites it. With
// spill enabled the old durability caveat softens: a version committed
// through CommitVirtualHierarchy / RemoveVirtualHierarchy survives
// eviction, because the re-admission load starts from the spilled arena
// rather than the registered EditionConfig. Without a spill_dir the old
// rule stands — corpus writes are serving-time annotations, and eviction
// resets the document to its config.

#ifndef MHX_CORPUS_CORPUS_H_
#define MHX_CORPUS_CORPUS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/statusor.h"
#include "base/thread_pool.h"
#include "document.h"
#include "obs/metrics.h"
#include "obs/slow_query_log.h"
#include "obs/trace.h"
#include "workload/generator.h"
#include "xquery/plan_cache.h"

namespace mhx::corpus {

// Sentinel for CorpusOptions::slow_query_threshold_us: no per-query trace
// is created and nothing is ever captured.
inline constexpr uint64_t kNoSlowQueryLog =
    std::numeric_limits<uint64_t>::max();

// Service-construction knobs; every field has a safe default.
struct CorpusOptions {
  // Maximum resident (built) documents; clamped to at least 1. Eviction is
  // strict LRU by last query.
  size_t capacity = 8;
  // Shards for the name -> document map.
  size_t shard_count = 8;
  // Workers in the shared fan-out pool handed to every engine. 0 means no
  // shared pool is injected and each engine falls back to growing its own
  // private pool — the pre-corpus behaviour.
  size_t pool_threads = 4;
  // Concurrent analyze-string-heavy queries admitted; 0 rejects them all.
  size_t max_heavy_in_flight = 4;
  // Heavy queries allowed to wait for a slot before ResourceExhausted.
  size_t heavy_queue_limit = 16;
  // Concurrent Writer commits admitted per document; 0 rejects all writes.
  // Commits serialise on the document's writer mutex anyway, so >1 only
  // moves the wait from admission to that mutex.
  size_t max_writers_in_flight = 1;
  // Writes allowed to wait for a per-document slot before
  // ResourceExhausted.
  size_t writer_queue_limit = 8;
  // Shards of the process-wide PlanCache.
  size_t plan_shards = 16;
  // Completed queries at or above this wall time (µs) are captured in the
  // slow-query log with their full stage breakdown: when enabled, every
  // Query() without a caller-attached trace gets a service-internal
  // QueryTrace (a few clock reads and small span records per query). 0
  // captures everything (tests); the default sentinel disables tracing
  // and capture entirely.
  uint64_t slow_query_threshold_us = kNoSlowQueryLog;
  // Retained slow-query records (ring; oldest overwritten). 0 disables
  // capture even if the threshold is set.
  size_t slow_query_log_capacity = 64;
  // Directory for persisted snapshot arenas (see the spill paragraph in
  // the file comment). Empty disables spill entirely. The directory must
  // exist; individual write failures are non-fatal (the document just
  // stays parse-built).
  std::string spill_dir;
};

// Bounded-queue admission for one class of expensive work. Acquire either
// returns OkStatus() holding a slot (possibly after waiting in the bounded
// queue) or ResourceExhausted without blocking further; every Ok Acquire
// must be paired with Release.
class AdmissionController {
 public:
  AdmissionController(size_t slots, size_t queue_limit)
      : slots_(slots), queue_limit_(queue_limit) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Takes a slot. Blocking behavior: returns Ok immediately when a slot is
  // free, waits on the condition variable while at most queue_limit callers
  // are already waiting, and returns ResourceExhausted without blocking
  // beyond the mutex otherwise. Thread-safe.
  Status Acquire();
  // Returns a slot taken by an Ok Acquire and wakes one waiter.
  // Thread-safe.
  void Release();

  // Point-in-time queue depths and the rejection total. Thread-safe; the
  // values may be stale by the time the caller reads them.
  size_t in_flight() const;
  size_t waiting() const;
  size_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  const size_t slots_;
  const size_t queue_limit_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_flight_ = 0;
  size_t waiting_ = 0;
  std::atomic<size_t> rejected_{0};
};

class CorpusService {
 public:
  // Point-in-time counters; exact once traffic quiesces.
  struct Stats {
    size_t resident_documents = 0;
    size_t builds = 0;      // documents built (re-builds after eviction too)
    size_t evictions = 0;
    size_t pins = 0;        // explicit Pin() calls
    size_t plan_hits = 0;   // process-wide PlanCache, all documents
    size_t plan_misses = 0;
    size_t plan_regex_hits = 0;
    size_t plan_regex_misses = 0;
    size_t heavy_rejections = 0;
    size_t heavy_in_flight = 0;
    size_t heavy_waiting = 0;
    size_t slow_queries = 0;  // captured by the slow-query log, ever
    size_t writes = 0;             // committed document versions
    size_t write_rejections = 0;   // writes refused by write admission
    size_t live_snapshots = 0;     // DocumentSnapshots alive process-wide
    size_t snapshot_pins = 0;      // evaluation snapshot pins, all engines
    size_t overlay_id_exhausted = 0;  // analyze-string id-space rejections
    size_t snapshots_persisted = 0;  // arena spill files written
    size_t mmap_loads = 0;           // cold pins served from a mapped arena
    size_t load_fallbacks = 0;       // arena loads that failed -> parse build
  };

  explicit CorpusService(const CorpusOptions& options);
  ~CorpusService();

  CorpusService(const CorpusService&) = delete;
  CorpusService& operator=(const CorpusService&) = delete;

  // Registers a named edition to be built on first use. InvalidArgument if
  // the name is taken.
  Status Register(std::string name, const workload::EditionConfig& config);

  // Evaluates `query` against the named document: classify (heavy queries
  // go through admission first), pin the document — building or re-building
  // it if cold, evicting the LRU victim if that overflows capacity — and
  // evaluate through the shared plan cache and pool. NotFound for an
  // unregistered name; parse errors surface before any document is built;
  // ResourceExhausted is admission backpressure. Thread-safety class:
  // pinned-snapshot read (CONCURRENCY.md) — never blocked by commits;
  // heavy queries may wait in admission, cold documents in the build.
  StatusOr<std::string> Query(std::string_view doc_name,
                              std::string_view query,
                              const QueryOptions& options = {});

  // Pins the named document resident (building it if needed) and returns
  // the pin. The document stays alive while the caller holds it, even
  // across eviction; holding a pin does not block eviction. Thread-safe;
  // blocks only while a cold document builds.
  StatusOr<std::shared_ptr<const MultihierarchicalDocument>> Pin(
      std::string_view doc_name);

  // Commits a virtual hierarchy (offset-anchored elements under a
  // whole-text root named `hierarchy_name`) as the named document's next
  // MVCC version and returns the published version number. In-flight and
  // future readers of older versions are never blocked (see the write-path
  // contract above). NotFound for an unregistered name; ResourceExhausted
  // is write-admission backpressure; any Writer::Commit error (name
  // collision, bad ranges) aborts with nothing published. Thread-safety
  // class: writer-path (CONCURRENCY.md) — waits only in write admission
  // and behind other committing writers of the same document.
  StatusOr<uint64_t> CommitVirtualHierarchy(
      std::string_view doc_name, std::string hierarchy_name,
      std::vector<goddag::VirtualElement> elements);

  // Commits removal of the active virtual hierarchy named
  // `hierarchy_name` (highest table slot when several share the name) as
  // the next version. Same error and blocking contract as
  // CommitVirtualHierarchy; NotFound when no such hierarchy is active.
  StatusOr<uint64_t> RemoveVirtualHierarchy(std::string_view doc_name,
                                            std::string_view hierarchy_name);

  // Point-in-time service counters (see Stats). Thread-safe and never
  // blocks query or write traffic; exact once traffic quiesces.
  Stats stats() const;

  // How many times the named document has been built (0 = never, 2+ =
  // rebuilt after eviction). NotFound for an unregistered name.
  // Thread-safe.
  StatusOr<size_t> BuildCount(std::string_view doc_name) const;

  // The process-wide plan cache every engine of this service shares.
  // Thread-safe (the cache has its own sharded locking).
  const std::shared_ptr<xquery::PlanCache>& plans() const { return plans_; }

  // The service's metric directory (`mhx_*` namespace, see DESIGN.md
  // "Observability"): every scattered counter in the stack — PlanCache,
  // the shared EngineCounters, builds/evictions/pins, admission levels —
  // registered once at construction. Safe to export concurrently with
  // query traffic.
  const obs::MetricsRegistry& metrics() const { return registry_; }

  // Snapshot of the slow-query log, oldest first. Empty unless
  // CorpusOptions::slow_query_threshold_us enabled capture.
  std::vector<obs::SlowQueryRecord> DumpSlowQueries() const {
    return slow_log_.DumpSlowQueries();
  }

 private:
  struct Entry {
    std::string name;
    workload::EditionConfig config;
    // Arena spill file for this document (sanitised name + hash under
    // spill_dir), computed at Register; empty when spill is disabled.
    std::string spill_path;
    std::mutex build_mu;  // serialises BuildEditionDocument for this entry
    // Per-document write admission (see CorpusOptions); created at
    // Register, so it survives eviction along with the entry.
    std::unique_ptr<AdmissionController> write_admission;
    // --- guarded by lru_mu_ ---
    std::shared_ptr<MultihierarchicalDocument> doc;  // null when cold
    std::list<Entry*>::iterator lru_it;  // valid iff doc != nullptr
    size_t builds = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::unique_ptr<Entry>> entries;
  };

  Shard& ShardFor(std::string_view name) const;
  Entry* FindEntry(std::string_view name) const;
  // The pin: returns entry->doc, building it first when cold. A non-null
  // `trace` gets a "doc_build" stage span when this call actually builds.
  StatusOr<std::shared_ptr<MultihierarchicalDocument>> Resident(
      Entry* entry, obs::QueryTrace* trace = nullptr);
  // Query() with the resolved trace (caller-attached, service-internal
  // for the slow log, or null).
  StatusOr<std::string> QueryTraced(Entry* entry, std::string_view query,
                                    const QueryOptions& options,
                                    obs::QueryTrace* trace);
  // Shared write path: resolve the entry, pass write admission, pin the
  // document resident, let `configure` queue ops on a fresh Writer, and
  // Commit. Both public mutators land here.
  StatusOr<uint64_t> MutateDocument(
      std::string_view doc_name,
      const std::function<void(MultihierarchicalDocument::Writer&)>&
          configure);
  // Registers every instrument with registry_; construction only.
  void WireMetrics();

  const size_t capacity_;
  const size_t shard_count_;
  const uint64_t slow_threshold_us_;
  const size_t max_writers_in_flight_;
  const size_t writer_queue_limit_;
  const std::string spill_dir_;
  std::shared_ptr<xquery::PlanCache> plans_;
  std::shared_ptr<base::ThreadPool> pool_;  // null when pool_threads == 0
  // One counter block shared by every engine the service builds, so
  // totals survive eviction (see xquery::EngineCounters).
  std::shared_ptr<xquery::EngineCounters> engine_counters_;
  AdmissionController heavy_admission_;
  std::unique_ptr<Shard[]> shards_;
  obs::SlowQueryLog slow_log_;

  mutable std::mutex lru_mu_;
  // Front = most recently used. Only resident entries are listed.
  std::list<Entry*> lru_;
  // Bumped under lru_mu_ (obs::Counter so the registry reads them without
  // the lock).
  obs::Counter builds_;
  obs::Counter evictions_;
  obs::Counter pins_;
  obs::Counter queries_;
  // Committed document versions / writes refused by per-document admission
  // (service-wide totals; admission itself is per entry).
  obs::Counter writes_;
  obs::Counter write_rejections_;
  // Spill-path totals (see the file comment): arenas written, cold pins
  // served by a mapped arena, and failed loads that fell back to a parse.
  obs::Counter snapshots_persisted_;
  obs::Counter mmap_loads_;
  obs::Counter load_fallbacks_;
  // Wall time of every completed Query(), traced or not, in µs.
  base::LatencyHistogram query_latency_;
  // Declared last: its external registrations point at the members above.
  obs::MetricsRegistry registry_;
};

}  // namespace mhx::corpus

#endif  // MHX_CORPUS_CORPUS_H_
