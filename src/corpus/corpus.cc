// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "corpus/corpus.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "base/status_macros.h"
#include "xquery/ast.h"

namespace mhx::corpus {

// --- AdmissionController ----------------------------------------------------

Status AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < slots_) {
    ++in_flight_;
    return OkStatus();
  }
  // Full. Queue if the bounded queue has room, else push back immediately.
  if (waiting_ >= queue_limit_ || slots_ == 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhaustedError(
        "analyze-string admission queue full (" +
        std::to_string(in_flight_) + " in flight, " +
        std::to_string(waiting_) + " waiting)");
  }
  ++waiting_;
  cv_.wait(lock, [&] { return in_flight_ < slots_; });
  --waiting_;
  ++in_flight_;
  return OkStatus();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_one();
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

namespace {
// Pairs every Ok Acquire with a Release on all exit paths of Query.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  ~AdmissionTicket() {
    if (controller_ != nullptr) controller_->Release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  AdmissionController* controller_;
};
}  // namespace

// --- CorpusService ----------------------------------------------------------

CorpusService::CorpusService(const CorpusOptions& options)
    : capacity_(std::max<size_t>(options.capacity, 1)),
      shard_count_(std::max<size_t>(options.shard_count, 1)),
      plans_(std::make_shared<xquery::PlanCache>(options.plan_shards)),
      pool_(options.pool_threads > 0
                ? std::make_shared<base::ThreadPool>(options.pool_threads)
                : nullptr),
      heavy_admission_(options.max_heavy_in_flight,
                       options.heavy_queue_limit),
      shards_(new Shard[shard_count_]) {}

CorpusService::~CorpusService() = default;

CorpusService::Shard& CorpusService::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % shard_count_];
}

Status CorpusService::Register(std::string name,
                               const workload::EditionConfig& config) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  if (it != shard.entries.end()) {
    return InvalidArgumentError("document '" + name + "' already registered");
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->config = config;
  shard.entries.emplace(std::move(name), std::move(entry));
  return OkStatus();
}

CorpusService::Entry* CorpusService::FindEntry(std::string_view name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  // C++17 unordered_map has no heterogeneous lookup; registration and
  // lookup are off the query hot path enough that one key copy is fine.
  auto it = shard.entries.find(std::string(name));
  return it == shard.entries.end() ? nullptr : it->second.get();
}

StatusOr<std::shared_ptr<MultihierarchicalDocument>> CorpusService::Resident(
    Entry* entry) {
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    if (entry->doc != nullptr) {
      lru_.splice(lru_.begin(), lru_, entry->lru_it);  // touch
      return entry->doc;
    }
  }
  // Cold. One builder per entry; latecomers block here, then find the doc
  // resident on re-check.
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    if (entry->doc != nullptr) {
      lru_.splice(lru_.begin(), lru_, entry->lru_it);
      return entry->doc;
    }
  }
  // Build outside lru_mu_ — builds are the expensive part and must not
  // block queries against resident documents.
  auto built = workload::BuildEditionDocument(entry->config);
  if (!built.ok()) return built.status();
  auto doc = std::make_shared<MultihierarchicalDocument>(
      std::move(built).value());
  MHX_RETURN_IF_ERROR(doc->ConfigureEngine(plans_, pool_));

  std::vector<std::shared_ptr<MultihierarchicalDocument>> evicted;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    entry->doc = doc;
    lru_.push_front(entry);
    entry->lru_it = lru_.begin();
    ++entry->builds;
    ++builds_;
    while (lru_.size() > capacity_) {
      Entry* victim = lru_.back();
      lru_.pop_back();
      // Defer the drop: destroying a document (its engine joins worker
      // pools, frees the goddag) should not run under lru_mu_.
      evicted.push_back(std::move(victim->doc));
      victim->doc = nullptr;
      ++evictions_;
    }
  }
  evicted.clear();  // may destroy documents; in-flight pins keep theirs
  return doc;
}

StatusOr<std::string> CorpusService::Query(std::string_view doc_name,
                                           std::string_view query,
                                           const QueryOptions& options) {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  // Classify before touching the document: the shared-cache Prepare both
  // surfaces parse errors early and guarantees the engine's own Prepare is
  // a hit.
  MHX_ASSIGN_OR_RETURN(const xquery::Expr* plan, plans_->Prepare(query));
  const bool heavy = xquery::ContainsAnalyzeString(plan->root());
  std::unique_ptr<AdmissionTicket> ticket;
  if (heavy) {
    // Admission happens on the caller's thread, never on a pool worker, so
    // a full heavy queue can never stall the fan-out pool itself.
    MHX_RETURN_IF_ERROR(heavy_admission_.Acquire());
    ticket = std::make_unique<AdmissionTicket>(&heavy_admission_);
  }
  MHX_ASSIGN_OR_RETURN(std::shared_ptr<MultihierarchicalDocument> doc,
                       Resident(entry));
  // `doc` pins the document: eviction can drop the service's reference at
  // any time without freeing it under this evaluation.
  return doc->Query(query, options);
}

StatusOr<std::shared_ptr<const MultihierarchicalDocument>> CorpusService::Pin(
    std::string_view doc_name) {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  MHX_ASSIGN_OR_RETURN(std::shared_ptr<MultihierarchicalDocument> doc,
                       Resident(entry));
  return std::shared_ptr<const MultihierarchicalDocument>(std::move(doc));
}

CorpusService::Stats CorpusService::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    stats.resident_documents = lru_.size();
    stats.builds = builds_;
    stats.evictions = evictions_;
  }
  stats.plan_hits = plans_->hits();
  stats.plan_misses = plans_->misses();
  stats.heavy_rejections = heavy_admission_.rejected();
  stats.heavy_in_flight = heavy_admission_.in_flight();
  return stats;
}

StatusOr<size_t> CorpusService::BuildCount(std::string_view doc_name) const {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  std::lock_guard<std::mutex> lock(lru_mu_);
  return entry->builds;
}

}  // namespace mhx::corpus
