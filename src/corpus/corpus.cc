// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "corpus/corpus.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <utility>

#include "base/status_macros.h"
#include "goddag/persist.h"
#include "goddag/snapshot.h"
#include "xpath/kernels.h"
#include "xquery/ast.h"

namespace mhx::corpus {

// --- AdmissionController ----------------------------------------------------

Status AdmissionController::Acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  if (in_flight_ < slots_) {
    ++in_flight_;
    return OkStatus();
  }
  // Full. Queue if the bounded queue has room, else push back immediately.
  if (waiting_ >= queue_limit_ || slots_ == 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return ResourceExhaustedError(
        "analyze-string admission queue full (" +
        std::to_string(in_flight_) + " in flight, " +
        std::to_string(waiting_) + " waiting)");
  }
  ++waiting_;
  cv_.wait(lock, [&] { return in_flight_ < slots_; });
  --waiting_;
  ++in_flight_;
  return OkStatus();
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  cv_.notify_one();
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t AdmissionController::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

namespace {
// Pairs every Ok Acquire with a Release on all exit paths of Query.
class AdmissionTicket {
 public:
  explicit AdmissionTicket(AdmissionController* controller)
      : controller_(controller) {}
  ~AdmissionTicket() {
    if (controller_ != nullptr) controller_->Release();
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

 private:
  AdmissionController* controller_;
};
}  // namespace

// --- CorpusService ----------------------------------------------------------

CorpusService::CorpusService(const CorpusOptions& options)
    : capacity_(std::max<size_t>(options.capacity, 1)),
      shard_count_(std::max<size_t>(options.shard_count, 1)),
      slow_threshold_us_(options.slow_query_threshold_us),
      max_writers_in_flight_(options.max_writers_in_flight),
      writer_queue_limit_(options.writer_queue_limit),
      spill_dir_(options.spill_dir),
      plans_(std::make_shared<xquery::PlanCache>(options.plan_shards)),
      pool_(options.pool_threads > 0
                ? std::make_shared<base::ThreadPool>(options.pool_threads)
                : nullptr),
      engine_counters_(std::make_shared<xquery::EngineCounters>()),
      heavy_admission_(options.max_heavy_in_flight,
                       options.heavy_queue_limit),
      shards_(new Shard[shard_count_]),
      slow_log_(options.slow_query_threshold_us == kNoSlowQueryLog
                    ? 0
                    : options.slow_query_log_capacity) {
  WireMetrics();
}

CorpusService::~CorpusService() = default;

void CorpusService::WireMetrics() {
  // Every referent is a member of this service (or shared_ptr-owned by
  // it), so the outlives-the-registry contract holds by construction.
  registry_.RegisterCounter("mhx_plan_cache_hits_total",
                            "Plan-cache Prepare() calls served from cache",
                            &plans_->hits_counter());
  registry_.RegisterCounter("mhx_plan_cache_misses_total",
                            "Plan-cache Prepare() calls that parsed",
                            &plans_->misses_counter());
  registry_.RegisterCounter("mhx_plan_cache_regex_hits_total",
                            "Compiled-regex lookups served from cache",
                            &plans_->regex_hits_counter());
  registry_.RegisterCounter("mhx_plan_cache_regex_misses_total",
                            "Compiled-regex lookups that compiled",
                            &plans_->regex_misses_counter());
  registry_.RegisterCounter(
      "mhx_engine_sorts_skipped_total",
      "Path-step sort+dedup passes skipped via ordering guarantees",
      &engine_counters_->sorts_skipped);
  registry_.RegisterCounter(
      "mhx_engine_parallel_tasks_total",
      "Worker tasks dispatched to the pool by parallel loops",
      &engine_counters_->parallel_tasks);
  registry_.RegisterCounter(
      "mhx_engine_steals_total",
      "Binding ranges stolen between work-stealing slots",
      &engine_counters_->steals);
  registry_.RegisterCounter("mhx_engine_index_rebuilds_total",
                            "RangeIndex (re)constructions across engines",
                            &engine_counters_->index_rebuilds);
  registry_.RegisterCounter("mhx_corpus_queries_total",
                            "Query() calls accepted for evaluation",
                            &queries_);
  registry_.RegisterCounter("mhx_corpus_builds_total",
                            "Documents built (rebuilds after eviction too)",
                            &builds_);
  registry_.RegisterCounter("mhx_corpus_evictions_total",
                            "Documents evicted by the LRU", &evictions_);
  registry_.RegisterCounter("mhx_corpus_pins_total",
                            "Explicit Pin() calls", &pins_);
  registry_.RegisterCounter("mhx_corpus_writes_total",
                            "Document versions committed via Writers",
                            &writes_);
  registry_.RegisterCounter(
      "mhx_corpus_write_rejected_total",
      "Writes rejected by per-document write admission",
      &write_rejections_);
  registry_.RegisterCounter(
      "mhx_snapshots_persisted_total",
      "Snapshot arenas spilled to disk (builds and commits)",
      &snapshots_persisted_);
  registry_.RegisterCounter(
      "mhx_mmap_loads_total",
      "Cold pins served by mapping a spilled arena (no reparse)",
      &mmap_loads_);
  registry_.RegisterCounter(
      "mhx_load_fallbacks_total",
      "Arena loads that failed and fell back to a parse build",
      &load_fallbacks_);
  registry_.RegisterGauge(
      "mhx_goddag_live_snapshots",
      "DocumentSnapshot versions currently alive (process-wide)", [] {
        return static_cast<int64_t>(goddag::DocumentSnapshot::live_count());
      });
  registry_.RegisterCounter(
      "mhx_engine_snapshot_pins_total",
      "Snapshot pins taken by evaluations across engines",
      &engine_counters_->snapshot_pins);
  registry_.RegisterCounter(
      "mhx_engine_overlay_id_exhausted_total",
      "analyze-string calls rejected on overlay-id exhaustion",
      &engine_counters_->overlay_id_exhausted);
  registry_.RegisterCounter(
      "mhx_corpus_slow_queries_total",
      "Queries captured by the slow-query log",
      [this] { return slow_log_.recorded(); });
  registry_.RegisterGauge("mhx_corpus_resident_documents",
                          "Documents currently resident", [this] {
                            std::lock_guard<std::mutex> lock(lru_mu_);
                            return static_cast<int64_t>(lru_.size());
                          });
  registry_.RegisterCounter(
      "mhx_admission_heavy_rejected_total",
      "Heavy queries rejected with ResourceExhausted",
      [this] { return static_cast<uint64_t>(heavy_admission_.rejected()); });
  registry_.RegisterGauge(
      "mhx_admission_heavy_in_flight",
      "Heavy queries currently admitted",
      [this] { return static_cast<int64_t>(heavy_admission_.in_flight()); });
  registry_.RegisterGauge(
      "mhx_admission_heavy_waiting",
      "Heavy queries waiting in the admission queue",
      [this] { return static_cast<int64_t>(heavy_admission_.waiting()); });
  registry_.RegisterCounter(
      "mhx_plan_steps_indexed_total",
      "Planned extended-axis steps that probed the RangeIndex",
      &engine_counters_->plan_steps_indexed);
  registry_.RegisterCounter(
      "mhx_plan_steps_scanned_total",
      "Planned extended-axis steps that ran the (vectorized) table scan",
      &engine_counters_->plan_steps_scanned);
  registry_.RegisterCounter(
      "mhx_plan_pushdowns_total",
      "Name tests folded into an index probe or scan kernel",
      &engine_counters_->plan_pushdowns);
  registry_.RegisterCounter(
      "mhx_plan_cache_replans_total",
      "Step-plan builds (first plan per expr/document plus commit replans)",
      &plans_->plan_replans_counter());
  registry_.RegisterCounter(
      "mhx_kernel_simd_dispatch_total",
      "Extended-axis scans dispatched to a SIMD kernel (process-wide)",
      [] { return xpath::simd_dispatch_count(); });
  registry_.RegisterTimer("mhx_corpus_query_latency_us",
                          "Wall time of completed Query() calls",
                          &query_latency_);
}

CorpusService::Shard& CorpusService::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % shard_count_];
}

namespace {
// Spill file for a document name: the name with non-filename characters
// replaced, plus the full name's hash so sanitised collisions ("a/b" vs
// "a_b") still map to distinct files.
std::string SpillPathFor(const std::string& dir, const std::string& name) {
  std::string sanitized;
  sanitized.reserve(name.size());
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    sanitized.push_back(safe ? c : '_');
  }
  char hash[17];
  std::snprintf(hash, sizeof(hash), "%016zx",
                std::hash<std::string>{}(name));
  return dir + "/" + sanitized + "." + hash + ".mhxa";
}
}  // namespace

Status CorpusService::Register(std::string name,
                               const workload::EditionConfig& config) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  if (it != shard.entries.end()) {
    return InvalidArgumentError("document '" + name + "' already registered");
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->config = config;
  if (!spill_dir_.empty()) {
    entry->spill_path = SpillPathFor(spill_dir_, name);
  }
  entry->write_admission = std::make_unique<AdmissionController>(
      max_writers_in_flight_, writer_queue_limit_);
  shard.entries.emplace(std::move(name), std::move(entry));
  return OkStatus();
}

CorpusService::Entry* CorpusService::FindEntry(std::string_view name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  // C++17 unordered_map has no heterogeneous lookup; registration and
  // lookup are off the query hot path enough that one key copy is fine.
  auto it = shard.entries.find(std::string(name));
  return it == shard.entries.end() ? nullptr : it->second.get();
}

StatusOr<std::shared_ptr<MultihierarchicalDocument>> CorpusService::Resident(
    Entry* entry, obs::QueryTrace* trace) {
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    if (entry->doc != nullptr) {
      lru_.splice(lru_.begin(), lru_, entry->lru_it);  // touch
      return entry->doc;
    }
  }
  // Cold. One builder per entry; latecomers block here, then find the doc
  // resident on re-check. Both the wait and the build land in the
  // "doc_build" stage span — a trace showing time here means the query hit
  // a cold (or just-evicted) document either way.
  obs::StageTimer stage(trace, "doc_build");
  std::lock_guard<std::mutex> build_lock(entry->build_mu);
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    if (entry->doc != nullptr) {
      lru_.splice(lru_.begin(), lru_, entry->lru_it);
      return entry->doc;
    }
  }
  // Build outside lru_mu_ — builds are the expensive part and must not
  // block queries against resident documents. With spill enabled, try the
  // mapped arena first: adopting a spilled snapshot is O(header) validation
  // plus page-ins, against a full XML reparse + index build.
  std::shared_ptr<MultihierarchicalDocument> doc;
  if (!entry->spill_path.empty()) {
    auto mapped = goddag::LoadSnapshotFile(entry->spill_path);
    if (mapped.ok()) {
      doc = std::make_shared<MultihierarchicalDocument>(
          MultihierarchicalDocument::FromSnapshot(
              std::move(mapped->head), std::move(mapped->snapshot)));
      mmap_loads_.Add();
    } else if (mapped.status().code() != StatusCode::kNotFound) {
      // Corrupt or unreadable arena (NotFound is just a first touch and
      // stays silent): fall back to the parse build, which rewrites the
      // spill file below.
      load_fallbacks_.Add();
    }
  }
  if (doc == nullptr) {
    auto built = workload::BuildEditionDocument(entry->config);
    if (!built.ok()) return built.status();
    doc = std::make_shared<MultihierarchicalDocument>(
        std::move(built).value());
    if (!entry->spill_path.empty()) {
      // Spill the fresh build so the next cold pin maps instead of parsing.
      // Failures are non-fatal — the document serves parse-built either way
      // — but never counted as persisted.
      auto snapshot = doc->PinSnapshot();
      if (goddag::WriteSnapshotFile(*snapshot, entry->spill_path).ok()) {
        snapshots_persisted_.Add();
      }
    }
  }
  MHX_RETURN_IF_ERROR(doc->ConfigureEngine(plans_, pool_, engine_counters_));

  std::vector<std::shared_ptr<MultihierarchicalDocument>> evicted;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    entry->doc = doc;
    lru_.push_front(entry);
    entry->lru_it = lru_.begin();
    ++entry->builds;
    builds_.Add();
    while (lru_.size() > capacity_) {
      Entry* victim = lru_.back();
      lru_.pop_back();
      // Defer the drop: destroying a document (its engine joins worker
      // pools, frees the goddag) should not run under lru_mu_.
      evicted.push_back(std::move(victim->doc));
      victim->doc = nullptr;
      evictions_.Add();
    }
  }
  evicted.clear();  // may destroy documents; in-flight pins keep theirs
  return doc;
}

StatusOr<std::string> CorpusService::QueryTraced(Entry* entry,
                                                 std::string_view query,
                                                 const QueryOptions& options,
                                                 obs::QueryTrace* trace) {
  // Classify before touching the document: the shared-cache Prepare both
  // surfaces parse errors early and guarantees the engine's own Prepare is
  // a hit.
  const xquery::Expr* plan = nullptr;
  {
    obs::StageTimer stage(trace, "parse");
    MHX_ASSIGN_OR_RETURN(plan, plans_->Prepare(query));
  }
  const bool heavy = xquery::ContainsAnalyzeString(plan->root());
  std::unique_ptr<AdmissionTicket> ticket;
  if (heavy) {
    // Admission happens on the caller's thread, never on a pool worker, so
    // a full heavy queue can never stall the fan-out pool itself.
    obs::StageTimer stage(trace, "admission_wait");
    MHX_RETURN_IF_ERROR(heavy_admission_.Acquire());
    ticket = std::make_unique<AdmissionTicket>(&heavy_admission_);
  }
  MHX_ASSIGN_OR_RETURN(std::shared_ptr<MultihierarchicalDocument> doc,
                       Resident(entry, trace));
  // `doc` pins the document: eviction can drop the service's reference at
  // any time without freeing it under this evaluation. The engine records
  // the remaining stages (plan_lookup, index_materialize, evaluate,
  // serialize) into the same trace.
  QueryOptions traced = options;
  traced.trace = trace;
  return doc->Query(query, traced);
}

StatusOr<std::string> CorpusService::Query(std::string_view doc_name,
                                           std::string_view query,
                                           const QueryOptions& options) {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  queries_.Add();
  // Resolve the trace: a caller-attached one is used as-is; with the slow
  // log enabled an untraced query gets a service-internal trace so its
  // stage breakdown is capturable; otherwise null and every trace site in
  // the stack reduces to one branch.
  const bool slow_log_on =
      slow_threshold_us_ != kNoSlowQueryLog && slow_log_.capacity() > 0;
  std::optional<obs::QueryTrace> local_trace;
  obs::QueryTrace* trace = options.trace;
  if (trace == nullptr && slow_log_on) {
    local_trace.emplace();
    trace = &*local_trace;
  }
  const auto start = std::chrono::steady_clock::now();
  auto result = QueryTraced(entry, query, options, trace);
  const uint64_t total_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  query_latency_.Record(total_us);
  if (slow_log_on && trace != nullptr && total_us >= slow_threshold_us_) {
    obs::SlowQueryRecord record;
    record.query_hash = std::hash<std::string_view>{}(query);
    record.doc_name = std::string(doc_name);
    record.query = std::string(query);
    record.total_us = total_us;
    record.spans = trace->spans();
    record.parallel_tasks = trace->parallel_tasks();
    record.steals = trace->steals();
    slow_log_.Record(std::move(record));
  }
  return result;
}

StatusOr<uint64_t> CorpusService::MutateDocument(
    std::string_view doc_name,
    const std::function<void(MultihierarchicalDocument::Writer&)>&
        configure) {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  // Write admission before pinning: a rejected write must not build (or
  // touch the LRU position of) a cold document.
  Status admitted = entry->write_admission->Acquire();
  if (!admitted.ok()) {
    write_rejections_.Add();
    return admitted;
  }
  AdmissionTicket ticket(entry->write_admission.get());
  MHX_ASSIGN_OR_RETURN(std::shared_ptr<MultihierarchicalDocument> doc,
                       Resident(entry));
  // The pin (`doc`) keeps the instance alive through Commit even if the
  // LRU evicts it meanwhile. Without spill the committed version dies with
  // the instance (the header's durability caveat); with spill the commit
  // persists the new version's arena before publishing, so a post-eviction
  // reload resumes from it.
  MultihierarchicalDocument::Writer writer = doc->NewWriter();
  configure(writer);
  if (!entry->spill_path.empty()) {
    writer.PersistTo(entry->spill_path);
  }
  MHX_ASSIGN_OR_RETURN(uint64_t version, writer.Commit());
  writes_.Add();
  if (!entry->spill_path.empty()) snapshots_persisted_.Add();
  return version;
}

StatusOr<uint64_t> CorpusService::CommitVirtualHierarchy(
    std::string_view doc_name, std::string hierarchy_name,
    std::vector<goddag::VirtualElement> elements) {
  return MutateDocument(
      doc_name, [&](MultihierarchicalDocument::Writer& writer) {
        writer.AddVirtualHierarchy(std::move(hierarchy_name),
                                   std::move(elements));
      });
}

StatusOr<uint64_t> CorpusService::RemoveVirtualHierarchy(
    std::string_view doc_name, std::string_view hierarchy_name) {
  return MutateDocument(
      doc_name, [&](MultihierarchicalDocument::Writer& writer) {
        writer.RemoveVirtualHierarchy(std::string(hierarchy_name));
      });
}

StatusOr<std::shared_ptr<const MultihierarchicalDocument>> CorpusService::Pin(
    std::string_view doc_name) {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  pins_.Add();
  MHX_ASSIGN_OR_RETURN(std::shared_ptr<MultihierarchicalDocument> doc,
                       Resident(entry));
  return std::shared_ptr<const MultihierarchicalDocument>(std::move(doc));
}

CorpusService::Stats CorpusService::stats() const {
  Stats stats;
  {
    std::lock_guard<std::mutex> lock(lru_mu_);
    stats.resident_documents = lru_.size();
  }
  stats.builds = static_cast<size_t>(builds_.value());
  stats.evictions = static_cast<size_t>(evictions_.value());
  stats.pins = static_cast<size_t>(pins_.value());
  stats.plan_hits = plans_->hits();
  stats.plan_misses = plans_->misses();
  stats.plan_regex_hits = plans_->regex_hits();
  stats.plan_regex_misses = plans_->regex_misses();
  stats.heavy_rejections = heavy_admission_.rejected();
  stats.heavy_in_flight = heavy_admission_.in_flight();
  stats.heavy_waiting = heavy_admission_.waiting();
  stats.slow_queries = static_cast<size_t>(slow_log_.recorded());
  stats.writes = static_cast<size_t>(writes_.value());
  stats.write_rejections = static_cast<size_t>(write_rejections_.value());
  stats.live_snapshots = goddag::DocumentSnapshot::live_count();
  stats.snapshot_pins =
      static_cast<size_t>(engine_counters_->snapshot_pins.value());
  stats.overlay_id_exhausted =
      static_cast<size_t>(engine_counters_->overlay_id_exhausted.value());
  stats.snapshots_persisted =
      static_cast<size_t>(snapshots_persisted_.value());
  stats.mmap_loads = static_cast<size_t>(mmap_loads_.value());
  stats.load_fallbacks = static_cast<size_t>(load_fallbacks_.value());
  return stats;
}

StatusOr<size_t> CorpusService::BuildCount(std::string_view doc_name) const {
  Entry* entry = FindEntry(doc_name);
  if (entry == nullptr) {
    return NotFoundError("document '" + std::string(doc_name) +
                         "' is not registered");
  }
  std::lock_guard<std::mutex> lock(lru_mu_);
  return entry->builds;
}

}  // namespace mhx::corpus
