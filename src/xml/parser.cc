// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xml/parser.h"

#include <cctype>

#include "base/chars.h"

namespace mhx::xml {
namespace {

using mhx::IsXmlNameChar;
using mhx::IsXmlNameStartChar;

// Recursion guard: element nesting beyond this depth is rejected instead of
// risking a stack overflow in ParseElement (and in every tree walker
// downstream, e.g. KyGoddag's converter).
constexpr size_t kMaxElementDepth = 512;

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  StatusOr<Document> Parse() {
    Document doc;
    SkipProlog();
    if (!MisparseOk()) return Error();
    if (Eof() || Peek() != '<') {
      return Fail("expected a root element");
    }
    bool parsed_root = false;
    while (!Eof()) {
      if (Peek() == '<') {
        if (StartsWith("<!--")) {
          if (!SkipComment()) return Error();
          continue;
        }
        if (StartsWith("<?")) {
          if (!SkipProcessingInstruction()) return Error();
          continue;
        }
        if (StartsWith("</")) {
          return Fail("closing tag without a matching open tag");
        }
        if (parsed_root) {
          return Fail("multiple root elements");
        }
        auto root = ParseElement(doc);
        if (!root.ok()) return root.status();
        doc.root = std::move(root).value();
        parsed_root = true;
      } else if (IsSpace(Peek())) {
        Advance();  // Whitespace outside the root is ignorable.
      } else {
        return Fail("character data outside the root element");
      }
    }
    if (!parsed_root) return Fail("document has no root element");
    return doc;
  }

 private:
  bool Eof() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  void Advance() { ++pos_; }
  bool StartsWith(std::string_view prefix) const {
    return input_.compare(pos_, prefix.size(), prefix) == 0;
  }

  // Error plumbing: Fail() records a message and returns a dead Status; the
  // recursive-descent helpers that cannot return StatusOr report through
  // MisparseOk()/Error().
  Status Fail(std::string message) {
    if (error_.ok()) {
      error_ = InvalidArgumentError("xml parse error at byte " +
                                    std::to_string(pos_) + ": " +
                                    std::move(message));
    }
    return error_;
  }
  bool MisparseOk() const { return error_.ok(); }
  Status Error() const { return error_; }

  void SkipProlog() {
    // BOM, XML declaration, comments, PIs, DOCTYPE — anything before the root.
    if (StartsWith("\xEF\xBB\xBF")) pos_ += 3;
    for (;;) {
      while (!Eof() && IsSpace(Peek())) Advance();
      if (StartsWith("<?")) {
        if (!SkipProcessingInstruction()) return;
      } else if (StartsWith("<!--")) {
        if (!SkipComment()) return;
      } else if (StartsWith("<!DOCTYPE")) {
        if (!SkipDoctype()) return;
      } else {
        return;
      }
    }
  }

  bool SkipProcessingInstruction() {
    size_t close = input_.find("?>", pos_);
    if (close == std::string_view::npos) {
      Fail("unterminated processing instruction");
      return false;
    }
    pos_ = close + 2;
    return true;
  }

  bool SkipComment() {
    size_t close = input_.find("-->", pos_ + 4);
    if (close == std::string_view::npos) {
      Fail("unterminated comment");
      return false;
    }
    pos_ = close + 3;
    return true;
  }

  bool SkipDoctype() {
    // Skip to the matching '>', allowing one level of [...] internal subset.
    int bracket_depth = 0;
    while (!Eof()) {
      char c = Peek();
      Advance();
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth <= 0) return true;
    }
    Fail("unterminated DOCTYPE");
    return false;
  }

  std::string ParseName() {
    if (Eof() || !IsXmlNameStartChar(Peek())) {
      Fail("expected a name");
      return {};
    }
    size_t start = pos_;
    while (!Eof() && IsXmlNameChar(Peek())) Advance();
    return std::string(input_.substr(start, pos_ - start));
  }

  // Decodes one entity/character reference at '&', appending to `out`.
  bool AppendReference(std::string* out) {
    size_t semi = input_.find(';', pos_);
    if (semi == std::string_view::npos || semi - pos_ > 12) {
      Fail("unterminated entity reference");
      return false;
    }
    std::string_view name = input_.substr(pos_ + 1, semi - pos_ - 1);
    if (name == "amp") {
      out->push_back('&');
    } else if (name == "lt") {
      out->push_back('<');
    } else if (name == "gt") {
      out->push_back('>');
    } else if (name == "apos") {
      out->push_back('\'');
    } else if (name == "quot") {
      out->push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      int base = 10;
      std::string_view digits = name.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) {
        Fail("empty character reference");
        return false;
      }
      unsigned long code = 0;
      for (char c : digits) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (base == 16 && c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          Fail("malformed character reference");
          return false;
        }
        code = code * static_cast<unsigned long>(base) +
               static_cast<unsigned long>(digit);
        if (code > 0x10FFFF) {
          Fail("character reference out of range");
          return false;
        }
      }
      AppendUtf8(static_cast<unsigned>(code), out);
    } else {
      Fail("unknown entity '" + std::string(name) + "'");
      return false;
    }
    pos_ = semi + 1;
    return true;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseAttributes(Element* element) {
    for (;;) {
      while (!Eof() && IsSpace(Peek())) Advance();
      if (Eof() || !IsXmlNameStartChar(Peek())) return true;
      std::string name = ParseName();
      if (!MisparseOk()) return false;
      while (!Eof() && IsSpace(Peek())) Advance();
      if (Eof() || Peek() != '=') {
        Fail("expected '=' after attribute name");
        return false;
      }
      Advance();
      while (!Eof() && IsSpace(Peek())) Advance();
      if (Eof() || (Peek() != '"' && Peek() != '\'')) {
        Fail("expected a quoted attribute value");
        return false;
      }
      char quote = Peek();
      Advance();
      std::string value;
      while (!Eof() && Peek() != quote) {
        if (Peek() == '<') {
          Fail("'<' in attribute value");
          return false;
        }
        if (Peek() == '&') {
          if (!AppendReference(&value)) return false;
        } else {
          value.push_back(Peek());
          Advance();
        }
      }
      if (Eof()) {
        Fail("unterminated attribute value");
        return false;
      }
      Advance();  // closing quote
      for (const auto& existing : element->attributes) {
        if (existing.first == name) {
          Fail("duplicate attribute '" + name + "'");
          return false;
        }
      }
      element->attributes.emplace_back(std::move(name), std::move(value));
    }
  }

  StatusOr<Element> ParseElement(Document& doc) {
    // Caller guarantees we sit on '<' of an open tag.
    if (++depth_ > kMaxElementDepth) {
      return Fail("element nesting deeper than " +
                  std::to_string(kMaxElementDepth));
    }
    struct DepthGuard {
      size_t& depth;
      ~DepthGuard() { --depth; }
    } guard{depth_};
    Advance();  // '<'
    Element element;
    element.name = ParseName();
    if (!MisparseOk()) return Error();
    if (!ParseAttributes(&element)) return Error();
    element.range.begin = doc.text.size();
    if (StartsWith("/>")) {
      pos_ += 2;
      element.range.end = doc.text.size();
      ++doc.element_count;
      return element;
    }
    if (Eof() || Peek() != '>') return Fail("expected '>' to close tag");
    Advance();

    // Content loop.
    while (!Eof()) {
      char c = Peek();
      if (c == '<') {
        if (StartsWith("</")) {
          pos_ += 2;
          std::string close_name = ParseName();
          if (!MisparseOk()) return Error();
          while (!Eof() && IsSpace(Peek())) Advance();
          if (Eof() || Peek() != '>') {
            return Fail("expected '>' in closing tag");
          }
          Advance();
          if (close_name != element.name) {
            return Fail("mismatched closing tag </" + close_name +
                        "> for <" + element.name + ">");
          }
          element.range.end = doc.text.size();
          ++doc.element_count;
          return element;
        }
        if (StartsWith("<!--")) {
          if (!SkipComment()) return Error();
          continue;
        }
        if (StartsWith("<![CDATA[")) {
          size_t close = input_.find("]]>", pos_ + 9);
          if (close == std::string_view::npos) {
            return Fail("unterminated CDATA section");
          }
          doc.text.append(input_.substr(pos_ + 9, close - pos_ - 9));
          pos_ = close + 3;
          continue;
        }
        if (StartsWith("<?")) {
          if (!SkipProcessingInstruction()) return Error();
          continue;
        }
        auto child = ParseElement(doc);
        if (!child.ok()) return child.status();
        element.children.push_back(std::move(child).value());
      } else if (c == '&') {
        if (!AppendReference(&doc.text)) return Error();
      } else {
        doc.text.push_back(c);
        Advance();
      }
    }
    return Fail("unexpected end of input inside <" + element.name + ">");
  }

  std::string_view input_;
  size_t pos_ = 0;
  size_t depth_ = 0;
  Status error_;
};

}  // namespace

const std::string* Element::FindAttribute(std::string_view attr_name) const {
  for (const auto& attr : attributes) {
    if (attr.first == attr_name) return &attr.second;
  }
  return nullptr;
}

StatusOr<Document> Parse(std::string_view input) {
  return Parser(input).Parse();
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace mhx::xml
