// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// A small well-formed-XML parser specialised for multihierarchical markup:
// alongside the element tree it records, for every element, the half-open
// range of the *character content* the element spans. Two XML encodings of
// the same base text can therefore be aligned purely by comparing
// `Document::text` and merging the range-annotated elements into one
// KyGODDAG (see goddag/kygoddag.h).
//
// Supported: elements, attributes (single or double quoted), self-closing
// tags, character data, CDATA sections, comments, processing instructions,
// an XML declaration, a (skipped) DOCTYPE, and the five predefined entities
// plus decimal/hex character references. Not supported: namespaces beyond
// treating ':' as a name character, and external entities.

#ifndef MHX_XML_PARSER_H_
#define MHX_XML_PARSER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "base/text_range.h"

namespace mhx::xml {

// One parsed element: name, attributes, the base-text range its character
// content spans, and its children in document order.
struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  // Range over Document::text covered by this element's character content.
  TextRange range;
  std::vector<Element> children;

  // Convenience lookup; returns nullptr when absent.
  const std::string* FindAttribute(std::string_view attr_name) const;
};

struct Document {
  Element root;
  // Concatenated character content of the whole document, entities decoded.
  std::string text;
  // Total number of elements, root included.
  size_t element_count = 0;
};

// Parses `input` or returns InvalidArgument with a byte offset and reason.
StatusOr<Document> Parse(std::string_view input);

// Escapes '&', '<', '>' and quotes for embedding `text` in XML content.
std::string EscapeText(std::string_view text);

}  // namespace mhx::xml

#endif  // MHX_XML_PARSER_H_
