// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Offsets over the 50-character base text
//   "thaet is unawendendne sceaft and eac swa some wyrd"
//    0....5..8.9..........21.22...28.29..32.33..36.37..40.41..45.46..50
//
//   words        thaet[0,5) is[6,8) unawendendne[9,21) sceaft[22,28)
//                and[29,32) eac[33,36) swa[37,40) some[41,45) wyrd[46,50)
//   lines        [0,15) [15,35) [35,50)   — "unawendendne" and "eac" cross
//   restoration  res[15,23)               — crosses the word boundary at 21
//   condition    dmg[10,14) dmg[30,38)    — the second crosses the line
//                                           boundary at 35

#include "workload/paper_data.h"

namespace mhx::workload {

const char kPaperBaseText[] =
    "thaet is unawendendne sceaft and eac swa some wyrd";

const char kPaperPhysicalXml[] =
    "<sheet><page>"
    "<line n=\"1\">thaet is unawen</line>"
    "<line n=\"2\">dendne sceaft and ea</line>"
    "<line n=\"3\">c swa some wyrd</line>"
    "</page></sheet>";

const char kPaperStructuralXml[] =
    "<text>"
    "<s><w>thaet</w> <w>is</w> <w>unawendendne</w> <w>sceaft</w></s>"
    " "
    "<s><w>and</w> <w>eac</w> <w>swa</w> <w>some</w> <w>wyrd</w></s>"
    "</text>";

const char kPaperRestorationXml[] =
    "<rest>thaet is unawen"
    "<res resp=\"KY\">dendne s</res>"
    "ceaft and eac swa some wyrd</rest>";

const char kPaperConditionXml[] =
    "<cond>thaet is u"
    "<dmg agent=\"damp\">nawe</dmg>"
    "ndendne sceaft a"
    "<dmg agent=\"damp\">nd eac s</dmg>"
    "wa some wyrd</cond>";

StatusOr<MultihierarchicalDocument> BuildPaperDocument() {
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText(kPaperBaseText);
  builder.AddHierarchy("physical", kPaperPhysicalXml);
  builder.AddHierarchy("structural", kPaperStructuralXml);
  builder.AddHierarchy("restoration", kPaperRestorationXml);
  builder.AddHierarchy("condition", kPaperConditionXml);
  return builder.Build();
}

// --- Scenario queries ------------------------------------------------------
//
// The expected strings below pin down the serialisation contract for the
// XQuery engine PR: items of the result sequence are concatenated without
// separators, leaves serialise as their base-text characters, and
// constructed elements as tags.

const char kQueryI1[] = R"(
for $l in /descendant::line[xdescendant::w[string(.) = 'unawendendne'] or
                            overlapping::w[string(.) = 'unawendendne']]
return <line>{string($l)}</line>)";

const char kExpectedI1[] =
    "<line>thaet is unawen</line><line>dendne sceaft and ea</line>";

const char kQueryI2[] = R"(
for $l in /descendant::line
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))";

const char kExpectedI2[] =
    "thaet is <b>u</b><b>nawe</b><b>n</b><br/>"
    "<b>dendne</b> sceaft <b>a</b><b>nd</b> <b>ea</b><br/>"
    "<b>c</b> <b>s</b><b>wa</b> some wyrd<br/>";

const char kQueryII1[] = R"(
for $w in /descendant::w[string(.) = 'unawendendne']
return
  let $r := analyze-string($w, ".*un<a>a</a>we.*")
  return
    for $leaf in $r/descendant::leaf()
    return if ($leaf/xancestor::a) then <b>{$leaf}</b> else $leaf)";

const char kExpectedII1Coalesced[] = "un<b>a</b>wendendne";

const char kQueryIII1Intent[] = R"(
for $leaf in /descendant::leaf()
return if ($leaf/xancestor::res) then <i>{$leaf}</i> else $leaf)";

const char kExpectedIII1IntentCoalesced[] =
    "thaet is unawen<i>dendne s</i>ceaft and eac swa some wyrd";

}  // namespace mhx::workload
