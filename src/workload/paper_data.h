// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The paper's Figure 1 running example — a short damaged-manuscript edition
// with four concurrent hierarchies — plus the Section 4 scenario queries
// (I.1, I.2, II.1, III.1) and their expected serialisations. The benchmarks
// in bench_paper_queries.cc evaluate the queries and verify the outputs, so
// timings are of *correct* executions only.
//
// The manuscript fragment is an Old English reconstruction in the spirit of
// the paper's Electronic Boethius example: the word "unawendendne" is broken
// across two physical lines (the overlap Example 1's analyze-string() call
// exercises), a restoration span crosses a word boundary, and a damage span
// crosses a line boundary.

#ifndef MHX_WORKLOAD_PAPER_DATA_H_
#define MHX_WORKLOAD_PAPER_DATA_H_

#include <cstdio>

#include "document.h"

namespace mhx::workload {

// Builds the Figure 1 document: hierarchy 0 physical (sheet>page>line),
// 1 structural (text>s>w), 2 restoration (rest>res), 3 condition (cond>dmg).
StatusOr<MultihierarchicalDocument> BuildPaperDocument();

// The Figure 1 base text and its four XML encodings, for tests and tools.
extern const char kPaperBaseText[];
extern const char kPaperPhysicalXml[];
extern const char kPaperStructuralXml[];
extern const char kPaperRestorationXml[];
extern const char kPaperConditionXml[];

// --- Section 4 scenario queries -------------------------------------------
//
// Scenario I.1: render the physical lines that carry (any part of) the word
// "unawendendne" — containment and overlap across hierarchies.
extern const char kQueryI1[];
extern const char kExpectedI1[];

// Scenario I.2: render each line with damaged words highlighted (<b>),
// walking the shared leaves so a word split across lines highlights in both.
extern const char kQueryI2[];
extern const char kExpectedI2[];

// Scenario II.1: analyze-string() on Example 1's fragment pattern; matched
// sub-fragments (the <a> group) are emphasised per leaf.
extern const char kQueryII1[];
extern const char kExpectedII1Coalesced[];

// Scenario III.1: restored text rendered in italics (<i>) — intent form,
// leaf runs coalesced.
extern const char kQueryIII1Intent[];
extern const char kExpectedIII1IntentCoalesced[];

}  // namespace mhx::workload

#endif  // MHX_WORKLOAD_PAPER_DATA_H_
