// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Deterministic synthetic editions in the shape of the paper's running
// example: one base text (an Old English-flavoured word stream) encoded by
// four concurrent hierarchies —
//
//   physical     sheet > page > line     lines cut every chars_per_line
//                                        characters, mid-word, so words and
//                                        lines properly overlap;
//   structural   text  > s    > w        sentences and words;
//   restoration  rest  > res             editorial restoration spans placed
//                                        without regard to word or line
//                                        boundaries;
//   condition    cond  > dmg             damage spans, likewise unaligned.
//
// The same (seed, config) pair always produces byte-identical editions, so
// benchmark runs are comparable across machines and revisions.

#ifndef MHX_WORKLOAD_GENERATOR_H_
#define MHX_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "document.h"

namespace mhx::workload {

// Deterministic generation parameters: the same config always produces the
// same edition on every platform.
struct EditionConfig {
  uint64_t seed = 1;
  // Number of words in the base text.
  size_t word_count = 400;
  // Physical line length in characters; smaller lines mean more word/line
  // conflicts.
  size_t chars_per_line = 40;
  size_t lines_per_page = 10;
  // Average sentence length in words.
  size_t words_per_sentence = 8;
  // Approximate fraction of the base text covered by <dmg> / <res> spans.
  double damage_coverage = 0.10;
  double restoration_coverage = 0.10;
};

// A generated edition: the base text plus one XML encoding per hierarchy.
struct Edition {
  std::string base_text;
  std::string physical_xml;
  std::string structural_xml;
  std::string restoration_xml;
  std::string condition_xml;
};

// Deterministically generates the four aligned encodings.
Edition GenerateEdition(const EditionConfig& config);

// `count` words drawn (with repetition) from the generator vocabulary.
std::vector<std::string> SampleVocabulary(uint64_t seed, size_t count);

// GenerateEdition + Builder: hierarchy ids are 0 physical, 1 structural,
// 2 restoration, 3 condition.
StatusOr<MultihierarchicalDocument> BuildEditionDocument(
    const EditionConfig& config);

}  // namespace mhx::workload

#endif  // MHX_WORKLOAD_GENERATOR_H_
