// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "workload/generator.h"

#include <algorithm>

#include "xml/parser.h"

namespace mhx::workload {
namespace {

// splitmix64: tiny, seedable, and — unlike <random> distributions — produces
// identical sequences on every platform, which the benchmarks rely on.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, n); n must be > 0.
  size_t Uniform(size_t n) { return static_cast<size_t>(Next() % n); }

  // Uniform in [lo, hi] inclusive.
  size_t Between(size_t lo, size_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

 private:
  uint64_t state_;
};

// Old English-flavoured vocabulary (ASCII transliterations), echoing the
// paper's manuscript example. Deliberately rich in "ea" digraphs and
// including the Example 1 word "unawendendne" plus the strings the regex
// benchmarks search for.
constexpr const char* kVocabulary[] = {
    "unawendendne", "sceaft",  "hweol",   "thytte",   "frean",    "waes",
    "weorc",        "eall",    "eac",     "swa",      "some",     "wyrd",
    "heofon",       "eorthe",  "middan",  "geard",    "dryhten",  "cyning",
    "beorht",       "leoht",   "sweart",  "niht",     "daeg",     "wundor",
    "weard",        "metod",   "maere",   "mihtig",   "engel",    "heah",
    "heall",        "sele",    "beag",    "gold",     "seolfor",  "sweord",
    "scyld",        "gar",     "here",    "folc",     "thegn",    "eorl",
    "ceorl",        "wif",     "bearn",   "sunu",     "faeder",   "modor",
    "brothor",      "sweostor","hand",    "heorte",   "heafod",   "eage",
    "eare",         "muth",    "tunge",   "fot",      "ban",      "blod",
    "sae",          "stream",  "ea",      "brim",     "flod",     "waeter",
    "stan",         "beorg",   "dun",     "wudu",     "treow",    "leaf",
    "blaed",        "gras",    "feld",    "aecer",    "corn",     "hwaete",
    "bere",         "mete",    "hlaf",    "win",      "ealu",     "medu",
    "seax",         "cniht",   "ridan",   "gangan",   "faran",    "cuman",
    "seon",         "heran",   "sprecan", "singan",   "writan",   "raedan",
    "leornian",     "taecan",  "niman",   "giefan",   "healdan",  "beran",
    "dragan",       "teon",    "slean",   "feallan",  "standan",  "sittan",
    "licgan",       "slaepan", "waecnan", "libban",   "sweltan",  "death",
    "lif",          "sawol",   "gast",    "mod",      "hyge",     "sefa",
};
constexpr size_t kVocabularySize = sizeof(kVocabulary) / sizeof(kVocabulary[0]);

// A non-overlapping span list over [0, n), in text order.
struct SpanPlan {
  std::vector<TextRange> spans;
};

// Places spans of length [min_len, max_len] until roughly `coverage * n`
// characters are covered, separated by random gaps sized so spans spread
// over the whole text.
SpanPlan PlanSpans(Rng& rng, size_t n, double coverage, size_t min_len,
                   size_t max_len) {
  SpanPlan plan;
  if (n == 0 || coverage <= 0.0) return plan;
  size_t target = static_cast<size_t>(coverage * static_cast<double>(n));
  size_t mean_len = (min_len + max_len) / 2;
  // gap/span alternation sized to hit the target coverage on average.
  size_t mean_gap = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(mean_len) *
                             (1.0 - coverage) / std::max(coverage, 1e-9)));
  size_t covered = 0;
  size_t pos = rng.Between(1, std::max<size_t>(1, mean_gap));
  while (pos + min_len < n && covered < target) {
    size_t len = std::min(rng.Between(min_len, max_len), n - pos);
    plan.spans.push_back(TextRange(pos, pos + len));
    covered += len;
    pos += len + rng.Between(1, std::max<size_t>(2, 2 * mean_gap));
  }
  return plan;
}

// Serialises a flat span hierarchy: uncovered text as character data in the
// root, covered stretches wrapped in `<tag attr="...">`.
std::string SpanXml(const std::string& base_text, const std::string& root_tag,
                    const std::string& tag, const std::string& attr,
                    const std::vector<std::string>& attr_values, Rng& rng,
                    const SpanPlan& plan) {
  std::string xml = "<" + root_tag + ">";
  size_t pos = 0;
  for (const TextRange& span : plan.spans) {
    xml += xml::EscapeText(base_text.substr(pos, span.begin - pos));
    xml += "<" + tag + " " + attr + "=\"" +
           attr_values[rng.Uniform(attr_values.size())] + "\">";
    xml += xml::EscapeText(base_text.substr(span.begin, span.length()));
    xml += "</" + tag + ">";
    pos = span.end;
  }
  xml += xml::EscapeText(base_text.substr(pos));
  xml += "</" + root_tag + ">";
  return xml;
}

}  // namespace

std::vector<std::string> SampleVocabulary(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<std::string> words;
  words.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    words.push_back(kVocabulary[rng.Uniform(kVocabularySize)]);
  }
  return words;
}

Edition GenerateEdition(const EditionConfig& config) {
  Edition edition;

  // Base text: words joined by single spaces. Each sub-stream gets its own
  // RNG so tweaking one hierarchy's parameters never reshuffles another.
  std::vector<std::string> words =
      SampleVocabulary(config.seed, config.word_count);
  for (size_t i = 0; i < words.size(); ++i) {
    if (i > 0) edition.base_text += ' ';
    edition.base_text += words[i];
  }
  const std::string& text = edition.base_text;
  const size_t n = text.size();

  // Structural: <text><s><w>..</w> ... </s> ...</text>. The inter-word
  // spaces are character data between the <w> elements; sentence breaks fall
  // on those spaces.
  {
    Rng rng(config.seed ^ 0x5354525543545552ULL);  // "STRUCTUR"
    std::string& xml = edition.structural_xml;
    xml = "<text>";
    size_t jitter = std::max<size_t>(1, config.words_per_sentence / 2);
    size_t in_sentence = 0;
    size_t sentence_len = 0;
    for (size_t i = 0; i < words.size(); ++i) {
      if (in_sentence == 0) {
        sentence_len = config.words_per_sentence +
                       rng.Uniform(2 * jitter + 1) - jitter;
        sentence_len = std::max<size_t>(1, sentence_len);
        xml += "<s>";
      }
      xml += "<w>" + xml::EscapeText(words[i]) + "</w>";
      ++in_sentence;
      bool last_word = i + 1 == words.size();
      bool close = in_sentence >= sentence_len || last_word;
      if (close) {
        xml += "</s>";
        in_sentence = 0;
      }
      if (!last_word) xml += " ";
    }
    xml += "</text>";
  }

  // Physical: <sheet><page><line>...</line>...</page></sheet>, cutting every
  // chars_per_line characters with no regard for word boundaries — the
  // source of word/line overlap.
  {
    std::string& xml = edition.physical_xml;
    xml = "<sheet>";
    size_t per_line = std::max<size_t>(1, config.chars_per_line);
    size_t line_in_page = 0;
    size_t line_number = 0;
    for (size_t pos = 0; pos < n || line_number == 0; pos += per_line) {
      if (line_in_page == 0) xml += "<page>";
      ++line_number;
      xml += "<line n=\"" + std::to_string(line_number) + "\">";
      xml += xml::EscapeText(text.substr(pos, per_line));
      xml += "</line>";
      if (++line_in_page >= std::max<size_t>(1, config.lines_per_page)) {
        xml += "</page>";
        line_in_page = 0;
      }
    }
    if (line_in_page != 0) xml += "</page>";
    xml += "</sheet>";
  }

  // Restoration and condition: flat unaligned span hierarchies.
  {
    Rng rng(config.seed ^ 0x5245535355524543ULL);
    SpanPlan plan = PlanSpans(rng, n, config.restoration_coverage,
                              /*min_len=*/5, /*max_len=*/25);
    edition.restoration_xml =
        SpanXml(text, "rest", "res", "resp", {"IK", "AD", "KY"}, rng, plan);
  }
  {
    Rng rng(config.seed ^ 0x434F4E444954494FULL);
    SpanPlan plan = PlanSpans(rng, n, config.damage_coverage,
                              /*min_len=*/3, /*max_len=*/15);
    edition.condition_xml = SpanXml(text, "cond", "dmg", "agent",
                                    {"damp", "fire", "tear"}, rng, plan);
  }
  return edition;
}

StatusOr<MultihierarchicalDocument> BuildEditionDocument(
    const EditionConfig& config) {
  Edition edition = GenerateEdition(config);
  MultihierarchicalDocument::Builder builder;
  builder.SetBaseText(edition.base_text);
  builder.AddHierarchy("physical", edition.physical_xml);
  builder.AddHierarchy("structural", edition.structural_xml);
  builder.AddHierarchy("restoration", edition.restoration_xml);
  builder.AddHierarchy("condition", edition.condition_xml);
  return builder.Build();
}

}  // namespace mhx::workload
