// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// TextRange is the half-open character interval [begin, end) over a
// document's base text. The KyGODDAG annotates every node with the range it
// dominates, and the paper's extended XPath axes (xancestor, xdescendant,
// overlapping, xfollowing, xpreceding) are defined purely in terms of these
// interval relations, because node ranges are unions of contiguous leaves of
// the shared partition.

#ifndef MHX_BASE_TEXT_RANGE_H_
#define MHX_BASE_TEXT_RANGE_H_

#include <cstddef>
#include <string>

namespace mhx {

struct TextRange {
  size_t begin = 0;
  size_t end = 0;

  constexpr TextRange() = default;
  constexpr TextRange(size_t begin_pos, size_t end_pos)
      : begin(begin_pos), end(end_pos) {}

  constexpr size_t length() const { return end > begin ? end - begin : 0; }
  constexpr bool empty() const { return end <= begin; }

  // True when this range covers every position of `other` (equal ranges
  // contain each other).
  constexpr bool Contains(const TextRange& other) const {
    return begin <= other.begin && other.end <= end;
  }
  constexpr bool Contains(size_t pos) const { return begin <= pos && pos < end; }

  // True when the two ranges share at least one position (an empty range
  // shares none, even when it sits inside the other).
  constexpr bool Intersects(const TextRange& other) const {
    return !empty() && !other.empty() && begin < other.end &&
           other.begin < end;
  }

  // True when this range ends at or before the start of `other`.
  constexpr bool Precedes(const TextRange& other) const {
    return end <= other.begin;
  }
  constexpr bool Follows(const TextRange& other) const {
    return other.end <= begin;
  }

  friend constexpr bool operator==(const TextRange& a, const TextRange& b) {
    return a.begin == b.begin && a.end == b.end;
  }
  friend constexpr bool operator!=(const TextRange& a, const TextRange& b) {
    return !(a == b);
  }
  // Document order: earlier start first; at equal starts the longer range
  // first (an element precedes its first child when they share a start).
  friend constexpr bool operator<(const TextRange& a, const TextRange& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    return a.end > b.end;
  }

  std::string ToString() const;
};

// The paper's overlap relation: the ranges intersect but neither contains the
// other. This is what the `overlapping` axis and the fragmentation baseline's
// conflict test both use — nested or identical ranges do NOT overlap.
constexpr bool OverlappingRange(const TextRange& a, const TextRange& b) {
  return a.Intersects(b) && !a.Contains(b) && !b.Contains(a);
}

}  // namespace mhx

#endif  // MHX_BASE_TEXT_RANGE_H_
