// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Minimal absl-style error model. Every fallible operation in mhx:: returns
// Status (or StatusOr<T>, see base/statusor.h) instead of throwing; benches
// and callers test `.ok()` and propagate with the macros in
// base/status_macros.h.

#ifndef MHX_BASE_STATUS_H_
#define MHX_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace mhx {

// Canonical error space (gRPC-compatible numbering).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 3,
  kNotFound = 5,
  kResourceExhausted = 8,
  kOutOfRange = 11,
  kFailedPrecondition = 9,
  kUnimplemented = 12,
  kInternal = 13,
};

std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status ResourceExhaustedError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);

}  // namespace mhx

#endif  // MHX_BASE_STATUS_H_
