// Copyright (c) mhxq authors. Licensed under the MIT license.

#ifndef MHX_BASE_STATUS_MACROS_H_
#define MHX_BASE_STATUS_MACROS_H_

#include <utility>

#include "base/status.h"
#include "base/statusor.h"

// Propagates a non-OK Status out of the current function.
#define MHX_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::mhx::Status mhx_status_ = (expr);            \
    if (!mhx_status_.ok()) return mhx_status_;     \
  } while (false)

// Evaluates a StatusOr<T> expression; on success moves the value into `lhs`,
// on error returns the status.
#define MHX_ASSIGN_OR_RETURN(lhs, expr)                    \
  MHX_ASSIGN_OR_RETURN_IMPL_(                              \
      MHX_STATUS_MACROS_CONCAT_(mhx_statusor_, __LINE__), lhs, expr)

#define MHX_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                               \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#define MHX_STATUS_MACROS_CONCAT_(a, b) MHX_STATUS_MACROS_CONCAT_IMPL_(a, b)
#define MHX_STATUS_MACROS_CONCAT_IMPL_(a, b) a##b

#endif  // MHX_BASE_STATUS_MACROS_H_
