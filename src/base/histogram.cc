// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "base/histogram.h"

#include <cmath>

namespace mhx::base {

LatencyHistogram::LatencyHistogram() {
  for (size_t i = 0; i < kBucketCount; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

size_t LatencyHistogram::BucketFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // msb >= 4 here. The sub-bucket is the 4 bits below the leading one, so
  // [2^msb, 2^(msb+1)) maps linearly onto 16 consecutive buckets.
  const int msb = 63 - __builtin_clzll(value);
  const size_t sub = static_cast<size_t>(value >> (msb - 4)) & 15u;
  return kSubBuckets + static_cast<size_t>(msb - 4) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<uint64_t>(bucket);
  const size_t range = (bucket - kSubBuckets) / kSubBuckets;
  const size_t sub = (bucket - kSubBuckets) % kSubBuckets;
  const int msb = static_cast<int>(range) + 4;
  // Last value of the sub-bucket: leading one, the 4 sub-bucket bits, and
  // all lower bits set.
  const uint64_t base = (uint64_t{1} << msb) |
                        (static_cast<uint64_t>(sub) << (msb - 4));
  return base | ((uint64_t{1} << (msb - 4)) - 1);
}

void LatencyHistogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kBucketCount; ++i) {
    const uint64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  const uint64_t other_max = other.max();
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  const uint64_t total = count();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) return BucketUpperBound(i);
  }
  // Concurrent Record() between the count() snapshot and the walk can
  // leave rank past the walked sum; the largest seen value is the honest
  // answer.
  return max();
}

}  // namespace mhx::base
