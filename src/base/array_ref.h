// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// ArrayRef<T>: an immutable array that either owns its elements (a wrapped
// std::vector, the built-in-memory path) or borrows them from storage owned
// elsewhere (the mmap-adoption path of goddag/persist.h, where the backing
// bytes belong to a mapped arena kept alive by the enclosing snapshot).
// Read access is identical either way — data()/size()/operator[] and
// pointer iterators — so consumers like the SIMD kernels and the RangeIndex
// probes compile unchanged against both.
//
// Borrowing ArrayRefs do not extend the lifetime of the borrowed storage;
// the owner of the enclosing structure is responsible for keeping it alive
// (DocumentSnapshot holds the arena mapping for exactly this reason).

#ifndef MHX_BASE_ARRAY_REF_H_
#define MHX_BASE_ARRAY_REF_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace mhx::base {

template <typename T>
class ArrayRef {
 public:
  ArrayRef() = default;

  // Owning: adopts the vector's storage.
  explicit ArrayRef(std::vector<T> values)
      : owned_(std::move(values)),
        data_(owned_.data()),
        size_(owned_.size()),
        owns_(true) {}

  // Borrowing: views `size` elements at `data`, owned elsewhere.
  ArrayRef(const T* data, size_t size) : data_(data), size_(size) {}

  ArrayRef(const ArrayRef& other) { *this = other; }
  ArrayRef& operator=(const ArrayRef& other) {
    if (this == &other) return *this;
    owns_ = other.owns_;
    if (owns_) {
      owned_ = other.owned_;
      data_ = owned_.data();
    } else {
      owned_.clear();
      data_ = other.data_;
    }
    size_ = other.size_;
    return *this;
  }
  ArrayRef(ArrayRef&& other) noexcept { *this = std::move(other); }
  ArrayRef& operator=(ArrayRef&& other) noexcept {
    if (this == &other) return *this;
    owns_ = other.owns_;
    if (owns_) {
      owned_ = std::move(other.owned_);
      data_ = owned_.data();
    } else {
      owned_.clear();
      data_ = other.data_;
    }
    size_ = other.size_;
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
    other.owns_ = false;
    return *this;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool owns_ = false;
};

}  // namespace mhx::base

#endif  // MHX_BASE_ARRAY_REF_H_
