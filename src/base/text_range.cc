// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "base/text_range.h"

namespace mhx {

std::string TextRange::ToString() const {
  return "[" + std::to_string(begin) + ", " + std::to_string(end) + ")";
}

}  // namespace mhx
