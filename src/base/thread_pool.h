// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// A deliberately small fixed-size thread pool for query-level parallelism:
// no priorities, no dynamic resizing — a locked FIFO queue drained by
// `size()` workers. Submit returns a std::future, so values and exceptions
// both propagate to the joining thread (std::packaged_task stores a thrown
// exception in the shared state).
//
// Sizing note for callers that block on futures: a task must never Submit
// and then passively wait on the same pool — a worker blocked on a task
// queued behind it deadlocks. Callers that need to join work they fanned
// out have two safe shapes: wait only for tasks that are already *running*
// (the XQuery engine's binding scheduler waits for claimed bindings, never
// for queued helper tasks — unstarted helpers find no work and return), and
// call RunPendingTask() while waiting so the blocked thread drains the
// queue instead of sleeping on it.

#ifndef MHX_BASE_THREAD_POOL_H_
#define MHX_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mhx::base {

// The fixed-size fan-out pool described in the file comment: locked FIFO
// queue, future-based results, and RunPendingTask() so joining threads
// drain the backlog instead of sleeping on it.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Drains nothing: queued-but-unstarted tasks still run before the workers
  // exit, so every future obtained from Submit becomes ready.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  // Enqueues `fn` and returns the future for its result. The future carries
  // the task's return value or, if the task throws, its exception.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only; std::function requires copyable targets,
    // so the task rides behind a shared_ptr.
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Pops one queued task, if any, and runs it on the calling thread.
  // Returns false when the queue was empty. Safe from any thread,
  // including pool workers; lets a thread that must wait for fanned-out
  // work make progress on the backlog instead of blocking behind it.
  bool RunPendingTask();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace mhx::base

#endif  // MHX_BASE_THREAD_POOL_H_
