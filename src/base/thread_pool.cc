// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "base/thread_pool.h"

namespace mhx::base {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::RunPendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches the task's exception into the future; nothing
    // escapes into the worker loop.
    task();
  }
}

}  // namespace mhx::base
