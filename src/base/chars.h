// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Shared XML name-character predicates, so every layer that scans tag names
// (xml/, regex/ fragment patterns, xquery/ serialisation) accepts the same
// alphabet.

#ifndef MHX_BASE_CHARS_H_
#define MHX_BASE_CHARS_H_

#include <cctype>

namespace mhx {

inline bool IsXmlNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

inline bool IsXmlNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.';
}

}  // namespace mhx

#endif  // MHX_BASE_CHARS_H_
