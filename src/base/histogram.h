// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// A lock-free fixed-memory latency histogram for closed-loop benchmarks
// and the corpus service: Record() is one relaxed fetch_add into a bucket
// chosen by bit arithmetic, so any number of client threads record
// concurrently with no contention beyond the cache line.
//
// Bucketing: values below 16 get an exact bucket each; above that, every
// power-of-two range [2^k, 2^(k+1)) is split into 16 linear sub-buckets,
// bounding the relative quantile error at 1/16 (~6%) across the full
// uint64 range — ample for latency percentiles, where run-to-run noise
// dwarfs that. ValueAtQuantile() reports a bucket's upper bound, so the
// estimate never understates the true quantile by more than one
// sub-bucket. Units are the caller's (bench_corpus records microseconds).

#ifndef MHX_BASE_HISTOGRAM_H_
#define MHX_BASE_HISTOGRAM_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mhx::base {

// The lock-free histogram described in the file comment; Record() is safe
// from any number of threads, readers take a consistent-enough snapshot.
class LatencyHistogram {
 public:
  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  // Lock-free; safe from any number of threads.
  void Record(uint64_t value);

  // Folds `other`'s samples into this histogram: bucket-wise adds, so the
  // merged quantiles are exactly what one shared histogram would have
  // reported. Safe against concurrent Record() on either side (each load
  // and add is relaxed-atomic); the result is a snapshot, exact once both
  // sides quiesce. Merging a histogram into itself double-counts.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  // Sum of bucket occupancies. Equals count() at rest; during concurrent
  // Record() the two can transiently differ by in-flight samples, and
  // after Merge() this is the authoritative total.
  uint64_t TotalCount() const;

  // Sum of all recorded values — exact, not bucketed — for mean latency
  // (Sum() / count()).
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  // The estimated value at quantile q in [0, 1] (0.5 = median): the upper
  // bound of the bucket holding the ceil(q * count)-th smallest sample.
  // Returns 0 on an empty histogram. Concurrent Record() calls make the
  // result a snapshot, exact once recording quiesces.
  uint64_t ValueAtQuantile(double q) const;

  // Largest value recorded so far (0 when empty); exact, not bucketed.
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  // 16 exact buckets + 16 sub-buckets per power-of-two range [2^4, 2^64).
  static constexpr size_t kSubBuckets = 16;
  static constexpr size_t kBucketCount = kSubBuckets + 60 * kSubBuckets;

  static size_t BucketFor(uint64_t value);
  static uint64_t BucketUpperBound(size_t bucket);

  std::atomic<uint64_t> buckets_[kBucketCount];
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace mhx::base

#endif  // MHX_BASE_HISTOGRAM_H_
