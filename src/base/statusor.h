// Copyright (c) mhxq authors. Licensed under the MIT license.

#ifndef MHX_BASE_STATUSOR_H_
#define MHX_BASE_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "base/status.h"

namespace mhx {

// A value of type T, or the error explaining why it could not be produced.
// Accessors that assume a value (`value()`, `operator*`, `operator->`) abort
// on error status; callers are expected to test `ok()` first.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so callers can `return SomeError(...)` or
  // `return value;` directly, absl-style.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = InternalError("StatusOr constructed from OK status");
    }
  }
  StatusOr(T value)  // NOLINT
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr(StatusOr&&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr& operator=(StatusOr&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const {
    EnsureOk();
    return &*value_;
  }
  T* operator->() {
    EnsureOk();
    return &*value_;
  }

  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  void EnsureOk() const {
    if (!ok()) std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace mhx

#endif  // MHX_BASE_STATUSOR_H_
