// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// MultihierarchicalDocument is the top-level facade of the mhx:: library:
// one base text plus any number of concurrent markup hierarchies, each given
// as an ordinary well-formed XML encoding of that text, merged into a single
// KyGODDAG. Layering (see DESIGN.md):
//
//   base/     Status, StatusOr, TextRange
//   xml/      range-annotating well-formed-XML parser
//   goddag/   KyGoddag core + RangeIndex interval lookups
//   xpath/    standard + extended (overlap-aware) axis evaluation
//   xquery/   FLWOR query engine over the extended axes + analyze-string()
//   regex/    Pike-VM regex behind matches()/analyze-string()
//
// Typical use:
//
//   mhx::MultihierarchicalDocument::Builder builder;
//   builder.SetBaseText(text);
//   builder.AddHierarchy("physical", physical_xml);
//   builder.AddHierarchy("structural", structural_xml);
//   auto doc = builder.Build();
//   if (!doc.ok()) { ... }
//   mhx::xpath::AxisEvaluator axes(&doc->goddag());

#ifndef MHX_DOCUMENT_H_
#define MHX_DOCUMENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "goddag/kygoddag.h"
#include "xquery/engine.h"

namespace mhx {

// Per-query knobs (thread fan-out etc.); see xquery/engine.h.
using QueryOptions = xquery::QueryOptions;

class MultihierarchicalDocument {
 public:
  class Builder {
   public:
    Builder& SetBaseText(std::string text);
    // Queues an XML encoding of the base text; hierarchies receive ids
    // 0, 1, ... in AddHierarchy call order.
    Builder& AddHierarchy(std::string name, std::string xml);
    // Parses and merges all hierarchies. Fails if the base text was never
    // set, any XML is malformed, any hierarchy's character content differs
    // from the base text, or two hierarchies share a name.
    StatusOr<MultihierarchicalDocument> Build();

   private:
    std::string base_text_;
    bool base_text_set_ = false;
    std::vector<std::pair<std::string, std::string>> hierarchies_;
  };

  MultihierarchicalDocument(const MultihierarchicalDocument&) = delete;
  MultihierarchicalDocument& operator=(const MultihierarchicalDocument&) =
      delete;
  // Moves re-point the engine's back-reference so an engine created before
  // the move keeps working afterwards.
  MultihierarchicalDocument(MultihierarchicalDocument&& other) noexcept
      : goddag_(std::move(other.goddag_)),
        engine_(std::move(other.engine_)),
        engine_plans_(std::move(other.engine_plans_)),
        engine_pool_(std::move(other.engine_pool_)),
        engine_counters_(std::move(other.engine_counters_)),
        engine_mu_(std::move(other.engine_mu_)) {
    if (engine_ != nullptr) engine_->Rebind(this);
  }
  MultihierarchicalDocument& operator=(
      MultihierarchicalDocument&& other) noexcept {
    goddag_ = std::move(other.goddag_);
    engine_ = std::move(other.engine_);
    engine_plans_ = std::move(other.engine_plans_);
    engine_pool_ = std::move(other.engine_pool_);
    engine_counters_ = std::move(other.engine_counters_);
    engine_mu_ = std::move(other.engine_mu_);
    if (engine_ != nullptr) engine_->Rebind(this);
    return *this;
  }

  const goddag::KyGoddag& goddag() const { return *goddag_; }
  goddag::KyGoddag* mutable_goddag() { return goddag_.get(); }
  const std::string& base_text() const { return goddag_->base_text(); }

  // Evaluates an XQuery expression and serialises the result sequence
  // (items concatenate without separators; leaves serialise as their
  // base-text characters, constructed elements as tags).
  //
  // Thread-safe: any number of concurrent Query calls on one document run
  // truly concurrently — analyze-string() included. Queries never mutate
  // the document: temporary virtual hierarchies live in evaluation-scoped
  // overlay namespaces over the immutable base KyGoddag and are dropped
  // when the evaluation returns, so there is no evaluation lock and no
  // exclusive path. See the concurrency contract in xquery/engine.h.
  // Mutating the document (mutable_goddag()) or moving it while queries
  // run remains undefined behaviour.
  StatusOr<std::string> Query(std::string_view query) const;

  // As above, with per-query options — QueryOptions{.threads = 4} fans
  // independent FLWOR iterations and quantifier bindings out across a
  // work-stealing thread pool, analyze-string() bodies included (workers
  // materialise temporaries in private sub-overlays merged at join), with
  // results byte-identical to the serial evaluation (see the engine.h
  // contract for the two narrow caveats).
  StatusOr<std::string> Query(std::string_view query,
                              const QueryOptions& options) const;

  // The query engine bound to this document (created lazily; creation is
  // thread-safe).
  xquery::Engine* engine() const;

  // Corpus injection seam: arranges for the lazily created engine to share
  // a process-wide PlanCache, fan-out ThreadPool, and EngineCounters block
  // instead of growing its own (any may be null to keep the engine-private
  // default; shared counters survive this document's eviction). Fails with
  // FailedPrecondition once the engine exists — the corpus service calls
  // this right after Build, before any query.
  Status ConfigureEngine(
      std::shared_ptr<xquery::PlanCache> plans,
      std::shared_ptr<base::ThreadPool> pool,
      std::shared_ptr<xquery::EngineCounters> counters = nullptr) const;

 private:
  explicit MultihierarchicalDocument(std::unique_ptr<goddag::KyGoddag> g)
      : goddag_(std::move(g)),
        engine_mu_(std::make_unique<std::mutex>()) {}

  // KyGoddag and Engine live behind pointers so moving the document does not
  // invalidate &goddag() or engine() held by evaluators and benchmarks.
  std::unique_ptr<goddag::KyGoddag> goddag_;
  mutable std::unique_ptr<xquery::Engine> engine_;
  // Held until the engine is created (ConfigureEngine), then passed to it.
  mutable std::shared_ptr<xquery::PlanCache> engine_plans_;
  mutable std::shared_ptr<base::ThreadPool> engine_pool_;
  mutable std::shared_ptr<xquery::EngineCounters> engine_counters_;
  // Guards lazy engine creation under concurrent Query calls. Behind a
  // pointer because mutexes are not movable but the document is.
  mutable std::unique_ptr<std::mutex> engine_mu_;
};

}  // namespace mhx

#endif  // MHX_DOCUMENT_H_
