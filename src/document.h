// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// MultihierarchicalDocument is the top-level facade of the mhx:: library:
// one base text plus any number of concurrent markup hierarchies, each given
// as an ordinary well-formed XML encoding of that text, merged into a single
// KyGODDAG. Layering (see DESIGN.md):
//
//   base/     Status, StatusOr, TextRange
//   xml/      range-annotating well-formed-XML parser
//   goddag/   KyGoddag core + DocumentSnapshot MVCC + RangeIndex lookups
//   xpath/    standard + extended (overlap-aware) axis evaluation
//   xquery/   FLWOR query engine over the extended axes + analyze-string()
//   regex/    Pike-VM regex behind matches()/analyze-string()
//
// Versioning (the full contract lives in CONCURRENCY.md): the document is a
// sequence of immutable goddag::DocumentSnapshot versions. Builder::Build
// publishes version 1; every Writer::Commit clones the head goddag
// copy-on-write, applies its queued mutations off to the side, prebuilds
// the RangeIndex, and publishes the successor atomically. Readers
// (Query, the engine) pin the current snapshot for an entire evaluation
// and never block on a writer; old versions retire when their last pin
// drops.
//
// Typical use:
//
//   mhx::MultihierarchicalDocument::Builder builder;
//   builder.SetBaseText(text);
//   builder.AddHierarchy("physical", physical_xml);
//   builder.AddHierarchy("structural", structural_xml);
//   auto doc = builder.Build();
//   if (!doc.ok()) { ... }
//   auto before = doc->Query("count(//line)");
//   auto writer = doc->NewWriter();
//   writer.AddVirtualHierarchy("damage", spans);
//   auto version = writer.Commit();   // readers of `before`'s version
//                                     // were never blocked

#ifndef MHX_DOCUMENT_H_
#define MHX_DOCUMENT_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/statusor.h"
#include "goddag/kygoddag.h"
#include "goddag/snapshot.h"
#include "xquery/engine.h"

namespace mhx {

// Per-query knobs (thread fan-out etc.); see xquery/engine.h.
using QueryOptions = xquery::QueryOptions;

// The facade described in the file comment above; CONCURRENCY.md states
// the thread-safety class of every method.
class MultihierarchicalDocument {
 public:
  // Single-threaded assembly of a new document from a base text plus XML
  // hierarchy encodings; Build() publishes version 1.
  class Builder {
   public:
    // Unsynchronized: a Builder is single-threaded scratch state.
    Builder& SetBaseText(std::string text);
    // Queues an XML encoding of the base text; hierarchies receive ids
    // 0, 1, ... in AddHierarchy call order.
    Builder& AddHierarchy(std::string name, std::string xml);
    // Parses and merges all hierarchies, then publishes the document's
    // initial snapshot (version 1, index built lazily on first query).
    // Fails if the base text was never set, any XML is malformed, any
    // hierarchy's character content differs from the base text, or two
    // hierarchies share a name.
    StatusOr<MultihierarchicalDocument> Build();

   private:
    std::string base_text_;
    bool base_text_set_ = false;
    std::vector<std::pair<std::string, std::string>> hierarchies_;
  };

  // Writer path (thread-safety class: writer-path — see CONCURRENCY.md).
  // A Writer queues mutations and applies them all at Commit() against a
  // private copy-on-write clone of the head goddag: nothing is visible to
  // readers before Commit returns, a failed Commit publishes nothing, and
  // readers pinned to older versions are never blocked. Commits serialise
  // against each other on the document's writer mutex; the queueing calls
  // themselves are unsynchronized (one Writer belongs to one thread).
  class Writer {
   public:
    Writer(Writer&&) noexcept = default;
    Writer& operator=(Writer&&) noexcept = default;
    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    // Queues a persistent hierarchy given as an XML encoding of the base
    // text (same rules as Builder::AddHierarchy; the name must not collide
    // with an active hierarchy at Commit time).
    Writer& AddHierarchy(std::string name, std::string xml);

    // Queues a persistent virtual hierarchy (offset-anchored elements, the
    // analyze-string shape) under a fresh whole-text root named `name`.
    Writer& AddVirtualHierarchy(std::string name,
                                std::vector<goddag::VirtualElement> elements);

    // Queues removal of an active virtual hierarchy named `hierarchy_name`
    // (when several share the name, the one in the highest hierarchy-table
    // slot). NotFound at Commit time if none matches; persistent
    // (XML-parsed) hierarchies cannot be removed.
    Writer& RemoveVirtualHierarchy(std::string hierarchy_name);

    // Arranges for Commit to also serialise the new version to `path` as
    // an mmap-able arena (goddag/persist.h), atomically (temp + rename),
    // BEFORE the version is published: a failed write aborts the whole
    // commit, so the document and the file never disagree about whether
    // the version exists. An empty path (the default) persists nothing.
    Writer& PersistTo(std::string path);

    // Applies the queued mutations in order to a private clone of the head
    // goddag and publishes the result as the next version, returning its
    // number. All-or-nothing: the first failing mutation aborts the whole
    // commit and the document is unchanged. Blocking behavior: waits only
    // for concurrently committing writers (never for readers); readers
    // never wait for this. The RangeIndex of the new version is built
    // here, on the writer's thread, before publication — readers repin
    // free of rebuilds. FailedPrecondition on a second Commit call.
    StatusOr<uint64_t> Commit();

   private:
    friend class MultihierarchicalDocument;
    explicit Writer(MultihierarchicalDocument* doc) : doc_(doc) {}

    struct Op {
      enum class Kind { kAddXml, kAddVirtual, kRemoveVirtual };
      Kind kind;
      std::string name;
      std::string xml;
      std::vector<goddag::VirtualElement> elements;
    };

    MultihierarchicalDocument* doc_;
    std::vector<Op> ops_;
    std::string persist_path_;
    bool committed_ = false;
  };

  // Wraps an already-published snapshot — the mmap cold-start path: the
  // (head, snapshot) pair comes from goddag::LoadSnapshotFile, whose
  // snapshot owns the arena mapping and whose head owns all of its bytes.
  // The document behaves exactly like a Build()-produced one — queries pin
  // the adopted snapshot (index and stats pre-adopted, nothing rebuilds),
  // and Writer::Commit clones the head and publishes successors that no
  // longer reference the mapping. `snapshot` must wrap `head` (same
  // goddag); single-threaded until the constructor returns, the usual
  // CONCURRENCY.md rules afterwards.
  static MultihierarchicalDocument FromSnapshot(
      std::shared_ptr<goddag::KyGoddag> head,
      std::shared_ptr<const goddag::DocumentSnapshot> snapshot) {
    return MultihierarchicalDocument(std::move(head), std::move(snapshot));
  }

  MultihierarchicalDocument(const MultihierarchicalDocument&) = delete;
  MultihierarchicalDocument& operator=(const MultihierarchicalDocument&) =
      delete;
  // Moves re-point the engine's back-reference so an engine created before
  // the move keeps working afterwards. Unsynchronized: moving while any
  // query or writer runs is undefined behaviour.
  MultihierarchicalDocument(MultihierarchicalDocument&& other) noexcept
      : head_(std::move(other.head_)),
        current_(std::move(other.current_)),
        engine_(std::move(other.engine_)),
        engine_plans_(std::move(other.engine_plans_)),
        engine_pool_(std::move(other.engine_pool_)),
        engine_counters_(std::move(other.engine_counters_)),
        engine_mu_(std::move(other.engine_mu_)),
        snapshot_mu_(std::move(other.snapshot_mu_)),
        writer_mu_(std::move(other.writer_mu_)) {
    if (engine_ != nullptr) engine_->Rebind(this);
  }
  MultihierarchicalDocument& operator=(
      MultihierarchicalDocument&& other) noexcept {
    head_ = std::move(other.head_);
    current_ = std::move(other.current_);
    engine_ = std::move(other.engine_);
    engine_plans_ = std::move(other.engine_plans_);
    engine_pool_ = std::move(other.engine_pool_);
    engine_counters_ = std::move(other.engine_counters_);
    engine_mu_ = std::move(other.engine_mu_);
    snapshot_mu_ = std::move(other.snapshot_mu_);
    writer_mu_ = std::move(other.writer_mu_);
    if (engine_ != nullptr) engine_->Rebind(this);
    return *this;
  }

  // The head version's goddag. Thread-safety class: pinned-snapshot read
  // only in single-threaded or quiesced use — prefer PinSnapshot() when
  // writers may be committing, because the head pointer moves on commit.
  const goddag::KyGoddag& goddag() const { return *head_; }

  // Legacy in-place mutation escape hatch (thread-safety class:
  // unsynchronized). Edits the head version directly, bypassing MVCC:
  // undefined behaviour while any query or writer runs, and the next query
  // pays one private index rebuild. New code routes mutations through
  // NewWriter(); this remains for single-threaded tooling and the E10
  // ablation benchmarks.
  goddag::KyGoddag* mutable_goddag() { return head_.get(); }

  // The shared base text. Thread-safe without pinning: every version of
  // the document shares one immutable text by refcounted pointer, so the
  // reference stays valid and constant across commits.
  const std::string& base_text() const { return head_->base_text(); }

  // Pins the currently published snapshot: an O(1) shared_ptr copy under
  // the epoch mutex, never blocked by writers (Commit holds this mutex
  // only for two pointer assignments). The pinned version stays fully
  // readable — goddag, leaves, index — for as long as the caller holds it,
  // across any number of later commits. Thread-safe.
  std::shared_ptr<const goddag::DocumentSnapshot> PinSnapshot() const;

  // The currently published version number (1 after Build). Thread-safe.
  uint64_t version() const;

  // Opens a writer whose mutations commit as one atomic new version; see
  // Writer. Any number may be open at once; their Commits serialise.
  Writer NewWriter() { return Writer(this); }

  // Evaluates an XQuery expression and serialises the result sequence
  // (items concatenate without separators; leaves serialise as their
  // base-text characters, constructed elements as tags).
  //
  // Thread-safety class: pinned-snapshot read. Any number of concurrent
  // Query calls run truly concurrently — analyze-string() included — and
  // concurrently with Writer::Commit: each evaluation pins the snapshot
  // current at its start and reads exactly that version end-to-end,
  // byte-identical to a quiesced evaluation of the same version. Queries
  // never block on writers and never mutate the document: temporary
  // virtual hierarchies live in evaluation-scoped overlay namespaces over
  // the pinned snapshot and are dropped when the evaluation returns. See
  // CONCURRENCY.md for the full contract. Mutating via mutable_goddag()
  // or moving the document while queries run remains undefined behaviour.
  StatusOr<std::string> Query(std::string_view query) const;

  // As above, with per-query options — QueryOptions{.threads = 4} fans
  // independent FLWOR iterations and quantifier bindings out across a
  // work-stealing thread pool, analyze-string() bodies included (workers
  // materialise temporaries in private sub-overlays merged at join), with
  // results byte-identical to the serial evaluation (see the engine.h
  // contract for the two narrow caveats).
  StatusOr<std::string> Query(std::string_view query,
                              const QueryOptions& options) const;

  // The query engine bound to this document (created lazily; creation is
  // thread-safe and the returned pointer is stable across moves).
  xquery::Engine* engine() const;

  // Corpus injection seam: arranges for the lazily created engine to share
  // a process-wide PlanCache, fan-out ThreadPool, and EngineCounters block
  // instead of growing its own (any may be null to keep the engine-private
  // default; shared counters survive this document's eviction). Fails with
  // FailedPrecondition once the engine exists — the corpus service calls
  // this right after Build, before any query. Thread-safe; never blocks
  // beyond the engine-creation mutex.
  Status ConfigureEngine(
      std::shared_ptr<xquery::PlanCache> plans,
      std::shared_ptr<base::ThreadPool> pool,
      std::shared_ptr<xquery::EngineCounters> counters = nullptr) const;

 private:
  explicit MultihierarchicalDocument(std::unique_ptr<goddag::KyGoddag> g);
  MultihierarchicalDocument(
      std::shared_ptr<goddag::KyGoddag> head,
      std::shared_ptr<const goddag::DocumentSnapshot> snapshot);

  // KyGoddag, snapshots, and Engine live behind pointers so moving the
  // document does not invalidate &goddag() or engine() held by evaluators
  // and benchmarks. head_ aliases current_'s goddag (mutably, for the
  // legacy path) and repoints on every Commit.
  std::shared_ptr<goddag::KyGoddag> head_;
  // The published snapshot; guarded by snapshot_mu_ (pin = copy, publish =
  // assign — the entire epoch-swap critical section).
  std::shared_ptr<const goddag::DocumentSnapshot> current_;
  mutable std::unique_ptr<xquery::Engine> engine_;
  // Held until the engine is created (ConfigureEngine), then passed to it.
  mutable std::shared_ptr<xquery::PlanCache> engine_plans_;
  mutable std::shared_ptr<base::ThreadPool> engine_pool_;
  mutable std::shared_ptr<xquery::EngineCounters> engine_counters_;
  // Guards lazy engine creation under concurrent Query calls. Mutexes live
  // behind pointers because they are not movable but the document is.
  mutable std::unique_ptr<std::mutex> engine_mu_;
  // Guards current_ (see above).
  mutable std::unique_ptr<std::mutex> snapshot_mu_;
  // Serialises Writer::Commit calls; never held while readers pin.
  std::unique_ptr<std::mutex> writer_mu_;
};

}  // namespace mhx

#endif  // MHX_DOCUMENT_H_
