// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "xpath/kernels.h"

namespace mhx::xquery {
namespace {

// Cost-model constants, in units of one scalar node visit. Cp is the
// per-tree-level overhead of an index probe, kSoaScanCost the per-element
// cost of the vectorized kernels relative to a scalar table walk (the E9
// kernel lanes measure ~10-20x; 0.05 keeps a safety margin), and
// kScalarScanCost the plain naive scan.
constexpr double kProbeCost = 4.0;
constexpr double kSoaScanCost = 0.05;
constexpr double kScalarScanCost = 1.0;

// The extended axis a step reduces to when evaluated from a leaf context
// (mirrors the engine's LeafContextStep mapping), or the step's own axis
// when already extended. Returns false for axes the planner has no
// strategy choice for (pure tree walks).
bool ExtendedEquivalent(xpath::Axis axis, xpath::Axis* extended) {
  switch (axis) {
    case xpath::Axis::kAncestor:
    case xpath::Axis::kAncestorOrSelf:
    case xpath::Axis::kXAncestor:
      *extended = xpath::Axis::kXAncestor;
      return true;
    case xpath::Axis::kXDescendant:
      *extended = xpath::Axis::kXDescendant;
      return true;
    case xpath::Axis::kOverlapping:
      *extended = xpath::Axis::kOverlapping;
      return true;
    case xpath::Axis::kFollowing:
    case xpath::Axis::kXFollowing:
      *extended = xpath::Axis::kXFollowing;
      return true;
    case xpath::Axis::kPreceding:
    case xpath::Axis::kXPreceding:
      *extended = xpath::Axis::kXPreceding;
      return true;
    default:
      return false;
  }
}

// Expected base hits of one extended-axis evaluation from a typical
// context, before any name-test selectivity.
double EstimateHits(xpath::Axis extended, const goddag::SnapshotStats& stats) {
  const double text = static_cast<double>(std::max<size_t>(stats.text_size(), 1));
  const double elements = static_cast<double>(stats.element_count());
  switch (extended) {
    case xpath::Axis::kXAncestor:
    case xpath::Axis::kXDescendant:
    case xpath::Axis::kOverlapping:
      // Mean stabbing depth: the expected number of element ranges covering
      // a random text position. Containment in either direction (and proper
      // overlap, which is rarer still) returns at most the ranges a context
      // touches, and this measure tracks that without per-step context
      // knowledge.
      return static_cast<double>(stats.total_range_length()) / text;
    case xpath::Axis::kXFollowing:
    case xpath::Axis::kXPreceding:
      // Ordering axes return everything on one side of the context: half
      // the document in expectation. This is what flips them to the scan.
      return elements / 2.0;
    default:
      return 0.0;
  }
}

// True when a predicate provably evaluates to a boolean regardless of the
// item it filters — the precondition for reordering a conjunction. Integer
// results are positional tests (order-sensitive by definition), and any
// non-boolean root could produce one, so only boolean-rooted expressions
// qualify; analyze-string() anywhere in the subtree disqualifies too, since
// its temporary hierarchies register into the evaluation's overlay view in
// predicate order.
bool IsStaticallyBoolean(const AstNode& pred) {
  switch (pred.kind) {
    case ExprKind::kCompare:
    case ExprKind::kOr:
    case ExprKind::kAnd:
    case ExprKind::kQuantified:
      break;
    case ExprKind::kFunctionCall:
      if (pred.name != "not" && pred.name != "true" && pred.name != "false" &&
          pred.name != "matches") {
        return false;
      }
      break;
    default:
      return false;
  }
  return !ContainsAnalyzeString(pred);
}

// AST size as the reordering cost proxy: cheaper predicates filter first.
size_t SubtreeSize(const AstNode& node) {
  size_t n = 1;
  VisitSubExprs(node, [&n](const AstNode& child) { n += SubtreeSize(child); });
  return n;
}

void PlanStep(const PathStep& step, const goddag::SnapshotStats& stats,
              QueryPlan* plan) {
  StepPlan sp;
  bool interesting = false;

  xpath::Axis extended;
  if (step.primary == nullptr && ExtendedEquivalent(step.axis, &extended)) {
    interesting = true;
    const double table = static_cast<double>(stats.node_table_size());
    const double elements =
        static_cast<double>(std::max<size_t>(stats.element_count(), 1));
    double est = EstimateHits(extended, stats);
    sp.exec.pushdown = step.test == PathStep::Test::kName;
    if (sp.exec.pushdown) {
      est *= static_cast<double>(stats.name_count(step.name)) / elements;
    }
    sp.est_hits = est;
    sp.cost_indexed = kProbeCost * std::log2(elements + 1.0) + est;
    sp.cost_scan =
        (stats.soa().valid ? kSoaScanCost : kScalarScanCost) * table;
    sp.exec.use_index = sp.cost_indexed <= sp.cost_scan;
  }

  if (step.predicates.size() >= 2 &&
      std::all_of(step.predicates.begin(), step.predicates.end(),
                  [](const std::unique_ptr<AstNode>& p) {
                    return IsStaticallyBoolean(*p);
                  })) {
    std::vector<uint16_t> order(step.predicates.size());
    std::iota(order.begin(), order.end(), static_cast<uint16_t>(0));
    std::vector<size_t> sizes(step.predicates.size());
    for (size_t i = 0; i < step.predicates.size(); ++i) {
      sizes[i] = SubtreeSize(*step.predicates[i]);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&sizes](uint16_t a, uint16_t b) {
                       return sizes[a] < sizes[b];
                     });
    // Only record an order that differs from the source: an empty vector is
    // the "run as written" fast path.
    if (!std::is_sorted(order.begin(), order.end())) {
      sp.predicate_order = std::move(order);
      interesting = true;
    }
  }

  if (interesting) plan->steps.emplace(&step, std::move(sp));
}

void WalkForPlans(const AstNode& node, const goddag::SnapshotStats& stats,
                  QueryPlan* plan) {
  if (node.kind == ExprKind::kPath) {
    for (const PathStep& step : node.steps) PlanStep(step, stats, plan);
  }
  VisitSubExprs(node, [&](const AstNode& child) {
    WalkForPlans(child, stats, plan);
  });
}

// Rendering helpers for ExplainQueryPlan.
void RenderSteps(const AstNode& node, const QueryPlan& plan,
                 std::ostringstream* out) {
  if (node.kind == ExprKind::kPath) {
    for (const PathStep& step : node.steps) {
      if (step.primary != nullptr) continue;
      auto it = plan.steps.find(&step);
      *out << "step " << xpath::AxisName(step.axis) << "::";
      switch (step.test) {
        case PathStep::Test::kName:
          *out << step.name;
          break;
        case PathStep::Test::kAnyElement:
          *out << "*";
          break;
        case PathStep::Test::kAnyNode:
          *out << "node()";
          break;
        case PathStep::Test::kLeaf:
          *out << "leaf()";
          break;
      }
      xpath::Axis extended;
      if (ExtendedEquivalent(step.axis, &extended)) {
        const StepPlan* sp = it != plan.steps.end() ? &it->second : nullptr;
        const bool use_index = sp == nullptr || sp->exec.use_index;
        *out << " strategy=" << (use_index ? "indexed" : "scan");
        if (sp != nullptr) {
          if (sp->exec.pushdown) *out << " pushdown=" << step.name;
          *out << " est_hits=" << static_cast<uint64_t>(sp->est_hits)
               << " cost_indexed=" << static_cast<uint64_t>(sp->cost_indexed)
               << " cost_scan=" << static_cast<uint64_t>(sp->cost_scan);
        }
      } else {
        *out << " strategy=arcs";
      }
      if (it != plan.steps.end() && !it->second.predicate_order.empty()) {
        *out << " predicate_order=[";
        for (size_t i = 0; i < it->second.predicate_order.size(); ++i) {
          if (i != 0) *out << ",";
          *out << it->second.predicate_order[i];
        }
        *out << "]";
      }
      *out << "\n";
    }
  }
  VisitSubExprs(node, [&](const AstNode& child) {
    RenderSteps(child, plan, out);
  });
}

}  // namespace

std::string_view PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kAuto:
      return "auto";
    case PlanMode::kForceNaive:
      return "force-naive";
    case PlanMode::kForceIndexed:
      return "force-indexed";
    case PlanMode::kForceSort:
      return "force-sort";
  }
  return "unknown";
}

QueryPlan PlanQuery(const AstNode& root, const goddag::SnapshotStats& stats,
                    uint64_t snapshot_version) {
  QueryPlan plan;
  plan.snapshot_version = snapshot_version;
  WalkForPlans(root, stats, &plan);
  return plan;
}

std::string ExplainQueryPlan(const AstNode& root, const QueryPlan& plan,
                             const goddag::SnapshotStats& stats) {
  std::ostringstream out;
  out << "plan version=" << plan.snapshot_version
      << " elements=" << stats.element_count()
      << " nodes=" << stats.node_table_size()
      << " names=" << stats.name_table_size() << " kernel="
      << xpath::KernelIsaName(stats.soa().valid
                                  ? xpath::DispatchedKernelIsa()
                                  : xpath::KernelIsa::kScalar)
      << (stats.soa().valid ? "" : " (soa unavailable)") << "\n";
  RenderSteps(root, plan, &out);
  return out.str();
}

}  // namespace mhx::xquery
