// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/lexer.h"

#include <cctype>

namespace mhx::xquery {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof:
      return "end of query";
    case TokenKind::kError:
      return "invalid token";
    case TokenKind::kName:
      return "name";
    case TokenKind::kVariable:
      return "variable";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kInteger:
      return "integer literal";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kSlashSlash:
      return "'//'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kAxisSep:
      return "'::'";
    case TokenKind::kAssign:
      return "':='";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
  }
  return "token";
}

bool IsQueryNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsQueryNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

size_t Lexer::SkipIgnorable(size_t pos) const {
  while (pos < src_.size()) {
    char c = src_[pos];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++pos;
      continue;
    }
    // Nested XQuery comments: (: ... :)
    if (c == '(' && pos + 1 < src_.size() && src_[pos + 1] == ':') {
      size_t depth = 1;
      size_t i = pos + 2;
      while (i < src_.size() && depth > 0) {
        if (src_[i] == '(' && i + 1 < src_.size() && src_[i + 1] == ':') {
          ++depth;
          i += 2;
        } else if (src_[i] == ':' && i + 1 < src_.size() &&
                   src_[i + 1] == ')') {
          --depth;
          i += 2;
        } else {
          ++i;
        }
      }
      if (depth > 0) return src_.size();  // unterminated; EOF follows
      pos = i;
      continue;
    }
    break;
  }
  return pos;
}

Token Lexer::Lex(size_t from) const {
  Token t;
  size_t pos = SkipIgnorable(from);
  t.begin = pos;
  t.end = pos;
  if (pos >= src_.size()) {
    t.kind = TokenKind::kEof;
    return t;
  }
  char c = src_[pos];

  auto single = [&](TokenKind kind) {
    t.kind = kind;
    t.end = pos + 1;
  };
  auto pair = [&](TokenKind kind) {
    t.kind = kind;
    t.end = pos + 2;
  };

  if (IsQueryNameStartChar(c)) {
    size_t end = pos + 1;
    while (end < src_.size() && IsQueryNameChar(src_[end])) ++end;
    t.kind = TokenKind::kName;
    t.text = std::string(src_.substr(pos, end - pos));
    t.end = end;
    return t;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t end = pos + 1;
    while (end < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[end]))) {
      ++end;
    }
    t.kind = TokenKind::kInteger;
    t.text = std::string(src_.substr(pos, end - pos));
    t.end = end;
    return t;
  }
  switch (c) {
    case '$': {
      size_t end = pos + 1;
      if (end >= src_.size() || !IsQueryNameStartChar(src_[end])) {
        t.kind = TokenKind::kError;
        t.error = "expected a variable name after '$'";
        t.end = end;
        return t;
      }
      ++end;
      while (end < src_.size() && IsQueryNameChar(src_[end])) ++end;
      t.kind = TokenKind::kVariable;
      t.text = std::string(src_.substr(pos + 1, end - pos - 1));
      t.end = end;
      return t;
    }
    case '\'':
    case '"': {
      const char quote = c;
      std::string value;
      size_t i = pos + 1;
      while (i < src_.size()) {
        if (src_[i] == quote) {
          if (i + 1 < src_.size() && src_[i + 1] == quote) {
            value.push_back(quote);  // doubled-quote escape
            i += 2;
            continue;
          }
          t.kind = TokenKind::kString;
          t.text = std::move(value);
          t.end = i + 1;
          return t;
        }
        value.push_back(src_[i]);
        ++i;
      }
      t.kind = TokenKind::kError;
      t.error = "unterminated string literal";
      t.end = src_.size();
      return t;
    }
    case '/':
      if (pos + 1 < src_.size() && src_[pos + 1] == '/') {
        pair(TokenKind::kSlashSlash);
      } else {
        single(TokenKind::kSlash);
      }
      return t;
    case '(':
      single(TokenKind::kLParen);
      return t;
    case ')':
      single(TokenKind::kRParen);
      return t;
    case '[':
      single(TokenKind::kLBracket);
      return t;
    case ']':
      single(TokenKind::kRBracket);
      return t;
    case '{':
      single(TokenKind::kLBrace);
      return t;
    case '}':
      single(TokenKind::kRBrace);
      return t;
    case ',':
      single(TokenKind::kComma);
      return t;
    case ':':
      if (pos + 1 < src_.size() && src_[pos + 1] == ':') {
        pair(TokenKind::kAxisSep);
      } else if (pos + 1 < src_.size() && src_[pos + 1] == '=') {
        pair(TokenKind::kAssign);
      } else {
        t.kind = TokenKind::kError;
        t.error = "stray ':'";
        t.end = pos + 1;
      }
      return t;
    case '.':
      single(TokenKind::kDot);
      return t;
    case '*':
      single(TokenKind::kStar);
      return t;
    case '+':
      single(TokenKind::kPlus);
      return t;
    case '-':
      single(TokenKind::kMinus);
      return t;
    case '=':
      single(TokenKind::kEq);
      return t;
    case '!':
      if (pos + 1 < src_.size() && src_[pos + 1] == '=') {
        pair(TokenKind::kNe);
      } else {
        t.kind = TokenKind::kError;
        t.error = "expected '=' after '!'";
        t.end = pos + 1;
      }
      return t;
    case '<':
      if (pos + 1 < src_.size() && src_[pos + 1] == '=') {
        pair(TokenKind::kLe);
      } else {
        single(TokenKind::kLt);
      }
      return t;
    case '>':
      if (pos + 1 < src_.size() && src_[pos + 1] == '=') {
        pair(TokenKind::kGe);
      } else {
        single(TokenKind::kGt);
      }
      return t;
    default:
      t.kind = TokenKind::kError;
      t.error = std::string("unexpected character '") + c + "'";
      t.end = pos + 1;
      return t;
  }
}

}  // namespace mhx::xquery
