// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// XQuery front end: parses the FLWOR subset the paper's queries use —
// for/let/return, if/then/else, quantified `some ... satisfies`, path
// expressions with standard and extended axes plus the `leaf()` node test,
// predicates, direct/computed constructors, and the built-ins string(),
// string-length(), count(), name(), matches(), analyze-string().
//
// Declared API only for now: ParseQuery returns Unimplemented until the
// XQuery PR lands (see ROADMAP.md). The Expr node is intentionally opaque.

#ifndef MHX_XQUERY_PARSER_H_
#define MHX_XQUERY_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/statusor.h"

namespace mhx::xquery {

// Opaque parsed-query handle; the engine PR will flesh out the AST behind
// it. Holding the source keeps error messages anchored to the query text.
class Expr {
 public:
  explicit Expr(std::string source) : source_(std::move(source)) {}
  const std::string& source() const { return source_; }

 private:
  std::string source_;
};

StatusOr<std::unique_ptr<Expr>> ParseQuery(std::string_view query);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_PARSER_H_
