// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// XQuery front end: parses the FLWOR subset the paper's queries use —
// for/let/return, if/then/else, quantified `some ... satisfies`, path
// expressions with standard and extended axes plus the `leaf()` node test,
// predicates, direct/computed constructors, and the built-ins string(),
// string-length(), count(), name(), matches(), analyze-string().
//
// ParseQuery runs the stateless lexer (xquery/lexer.h) under a
// recursive-descent parser and yields the AST of xquery/ast.h behind the
// Expr handle. Every syntax error is InvalidArgument with the offending
// source offset, so diagnostics stay anchored to the query text.

#ifndef MHX_XQUERY_PARSER_H_
#define MHX_XQUERY_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "base/statusor.h"

namespace mhx::xquery {

struct AstNode;

// A parsed query: the source text plus the AST built over it. Holding the
// source keeps error messages anchored to the query text.
class Expr {
 public:
  Expr(std::string source, std::unique_ptr<AstNode> root);
  ~Expr();
  Expr(Expr&&) noexcept;
  Expr& operator=(Expr&&) noexcept;

  const std::string& source() const { return source_; }
  const AstNode& root() const { return *root_; }

 private:
  std::string source_;
  std::unique_ptr<AstNode> root_;
};

StatusOr<std::unique_ptr<Expr>> ParseQuery(std::string_view query);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_PARSER_H_
