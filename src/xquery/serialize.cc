// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/serialize.h"

#include "base/chars.h"

namespace mhx::xquery {

std::string CoalesceRuns(std::string_view serialized) {
  std::string out;
  out.reserve(serialized.size());
  size_t i = 0;
  while (i < serialized.size()) {
    // At "</name><name>", splice the close/open pair out.
    if (serialized[i] == '<' && i + 1 < serialized.size() &&
        serialized[i + 1] == '/') {
      size_t name_begin = i + 2;
      size_t name_end = name_begin;
      while (name_end < serialized.size() &&
             IsXmlNameChar(serialized[name_end])) {
        ++name_end;
      }
      if (name_end > name_begin && name_end < serialized.size() &&
          serialized[name_end] == '>') {
        std::string_view name =
            serialized.substr(name_begin, name_end - name_begin);
        std::string reopen = "<" + std::string(name) + ">";
        if (serialized.compare(name_end + 1, reopen.size(), reopen) == 0) {
          i = name_end + 1 + reopen.size();
          continue;
        }
      }
    }
    out.push_back(serialized[i]);
    ++i;
  }
  return out;
}

}  // namespace mhx::xquery
