// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// A process-wide compiled-plan cache: query text -> parsed Expr and regex
// pattern -> compiled Pike-VM program, sharded by key hash so unrelated
// queries never contend on one mutex. This is the lift of the former
// per-engine query_cache_/regex_cache_ (xquery/engine.h): plans and
// compiled patterns are document-independent, so one PlanCache shared by
// every engine in a process — the corpus service wires exactly that —
// compiles each distinct query text once no matter how many documents it
// runs against. An engine given no shared cache creates a private one, so
// single-document use is unchanged.
//
// Entries are never evicted: the mapped values live at stable addresses
// (unique_ptr-boxed entries), so a returned Expr* / Regex* stays valid for
// the cache's lifetime — engines hold the cache by shared_ptr, which is why
// a plan outlives any document that happens to be evicted mid-query.
// hits()/misses() (and the regex_ pair) are relaxed monotonic counters,
// surfaced by bench_corpus as the cross-document hit-rate.

#ifndef MHX_XQUERY_PLAN_CACHE_H_
#define MHX_XQUERY_PLAN_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "base/statusor.h"
#include "obs/metrics.h"
#include "regex/regex.h"
#include "xquery/parser.h"
#include "xquery/planner.h"

namespace mhx::xquery {

namespace internal {
// A string-keyed cache entry whose key the map's string_view key points
// into: C++17 has no heterogeneous unordered_map lookup, so the key type
// *is* string_view and each entry owns its key's storage. Entries live
// behind unique_ptr, so rehashing moves pointers only and mapped values
// stay address-stable for the cache's lifetime.
template <typename T>
struct CacheEntry {
  std::string key;
  T value;
};

// Hot-path lookup by string_view hashes once and compares at most a
// bucket's worth of equal-hash keys — no allocation, no O(log n) chain of
// full-string compares.
template <typename T>
using StringCache =
    std::unordered_map<std::string_view, std::unique_ptr<CacheEntry<T>>>;

// The insert half of the double-checked cache idiom, caller holding the
// shard's mutex: re-find (a racing builder of the same key keeps the first
// entry), else move `value` into a new entry whose map key aliases the
// entry's own string. Returns the cached value, address-stable for the
// cache's lifetime.
template <typename T>
T& StringCacheFindOrEmplace(StringCache<T>& cache, std::string key,
                            T value) {
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto entry = std::unique_ptr<CacheEntry<T>>(
        new CacheEntry<T>{std::move(key), std::move(value)});
    const std::string_view entry_key = entry->key;
    it = cache.emplace(entry_key, std::move(entry)).first;
  }
  return it->second->value;
}
}  // namespace internal

class PlanCache {
 public:
  // `shard_count` is clamped to at least 1. 16 shards keep the expected
  // contention of a full corpus fleet (dozens of concurrent queries, a
  // handful of distinct texts) negligible without bloating an engine's
  // private cache.
  explicit PlanCache(size_t shard_count = 16);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // The parsed plan for `query` — cached, or parsed now and cached.
  // Parsing happens outside the shard lock; a racing parse of the same
  // text keeps the first entry. The returned Expr is valid for the cache's
  // lifetime.
  StatusOr<const Expr*> Prepare(std::string_view query);

  // The compiled Pike-VM program for `pattern`, cached likewise. Returns
  // Regex::Compile's error verbatim (callers anchor it to their source
  // offset).
  StatusOr<const regex::Regex*> CompileRegex(std::string_view pattern);

  // Relaxed monotonic counters: a Prepare/CompileRegex that found its
  // entry is a hit, one that had to parse/compile is a miss (a lost
  // insert race still counts as the miss it paid for). Thin reads over
  // the obs::Counter instruments below, kept for source compatibility.
  size_t hits() const { return hits_.value(); }
  size_t misses() const { return misses_.value(); }
  size_t regex_hits() const { return regex_hits_.value(); }
  size_t regex_misses() const { return regex_misses_.value(); }

  // The instruments themselves, for MetricsRegistry registration; they
  // live exactly as long as the cache.
  const obs::Counter& hits_counter() const { return hits_; }
  const obs::Counter& misses_counter() const { return misses_; }
  const obs::Counter& regex_hits_counter() const { return regex_hits_; }
  const obs::Counter& regex_misses_counter() const { return regex_misses_; }

  // Distinct plans currently cached (sums the shards; each shard locked in
  // turn, so the count is a snapshot, exact once traffic quiesces).
  size_t plan_count() const;

  // The kAuto step plan annotating cached expr `expr` for the document
  // identified by the opaque `doc_key` (the engine passes its Document
  // pointer — snapshot versions are per-document counters, not globally
  // unique) at snapshot `version`. Returns the cached plan when the version
  // matches; otherwise runs `build` under the per-expr lock — exactly one
  // replan per (expr, document) per commit, counted by plan_replans — and
  // caches its result. Returned plans are immutable and shared_ptr-held, so
  // a query keeps its plan alive across a concurrent replan.
  std::shared_ptr<const QueryPlan> PlanFor(
      const Expr* expr, const void* doc_key, uint64_t version,
      const std::function<QueryPlan()>& build);

  // Step-plan rebuilds PlanFor has run (first plan and replans alike):
  // under steady traffic this advances only when commits publish new
  // snapshot versions. Counter reference for MetricsRegistry registration.
  size_t plan_replans() const { return plan_replans_.value(); }
  const obs::Counter& plan_replans_counter() const { return plan_replans_; }

 private:
  struct Shard {
    std::mutex mu;
    internal::StringCache<std::unique_ptr<Expr>> plans;
    internal::StringCache<regex::Regex> regexes;
  };

  // Per-expr step-plan annotations: for each cached Expr, the latest plan
  // per document key. Keyed by Expr address (stable for the cache's
  // lifetime) in a side map rather than inside CacheEntry, so the string
  // shards stay plan-agnostic and PlanFor contention is per-expr.
  struct ExprPlans {
    std::mutex mu;
    std::unordered_map<const void*,
                       std::pair<uint64_t, std::shared_ptr<const QueryPlan>>>
        by_doc;
  };

  Shard& ShardFor(std::string_view key);

  const size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;
  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter regex_hits_;
  obs::Counter regex_misses_;
  obs::Counter plan_replans_;
  std::mutex annotations_mu_;
  std::unordered_map<const Expr*, std::unique_ptr<ExprPlans>> annotations_;
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_PLAN_CACHE_H_
