// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/plan_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

namespace mhx::xquery {

PlanCache::PlanCache(size_t shard_count)
    : shard_count_(std::max<size_t>(shard_count, 1)),
      shards_(new Shard[shard_count_]) {}

PlanCache::Shard& PlanCache::ShardFor(std::string_view key) {
  return shards_[std::hash<std::string_view>{}(key) % shard_count_];
}

StatusOr<const Expr*> PlanCache::Prepare(std::string_view query) {
  Shard& shard = ShardFor(query);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.plans.find(query);
    if (it != shard.plans.end()) {
      hits_.Add();
      return it->second->value.get();
    }
  }
  auto parsed = ParseQuery(query);  // outside the lock
  if (!parsed.ok()) return parsed.status();
  misses_.Add();
  std::lock_guard<std::mutex> lock(shard.mu);
  return internal::StringCacheFindOrEmplace(shard.plans, std::string(query),
                                            std::move(parsed).value())
      .get();
}

StatusOr<const regex::Regex*> PlanCache::CompileRegex(
    std::string_view pattern) {
  Shard& shard = ShardFor(pattern);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.regexes.find(pattern);
    if (it != shard.regexes.end()) {
      regex_hits_.Add();
      return &it->second->value;
    }
  }
  auto compiled = regex::Regex::Compile(pattern);  // outside the lock
  if (!compiled.ok()) return compiled.status();
  regex_misses_.Add();
  std::lock_guard<std::mutex> lock(shard.mu);
  return &internal::StringCacheFindOrEmplace(
      shard.regexes, std::string(pattern), std::move(compiled).value());
}

std::shared_ptr<const QueryPlan> PlanCache::PlanFor(
    const Expr* expr, const void* doc_key, uint64_t version,
    const std::function<QueryPlan()>& build) {
  ExprPlans* plans;
  {
    std::lock_guard<std::mutex> lock(annotations_mu_);
    auto& slot = annotations_[expr];
    if (slot == nullptr) slot = std::make_unique<ExprPlans>();
    plans = slot.get();
  }
  std::lock_guard<std::mutex> lock(plans->mu);
  auto& entry = plans->by_doc[doc_key];
  if (entry.second == nullptr || entry.first != version) {
    // Building under the per-expr lock serialises racing replans of the
    // same expr so each commit pays at most one planning pass per document.
    entry = {version, std::make_shared<const QueryPlan>(build())};
    plan_replans_.Add();
  }
  return entry.second;
}

size_t PlanCache::plan_count() const {
  size_t count = 0;
  for (size_t s = 0; s < shard_count_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    count += shards_[s].plans.size();
  }
  return count;
}

}  // namespace mhx::xquery
