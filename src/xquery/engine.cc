// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/engine.h"

namespace mhx::xquery {

Engine::Engine(const MultihierarchicalDocument* document)
    : document_(document) {}

StatusOr<std::string> Engine::Evaluate(std::string_view /*query*/) {
  return UnimplementedError(
      "XQuery evaluation is not implemented yet; gate callers behind "
      "MHX_BUILD_ALL_BENCH until the engine lands");
}

StatusOr<std::vector<std::string>> Engine::EvaluateKeepingTemporaries(
    std::string_view /*query*/) {
  return UnimplementedError("XQuery evaluation is not implemented yet");
}

void Engine::CleanupTemporaries() {}

}  // namespace mhx::xquery
