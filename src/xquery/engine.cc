// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/engine.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <future>
#include <limits>
#include <optional>
#include <queue>
#include <tuple>
#include <utility>

#include "base/status_macros.h"
#include "document.h"
#include "regex/fragment_pattern.h"
#include "xml/parser.h"
#include "xquery/ast.h"
#include "xquery/parser.h"

namespace mhx::xquery {

namespace {

// analyze-string() materialises each call as one virtual hierarchy: a
// result wrapper spanning the analysed node's range, one <m> element per
// match, and one element per named fragment group.
constexpr char kAnalyzeStringResultName[] = "analyze-string-result";
constexpr char kMatchElementName[] = "m";

Status EvalErrorAt(size_t offset, const std::string& what) {
  return InvalidArgumentError("XQuery evaluation error at offset " +
                              std::to_string(offset) + ": " + what);
}

// Work-stealing distributor of one parallel loop's binding indices. Slot s
// starts owning a contiguous range; an owner pops its own front, and a slot
// whose deque drained steals the back half of the first non-empty victim's
// remainder — so skewed per-binding costs (regex-heavy analyze-string
// bodies) cannot leave slots idle behind a few hot bindings. Every index is
// claimed exactly once; AllDone flips only after every claimed index was
// marked done, which is the join condition: a coordinator waits for
// *claimed* work only, never for queued helper tasks (a helper that starts
// after the loop drained claims nothing and returns).
class BindingScheduler {
 public:
  BindingScheduler(size_t bindings, size_t slots)
      : slots_(std::max<size_t>(slots, 1)),
        ranges_(new Range[slots_]),
        unfinished_(bindings) {
    const size_t per = bindings / slots_;
    const size_t extra = bindings % slots_;
    size_t begin = 0;
    for (size_t s = 0; s < slots_; ++s) {
      const size_t count = per + (s < extra ? 1 : 0);
      ranges_[s].next = begin;
      ranges_[s].end = begin + count;
      begin += count;
    }
  }

  // Claims one binding index for `slot`; *stolen reports that the claim
  // came out of a victim's deque. Returns false when no deque holds
  // claimable work (work a victim is installing concurrently is claimed by
  // that victim's own loop, never lost).
  bool Claim(size_t slot, size_t* index, bool* stolen) {
    *stolen = false;
    Range& own = ranges_[slot];
    {
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.next < own.end) {
        *index = own.next++;
        return true;
      }
    }
    for (size_t k = 1; k < slots_; ++k) {
      Range& victim = ranges_[(slot + k) % slots_];
      size_t begin = 0;
      size_t end = 0;
      {
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.next < victim.end) {
          const size_t take = (victim.end - victim.next + 1) / 2;
          begin = victim.end - take;
          end = victim.end;
          victim.end = begin;
        }
      }
      if (begin < end) {
        *stolen = true;
        // Install the stolen range as this slot's new deque (it was empty;
        // only the owning thread installs, so no other write can race) and
        // claim its first index.
        std::lock_guard<std::mutex> lock(own.mu);
        own.next = begin + 1;
        own.end = end;
        *index = begin;
        return true;
      }
    }
    return false;
  }

  // Marks one claimed binding finished (evaluated or skipped).
  void MarkDone() {
    if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(done_mu_);
      done_cv_.notify_all();
    }
  }

  bool AllDone() const {
    return unfinished_.load(std::memory_order_acquire) == 0;
  }

  // Blocks until every binding is done. The acquire load in AllDone pairs
  // with the release decrement in MarkDone, so every slot's binding
  // results are visible to the joining thread.
  void WaitAllDone() {
    std::unique_lock<std::mutex> lock(done_mu_);
    done_cv_.wait(lock, [this] { return AllDone(); });
  }

 private:
  struct Range {
    std::mutex mu;
    size_t next = 0;
    size_t end = 0;
  };

  const size_t slots_;
  std::unique_ptr<Range[]> ranges_;
  std::atomic<size_t> unfinished_;
  std::mutex done_mu_;
  std::condition_variable done_cv_;
};

}  // namespace

// The per-query tree-walking interpreter. One Evaluator runs one query
// against one goddag::OverlayView — the immutable base document plus the
// kept temporary hierarchies plus the evaluation's own. Cross-query state
// (the base axis index, the kept-hierarchy registry, prepared-query and
// compiled-regex caches) lives on the Engine.
class Evaluator {
 public:
  // An XDM-style item: a graph node, a leaf of the shared partition, an
  // atomic value, or a constructed-element fragment (held as its serialised
  // markup plus its string value — constructed nodes never re-enter axis
  // navigation in this subset).
  struct Item {
    enum class Kind { kNode, kLeaf, kString, kInteger, kBoolean, kFragment };
    Kind kind = Kind::kString;
    goddag::NodeId node = goddag::kInvalidNode;
    TextRange range;   // kLeaf
    std::string text;  // kString: value; kFragment: serialised markup
    std::string atom;  // kFragment: string value (concatenated text content)
    int64_t integer = 0;
    bool boolean = false;

    static Item Node(goddag::NodeId id) {
      Item item;
      item.kind = Kind::kNode;
      item.node = id;
      return item;
    }
    static Item Leaf(const TextRange& range) {
      Item item;
      item.kind = Kind::kLeaf;
      item.range = range;
      return item;
    }
    static Item String(std::string value) {
      Item item;
      item.kind = Kind::kString;
      item.text = std::move(value);
      return item;
    }
    static Item Integer(int64_t value) {
      Item item;
      item.kind = Kind::kInteger;
      item.integer = value;
      return item;
    }
    static Item Boolean(bool value) {
      Item item;
      item.kind = Kind::kBoolean;
      item.boolean = value;
      return item;
    }
    static Item Fragment(std::string markup, std::string value) {
      Item item;
      item.kind = Kind::kFragment;
      item.text = std::move(markup);
      item.atom = std::move(value);
      return item;
    }
  };
  using Sequence = std::vector<Item>;

  // An evaluator over one overlay view. The coordinating evaluator of an
  // evaluation gets the evaluation's root view; a parallel worker slot
  // gets a snapshot of the coordinator's binding stack and a fresh view
  // forked off the coordinator's per binding (RunLoopSlot re-points
  // view_). Either way `own` collects the overlays this evaluator
  // materialises (analyze-string()); they are registered in `view` as
  // created, so later steps of the same binding see them — worker-created
  // overlays additionally merge into the coordinator's view at the loop
  // join, in binding order.
  Evaluator(Engine* engine, const xpath::AxisEvaluator* axes,
            const QueryOptions* options, const QueryPlan* plan,
            base::ThreadPool* pool, goddag::OverlayView* view,
            std::vector<std::shared_ptr<const goddag::GoddagOverlay>>* own,
            std::vector<std::pair<std::string, Sequence>> bindings = {})
      : engine_(engine),
        view_(view),
        own_(own),
        axes_(*axes),
        options_(options),
        plan_(plan),
        pool_(pool) {
    bindings_ = std::move(bindings);
  }

  StatusOr<Sequence> Evaluate(const AstNode& root) {
    return Eval(root, nullptr);
  }

  // --- values --------------------------------------------------------------

  std::string StringValue(const Item& item) const {
    switch (item.kind) {
      case Item::Kind::kNode:
        return view_->NodeString(item.node);
      case Item::Kind::kLeaf:
        return view_->base_text().substr(item.range.begin,
                                         item.range.length());
      case Item::Kind::kString:
        return item.text;
      case Item::Kind::kInteger:
        return std::to_string(item.integer);
      case Item::Kind::kBoolean:
        return item.boolean ? "true" : "false";
      case Item::Kind::kFragment:
        return item.atom;
    }
    return {};
  }

  // Serialisation contract (pinned by workload/paper_data.cc): sequence
  // items concatenate without separators, leaves serialise as their
  // base-text characters, constructed elements as tags.
  std::string SerializeItem(const Item& item) const {
    switch (item.kind) {
      case Item::Kind::kNode: {
        std::string out;
        SerializeNode(item.node, &out);
        return out;
      }
      case Item::Kind::kLeaf:
      case Item::Kind::kString:
        return xml::EscapeText(StringValue(item));
      case Item::Kind::kInteger:
      case Item::Kind::kBoolean:
        return StringValue(item);
      case Item::Kind::kFragment:
        return item.text;
    }
    return {};
  }

 private:
  // --- dispatch ------------------------------------------------------------

  StatusOr<Sequence> Eval(const AstNode& node, const Item* context) {
    switch (node.kind) {
      case ExprKind::kStringLiteral:
        return Sequence{Item::String(node.string_value)};
      case ExprKind::kIntegerLiteral:
        return Sequence{Item::Integer(node.integer_value)};
      case ExprKind::kVarRef: {
        for (auto it = bindings_.rbegin(); it != bindings_.rend(); ++it) {
          if (it->first == node.name) return it->second;
        }
        return EvalErrorAt(node.offset,
                           "undefined variable $" + node.name);
      }
      case ExprKind::kContextItem:
        if (context == nullptr) {
          return EvalErrorAt(node.offset, "no context item for '.'");
        }
        return Sequence{*context};
      case ExprKind::kSequence: {
        Sequence out;
        for (const auto& child : node.children) {
          MHX_ASSIGN_OR_RETURN(Sequence part, Eval(*child, context));
          std::move(part.begin(), part.end(), std::back_inserter(out));
        }
        return out;
      }
      case ExprKind::kFor: {
        MHX_ASSIGN_OR_RETURN(Sequence seq, Eval(*node.children[0], context));
        if (ShouldParallelize(node, seq)) {
          return EvalLoopParallel(node, context, std::move(seq));
        }
        std::vector<std::shared_ptr<const goddag::GoddagOverlay>> pending;
        Sequence out;
        for (Item& item : seq) {
          MHX_ASSIGN_OR_RETURN(
              Sequence body,
              EvalSerialBinding(node, context, std::move(item), &pending));
          std::move(body.begin(), body.end(), std::back_inserter(out));
        }
        MergePendingOverlays(std::move(pending));
        return out;
      }
      case ExprKind::kLet: {
        MHX_ASSIGN_OR_RETURN(Sequence value, Eval(*node.children[0], context));
        bindings_.emplace_back(node.name, std::move(value));
        auto body = Eval(*node.children[1], context);
        bindings_.pop_back();
        return body;
      }
      case ExprKind::kQuantified: {
        MHX_ASSIGN_OR_RETURN(Sequence seq, Eval(*node.children[0], context));
        if (ShouldParallelize(node, seq)) {
          return EvalLoopParallel(node, context, std::move(seq));
        }
        std::vector<std::shared_ptr<const goddag::GoddagOverlay>> pending;
        for (Item& item : seq) {
          MHX_ASSIGN_OR_RETURN(
              Sequence body,
              EvalSerialBinding(node, context, std::move(item), &pending));
          MHX_ASSIGN_OR_RETURN(bool value,
                               BooleanValue(body, node.children[1]->offset));
          if (value != node.every) {
            // The decider's own overlays are committed (serial evaluated
            // it fully); bindings past it were never evaluated.
            MergePendingOverlays(std::move(pending));
            return Sequence{Item::Boolean(!node.every)};
          }
        }
        MergePendingOverlays(std::move(pending));
        return Sequence{Item::Boolean(node.every)};
      }
      case ExprKind::kIf: {
        MHX_ASSIGN_OR_RETURN(Sequence cond, Eval(*node.children[0], context));
        MHX_ASSIGN_OR_RETURN(bool value,
                             BooleanValue(cond, node.children[0]->offset));
        return Eval(*node.children[value ? 1 : 2], context);
      }
      case ExprKind::kOr:
      case ExprKind::kAnd: {
        const bool is_or = node.kind == ExprKind::kOr;
        for (const auto& child : node.children) {
          MHX_ASSIGN_OR_RETURN(Sequence v, Eval(*child, context));
          MHX_ASSIGN_OR_RETURN(bool value, BooleanValue(v, child->offset));
          if (value == is_or) return Sequence{Item::Boolean(is_or)};
        }
        return Sequence{Item::Boolean(!is_or)};
      }
      case ExprKind::kCompare:
        return EvalCompare(node, context);
      case ExprKind::kArith: {
        MHX_ASSIGN_OR_RETURN(int64_t lhs,
                             IntegerOperand(*node.children[0], context));
        MHX_ASSIGN_OR_RETURN(int64_t rhs,
                             IntegerOperand(*node.children[1], context));
        int64_t value = 0;
        switch (node.arith_op) {
          case ArithOp::kAdd:
            value = lhs + rhs;
            break;
          case ArithOp::kSub:
            value = lhs - rhs;
            break;
          case ArithOp::kMul:
            value = lhs * rhs;
            break;
        }
        return Sequence{Item::Integer(value)};
      }
      case ExprKind::kPath:
        return EvalPath(node, context);
      case ExprKind::kFunctionCall:
        return EvalFunction(node, context);
      case ExprKind::kConstructor:
        return EvalConstructor(node, context);
    }
    return EvalErrorAt(node.offset, "unhandled expression kind");
  }

  // Evaluates one serial loop binding in an isolated child view: while the
  // scope lives, this evaluator's view_/own_ point at a fresh fork, so
  // temporaries the binding materialises stay invisible to sibling
  // bindings — exactly the scoping a parallel worker slot gets. After a
  // successful evaluation, CommitTo() hands the binding's overlays to the
  // loop's pending list; the loop merges the whole list into the
  // enclosing view only at loop exit (MergePendingOverlays), matching the
  // parallel join — merging per binding would re-expose earlier bindings'
  // temporaries to later ones through the fork chain. Destruction
  // restores the pointers either way, dropping uncommitted overlays.
  class BindingScope {
   public:
    explicit BindingScope(Evaluator* evaluator)
        : evaluator_(evaluator),
          child_(evaluator->view_),
          saved_view_(evaluator->view_),
          saved_own_(evaluator->own_) {
      evaluator_->view_ = &child_;
      evaluator_->own_ = &own_;
    }
    ~BindingScope() {
      evaluator_->view_ = saved_view_;
      evaluator_->own_ = saved_own_;
    }

    void CommitTo(
        std::vector<std::shared_ptr<const goddag::GoddagOverlay>>* pending) {
      std::move(own_.begin(), own_.end(), std::back_inserter(*pending));
      own_.clear();
    }

   private:
    Evaluator* evaluator_;
    goddag::OverlayView child_;
    std::vector<std::shared_ptr<const goddag::GoddagOverlay>> own_;
    goddag::OverlayView* saved_view_;
    std::vector<std::shared_ptr<const goddag::GoddagOverlay>>* saved_own_;
  };

  // Registers a finished loop's binding overlays (already in binding
  // order) on this evaluator's view and overlay list.
  void MergePendingOverlays(
      std::vector<std::shared_ptr<const goddag::GoddagOverlay>> pending) {
    for (auto& overlay : pending) {
      own_->push_back(overlay);
      view_->AddOverlay(std::move(overlay));
    }
  }

  // One serial loop binding, shared by kFor and kQuantified: bind, evaluate
  // the body — in an isolated child view when it can materialise
  // temporaries (overlays land in `pending` for the loop-exit merge; see
  // BindingScope) — and unbind.
  StatusOr<Sequence> EvalSerialBinding(
      const AstNode& node, const Item* context, Item item,
      std::vector<std::shared_ptr<const goddag::GoddagOverlay>>* pending) {
    bindings_.emplace_back(node.name, Sequence{std::move(item)});
    StatusOr<Sequence> body = Sequence{};
    if (node.body_contains_analyze_string) {
      BindingScope scope(this);
      body = Eval(*node.children[1], context);
      if (body.ok()) scope.CommitTo(pending);
    } else {
      body = Eval(*node.children[1], context);
    }
    bindings_.pop_back();
    return body;
  }

  // --- parallel FLWOR / quantifier fan-out ---------------------------------

  // Fan out whenever a pool exists, there are enough bindings to amortise
  // the loop's fixed cost (shared state, helper submission, per-slot view
  // fork and binding-stack snapshot — tiny inner loops of two or three
  // bindings are cheaper run inline), and the body provably cannot touch
  // state shared mutably across workers. Workers fan nested `for` loops
  // out again through the same scheduler — the join below waits only for
  // claimed bindings, so nesting cannot deadlock the fixed-size pool.
  static constexpr size_t kMinParallelBindings = 4;
  bool ShouldParallelize(const AstNode& loop, const Sequence& seq) const {
    return pool_ != nullptr && options_->threads > 1 &&
           seq.size() >= kMinParallelBindings && loop.body_parallel_safe;
  }

  // Everything one parallel loop's slots share, owned via shared_ptr:
  // queued helper tasks can run after the join returned (a stale helper
  // claims nothing and must touch nothing but the scheduler — every other
  // field may reference the coordinator's dead stack frame by then).
  struct LoopShared {
    LoopShared(size_t binding_count, size_t slot_count)
        : sched(binding_count, slot_count), slot_traces(slot_count) {}

    BindingScheduler sched;
    // Per-slot trace accumulators for an attached QueryTrace. Exactly one
    // thread runs each slot, so each entry has a single writer; every
    // write happens before that slot's final MarkDone (release), and the
    // coordinator reads only after WaitAllDone (acquire) — race-free with
    // no extra synchronisation. A stale helper never touches these: it
    // reads `trace` only after a successful claim, which it cannot get.
    struct SlotTrace {
      uint64_t begin_ns = 0;
      uint64_t end_ns = 0;
      uint64_t bindings = 0;
      uint64_t steals = 0;
      size_t first_binding = std::numeric_limits<size_t>::max();
    };
    std::vector<SlotTrace> slot_traces;
    // Bindings with index > cancel_after may be skipped: the loop's result
    // is already determined by the event recorded at cancel_after (an
    // error, or a quantifier decider). Monotonically non-increasing, so a
    // binding below the final event index is never skipped — which is what
    // makes the join's winner exactly serial evaluation's.
    std::atomic<size_t> cancel_after{std::numeric_limits<size_t>::max()};
    // Hard abort (a slot threw): skip all remaining work, results void.
    std::atomic<bool> torn{false};

    std::mutex mu;  // guards the event fields and `overlays`
    size_t event_index = std::numeric_limits<size_t>::max();
    bool event_is_error = false;
    Status error = OkStatus();
    std::exception_ptr thrown;
    // Worker-created overlays tagged with their binding index (creation
    // order within a binding preserved — one slot evaluates a whole
    // binding); the join merges them into the coordinator's view stably
    // sorted by index, reproducing serial registration order.
    std::vector<
        std::pair<size_t, std::shared_ptr<const goddag::GoddagOverlay>>>
        overlays;

    // Immutable after construction; valid while any binding is unclaimed
    // (the coordinator outlives its join, and claims cannot happen after).
    Engine* engine = nullptr;
    const xpath::AxisEvaluator* axes = nullptr;
    const QueryOptions* options = nullptr;
    const QueryPlan* plan = nullptr;
    base::ThreadPool* pool = nullptr;
    goddag::OverlayView* parent_view = nullptr;
    const std::vector<std::pair<std::string, Sequence>>* parent_bindings =
        nullptr;
    const AstNode* loop = nullptr;  // the kFor / kQuantified node
    const Item* context = nullptr;
    bool quantified = false;
    Sequence bindings;
    std::vector<Sequence> results;  // kFor: one slot per binding
  };

  // Records that binding `index` ended the loop — with an error, or (for
  // quantifiers) by deciding. The lowest index wins, exactly as the serial
  // loop would have stopped there first.
  static void RecordEvent(LoopShared* st, size_t index, bool is_error,
                          Status status) {
    size_t cur = st->cancel_after.load(std::memory_order_relaxed);
    while (index < cur && !st->cancel_after.compare_exchange_weak(
                              cur, index, std::memory_order_relaxed)) {
    }
    std::lock_guard<std::mutex> lock(st->mu);
    if (index < st->event_index) {
      st->event_index = index;
      st->event_is_error = is_error;
      st->error = std::move(status);
    }
  }

  // Runs one worker slot of a parallel loop to completion: claims binding
  // indices (stealing once its own deque drains), evaluates the loop body
  // in a worker-private forked view, and publishes results / events /
  // created overlays into the shared state. Static on purpose: until a
  // claim succeeds it may touch nothing but `st`'s scheduler — not even a
  // `this` — because a stale helper can outlive the coordinator.
  static void RunLoopSlot(const std::shared_ptr<LoopShared>& st,
                          size_t slot) {
    // Worker state is created lazily on the first claim; a stale helper
    // never reaches it.
    std::optional<goddag::OverlayView> view;
    std::vector<std::shared_ptr<const goddag::GoddagOverlay>> own;
    std::optional<Evaluator> worker;
    size_t index = 0;
    bool stolen = false;
    while (st->sched.Claim(slot, &index, &stolen)) {
      // The claim succeeded, so the coordinator is alive and every
      // LoopShared field is safe to touch (the stale-helper hazard is
      // only before a claim).
      if (stolen) {
        st->engine->counters_->steals.Add();
      }
      if (st->options->trace != nullptr) {
        LoopShared::SlotTrace& t = st->slot_traces[slot];
        if (t.bindings == 0) t.begin_ns = st->options->trace->NowNs();
        t.first_binding = std::min(t.first_binding, index);
        ++t.bindings;
        if (stolen) ++t.steals;
      }
      const bool skip = st->torn.load(std::memory_order_relaxed) ||
                        index > st->cancel_after.load(std::memory_order_relaxed);
      if (!skip) {
        try {
          if (st->loop->body_contains_analyze_string) {
            // A fresh fork per binding: the contract is that a body sees
            // base + kept + pre-loop temporaries + its *own* — never
            // those of earlier bindings that happened to land on this
            // slot, which would make output depend on steal timing. The
            // binding-stack snapshot is reused across the slot's bindings
            // (push/pop restores it); only the view and overlay list
            // reset.
            view.emplace(st->parent_view);
            own.clear();
            if (!worker.has_value()) {
              worker.emplace(st->engine, st->axes, st->options, st->plan,
                             st->pool, &*view, &own, *st->parent_bindings);
            } else {
              worker->view_ = &*view;
            }
          } else if (!worker.has_value()) {
            // The body provably creates no overlays (containment is
            // transitive, so neither can anything nested in it): share
            // the coordinator's view read-only instead of forking per
            // binding.
            worker.emplace(st->engine, st->axes, st->options, st->plan,
                           st->pool, st->parent_view, &own,
                           *st->parent_bindings);
          }
          worker->bindings_.emplace_back(
              st->loop->name, Sequence{std::move(st->bindings[index])});
          auto body = worker->Eval(*st->loop->children[1], st->context);
          worker->bindings_.pop_back();
          if (!body.ok()) {
            RecordEvent(st.get(), index, /*is_error=*/true, body.status());
          } else if (st->quantified) {
            auto value = worker->BooleanValue(
                *body, st->loop->children[1]->offset);
            if (!value.ok()) {
              RecordEvent(st.get(), index, /*is_error=*/true,
                          value.status());
            } else if (*value != st->loop->every) {
              RecordEvent(st.get(), index, /*is_error=*/false, OkStatus());
            }
          } else {
            st->results[index] = *std::move(body);
          }
          if (!own.empty()) {
            // Publish before MarkDone: the join may return the instant the
            // last binding is marked done. The shared list keeps the
            // overlays alive past this binding's view reset (own was
            // cleared at the top of the claim, so everything here is this
            // binding's).
            std::lock_guard<std::mutex> lock(st->mu);
            for (const auto& overlay : own) {
              st->overlays.emplace_back(index, overlay);
            }
          }
        } catch (...) {
          st->torn.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(st->mu);
          if (st->thrown == nullptr) st->thrown = std::current_exception();
        }
      }
      // Stamp before MarkDone: the join may read the instant the last
      // binding is marked done.
      if (st->options->trace != nullptr) {
        st->slot_traces[slot].end_ns = st->options->trace->NowNs();
      }
      st->sched.MarkDone();
    }
  }

  // The parallel loop driver, shared by kFor and kQuantified. The
  // coordinator runs slot 0 itself, submits slots-1 helper tasks, helps
  // drain the pool's backlog while stragglers finish, then joins: binding
  // results concatenate in index order, worker sub-overlays merge into
  // this evaluator's view in binding order, and the lowest-indexed
  // error/decider event wins — byte-identical to the serial loop (see the
  // engine.h contract for the two narrow caveats).
  StatusOr<Sequence> EvalLoopParallel(const AstNode& node,
                                      const Item* context, Sequence seq) {
    const size_t n = seq.size();
    const size_t slots = std::min<size_t>(options_->threads, n);
    auto st = std::make_shared<LoopShared>(n, slots);
    st->engine = engine_;
    st->axes = &axes_;
    st->options = options_;
    st->plan = plan_;
    st->pool = pool_;
    st->parent_view = view_;
    st->parent_bindings = &bindings_;
    st->loop = &node;
    st->context = context;
    st->quantified = node.kind == ExprKind::kQuantified;
    st->bindings = std::move(seq);
    if (!st->quantified) st->results.resize(n);

    size_t submitted = 0;
    std::exception_ptr submit_error;
    for (size_t s = 1; s < slots; ++s) {
      try {
        pool_->Submit([st, s] { RunLoopSlot(st, s); });
        engine_->counters_->parallel_tasks.Add();
        ++submitted;
      } catch (...) {
        // Helpers that never materialise are only lost parallelism — the
        // remaining slots steal the work — but the loop must still tear
        // down cleanly before rethrowing.
        submit_error = std::current_exception();
        st->torn.store(true, std::memory_order_relaxed);
        break;
      }
    }
    RunLoopSlot(st, 0);
    // Help drain the backlog instead of sleeping on it: the queue may hold
    // this loop's own helpers (whose work slot 0 just finished stealing)
    // or a sibling loop's — running either makes global progress, and a
    // nested coordinator blocked here never starves the pool.
    while (!st->sched.AllDone() && pool_->RunPendingTask()) {
    }
    st->sched.WaitAllDone();

    // Join. After WaitAllDone no slot touches the shared state (overlay
    // publication happens before each MarkDone), so the reads below are
    // race-free without st->mu.
    if (obs::QueryTrace* trace = options_->trace; trace != nullptr) {
      // Merge the slots' spans in binding order — the order serial
      // evaluation would have visited each slot's first binding — so a
      // trace reads deterministically given the steal pattern.
      std::vector<std::pair<size_t, const LoopShared::SlotTrace*>> active;
      for (size_t s = 0; s < st->slot_traces.size(); ++s) {
        if (st->slot_traces[s].bindings > 0) {
          active.emplace_back(s, &st->slot_traces[s]);
        }
      }
      std::stable_sort(active.begin(), active.end(),
                       [](const auto& a, const auto& b) {
                         return a.second->first_binding <
                                b.second->first_binding;
                       });
      uint64_t loop_steals = 0;
      for (const auto& [slot_id, t] : active) {
        obs::QueryTrace::Span span;
        span.name = "loop@" + std::to_string(node.offset) + "/slot" +
                    std::to_string(slot_id);
        span.kind = obs::QueryTrace::SpanKind::kSlot;
        span.begin_ns = t->begin_ns;
        span.end_ns = t->end_ns;
        span.slot = slot_id;
        span.bindings = t->bindings;
        span.steals = t->steals;
        loop_steals += t->steals;
        trace->AddSpan(std::move(span));
      }
      trace->NoteParallelTasks(submitted);
      trace->NoteSteals(loop_steals);
    }
    if (submit_error != nullptr) std::rethrow_exception(submit_error);
    if (st->thrown != nullptr) std::rethrow_exception(st->thrown);
    const bool has_event =
        st->event_index != std::numeric_limits<size_t>::max();
    if (has_event && st->event_is_error) return st->error;
    // Merge worker sub-overlays up to and including the event binding (a
    // quantifier's serial loop evaluates its decider fully, then stops;
    // overlays speculatively created past it are discarded here and die
    // with their shared_ptrs).
    std::stable_sort(st->overlays.begin(), st->overlays.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    for (auto& [binding_index, overlay] : st->overlays) {
      if (binding_index > st->event_index) break;
      own_->push_back(overlay);
      view_->AddOverlay(std::move(overlay));
    }
    if (st->quantified) {
      return Sequence{Item::Boolean(has_event ? !node.every : node.every)};
    }
    Sequence out;
    size_t total = 0;
    for (const Sequence& result : st->results) total += result.size();
    out.reserve(total);
    for (Sequence& result : st->results) {
      std::move(result.begin(), result.end(), std::back_inserter(out));
    }
    return out;
  }

  // --- booleans, comparisons, arithmetic -----------------------------------

  StatusOr<bool> BooleanValue(const Sequence& seq, size_t offset) const {
    if (seq.empty()) return false;
    const Item& first = seq.front();
    if (first.kind == Item::Kind::kNode || first.kind == Item::Kind::kLeaf ||
        first.kind == Item::Kind::kFragment) {
      return true;
    }
    if (seq.size() == 1) {
      switch (first.kind) {
        case Item::Kind::kString:
          return !first.text.empty();
        case Item::Kind::kInteger:
          return first.integer != 0;
        case Item::Kind::kBoolean:
          return first.boolean;
        default:
          break;
      }
    }
    return EvalErrorAt(offset,
                       "no effective boolean value for a sequence of " +
                           std::to_string(seq.size()) + " atomic items");
  }

  // Numeric view of an item for comparisons: integers directly, any other
  // item through its string value if that is (all of) an integer literal.
  bool TryIntegerValue(const Item& item, int64_t* out) const {
    if (item.kind == Item::Kind::kInteger) {
      *out = item.integer;
      return true;
    }
    if (item.kind == Item::Kind::kBoolean) return false;
    const std::string s = StringValue(item);
    size_t i = s.size() && (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i == s.size()) return false;
    int64_t value = 0;
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    for (; i < s.size(); ++i) {
      if (s[i] < '0' || s[i] > '9') return false;
      const int64_t digit = s[i] - '0';
      if (value > (kMax - digit) / 10) return false;
      value = value * 10 + digit;
    }
    *out = s[0] == '-' ? -value : value;
    return true;
  }

  StatusOr<Sequence> EvalCompare(const AstNode& node, const Item* context) {
    MHX_ASSIGN_OR_RETURN(Sequence lhs, Eval(*node.children[0], context));
    MHX_ASSIGN_OR_RETURN(Sequence rhs, Eval(*node.children[1], context));
    // General (existential) comparison over atomised items. XPath-style
    // coercion: when either side is a number, compare numerically (a pair
    // whose other side is not numeric compares like NaN — never true,
    // except under !=).
    for (const Item& a : lhs) {
      for (const Item& b : rhs) {
        int cmp;
        if (a.kind == Item::Kind::kInteger ||
            b.kind == Item::Kind::kInteger) {
          int64_t x, y;
          if (!TryIntegerValue(a, &x) || !TryIntegerValue(b, &y)) {
            if (node.compare_op == CompareOp::kNe) {
              return Sequence{Item::Boolean(true)};
            }
            continue;
          }
          cmp = x < y ? -1 : x > y ? 1 : 0;
        } else {
          cmp = StringValue(a).compare(StringValue(b));
          cmp = cmp < 0 ? -1 : cmp > 0 ? 1 : 0;
        }
        bool hit = false;
        switch (node.compare_op) {
          case CompareOp::kEq:
            hit = cmp == 0;
            break;
          case CompareOp::kNe:
            hit = cmp != 0;
            break;
          case CompareOp::kLt:
            hit = cmp < 0;
            break;
          case CompareOp::kLe:
            hit = cmp <= 0;
            break;
          case CompareOp::kGt:
            hit = cmp > 0;
            break;
          case CompareOp::kGe:
            hit = cmp >= 0;
            break;
        }
        if (hit) return Sequence{Item::Boolean(true)};
      }
    }
    return Sequence{Item::Boolean(false)};
  }

  StatusOr<int64_t> IntegerOperand(const AstNode& node, const Item* context) {
    MHX_ASSIGN_OR_RETURN(Sequence seq, Eval(node, context));
    if (seq.size() != 1 || seq[0].kind != Item::Kind::kInteger) {
      return EvalErrorAt(node.offset,
                         "arithmetic requires a single integer operand");
    }
    return seq[0].integer;
  }

  // --- paths ---------------------------------------------------------------

  StatusOr<Sequence> EvalPath(const AstNode& path, const Item* context) {
    Sequence current;
    size_t step_index = 0;
    if (path.absolute) {
      current.push_back(Item::Node(view_->root()));
    } else if (path.steps[0].primary != nullptr) {
      const PathStep& first = path.steps[0];
      MHX_ASSIGN_OR_RETURN(current, Eval(*first.primary, context));
      MHX_RETURN_IF_ERROR(ApplyPredicates(first, path.offset, &current));
      step_index = 1;
    } else {
      if (context == nullptr) {
        return EvalErrorAt(path.offset,
                           "relative path without a context item");
      }
      current.push_back(*context);
    }
    for (; step_index < path.steps.size(); ++step_index) {
      const PathStep& step = path.steps[step_index];
      // Predicates are positional *per context node* (XPath semantics):
      // each context's step result is ordered and filtered on its own, and
      // only then merged. Every producer declares an xpath::Ordering for its
      // run; the declared guarantee replaces the former unconditional
      // sort+dedup with the cheapest sufficient fix-up — nothing, a linear
      // dedup, or (across runs) a linear k-way merge. QueryOptions::
      // force_step_sort restores brute force so tests can pin equivalence.
      std::vector<Sequence> runs;
      runs.reserve(current.size());
      for (const Item& item : current) {
        Sequence from_item;
        xpath::Ordering ordering = xpath::Ordering::kUnordered;
        MHX_RETURN_IF_ERROR(
            EvalStep(item, step, path.offset, &from_item, &ordering));
        if (options_->force_step_sort) {
          SortAndDedup(&from_item);
        } else {
          switch (ordering) {
            case xpath::Ordering::kDocOrderNoDupes:
              NoteSortSkipped(from_item);
              break;
            case xpath::Ordering::kSortedMayDupe:
              DedupSorted(&from_item);
              NoteSortSkipped(from_item);
              break;
            case xpath::Ordering::kUnordered:
              SortAndDedup(&from_item);
              break;
          }
        }
        // Predicates only filter, so document order and uniqueness survive.
        MHX_RETURN_IF_ERROR(ApplyPredicates(step, path.offset, &from_item));
        runs.push_back(std::move(from_item));
      }
      current = MergeDocOrderedRuns(std::move(runs));
    }
    return current;
  }

  // Merges per-context runs — each in document order without duplicates —
  // into one such sequence. One run passes through untouched; k runs pay a
  // heap-driven linear merge, whose raw output is kSortedMayDupe (distinct
  // contexts can reach the same node) until the final linear dedup. Both
  // paths replace the step loop's former full sort.
  Sequence MergeDocOrderedRuns(std::vector<Sequence> runs) {
    runs.erase(std::remove_if(runs.begin(), runs.end(),
                              [](const Sequence& s) { return s.empty(); }),
               runs.end());
    if (runs.empty()) return {};
    if (runs.size() == 1) {
      if (options_->force_step_sort) {
        SortAndDedup(&runs.front());
      } else {
        NoteSortSkipped(runs.front());
      }
      return std::move(runs.front());
    }
    if (options_->force_step_sort) {
      Sequence merged;
      for (Sequence& run : runs) {
        std::move(run.begin(), run.end(), std::back_inserter(merged));
      }
      SortAndDedup(&merged);
      return merged;
    }
    size_t total = 0;
    for (const Sequence& run : runs) total += run.size();
    struct Cursor {
      size_t run;
      size_t pos;
    };
    auto greater = [this, &runs](const Cursor& a, const Cursor& b) {
      return DocOrderKey(runs[b.run][b.pos]) <
             DocOrderKey(runs[a.run][a.pos]);
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
        greater);
    for (size_t r = 0; r < runs.size(); ++r) heap.push(Cursor{r, 0});
    Sequence merged;
    merged.reserve(total);
    while (!heap.empty()) {
      Cursor cursor = heap.top();
      heap.pop();
      merged.push_back(std::move(runs[cursor.run][cursor.pos]));
      if (++cursor.pos < runs[cursor.run].size()) heap.push(cursor);
    }
    DedupSorted(&merged);
    NoteSortSkipped(merged);
    return merged;
  }

  // Counts a skipped sort+dedup pass. Singletons and empty sequences do not
  // count — their sort was free anyway, and counting them would inflate the
  // benchmark counter with vacuous wins.
  void NoteSortSkipped(const Sequence& items) const {
    if (items.size() < 2) return;
    engine_->counters_->sorts_skipped.Add();
  }

  Status ApplyPredicates(const PathStep& step, size_t offset,
                         Sequence* items) {
    // Under kAuto, run the planner's cheapest-first order when it recorded
    // one (only for all-statically-boolean predicate lists, so the
    // positional branch below is unreachable for a reordered step).
    const std::vector<uint16_t>* plan_order = nullptr;
    if (options_->plan_mode == PlanMode::kAuto && plan_ != nullptr) {
      auto it = plan_->steps.find(&step);
      if (it != plan_->steps.end() && !it->second.predicate_order.empty()) {
        plan_order = &it->second.predicate_order;
      }
    }
    for (size_t p = 0; p < step.predicates.size(); ++p) {
      const auto& pred =
          step.predicates[plan_order != nullptr ? (*plan_order)[p] : p];
      Sequence kept;
      for (size_t i = 0; i < items->size(); ++i) {
        Item& item = (*items)[i];
        MHX_ASSIGN_OR_RETURN(Sequence v, Eval(*pred, &item));
        bool keep;
        if (v.size() == 1 && v[0].kind == Item::Kind::kInteger) {
          // Numeric predicate = positional test.
          keep = v[0].integer == static_cast<int64_t>(i) + 1;
        } else {
          MHX_ASSIGN_OR_RETURN(keep, BooleanValue(v, pred->offset));
        }
        if (keep) kept.push_back(std::move(item));
      }
      *items = std::move(kept);
    }
    (void)offset;
    return OkStatus();
  }

  // Evaluates one axis step from one context item, declaring via `ordering`
  // what the produced run guarantees (filters below never disturb an
  // already-established order, they only remove items).
  Status EvalStep(const Item& item, const PathStep& step, size_t offset,
                  Sequence* out, xpath::Ordering* ordering) {
    if (step.test == PathStep::Test::kLeaf) {
      return EvalLeafStep(item, step, offset, out, ordering);
    }
    xpath::NodeTest test = step.test == PathStep::Test::kName
                               ? xpath::NodeTest::Name(step.name)
                               : xpath::NodeTest::Any();
    std::vector<goddag::NodeId> ids;
    if (item.kind == Item::Kind::kNode) {
      // One uniform read through the overlay view: base index (or arcs)
      // plus overlay scan, normalised to document order by the evaluator.
      // Extended axes run the planned strategy — indexed probe vs.
      // vectorized scan, name test pushed into either — except under
      // kForceSort, which keeps the legacy brute-force path verbatim as
      // the byte-identity baseline.
      if (xpath::IsExtendedAxis(step.axis) && !options_->force_step_sort) {
        const xpath::StepExec exec = StepExecFor(step);
        ids = axes_.EvaluatePlanned(*view_, item.node, step.axis, test, exec);
        NotePlannedStep(exec, test);
      } else {
        ids = axes_.Evaluate(*view_, item.node, step.axis, test);
      }
      *ordering = xpath::AxisEvaluator::ResultOrdering(step.axis);
    } else if (item.kind == Item::Kind::kLeaf) {
      MHX_RETURN_IF_ERROR(
          LeafContextStep(item.range, step, test, offset, &ids));
      // RangeIndex traversal (plus any overlay tail) comes back in index
      // order, not document order.
      *ordering = xpath::Ordering::kUnordered;
    } else {
      return EvalErrorAt(offset, "path step over an atomic value");
    }
    if (step.test == PathStep::Test::kAnyElement) {
      ids.erase(std::remove_if(ids.begin(), ids.end(),
                               [&](goddag::NodeId id) {
                                 return view_->node(id).kind !=
                                        goddag::GNodeKind::kElement;
                               }),
                ids.end());
    }
    out->reserve(out->size() + ids.size());
    for (goddag::NodeId id : ids) out->push_back(Item::Node(id));
    return OkStatus();
  }

  // Resolves the physical execution of one extended-axis step: the forced
  // modes pin a strategy (and never push a name test down — their point is
  // exercising one pure strategy), kAuto reads the planner's per-step
  // annotation, defaulting to an un-pushed indexed probe for steps the
  // plan does not cover (e.g. evaluation without a plan).
  xpath::StepExec StepExecFor(const PathStep& step) const {
    switch (options_->plan_mode) {
      case PlanMode::kForceNaive:
        return {/*use_index=*/false, /*pushdown=*/false};
      case PlanMode::kForceIndexed:
      case PlanMode::kForceSort:
        return {/*use_index=*/true, /*pushdown=*/false};
      case PlanMode::kAuto:
        break;
    }
    if (plan_ != nullptr) {
      auto it = plan_->steps.find(&step);
      if (it != plan_->steps.end()) return it->second.exec;
    }
    return {/*use_index=*/true, /*pushdown=*/false};
  }

  // Counts one planned extended-axis execution by chosen strategy, plus
  // any name-test pushdown that rode along.
  void NotePlannedStep(const xpath::StepExec& exec,
                       const xpath::NodeTest& test) const {
    (exec.use_index ? engine_->counters_->plan_steps_indexed
                    : engine_->counters_->plan_steps_scanned)
        .Add();
    if (exec.pushdown && test.is_name()) {
      engine_->counters_->plan_pushdowns.Add();
    }
  }

  // Axis evaluation from a leaf context. A leaf belongs to every hierarchy,
  // so `ancestor` coincides with `xancestor` (nodes whose range contains the
  // leaf); the ordering and overlap axes reduce to range queries. A node
  // properly overlapping a leaf cannot exist (its boundary would have split
  // the leaf), so `overlapping` is always empty — computed anyway for
  // uniformity. Output comes back filtered by `test`: the planned path
  // pre-filters inside the probe/kernel, the kForceSort legacy path
  // re-filters here, so callers never re-test.
  Status LeafContextStep(const TextRange& range, const PathStep& step,
                         const xpath::NodeTest& test, size_t offset,
                         std::vector<goddag::NodeId>* ids) {
    const xpath::Axis axis = step.axis;
    xpath::Axis extended;
    switch (axis) {
      case xpath::Axis::kAncestor:
      case xpath::Axis::kAncestorOrSelf:
      case xpath::Axis::kXAncestor:
        extended = xpath::Axis::kXAncestor;
        break;
      case xpath::Axis::kXDescendant:
        extended = xpath::Axis::kXDescendant;
        break;
      case xpath::Axis::kOverlapping:
        extended = xpath::Axis::kOverlapping;
        break;
      case xpath::Axis::kFollowing:
      case xpath::Axis::kXFollowing:
        extended = xpath::Axis::kXFollowing;
        break;
      case xpath::Axis::kPreceding:
      case xpath::Axis::kXPreceding:
        extended = xpath::Axis::kXPreceding;
        break;
      default:
        return EvalErrorAt(offset, "axis " +
                                       std::string(xpath::AxisName(axis)) +
                                       " cannot start from a leaf");
    }
    if (options_->force_step_sort) {
      *ids = axes_.EvaluateRange(*view_, range, extended);
      ids->erase(std::remove_if(ids->begin(), ids->end(),
                                [&](goddag::NodeId id) {
                                  return !test.Matches(view_->node(id));
                                }),
                 ids->end());
    } else {
      const xpath::StepExec exec = StepExecFor(step);
      *ids = axes_.EvaluateRangePlanned(*view_, range, extended, test, exec);
      NotePlannedStep(exec, test);
    }
    return OkStatus();
  }

  Status EvalLeafStep(const Item& item, const PathStep& step, size_t offset,
                      Sequence* out, xpath::Ordering* ordering) {
    // Every production below emits leaves ascending by range with no
    // repeats: the shared leaf partition is sorted, and child-axis
    // filtering only removes items.
    *ordering = xpath::Ordering::kDocOrderNoDupes;
    switch (step.axis) {
      case xpath::Axis::kSelf:
        if (item.kind == Item::Kind::kLeaf) out->push_back(item);
        return OkStatus();
      case xpath::Axis::kDescendant:
      case xpath::Axis::kDescendantOrSelf:
      case xpath::Axis::kXDescendant: {
        if (item.kind == Item::Kind::kLeaf) {
          out->push_back(item);  // a leaf contains exactly itself
          return OkStatus();
        }
        if (item.kind != Item::Kind::kNode) {
          return EvalErrorAt(offset, "leaf() step over an atomic value");
        }
        AppendLeavesIn(view_->node(item.node).range, out);
        return OkStatus();
      }
      case xpath::Axis::kChild: {
        if (item.kind != Item::Kind::kNode) return OkStatus();
        // Leaves directly dominated: within the node's range but not inside
        // any of its element children.
        const goddag::GNode& node = view_->node(item.node);
        Sequence all;
        AppendLeavesIn(node.range, &all);
        for (const Item& leaf : all) {
          bool in_child = false;
          for (goddag::NodeId child : node.children) {
            if (view_->node(child).range.Contains(leaf.range)) {
              in_child = true;
              break;
            }
          }
          if (!in_child) out->push_back(leaf);
        }
        return OkStatus();
      }
      default:
        return EvalErrorAt(
            offset, "leaf() node test is not supported on axis " +
                        std::string(xpath::AxisName(step.axis)));
    }
  }

  void AppendLeavesIn(const TextRange& range, Sequence* out) const {
    if (range.empty()) return;
    // The evaluation's leaf partition: base cells re-split at every overlay
    // element boundary.
    const std::vector<goddag::Leaf>& leaves = view_->leaves();
    auto it = std::lower_bound(
        leaves.begin(), leaves.end(), range.begin,
        [](const goddag::Leaf& leaf, size_t pos) {
          return leaf.range.begin < pos;
        });
    // Node boundaries are leaf boundaries, so leaves tile `range` exactly.
    for (; it != leaves.end() && it->range.end <= range.end; ++it) {
      out->push_back(Item::Leaf(it->range));
    }
  }

  // Document order over mixed node/leaf sequences: begin ascending, longer
  // range first, elements before the leaf sharing their range, NodeId as the
  // final tiebreak.
  std::tuple<size_t, size_t, int, goddag::NodeId> DocOrderKey(
      const Item& item) const {
    const TextRange& r = item.kind == Item::Kind::kNode
                             ? view_->node(item.node).range
                             : item.range;
    const int rank = item.kind == Item::Kind::kNode ? 0 : 1;
    const goddag::NodeId id = item.kind == Item::Kind::kNode ? item.node : 0;
    return std::tuple<size_t, size_t, int, goddag::NodeId>(
        r.begin, ~r.end, rank, id);  // ~end: longer ranges sort first
  }

  // Collapses duplicates (same node / same leaf reached from several context
  // items) in an already document-ordered sequence — the linear fix-up for
  // xpath::Ordering::kSortedMayDupe.
  void DedupSorted(Sequence* items) const {
    items->erase(std::unique(items->begin(), items->end(),
                             [](const Item& a, const Item& b) {
                               if (a.kind != b.kind) return false;
                               if (a.kind == Item::Kind::kNode) {
                                 return a.node == b.node;
                               }
                               return a.range == b.range;
                             }),
                 items->end());
  }

  // Full normalisation for xpath::Ordering::kUnordered producers.
  void SortAndDedup(Sequence* items) const {
    std::sort(items->begin(), items->end(),
              [this](const Item& a, const Item& b) {
                return DocOrderKey(a) < DocOrderKey(b);
              });
    DedupSorted(items);
  }

  // --- functions -----------------------------------------------------------

  StatusOr<Sequence> EvalFunction(const AstNode& node, const Item* context) {
    const std::string& name = node.name;
    const size_t arity = node.children.size();
    auto arg_or_context = [&](size_t i) -> StatusOr<Sequence> {
      if (i < arity) return Eval(*node.children[i], context);
      if (context == nullptr) {
        return EvalErrorAt(node.offset, "no context item for " + name + "()");
      }
      return Sequence{*context};
    };

    if (name == "string" && arity <= 1) {
      MHX_ASSIGN_OR_RETURN(Sequence arg, arg_or_context(0));
      return Sequence{
          Item::String(arg.empty() ? std::string() : StringValue(arg[0]))};
    }
    if (name == "string-length" && arity <= 1) {
      MHX_ASSIGN_OR_RETURN(Sequence arg, arg_or_context(0));
      const size_t length =
          arg.empty() ? 0 : StringValue(arg[0]).size();
      return Sequence{Item::Integer(static_cast<int64_t>(length))};
    }
    if (name == "count" && arity == 1) {
      MHX_ASSIGN_OR_RETURN(Sequence arg, Eval(*node.children[0], context));
      return Sequence{Item::Integer(static_cast<int64_t>(arg.size()))};
    }
    if (name == "name" && arity <= 1) {
      MHX_ASSIGN_OR_RETURN(Sequence arg, arg_or_context(0));
      std::string value;
      if (!arg.empty() && arg[0].kind == Item::Kind::kNode) {
        value = view_->node(arg[0].node).name;
      }
      return Sequence{Item::String(std::move(value))};
    }
    if (name == "not" && arity == 1) {
      MHX_ASSIGN_OR_RETURN(Sequence arg, Eval(*node.children[0], context));
      MHX_ASSIGN_OR_RETURN(bool value,
                           BooleanValue(arg, node.children[0]->offset));
      return Sequence{Item::Boolean(!value)};
    }
    if (name == "true" && arity == 0) return Sequence{Item::Boolean(true)};
    if (name == "false" && arity == 0) return Sequence{Item::Boolean(false)};
    if (name == "matches" && arity == 2) {
      MHX_ASSIGN_OR_RETURN(Sequence subject, Eval(*node.children[0], context));
      MHX_ASSIGN_OR_RETURN(std::string pattern,
                           SingletonString(*node.children[1], context));
      MHX_ASSIGN_OR_RETURN(const regex::Regex* re,
                           CompiledRegex(pattern, node.offset));
      const std::string value =
          subject.empty() ? std::string() : StringValue(subject[0]);
      return Sequence{Item::Boolean(re->ContainsMatch(value))};
    }
    if (name == "analyze-string" && arity == 2) {
      return EvalAnalyzeString(node, context);
    }
    return EvalErrorAt(node.offset, "unknown function " + name + "() with " +
                                        std::to_string(arity) + " argument" +
                                        (arity == 1 ? "" : "s"));
  }

  StatusOr<std::string> SingletonString(const AstNode& node,
                                        const Item* context) {
    MHX_ASSIGN_OR_RETURN(Sequence seq, Eval(node, context));
    if (seq.size() != 1) {
      return EvalErrorAt(node.offset, "expected a single string");
    }
    return StringValue(seq[0]);
  }

  StatusOr<const regex::Regex*> CompiledRegex(const std::string& pattern,
                                              size_t offset) {
    // Parallel workers hit the shared PlanCache concurrently (matches()
    // and analyze-string() are parallel-safe); cached programs are
    // address-stable for the cache's lifetime, which the engine pins via
    // shared_ptr. Compile errors are anchored to this call site's source
    // offset.
    auto compiled = engine_->plans_->CompileRegex(pattern);
    if (!compiled.ok()) {
      return EvalErrorAt(offset, compiled.status().message());
    }
    return compiled.value();
  }

  // The paper's analyze-string(): match a fragment pattern against the
  // string of a node and materialise every match — and every named fragment
  // group — as a temporary virtual hierarchy over the node's base-text
  // range. The hierarchy is a GoddagOverlay private to this evaluator's
  // view — the evaluation's for the coordinator, a worker's forked view
  // inside a parallel loop — so the base document is untouched, concurrent
  // evaluations and sibling workers need no exclusion, and teardown is
  // dropping the overlay. Returns the result wrapper element, whose leaf()
  // descendants are the analysed range re-partitioned by the match
  // boundaries.
  StatusOr<Sequence> EvalAnalyzeString(const AstNode& node,
                                       const Item* context) {
    MHX_ASSIGN_OR_RETURN(Sequence target, Eval(*node.children[0], context));
    if (target.size() != 1 || (target[0].kind != Item::Kind::kNode &&
                               target[0].kind != Item::Kind::kLeaf)) {
      return EvalErrorAt(node.offset,
                         "analyze-string() requires a single node");
    }
    const TextRange range = target[0].kind == Item::Kind::kNode
                                ? view_->node(target[0].node).range
                                : target[0].range;
    MHX_ASSIGN_OR_RETURN(std::string pattern,
                         SingletonString(*node.children[1], context));

    const std::string core = regex::StripContextWildcards(pattern);
    auto fragment = regex::TranslateFragmentPattern(core);
    if (!fragment.ok()) {
      return EvalErrorAt(node.offset, fragment.status().message());
    }
    MHX_ASSIGN_OR_RETURN(const regex::Regex* re,
                         CompiledRegex(fragment->regex, node.offset));

    const std::string_view text =
        std::string_view(view_->base_text())
            .substr(range.begin, range.length());
    std::vector<goddag::VirtualElement> elements;
    elements.push_back(
        goddag::VirtualElement{kAnalyzeStringResultName, range, {}});
    for (const regex::Regex::Match& m : re->FindAll(text)) {
      if (!m.range.empty()) {
        elements.push_back(goddag::VirtualElement{
            kMatchElementName,
            TextRange(range.begin + m.range.begin, range.begin + m.range.end),
            {}});
      }
      // group_names is aligned with the residual regex's group numbering;
      // empty names are plain user groups, which materialise nothing.
      const size_t group_limit =
          std::min(m.groups.size(), fragment->group_names.size());
      for (size_t g = 0; g < group_limit; ++g) {
        if (m.groups[g].empty() || fragment->group_names[g].empty()) continue;
        elements.push_back(goddag::VirtualElement{
            fragment->group_names[g],
            TextRange(range.begin + m.groups[g].begin,
                      range.begin + m.groups[g].end),
            {}});
      }
    }
    auto overlay = goddag::GoddagOverlay::Create(
        &view_->base(), engine_->overlay_ids_, kAnalyzeStringResultName,
        std::move(elements));
    if (!overlay.ok()) {
      if (overlay.status().code() == StatusCode::kResourceExhausted) {
        engine_->counters_->overlay_id_exhausted.Add();
      }
      return EvalErrorAt(node.offset, overlay.status().message());
    }
    // The wrapper is the first element spanning the analysed range with the
    // result name (the auto-created root is plumbing and never a result).
    goddag::NodeId wrapper = goddag::kInvalidNode;
    for (goddag::NodeId id = (*overlay)->elements_begin();
         id < (*overlay)->id_end(); ++id) {
      const goddag::GNode& n = (*overlay)->node(id);
      if (n.name == kAnalyzeStringResultName && n.range == range) {
        wrapper = id;
        break;
      }
    }
    if (wrapper == goddag::kInvalidNode) {
      return InternalError("analyze-string() lost its result wrapper");
    }
    own_->push_back(*overlay);
    view_->AddOverlay(*std::move(overlay));
    return Sequence{Item::Node(wrapper)};
  }

  // --- constructors --------------------------------------------------------

  StatusOr<Sequence> EvalConstructor(const AstNode& node,
                                     const Item* context) {
    std::string markup = "<" + node.name;
    for (const ConstructorAttribute& attr : node.attributes) {
      markup += " " + attr.name + "=\"";
      for (const ConstructorPart& part : attr.parts) {
        if (part.expr == nullptr) {
          markup += xml::EscapeText(part.text);
          continue;
        }
        MHX_ASSIGN_OR_RETURN(Sequence v, Eval(*part.expr, context));
        std::string joined;
        for (size_t i = 0; i < v.size(); ++i) {
          if (i > 0) joined += " ";
          joined += StringValue(v[i]);
        }
        markup += xml::EscapeText(joined);
      }
      markup += "\"";
    }
    if (node.content.empty()) {
      markup += "/>";
      return Sequence{Item::Fragment(std::move(markup), "")};
    }
    markup += ">";
    std::string value;
    for (const ConstructorPart& part : node.content) {
      if (part.expr == nullptr) {
        markup += xml::EscapeText(part.text);
        value += part.text;
        continue;
      }
      MHX_ASSIGN_OR_RETURN(Sequence v, Eval(*part.expr, context));
      for (const Item& item : v) {
        markup += SerializeItem(item);
        value += StringValue(item);
      }
    }
    markup += "</" + node.name + ">";
    return Sequence{Item::Fragment(std::move(markup), std::move(value))};
  }

  // --- node serialisation --------------------------------------------------

  void SerializeNode(goddag::NodeId id, std::string* out) const {
    const goddag::GNode& node = view_->node(id);
    if (node.kind == goddag::GNodeKind::kRoot) {
      // The GODDAG root serialises as its persistent hierarchy roots in
      // order (overlays are not children of the base root).
      for (goddag::NodeId child : node.children) SerializeNode(child, out);
      return;
    }
    const std::string& text = view_->base_text();
    *out += "<" + node.name;
    for (const auto& [attr_name, attr_value] : node.attributes) {
      *out += " " + attr_name + "=\"" + xml::EscapeText(attr_value) + "\"";
    }
    if (node.children.empty() && node.range.empty()) {
      *out += "/>";
      return;
    }
    *out += ">";
    size_t pos = node.range.begin;
    for (goddag::NodeId child : node.children) {
      const TextRange& child_range = view_->node(child).range;
      *out += xml::EscapeText(
          std::string_view(text).substr(pos, child_range.begin - pos));
      SerializeNode(child, out);
      pos = child_range.end;
    }
    *out += xml::EscapeText(
        std::string_view(text).substr(pos, node.range.end - pos));
    *out += "</" + node.name + ">";
  }

  Engine* engine_;
  // This evaluator's read/write seam: for the coordinator, the
  // evaluation's root view (immutable base + kept hierarchies + own
  // overlays); for a parallel worker slot, a private view forked off the
  // coordinator's, which stays frozen while the worker runs. own_ collects
  // the overlays this evaluator materialises — the engine keeps or drops
  // the coordinator's, and a loop join migrates workers' into the
  // coordinator's list in binding order.
  goddag::OverlayView* view_;
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>>* own_;
  const xpath::AxisEvaluator& axes_;
  const QueryOptions* options_;
  // The kAuto step plan for this evaluation's (expr, snapshot version) —
  // null under the forced modes (and for plan-less callers); workers
  // inherit the coordinator's, so every slot executes the same plan.
  const QueryPlan* plan_;
  // Fan-out pool; null for serial evaluation. Workers keep it so nested
  // `for` loops fan out too.
  base::ThreadPool* pool_;
  std::vector<std::pair<std::string, Sequence>> bindings_;
};

// --- Engine ----------------------------------------------------------------

Engine::Engine(const MultihierarchicalDocument* document)
    : Engine(document, nullptr, nullptr) {}

Engine::Engine(const MultihierarchicalDocument* document,
               std::shared_ptr<PlanCache> plans,
               std::shared_ptr<base::ThreadPool> shared_pool,
               std::shared_ptr<EngineCounters> counters)
    : document_(document),
      plans_(plans != nullptr ? std::move(plans)
                              : std::make_shared<PlanCache>()),
      shared_pool_(std::move(shared_pool)),
      counters_(counters != nullptr ? std::move(counters)
                                    : std::make_shared<EngineCounters>()) {}

Engine::~Engine() = default;

std::shared_ptr<const Engine::SnapshotAxes> Engine::PinAxes() {
  // Guarded: concurrent evaluations reach this; entry turnover on a new
  // published version must not race. In the steady state (no commit since
  // the last pin) the critical section is one shared_ptr copy, a version
  // compare, and a couple of loads — writers never hold cache_mu_, so
  // readers never wait on a commit here.
  std::lock_guard<std::mutex> lock(cache_mu_);
  std::shared_ptr<const goddag::DocumentSnapshot> snap =
      document_->PinSnapshot();
  counters_->snapshot_pins.Add();
  if (axes_entry_ == nullptr || axes_entry_->snapshot != snap) {
    // The published version moved (or this is the first evaluation): bind
    // a fresh evaluator to the new snapshot. The superseded entry stays
    // alive in whatever evaluations still hold it; its rebuild tally is
    // carried over so index_rebuild_count() stays monotonic per engine.
    if (axes_entry_ != nullptr) {
      retired_rebuilds_ += axes_entry_->axes.index_rebuild_count();
    }
    axes_entry_ = std::make_shared<SnapshotAxes>(std::move(snap));
  }
  // Materialise the leaf partition and RangeIndex before any evaluation
  // can reach them: evaluation never mutates the snapshot (temporaries
  // live in overlays), so after this both are plain reads for any number
  // of concurrent evaluations. Writer-prebuilt snapshots make both no-ops;
  // the lazily indexed initial version builds here once, and a legacy
  // mutable_goddag() edit (revision moved past the snapshot stamp)
  // re-materialises here, once per edit.
  axes_entry_->snapshot->goddag().leaves();
  axes_entry_->axes.index();
  // Statistics follow the same build-once discipline as the index:
  // writer-prebuilt snapshots arrive with them, the initial version builds
  // them here exactly once, and afterwards the planner and the scan
  // kernels read them lock-free.
  axes_entry_->snapshot->EnsureStats();
  // Fold new AxisEvaluator rebuilds into the shared counter as a delta, so
  // the registry total is monotonic across engines sharing one
  // EngineCounters (index_rebuild_count() stays per-engine).
  const size_t rebuilds =
      retired_rebuilds_ + axes_entry_->axes.index_rebuild_count();
  if (rebuilds > reported_rebuilds_) {
    counters_->index_rebuilds.Add(rebuilds - reported_rebuilds_);
    reported_rebuilds_ = rebuilds;
  }
  return axes_entry_;
}

size_t Engine::index_rebuild_count() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return retired_rebuilds_ + (axes_entry_ == nullptr
                                  ? 0
                                  : axes_entry_->axes.index_rebuild_count());
}

size_t Engine::temporary_hierarchy_count() const {
  std::lock_guard<std::mutex> lock(kept_->mu);
  return kept_->overlays.size();
}

std::vector<std::shared_ptr<const goddag::GoddagOverlay>>
Engine::SnapshotKept() const {
  std::lock_guard<std::mutex> lock(kept_->mu);
  return kept_->overlays;
}

StatusOr<const Expr*> Engine::PreparedQuery(std::string_view query) {
  return plans_->Prepare(query);
}

base::ThreadPool* Engine::pool(unsigned threads) {
  if (threads <= 1) return nullptr;
  // A corpus-injected pool is shared by every engine in the service; it is
  // never grown — work-stealing joins help drain, so evaluation is correct
  // (just less parallel) when the pool is smaller than `threads`.
  if (shared_pool_ != nullptr) return shared_pool_.get();
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (pool_ == nullptr || pool_->size() < threads) {
    // Never destroy a pool another evaluation may still be running on:
    // retire it (workers drain and idle) and keep it alive until the
    // engine goes away.
    if (pool_ != nullptr) retired_pools_.push_back(std::move(pool_));
    pool_ = std::make_unique<base::ThreadPool>(threads);
  }
  return pool_.get();
}

StatusOr<Engine::EvaluationOutput> Engine::EvaluateInternal(
    std::string_view query, const QueryOptions& options) {
  obs::QueryTrace* trace = options.trace;
  const Expr* expr = nullptr;
  {
    // Stage spans are consecutive at this level — each begins where the
    // previous ended — so a trace's kStage spans tile the call's wall
    // time (see obs/trace.h).
    obs::StageTimer stage(trace, "plan_lookup");
    MHX_ASSIGN_OR_RETURN(expr, PreparedQuery(query));
  }
  // threads: 0 and 1 are the same request — serial evaluation. Normalising
  // here keeps every later decision (pool creation, ShouldParallelize,
  // slot sizing) on one code path with identical plans and counters.
  QueryOptions normalized = options;
  if (normalized.threads == 0) normalized.threads = 1;
  // The deprecated force_step_sort flag and PlanMode::kForceSort are one
  // mode: normalise both directions so every later decision reads either
  // field and sees the same answer.
  if (normalized.force_step_sort) {
    normalized.plan_mode = PlanMode::kForceSort;
  } else if (normalized.plan_mode == PlanMode::kForceSort) {
    normalized.force_step_sort = true;
  }
  base::ThreadPool* fan_out_pool = pool(normalized.threads);
  std::shared_ptr<const SnapshotAxes> pinned;
  std::shared_ptr<const QueryPlan> plan;
  {
    obs::StageTimer stage(trace, "index_materialize");
    // Pin the MVCC snapshot for the whole evaluation: everything below —
    // view, axes, leaves, index — reads exactly this version, regardless
    // of writers committing successors meanwhile.
    pinned = PinAxes();
    if (normalized.plan_mode == PlanMode::kAuto) {
      // The step plan for this (expr, document, version); cached, so in
      // the steady state this is one map lookup and a replan only happens
      // on the first evaluation after a commit. The plan annotates the
      // pinned snapshot's statistics — stats follow the snapshot, never
      // the head, so a stale plan is impossible by construction.
      const uint64_t version = pinned->snapshot->version();
      plan = plans_->PlanFor(expr, document_, version, [&] {
        return PlanQuery(expr->root(), pinned->snapshot->stats(), version);
      });
    }
  }
  // The evaluation's private read seam: the immutable pinned snapshot,
  // every kept temporary hierarchy, and (as they are created) the
  // evaluation's own overlays. No lock is held while evaluating —
  // concurrent evaluations, analyze-string() included, only share
  // immutable state.
  goddag::OverlayView view(&pinned->snapshot->goddag());
  for (auto& overlay : SnapshotKept()) view.AddOverlay(std::move(overlay));
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> own;
  Evaluator evaluator(this, &pinned->axes, &normalized, plan.get(),
                      fan_out_pool, &view, &own);
  StatusOr<Evaluator::Sequence> result = [&] {
    obs::StageTimer stage(trace, "evaluate");
    return evaluator.Evaluate(expr->root());
  }();
  // On error the overlays in `own` (and the view) are dropped right here —
  // that is the entire teardown.
  if (!result.ok()) return result.status();
  // Serialise before returning: node items may live in `own` overlays,
  // which the caller may drop.
  obs::StageTimer stage(trace, "serialize");
  EvaluationOutput out;
  out.items.reserve(result->size());
  for (const Evaluator::Item& item : *result) {
    out.items.push_back(evaluator.SerializeItem(item));
  }
  out.temporaries = std::move(own);
  out.snapshot = pinned->snapshot;
  return out;
}

StatusOr<std::string> Engine::Evaluate(std::string_view query) {
  return Evaluate(query, QueryOptions());
}

StatusOr<std::string> Engine::ExplainPlan(std::string_view query) {
  MHX_ASSIGN_OR_RETURN(const Expr* expr, PreparedQuery(query));
  std::shared_ptr<const SnapshotAxes> pinned = PinAxes();
  const uint64_t version = pinned->snapshot->version();
  std::shared_ptr<const QueryPlan> plan =
      plans_->PlanFor(expr, document_, version, [&] {
        return PlanQuery(expr->root(), pinned->snapshot->stats(), version);
      });
  return ExplainQueryPlan(expr->root(), *plan, pinned->snapshot->stats());
}

StatusOr<std::string> Engine::Evaluate(std::string_view query,
                                       const QueryOptions& options) {
  MHX_ASSIGN_OR_RETURN(EvaluationOutput output,
                       EvaluateInternal(query, options));
  std::string out;
  for (const std::string& item : output.items) out += item;
  return out;  // output.temporaries dropped here — the overlays are gone
}

StatusOr<KeptEvaluation> Engine::EvaluateKeepingTemporaries(
    std::string_view query) {
  return EvaluateKeepingTemporaries(query, QueryOptions());
}

StatusOr<KeptEvaluation> Engine::EvaluateKeepingTemporaries(
    std::string_view query, const QueryOptions& options) {
  MHX_ASSIGN_OR_RETURN(EvaluationOutput output,
                       EvaluateInternal(query, options));
  if (!output.temporaries.empty()) {
    std::lock_guard<std::mutex> lock(kept_->mu);
    kept_->overlays.insert(kept_->overlays.end(),
                           output.temporaries.begin(),
                           output.temporaries.end());
  }
  KeptEvaluation kept;
  kept.items = std::move(output.items);
  kept.temporaries = KeptTemporaries(kept_, std::move(output.temporaries),
                                     std::move(output.snapshot));
  return kept;
}

void Engine::CleanupTemporaries() {
  std::lock_guard<std::mutex> lock(kept_->mu);
  // Evaluations that already snapshotted the registry keep their overlay
  // references (shared_ptr) and finish safely; new evaluations no longer
  // see the hierarchies.
  kept_->overlays.clear();
}

void KeptTemporaries::Release() {
  if (auto registry = registry_.lock()) {
    std::lock_guard<std::mutex> lock(registry->mu);
    for (const auto& overlay : overlays_) {
      auto& kept = registry->overlays;
      kept.erase(std::remove(kept.begin(), kept.end(), overlay), kept.end());
    }
  }
  overlays_.clear();
  registry_.reset();
  // Unpin last: the overlays above referenced the snapshot's base goddag.
  snapshot_.reset();
}

}  // namespace mhx::xquery
