// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The cost-based step planner: a planning pass over a cached xquery::Expr
// that annotates each path step with a physical choice, driven by the
// pinned snapshot's goddag::SnapshotStats. Three decisions per step:
//
//   * indexed probe vs. full scan for the extended axes — cost model
//     below, evaluated against real per-snapshot statistics instead of
//     the old per-call AxisOptions{use_index} flag;
//   * predicate pushdown — a name test folds into the RangeIndex probe or
//     scan kernel as an interned-key compare, filtering candidates before
//     they materialise;
//   * conjunctive-predicate reordering — statically boolean predicate
//     lists run cheapest-first (AST size as the cost proxy). Positional
//     (integer-valued) predicates and analyze-string() bodies disqualify
//     a step: reordering those would change semantics, not just cost.
//
// Cost model (unit: one scalar node visit):
//     cost_indexed = Cp * log2(E + 1) + est_hits
//     cost_scan    = Cs * table_size      (Cs << 1 when the vectorized
//                                          RangeSoA kernels apply)
// with per-axis hit estimates from the stats: containment/overlap axes
// estimate the mean stabbing depth (total range length / text size), the
// ordering axes half the elements; a pushed-down name test scales the
// estimate by the name's selectivity. The practical crossover this
// produces: xancestor/xdescendant/overlapping stay indexed, while
// xfollowing/xpreceding — whose probes return ~half the document anyway —
// flip to the SIMD scan.
//
// Plans are performance-only: every choice returns byte-identical results
// (the planned-vs-forced test battery pins this), so a stale plan is
// merely slower, never wrong. PlanCache::PlanFor caches one plan per
// (expr, document, snapshot version) — hot traffic replans only on commit.

#ifndef MHX_XQUERY_PLANNER_H_
#define MHX_XQUERY_PLANNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "goddag/stats.h"
#include "xpath/axes.h"
#include "xquery/ast.h"

namespace mhx::xquery {

// Which physical plan an evaluation runs. kAuto is the planner; the force
// modes pin one strategy for tests, benches, and the byte-identity
// batteries (QueryOptions::plan_mode).
enum class PlanMode {
  kAuto,          // planner-chosen per step (the default)
  kForceNaive,    // every extended-axis step scans; no pushdown
  kForceIndexed,  // every extended-axis step probes the index; no pushdown
  kForceSort,     // legacy brute force: indexed, plus re-sort+dedup after
                  // every step (the old force_step_sort)
};

std::string_view PlanModeName(PlanMode mode);

// One step's annotations: the physical execution choice plus the planned
// predicate order and the cost-model inputs (kept for ExplainPlan).
struct StepPlan {
  xpath::StepExec exec;
  // Evaluation order of the step's predicates (indices into
  // PathStep::predicates); empty = source order (reordering not applicable
  // or not provably safe).
  std::vector<uint16_t> predicate_order;
  double est_hits = 0.0;
  double cost_indexed = 0.0;
  double cost_scan = 0.0;
};

// A whole query's step annotations, keyed by PathStep address (stable: the
// cached Expr owns its AST for the cache's lifetime). Built against one
// snapshot version; steps absent from the map run the default indexed
// probe.
struct QueryPlan {
  std::unordered_map<const PathStep*, StepPlan> steps;
  uint64_t snapshot_version = 0;
};

// Plans `root` against `stats` (the pinned snapshot's statistics block).
// Pure function: no locks, no globals — safe to call from any thread.
QueryPlan PlanQuery(const AstNode& root, const goddag::SnapshotStats& stats,
                    uint64_t snapshot_version);

// Human-readable plan rendering for the ExplainPlan debug surface and the
// CI plan-shape smoke: one line per planned step (axis, strategy, pushdown,
// estimates) plus a header with the snapshot statistics and the kernel ISA
// the dispatch resolved to.
std::string ExplainQueryPlan(const AstNode& root, const QueryPlan& plan,
                             const goddag::SnapshotStats& stats);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_PLANNER_H_
