// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery evaluation engine over a MultihierarchicalDocument: FLWOR
// expressions, predicates, constructors, the paper's extended axes in path
// steps, and analyze-string() with XML fragment patterns, which materialises
// matches as *temporary virtual hierarchies*. Temporaries live in
// evaluation-scoped overlay namespaces (goddag/overlay.h): each evaluation
// reads the immutable base KyGoddag through an OverlayView holding any kept
// hierarchies plus its own, and never mutates the document — teardown is
// simply dropping the overlays when the evaluation returns.
//
// Index discipline: the engine's AxisEvaluator keeps one RangeIndex over the
// base document, materialised before the first evaluation. Overlay nodes
// never enter it — extended-axis steps read "base index + overlay scan"
// uniformly — so the add/query/drop cycle of every analyze-string() call
// costs zero O(N log N) index rebuilds; index_rebuild_count() (1 per engine
// unless the document is mutated directly between queries) is the proof,
// surfaced as a benchmark counter in bench_paper_queries.cc.
//
// Concurrency contract. Two independent levels:
//
//  * Across threads, any number of Evaluate / EvaluateKeepingTemporaries
//    calls may run concurrently on one engine — including queries that
//    materialise temporary hierarchies via analyze-string(), which was the
//    serialisation point under the old document-mutation model. There is no
//    evaluation lock left: evaluations share the immutable base and write
//    only their private overlays. The prepared-query and compiled-pattern
//    caches and the kept-temporaries registry are mutex-guarded.
//  * Within one query, QueryOptions{threads > 1} fans independent FLWOR
//    `for` iterations and some/every quantifier bindings out across a
//    base::ThreadPool whenever the binding body IsParallelSafe; workers
//    share the coordinator's overlay view read-only, and per-iteration
//    results merge in binding order — results are byte-identical to serial
//    evaluation, errors included, with one narrow exception: a quantifier
//    binding that serial evaluation would have reported as an error can be
//    skipped entirely by short-circuit cancellation when a genuinely
//    deciding binding finishes first (the boolean returned is still correct
//    for the bindings that exist).
//
// Mutating the document directly (mutable_goddag()) while any query runs
// remains undefined behaviour, as does moving the document.

#ifndef MHX_XQUERY_ENGINE_H_
#define MHX_XQUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "base/thread_pool.h"
#include "goddag/kygoddag.h"
#include "goddag/overlay.h"
#include "regex/regex.h"
#include "xpath/axes.h"

namespace mhx {
class MultihierarchicalDocument;
}  // namespace mhx

namespace mhx::xquery {

class Expr;
class Evaluator;
class Engine;

// Per-evaluation knobs, passed alongside the query text.
struct QueryOptions {
  // Worker threads for intra-query fan-out. 0 and 1 both mean serial
  // evaluation (0 is normalised to 1 on entry — identical code path, plan,
  // and counters). The engine keeps one shared pool, grown to the largest
  // `threads` any evaluation has requested; `threads` also sets this
  // evaluation's chunking granularity (4 chunks per requested thread), so a
  // smaller request on a bigger shared pool can run wider than asked —
  // treat the knob as a fan-out width, not a hard concurrency cap.
  unsigned threads = 1;
  // Testing only: ignore ordering guarantees and re-sort + dedup after every
  // path step, as the engine did before guarantees existed. Lets tests pin
  // that the guarantee-driven merge path is byte-identical to brute force.
  bool force_step_sort = false;
};

namespace internal {
// The engine's registry of kept temporary hierarchies. Held by shared_ptr
// so KeptTemporaries handles stay safe (inert) if they outlive the engine.
struct KeptRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays;
};
}  // namespace internal

// Move-only handle returned by EvaluateKeepingTemporaries: it keeps that
// evaluation's temporary virtual hierarchies alive and registered on the
// engine, so later evaluations see them on extended axes (and in their leaf
// partition). Dropping the handle — or calling Release(), or the engine's
// CleanupTemporaries() — unregisters them; the overlay memory is freed when
// the last reader lets go. No repin, no cleanup marks: kept temporaries
// never touch the base document.
class KeptTemporaries {
 public:
  KeptTemporaries() = default;
  KeptTemporaries(KeptTemporaries&&) noexcept = default;
  KeptTemporaries& operator=(KeptTemporaries&& other) noexcept {
    Release();
    registry_ = std::move(other.registry_);
    overlays_ = std::move(other.overlays_);
    return *this;
  }
  ~KeptTemporaries() { Release(); }

  // Unregisters the kept hierarchies from the engine. Idempotent; a no-op
  // after the engine called CleanupTemporaries or was destroyed.
  void Release();

  // Temporary virtual hierarchies this handle keeps (0 once released).
  size_t hierarchy_count() const { return overlays_.size(); }

 private:
  friend class Engine;
  KeptTemporaries(
      std::weak_ptr<internal::KeptRegistry> registry,
      std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays)
      : registry_(std::move(registry)), overlays_(std::move(overlays)) {}

  std::weak_ptr<internal::KeptRegistry> registry_;
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays_;
};

// EvaluateKeepingTemporaries' result: one serialised string per result item,
// plus the handle owning the evaluation's temporary hierarchies.
struct KeptEvaluation {
  std::vector<std::string> items;
  KeptTemporaries temporaries;
};

class Engine {
 public:
  explicit Engine(const MultihierarchicalDocument* document);
  ~Engine();

  // Evaluates a query and serialises the result sequence (items are
  // concatenated without separators; leaves serialise as their base-text
  // characters, constructed elements as tags). Temporary virtual
  // hierarchies the query materialises are evaluation-private and dropped
  // on return.
  StatusOr<std::string> Evaluate(std::string_view query);
  StatusOr<std::string> Evaluate(std::string_view query,
                                 const QueryOptions& options);

  // Evaluates a query but keeps any virtual hierarchies created by
  // analyze-string() alive — and visible to later evaluations — for as long
  // as the returned handle is (see KeptTemporaries).
  StatusOr<KeptEvaluation> EvaluateKeepingTemporaries(std::string_view query);

  // Unregisters every kept temporary hierarchy, regardless of outstanding
  // handles (which become inert).
  void CleanupTemporaries();

  const MultihierarchicalDocument* document() const { return document_; }

  // RangeIndex constructions this engine has paid for — stays at one no
  // matter how many analyze-string() overlay cycles have run (only a direct
  // document mutation between queries adds one).
  size_t index_rebuild_count() const;

  // Temporary virtual hierarchies currently kept alive by
  // EvaluateKeepingTemporaries handles (in-flight evaluations' private
  // overlays are not counted — they are invisible outside their
  // evaluation).
  size_t temporary_hierarchy_count() const;

  // Path-step sort+dedup passes the step loop skipped because an ordering
  // guarantee (xpath::Ordering) made them unnecessary — replaced by nothing
  // (single sorted run) or by a linear merge. Monotonic over the engine's
  // lifetime; relaxed counter, surfaced by bench_xquery.
  size_t sorts_skipped() const {
    return sorts_skipped_.load(std::memory_order_relaxed);
  }

  // FLWOR iterations / quantifier bindings dispatched to the thread pool.
  size_t parallel_tasks() const {
    return parallel_tasks_.load(std::memory_order_relaxed);
  }

 private:
  friend class mhx::MultihierarchicalDocument;
  friend class Evaluator;

  // One evaluation's full output: the serialised items plus the overlays it
  // materialised (kept or dropped by the public entry points).
  struct EvaluationOutput {
    std::vector<std::string> items;
    std::vector<std::shared_ptr<const goddag::GoddagOverlay>> temporaries;
  };

  // Called by the document's move operations to keep the back-reference
  // valid.
  void Rebind(const MultihierarchicalDocument* document) {
    document_ = document;
  }

  // Parses `query` (or retrieves it from the prepared-query cache), builds
  // the evaluation's overlay view (kept hierarchies snapshot), and
  // evaluates. No lock is held during evaluation.
  StatusOr<EvaluationOutput> EvaluateInternal(std::string_view query,
                                              const QueryOptions& options);

  // Parses and caches `query` under cache_mu_; the returned Expr stays valid
  // for the engine's lifetime (map nodes are stable).
  StatusOr<const Expr*> PreparedQuery(std::string_view query);

  // The engine's AxisEvaluator over the base document. Creates it on first
  // use and materialises the base leaf partition and RangeIndex under
  // cache_mu_, so everything evaluation reads concurrently is already
  // built (a direct document mutation between queries re-materialises
  // here, once).
  const xpath::AxisEvaluator& axes();

  // A snapshot of the kept-hierarchy registry, for one evaluation's view.
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> SnapshotKept()
      const;

  // The shared fan-out pool, created (and grown to the largest requested
  // size) under cache_mu_. Returns nullptr for threads <= 1.
  base::ThreadPool* pool(unsigned threads);

  const MultihierarchicalDocument* document_;
  // Lazily created; see axes().
  std::unique_ptr<xpath::AxisEvaluator> axes_;
  // Id blocks for every overlay any evaluation of this engine creates —
  // one namespace, so kept hierarchies and evaluation-private ones never
  // collide inside a view. Shared with the overlays themselves so a
  // KeptTemporaries handle held past engine destruction releases safely.
  std::shared_ptr<goddag::OverlayIdAllocator> overlay_ids_ =
      std::make_shared<goddag::OverlayIdAllocator>();
  // Kept temporary hierarchies; evaluations snapshot this into their view.
  std::shared_ptr<internal::KeptRegistry> kept_ =
      std::make_shared<internal::KeptRegistry>();
  // Prepared-query and compiled-pattern caches (documents are immutable
  // after Build, so both stay valid for the engine's lifetime). Guarded by
  // cache_mu_; the mapped values live at stable addresses.
  std::map<std::string, std::unique_ptr<Expr>, std::less<>> query_cache_;
  std::map<std::string, regex::Regex, std::less<>> regex_cache_;

  // Guards query_cache_, regex_cache_, pool_ creation, and axes_ creation.
  std::mutex cache_mu_;
  std::unique_ptr<base::ThreadPool> pool_;
  // Pools superseded by a larger request; kept alive (idle) because an
  // in-flight evaluation may still hold a pointer to one.
  std::vector<std::unique_ptr<base::ThreadPool>> retired_pools_;
  std::atomic<size_t> sorts_skipped_{0};
  std::atomic<size_t> parallel_tasks_{0};
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_ENGINE_H_
