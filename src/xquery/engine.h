// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery evaluation engine over a MultihierarchicalDocument: FLWOR
// expressions, predicates, constructors, the paper's extended axes in path
// steps, and analyze-string() with XML fragment patterns (which materialises
// matches as *temporary virtual hierarchies* on the KyGODDAG — hence the
// KeepingTemporaries/CleanupTemporaries pair, letting benchmarks separate
// evaluation cost from virtual-hierarchy teardown).
//
// This layer is declared as part of the public API but not yet implemented;
// every evaluation entry point returns Unimplemented. Implementing it is the
// next PR's tentpole (see ROADMAP.md).

#ifndef MHX_XQUERY_ENGINE_H_
#define MHX_XQUERY_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"

namespace mhx {
class MultihierarchicalDocument;
}  // namespace mhx

namespace mhx::xquery {

class Engine {
 public:
  explicit Engine(const MultihierarchicalDocument* document);

  // Evaluates a query and serialises the result sequence.
  StatusOr<std::string> Evaluate(std::string_view query);

  // Evaluates a query but keeps any virtual hierarchies created by
  // analyze-string() alive so the caller can inspect (or benchmark) them.
  // Each element of the result is one serialised item.
  StatusOr<std::vector<std::string>> EvaluateKeepingTemporaries(
      std::string_view query);

  // Removes the virtual hierarchies kept by EvaluateKeepingTemporaries.
  void CleanupTemporaries();

  const MultihierarchicalDocument* document() const { return document_; }

 private:
  friend class mhx::MultihierarchicalDocument;

  // Called by the document's move operations to keep the back-reference
  // valid.
  void Rebind(const MultihierarchicalDocument* document) {
    document_ = document;
  }

  const MultihierarchicalDocument* document_;
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_ENGINE_H_
