// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery evaluation engine over a MultihierarchicalDocument: FLWOR
// expressions, predicates, constructors, the paper's extended axes in path
// steps, and analyze-string() with XML fragment patterns, which materialises
// matches as *temporary virtual hierarchies*. Temporaries live in
// evaluation-scoped overlay namespaces (goddag/overlay.h): each evaluation
// reads the immutable base KyGoddag through an OverlayView holding any kept
// hierarchies plus its own, and never mutates the document — teardown is
// simply dropping the overlays when the evaluation returns.
//
// MVCC binding (the full protocol is CONCURRENCY.md): every evaluation
// pins the document's current goddag::DocumentSnapshot at its start and
// reads exactly that version — goddag, leaf partition, RangeIndex —
// end-to-end, so queries run concurrently with Writer::Commit and never
// block on (or observe half of) a commit. The engine keeps one
// (snapshot, AxisEvaluator) entry for the pinned version and retires it
// when a newer version is pinned; in-flight evaluations and kept-
// temporaries handles hold the old snapshot alive until they drop.
//
// Index discipline: each snapshot carries one build-once RangeIndex.
// Writer-published snapshots arrive with it prebuilt (the writer paid);
// the initial Build()-time snapshot is indexed lazily by this engine's
// first evaluation. Overlay nodes never enter any index — extended-axis
// steps read "base index + overlay scan" uniformly — so the
// add/query/drop cycle of every analyze-string() call and every MVCC
// commit costs this engine zero O(N log N) index rebuilds;
// index_rebuild_count() (1 per engine unless the document is edited
// in place via the legacy mutable_goddag() path between queries) is the
// proof, surfaced as a benchmark counter in bench_paper_queries.cc.
//
// Concurrency contract. Two independent levels:
//
//  * Across threads, any number of Evaluate / EvaluateKeepingTemporaries
//    calls may run concurrently on one engine — including queries that
//    materialise temporary hierarchies via analyze-string(), which was the
//    serialisation point under the old document-mutation model. There is no
//    evaluation lock: evaluations share an immutable pinned snapshot and
//    write only their private overlays. The prepared-query and
//    compiled-pattern caches and the kept-temporaries registry are
//    mutex-guarded.
//  * Within one query, QueryOptions{threads > 1} fans independent FLWOR
//    `for` iterations and some/every quantifier bindings out across a
//    base::ThreadPool whenever the binding body IsParallelSafe — which now
//    includes analyze-string() bodies. Scheduling is work-stealing: each
//    worker slot owns a deque of binding indices, idle slots steal the
//    back half of a victim's remainder (Engine::steals() counts these),
//    and the coordinating thread participates as slot 0 and helps drain
//    the pool while joining, so nested fan-out of inner `for` loops is
//    both allowed and deadlock-free.
//
// Worker sub-overlay lifetime and join-order merge rules. Each worker slot
// evaluates in a *forked* goddag::OverlayView: reads resolve through the
// coordinator's view (base + kept + coordinator overlays), writes —
// analyze-string() temporaries — land in the worker's private namespace,
// with id blocks leased from the engine's shared OverlayIdAllocator so
// worker overlays never collide with anything they can meet in a view. At
// join the coordinator re-registers the workers' overlays in its own view
// in binding order (creation order within one binding preserved; a
// quantifier discards overlays from bindings after the deciding one), so
// post-loop steps, the serialised result, and any KeptTemporaries handle
// see exactly the overlays — in exactly the registration order — serial
// evaluation would have produced. Worker overlays an error discards die
// with the worker's view; nothing ever touches the base document.
//
// Binding scoping rule (thread-count invariant by construction): a loop
// body that can materialise temporaries — ContainsAnalyzeString — is
// evaluated per binding in an isolated child view whether the loop runs
// serial or parallel, so every binding sees base + kept + the enclosing
// scopes' temporaries + its *own*, never a sibling binding's, and the
// loop's output is identical at every `threads` setting. (This is also
// real XQuery's semantics: analyze-string() returns a fresh tree other
// iterations cannot see.) Post-loop expressions see all committed
// overlays, in binding order.
//
// Results are byte-identical to serial evaluation, errors included: the
// error of the earliest failing binding wins, and a quantifier returns
// whatever the lowest-indexed deciding-or-failing binding decided, exactly
// as the serial loop would. Two caveats, both invisible to independent
// binding bodies: (1) bindings past the deciding/failing one may be
// evaluated speculatively before cancellation lands (their results and
// overlays are discarded); (2) document-order ties between equal-range
// nodes of *different* overlays fall back to overlay id allocation order,
// which concurrent leasing does not pin to binding order.
//
// Mutating the document directly (mutable_goddag()) while any query runs
// remains undefined behaviour, as does moving the document. Mutating it
// through MultihierarchicalDocument::Writer is always safe: evaluations on
// the old version finish on the old version.

#ifndef MHX_XQUERY_ENGINE_H_
#define MHX_XQUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/statusor.h"
#include "base/thread_pool.h"
#include "goddag/kygoddag.h"
#include "goddag/overlay.h"
#include "goddag/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "xpath/axes.h"
#include "xquery/plan_cache.h"
#include "xquery/planner.h"

namespace mhx {
class MultihierarchicalDocument;
}  // namespace mhx

namespace mhx::xquery {

class Expr;
class Evaluator;
class Engine;

// Per-evaluation knobs, passed alongside the query text.
struct QueryOptions {
  // Worker threads for intra-query fan-out. 0 and 1 both mean serial
  // evaluation (0 is normalised to 1 on entry — identical code path, plan,
  // and counters). The engine keeps one shared pool, grown to the largest
  // `threads` any evaluation has requested; a parallel loop runs on
  // min(threads, bindings) worker slots — the coordinating thread plus
  // pool helpers — with work-stealing balancing skewed iteration costs
  // across them.
  unsigned threads = 1;
  // Physical-plan selection for path steps (see PlanMode): kAuto runs the
  // cost-based planner against the pinned snapshot's statistics; the force
  // modes pin one strategy everywhere. Every mode returns byte-identical
  // results — the batteries in parallel_query_test hold them to it.
  PlanMode plan_mode = PlanMode::kAuto;
  // Deprecated alias of plan_mode = kForceSort, kept so existing callers
  // and tests compile unchanged: normalised on entry (true wins over
  // whatever plan_mode says). Re-sorts + dedups after every path step, as
  // the engine did before ordering guarantees existed — the brute-force
  // baseline the guarantee-driven merge and the planner are compared to.
  bool force_step_sort = false;
  // When set, the evaluation records stage spans (plan lookup, index
  // materialisation, evaluation, serialisation) and — for parallel loops —
  // per-slot spans with steal attribution into this trace. The trace must
  // outlive the call. Null (the default) costs one branch per stage.
  obs::QueryTrace* trace = nullptr;
};

// The engine's monotonic counters as registry-compatible instruments,
// shareable across engines: the corpus service injects one EngineCounters
// into every engine it builds, so evictions don't reset the totals and
// MetricsRegistry can point at stable storage. An engine constructed
// without one gets a private instance — the accessors then report that
// engine alone, as before.
struct EngineCounters {
  obs::Counter sorts_skipped;
  obs::Counter parallel_tasks;
  obs::Counter steals;
  obs::Counter index_rebuilds;
  // Snapshot pins taken by evaluations (one per Evaluate /
  // EvaluateKeepingTemporaries call).
  obs::Counter snapshot_pins;
  // analyze-string() calls that failed because the OverlayIdAllocator
  // namespace was exhausted (ResourceExhausted surfaced to the caller).
  // Stays 0 in any healthy process; the stress tests assert it.
  obs::Counter overlay_id_exhausted;
  // Planned extended-axis step executions that probed the RangeIndex /
  // ran the (vectorized) table scan — how often the cost model picked
  // each physical strategy (forced modes count here too).
  obs::Counter plan_steps_indexed;
  obs::Counter plan_steps_scanned;
  // Name tests folded into the probe/kernel as interned-key compares
  // instead of a post-hoc filter (kAuto only; forced modes never push).
  obs::Counter plan_pushdowns;
};

namespace internal {
// The engine's registry of kept temporary hierarchies. Held by shared_ptr
// so KeptTemporaries handles stay safe (inert) if they outlive the engine.
struct KeptRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays;
};
}  // namespace internal

// Move-only handle returned by EvaluateKeepingTemporaries: it keeps that
// evaluation's temporary virtual hierarchies alive and registered on the
// engine, so later evaluations see them on extended axes (and in their leaf
// partition). Dropping the handle — or calling Release(), or the engine's
// CleanupTemporaries() — unregisters them; the overlay memory is freed when
// the last reader lets go. The handle also pins the DocumentSnapshot its
// evaluation ran against: overlay node ranges are anchored in that
// version's goddag, so the snapshot outlives engine death and document
// commits for exactly as long as the handle does. No repin, no cleanup
// marks: kept temporaries never touch the base document. Thread-safety
// class: unsynchronized (one handle belongs to one thread); Release itself
// locks the registry.
class KeptTemporaries {
 public:
  KeptTemporaries() = default;
  KeptTemporaries(KeptTemporaries&&) noexcept = default;
  KeptTemporaries& operator=(KeptTemporaries&& other) noexcept {
    Release();
    registry_ = std::move(other.registry_);
    overlays_ = std::move(other.overlays_);
    snapshot_ = std::move(other.snapshot_);
    return *this;
  }
  ~KeptTemporaries() { Release(); }

  // Unregisters the kept hierarchies from the engine and drops the
  // snapshot pin. Idempotent; a no-op after the engine called
  // CleanupTemporaries or was destroyed.
  void Release();

  // Temporary virtual hierarchies this handle keeps (0 once released).
  size_t hierarchy_count() const { return overlays_.size(); }

  // The pinned snapshot the kept hierarchies are anchored in (null once
  // released, or for a default-constructed handle).
  const std::shared_ptr<const goddag::DocumentSnapshot>& snapshot() const {
    return snapshot_;
  }

 private:
  friend class Engine;
  KeptTemporaries(
      std::weak_ptr<internal::KeptRegistry> registry,
      std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays,
      std::shared_ptr<const goddag::DocumentSnapshot> snapshot)
      : registry_(std::move(registry)),
        overlays_(std::move(overlays)),
        snapshot_(std::move(snapshot)) {}

  std::weak_ptr<internal::KeptRegistry> registry_;
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> overlays_;
  std::shared_ptr<const goddag::DocumentSnapshot> snapshot_;
};

// EvaluateKeepingTemporaries' result: one serialised string per result item,
// plus the handle owning the evaluation's temporary hierarchies.
struct KeptEvaluation {
  std::vector<std::string> items;
  KeptTemporaries temporaries;
};

class Engine {
 public:
  // An engine with private caches, pool, and counters — the
  // single-document default. `document` must outlive the engine (the
  // facade owns its engine, so this holds by construction).
  explicit Engine(const MultihierarchicalDocument* document);

  // Cache- and pool-injection seam, used by the corpus service so every
  // engine in a process shares one compiled-plan cache (queries compile
  // once across all documents) and one fan-out ThreadPool (a corpus of N
  // documents must not spawn N pools). Either may be null: a null `plans`
  // gets a private PlanCache (the single-document default), a null
  // `shared_pool` keeps the engine growing its own pool on demand. An
  // injected pool is used as-is — the engine never grows it; requesting
  // QueryOptions{threads} above its size just caps the helper count (the
  // work-stealing scheduler already tolerates fewer workers than slots,
  // and nested fan-out on a shared pool stays deadlock-free because
  // joins only wait for claimed bindings and help drain the queue).
  // `counters` joins the same seam: a corpus service injects one shared
  // EngineCounters so totals survive document eviction and the metrics
  // registry can point at stable storage; null gets a private instance
  // (the accessors then report this engine alone, as before).
  Engine(const MultihierarchicalDocument* document,
         std::shared_ptr<PlanCache> plans,
         std::shared_ptr<base::ThreadPool> shared_pool,
         std::shared_ptr<EngineCounters> counters = nullptr);

  ~Engine();

  // Evaluates a query and serialises the result sequence (items are
  // concatenated without separators; leaves serialise as their base-text
  // characters, constructed elements as tags). Temporary virtual
  // hierarchies the query materialises are evaluation-private and dropped
  // on return. Thread-safety class: pinned-snapshot read — safe against
  // any number of concurrent evaluations and document Writer commits;
  // never blocks on a writer (the only locks taken are short cache/pin
  // mutexes, never held while evaluating).
  StatusOr<std::string> Evaluate(std::string_view query);
  StatusOr<std::string> Evaluate(std::string_view query,
                                 const QueryOptions& options);

  // Evaluates a query but keeps any virtual hierarchies created by
  // analyze-string() alive — and visible to later evaluations — for as long
  // as the returned handle is (see KeptTemporaries). The options overload
  // accepts the same knobs as Evaluate; with threads > 1, worker
  // sub-overlays merged at join are kept exactly as serial evaluation
  // would have kept them, in binding order.
  StatusOr<KeptEvaluation> EvaluateKeepingTemporaries(std::string_view query);
  StatusOr<KeptEvaluation> EvaluateKeepingTemporaries(
      std::string_view query, const QueryOptions& options);

  // Unregisters every kept temporary hierarchy, regardless of outstanding
  // handles (which become inert). Thread-safe.
  void CleanupTemporaries();

  // Renders the physical plan kAuto would run for `query` against the
  // currently published snapshot: per-step strategy, pushdown, and cost
  // estimates (xquery::ExplainQueryPlan). Parses and caches the query like
  // Evaluate; returns parse errors verbatim. Thread-safety class:
  // pinned-snapshot read, like Evaluate.
  StatusOr<std::string> ExplainPlan(std::string_view query);

  // The document this engine is bound to (kept valid across document moves
  // via Rebind). Thread-safe.
  const MultihierarchicalDocument* document() const { return document_; }

  // RangeIndex constructions this engine has paid for, summed across every
  // snapshot version it has pinned — stays at one no matter how many
  // analyze-string() overlay cycles have run and no matter how many MVCC
  // commits it repins across (writer-prebuilt indexes cost readers
  // nothing; only a legacy mutable_goddag() edit between queries adds
  // one). Thread-safe.
  size_t index_rebuild_count() const;

  // Temporary virtual hierarchies currently kept alive by
  // EvaluateKeepingTemporaries handles (in-flight evaluations' private
  // overlays are not counted — they are invisible outside their
  // evaluation).
  size_t temporary_hierarchy_count() const;

  // Path-step sort+dedup passes the step loop skipped because an ordering
  // guarantee (xpath::Ordering) made them unnecessary — replaced by nothing
  // (single sorted run) or by a linear merge. Monotonic; thin read over the
  // obs::Counter (shared across engines when a corpus injected one),
  // surfaced by bench_xquery.
  size_t sorts_skipped() const {
    return static_cast<size_t>(counters_->sorts_skipped.value());
  }

  // Worker tasks dispatched to the thread pool by parallel loops (the
  // coordinator's own slot is not counted).
  size_t parallel_tasks() const {
    return static_cast<size_t>(counters_->parallel_tasks.value());
  }

  // Binding ranges stolen from a sibling slot's deque by an idle worker —
  // the work-stealing scheduler rebalancing skewed iteration costs.
  // Monotonic; relaxed counter, surfaced by the threads-axis benchmarks.
  size_t steals() const {
    return static_cast<size_t>(counters_->steals.value());
  }

  // Snapshot pins taken by evaluations on engines sharing this counter
  // block (one per evaluation entry point).
  size_t snapshot_pins() const {
    return static_cast<size_t>(counters_->snapshot_pins.value());
  }

  // analyze-string() calls rejected with ResourceExhausted because the
  // overlay-id namespace could not lease a block. 0 in a healthy process.
  size_t overlay_id_exhausted() const {
    return static_cast<size_t>(counters_->overlay_id_exhausted.value());
  }

  // Planned extended-axis step executions by chosen strategy: indexed
  // probes vs. (vectorized) scans (EngineCounters::plan_steps_*).
  size_t plan_steps_indexed() const {
    return static_cast<size_t>(counters_->plan_steps_indexed.value());
  }
  size_t plan_steps_scanned() const {
    return static_cast<size_t>(counters_->plan_steps_scanned.value());
  }

  // Name tests the planner folded into an index probe or scan kernel
  // (EngineCounters::plan_pushdowns).
  size_t plan_pushdowns() const {
    return static_cast<size_t>(counters_->plan_pushdowns.value());
  }

  // The counter block this engine bumps — for MetricsRegistry registration;
  // shared_ptr so the registration outlives any one engine.
  const std::shared_ptr<EngineCounters>& counters() const {
    return counters_;
  }

 private:
  friend class mhx::MultihierarchicalDocument;
  friend class Evaluator;

  // One evaluation's full output: the serialised items plus the overlays it
  // materialised (kept or dropped by the public entry points) and the MVCC
  // snapshot the whole evaluation read — handed to KeptTemporaries so kept
  // overlays outlive later commits together with the version they annotate.
  struct EvaluationOutput {
    std::vector<std::string> items;
    std::vector<std::shared_ptr<const goddag::GoddagOverlay>> temporaries;
    std::shared_ptr<const goddag::DocumentSnapshot> snapshot;
  };

  // One pinned snapshot paired with the AxisEvaluator bound to it — the
  // unit the axes cache hands to evaluations. Immutable after construction
  // (the evaluator's interior is concurrency-safe once its index is
  // forced), so any number of evaluations share one entry while a writer
  // publishes new versions alongside.
  struct SnapshotAxes {
    std::shared_ptr<const goddag::DocumentSnapshot> snapshot;
    xpath::AxisEvaluator axes;
    explicit SnapshotAxes(std::shared_ptr<const goddag::DocumentSnapshot> s)
        : snapshot(std::move(s)), axes(snapshot.get()) {}
  };

  // Called by the document's move operations to keep the back-reference
  // valid.
  void Rebind(const MultihierarchicalDocument* document) {
    document_ = document;
  }

  // Parses `query` (or retrieves it from the prepared-query cache), builds
  // the evaluation's overlay view (kept hierarchies snapshot), and
  // evaluates. No lock is held during evaluation.
  StatusOr<EvaluationOutput> EvaluateInternal(std::string_view query,
                                              const QueryOptions& options);

  // Parses and caches `query` under cache_mu_; the returned Expr stays valid
  // for the engine's lifetime (map nodes are stable).
  StatusOr<const Expr*> PreparedQuery(std::string_view query);

  // Pins the document's current snapshot and returns the SnapshotAxes
  // entry bound to it, creating a fresh entry under cache_mu_ when the
  // published version moved since the last evaluation (the old entry stays
  // alive for evaluations still holding it — that is the reader side of
  // the epoch swap). Materialises the leaf partition and RangeIndex before
  // returning, so nothing evaluation reads concurrently builds lazily.
  std::shared_ptr<const SnapshotAxes> PinAxes();

  // A snapshot of the kept-hierarchy registry, for one evaluation's view.
  std::vector<std::shared_ptr<const goddag::GoddagOverlay>> SnapshotKept()
      const;

  // The shared fan-out pool, created (and grown to the largest requested
  // size) under cache_mu_. Returns nullptr for threads <= 1.
  base::ThreadPool* pool(unsigned threads);

  const MultihierarchicalDocument* document_;
  // The axes entry for the most recently pinned snapshot; see PinAxes().
  // Guarded by cache_mu_; superseded entries drop here but survive in the
  // shared_ptrs evaluations hold.
  std::shared_ptr<const SnapshotAxes> axes_entry_;
  // index_rebuild_count() contributions of entries axes_entry_ has already
  // dropped. Guarded by cache_mu_.
  size_t retired_rebuilds_ = 0;
  // Id blocks for every overlay any evaluation of this engine creates —
  // one namespace, so kept hierarchies and evaluation-private ones never
  // collide inside a view. Shared with the overlays themselves so a
  // KeptTemporaries handle held past engine destruction releases safely.
  std::shared_ptr<goddag::OverlayIdAllocator> overlay_ids_ =
      std::make_shared<goddag::OverlayIdAllocator>();
  // Kept temporary hierarchies; evaluations snapshot this into their view.
  std::shared_ptr<internal::KeptRegistry> kept_ =
      std::make_shared<internal::KeptRegistry>();
  // Prepared-query and compiled-pattern cache: the corpus-shared PlanCache
  // when one was injected, else a private one. shared_ptr because cached
  // Expr/Regex pointers must outlive any engine still evaluating them.
  std::shared_ptr<PlanCache> plans_;
  // Corpus-shared fan-out pool; when set, pool() returns it instead of
  // growing pool_.
  std::shared_ptr<base::ThreadPool> shared_pool_;

  // Guards pool_ creation, axes_entry_, and retired_rebuilds_. mutable so
  // const accessors (index_rebuild_count) can take it.
  mutable std::mutex cache_mu_;
  std::unique_ptr<base::ThreadPool> pool_;
  // Pools superseded by a larger request; kept alive (idle) because an
  // in-flight evaluation may still hold a pointer to one.
  std::vector<std::unique_ptr<base::ThreadPool>> retired_pools_;
  // Never null (private instance when none injected); see EngineCounters.
  std::shared_ptr<EngineCounters> counters_;
  // AxisEvaluator rebuilds already folded into counters_->index_rebuilds;
  // PinAxes() adds the delta under cache_mu_.
  size_t reported_rebuilds_ = 0;
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_ENGINE_H_
