// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery evaluation engine over a MultihierarchicalDocument: FLWOR
// expressions, predicates, constructors, the paper's extended axes in path
// steps, and analyze-string() with XML fragment patterns (which materialises
// matches as *temporary virtual hierarchies* on the KyGODDAG — hence the
// KeepingTemporaries/CleanupTemporaries pair, letting benchmarks separate
// evaluation cost from virtual-hierarchy teardown).
//
// Index discipline: the engine pins its AxisEvaluator's RangeIndex to the
// persistent document snapshot the first time it evaluates. Temporary
// virtual hierarchies created by analyze-string() never enter the index —
// extended-axis steps evaluate them with a naive delta scan over the
// engine's temporary-node list instead. The add/query/remove cycle of every
// analyze-string() call therefore costs zero O(N log N) index rebuilds;
// index_rebuild_count() (at most 1 per engine) is the proof, surfaced as a
// benchmark counter in bench_paper_queries.cc.
//
// Not thread-safe: evaluation mutates the (logically const) document's
// KyGoddag through analyze-string() temporaries and fills the
// prepared-query/compiled-pattern caches. Serialise concurrent use
// externally, or give each thread its own document.

#ifndef MHX_XQUERY_ENGINE_H_
#define MHX_XQUERY_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "goddag/kygoddag.h"
#include "regex/regex.h"
#include "xpath/axes.h"

namespace mhx {
class MultihierarchicalDocument;
}  // namespace mhx

namespace mhx::xquery {

class Expr;
class Evaluator;

class Engine {
 public:
  explicit Engine(const MultihierarchicalDocument* document);
  ~Engine();

  // Evaluates a query and serialises the result sequence (items are
  // concatenated without separators; leaves serialise as their base-text
  // characters, constructed elements as tags).
  StatusOr<std::string> Evaluate(std::string_view query);

  // Evaluates a query but keeps any virtual hierarchies created by
  // analyze-string() alive so the caller can inspect (or benchmark) them.
  // Each element of the result is one serialised item.
  StatusOr<std::vector<std::string>> EvaluateKeepingTemporaries(
      std::string_view query);

  // Removes the virtual hierarchies kept by EvaluateKeepingTemporaries.
  void CleanupTemporaries();

  const MultihierarchicalDocument* document() const { return document_; }

  // RangeIndex constructions this engine has paid for — stays at one no
  // matter how many analyze-string() add/query/remove cycles have run.
  size_t index_rebuild_count() const;

  // Temporary virtual hierarchies currently alive (nonzero only between
  // EvaluateKeepingTemporaries and CleanupTemporaries).
  size_t temporary_hierarchy_count() const {
    return temp_hierarchies_.size();
  }

 private:
  friend class mhx::MultihierarchicalDocument;
  friend class Evaluator;

  // Called by the document's move operations to keep the back-reference
  // valid.
  void Rebind(const MultihierarchicalDocument* document) {
    document_ = document;
  }

  // Parses `query` (or retrieves it from the prepared-query cache) and
  // evaluates it; on success returns one serialised string per result item.
  StatusOr<std::vector<std::string>> EvaluateInternal(std::string_view query,
                                                      bool keep_temporaries);

  // Removes the temporary hierarchies (and their delta-scan nodes) past the
  // given high-water marks — evaluations tear down only their own
  // temporaries, never ones an earlier EvaluateKeepingTemporaries kept.
  void CleanupTemporariesFrom(size_t hierarchy_mark, size_t node_mark);

  const xpath::AxisEvaluator& axes();

  const MultihierarchicalDocument* document_;
  // Lazily created, then pinned to the persistent snapshot (see header
  // comment).
  std::unique_ptr<xpath::AxisEvaluator> axes_;
  // The KyGoddag revision the pinned snapshot is valid for, advanced by the
  // engine's own virtual-hierarchy add/remove cycles. A mismatch in axes()
  // means someone mutated the document directly (mutable_goddag()); the
  // snapshot is then rebuilt and repinned once — analyze-string cycles
  // alone never trigger this.
  uint64_t pinned_revision_ = 0;
  // True when the pinned snapshot was (re)built while kept temporaries
  // existed and therefore indexes temporary nodes. Removing those
  // temporaries must then repin — their recycled node slots would otherwise
  // resolve stale index entries to unrelated live nodes.
  bool snapshot_has_temporaries_ = false;
  // Virtual hierarchies created by analyze-string() during the current (or
  // a kept) evaluation, plus all of their node ids — the delta the engine
  // scans for extended axes.
  std::vector<goddag::HierarchyId> temp_hierarchies_;
  std::vector<goddag::NodeId> temp_nodes_;
  // Prepared-query and compiled-pattern caches (documents are immutable
  // after Build, so both stay valid for the engine's lifetime).
  std::map<std::string, std::unique_ptr<Expr>, std::less<>> query_cache_;
  std::map<std::string, regex::Regex, std::less<>> regex_cache_;
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_ENGINE_H_
