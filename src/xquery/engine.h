// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery evaluation engine over a MultihierarchicalDocument: FLWOR
// expressions, predicates, constructors, the paper's extended axes in path
// steps, and analyze-string() with XML fragment patterns (which materialises
// matches as *temporary virtual hierarchies* on the KyGODDAG — hence the
// KeepingTemporaries/CleanupTemporaries pair, letting benchmarks separate
// evaluation cost from virtual-hierarchy teardown).
//
// Index discipline: the engine pins its AxisEvaluator's RangeIndex to the
// persistent document snapshot the first time it evaluates. Temporary
// virtual hierarchies created by analyze-string() never enter the index —
// extended-axis steps evaluate them with a naive delta scan over the
// engine's temporary-node list instead. The add/query/remove cycle of every
// analyze-string() call therefore costs zero O(N log N) index rebuilds;
// index_rebuild_count() (at most 1 per engine) is the proof, surfaced as a
// benchmark counter in bench_paper_queries.cc.
//
// Concurrency contract. Two independent levels:
//
//  * Across threads, Evaluate/EvaluateKeepingTemporaries may be called
//    concurrently on one engine. Queries whose AST IsParallelSafe (no
//    analyze-string(), so no temporary hierarchies) evaluate under a shared
//    lock and run truly concurrently; queries that materialise temporaries
//    (and CleanupTemporaries) take the lock exclusively, so their KyGoddag
//    mutations never race with readers. The prepared-query and
//    compiled-pattern caches are mutex-guarded.
//  * Within one query, QueryOptions{threads > 1} fans independent FLWOR
//    `for` iterations and some/every quantifier bindings out across a
//    base::ThreadPool whenever the binding body IsParallelSafe, merging
//    per-iteration results in binding order — results are byte-identical to
//    serial evaluation, errors included, with one narrow exception: a
//    quantifier binding that serial evaluation would have reported as an
//    error can be skipped entirely by short-circuit cancellation when a
//    genuinely deciding binding finishes first (the boolean returned is
//    still correct for the bindings that exist).
//
// Mutating the document directly (mutable_goddag()) while any query runs
// remains undefined behaviour, as does moving the document.

#ifndef MHX_XQUERY_ENGINE_H_
#define MHX_XQUERY_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "base/statusor.h"
#include "base/thread_pool.h"
#include "goddag/kygoddag.h"
#include "regex/regex.h"
#include "xpath/axes.h"

namespace mhx {
class MultihierarchicalDocument;
}  // namespace mhx

namespace mhx::xquery {

class Expr;
class Evaluator;

// Per-evaluation knobs, passed alongside the query text.
struct QueryOptions {
  // Worker threads for intra-query fan-out. <= 1 evaluates serially. The
  // engine keeps one shared pool, grown to the largest `threads` any
  // evaluation has requested; `threads` also sets this evaluation's
  // chunking granularity (4 chunks per requested thread), so a smaller
  // request on a bigger shared pool can run wider than asked — treat the
  // knob as a fan-out width, not a hard concurrency cap.
  unsigned threads = 1;
  // Testing only: ignore ordering guarantees and re-sort + dedup after every
  // path step, as the engine did before guarantees existed. Lets tests pin
  // that the guarantee-driven merge path is byte-identical to brute force.
  bool force_step_sort = false;
};

class Engine {
 public:
  explicit Engine(const MultihierarchicalDocument* document);
  ~Engine();

  // Evaluates a query and serialises the result sequence (items are
  // concatenated without separators; leaves serialise as their base-text
  // characters, constructed elements as tags).
  StatusOr<std::string> Evaluate(std::string_view query);
  StatusOr<std::string> Evaluate(std::string_view query,
                                 const QueryOptions& options);

  // Evaluates a query but keeps any virtual hierarchies created by
  // analyze-string() alive so the caller can inspect (or benchmark) them.
  // Each element of the result is one serialised item.
  StatusOr<std::vector<std::string>> EvaluateKeepingTemporaries(
      std::string_view query);

  // Removes the virtual hierarchies kept by EvaluateKeepingTemporaries.
  void CleanupTemporaries();

  const MultihierarchicalDocument* document() const { return document_; }

  // RangeIndex constructions this engine has paid for — stays at one no
  // matter how many analyze-string() add/query/remove cycles have run.
  size_t index_rebuild_count() const;

  // Temporary virtual hierarchies currently alive (nonzero only between
  // EvaluateKeepingTemporaries and CleanupTemporaries).
  size_t temporary_hierarchy_count() const {
    return temp_hierarchies_.size();
  }

  // Path-step sort+dedup passes the step loop skipped because an ordering
  // guarantee (xpath::Ordering) made them unnecessary — replaced by nothing
  // (single sorted run) or by a linear merge. Monotonic over the engine's
  // lifetime; relaxed counter, surfaced by bench_xquery.
  size_t sorts_skipped() const {
    return sorts_skipped_.load(std::memory_order_relaxed);
  }

  // FLWOR iterations / quantifier bindings dispatched to the thread pool.
  size_t parallel_tasks() const {
    return parallel_tasks_.load(std::memory_order_relaxed);
  }

 private:
  friend class mhx::MultihierarchicalDocument;
  friend class Evaluator;

  // Called by the document's move operations to keep the back-reference
  // valid.
  void Rebind(const MultihierarchicalDocument* document) {
    document_ = document;
  }

  // Parses `query` (or retrieves it from the prepared-query cache), decides
  // the locking mode from IsParallelSafe, and evaluates; on success returns
  // one serialised string per result item.
  StatusOr<std::vector<std::string>> EvaluateInternal(
      std::string_view query, bool keep_temporaries,
      const QueryOptions& options);

  // The evaluation body proper, running under the lock EvaluateInternal
  // chose. `fan_out_pool` is null for serial evaluation.
  StatusOr<std::vector<std::string>> EvaluateLocked(
      const Expr& expr, bool keep_temporaries, const QueryOptions& options,
      base::ThreadPool* fan_out_pool);

  // Parses and caches `query` under cache_mu_; the returned Expr stays valid
  // for the engine's lifetime (map nodes are stable).
  StatusOr<const Expr*> PreparedQuery(std::string_view query);

  // Removes the temporary hierarchies (and their delta-scan nodes) past the
  // given high-water marks — evaluations tear down only their own
  // temporaries, never ones an earlier EvaluateKeepingTemporaries kept.
  // Caller must hold eval_mu_ exclusively (or be the destructor).
  void CleanupTemporariesFrom(size_t hierarchy_mark, size_t node_mark);

  const xpath::AxisEvaluator& axes();

  // The shared fan-out pool, created (and grown to the largest requested
  // size) under cache_mu_. Returns nullptr for threads <= 1.
  base::ThreadPool* pool(unsigned threads);

  const MultihierarchicalDocument* document_;
  // Lazily created, then pinned to the persistent snapshot (see header
  // comment).
  std::unique_ptr<xpath::AxisEvaluator> axes_;
  // The KyGoddag revision the pinned snapshot is valid for, advanced by the
  // engine's own virtual-hierarchy add/remove cycles. A mismatch in axes()
  // means someone mutated the document directly (mutable_goddag()); the
  // snapshot is then rebuilt and repinned once — analyze-string cycles
  // alone never trigger this.
  uint64_t pinned_revision_ = 0;
  // True when the pinned snapshot was (re)built while kept temporaries
  // existed and therefore indexes temporary nodes. Removing those
  // temporaries must then repin — their recycled node slots would otherwise
  // resolve stale index entries to unrelated live nodes.
  bool snapshot_has_temporaries_ = false;
  // Virtual hierarchies created by analyze-string() during the current (or
  // a kept) evaluation, plus all of their node ids — the delta the engine
  // scans for extended axes. Only mutated under an exclusive eval_mu_.
  std::vector<goddag::HierarchyId> temp_hierarchies_;
  std::vector<goddag::NodeId> temp_nodes_;
  // Prepared-query and compiled-pattern caches (documents are immutable
  // after Build, so both stay valid for the engine's lifetime). Guarded by
  // cache_mu_; the mapped values live at stable addresses.
  std::map<std::string, std::unique_ptr<Expr>, std::less<>> query_cache_;
  std::map<std::string, regex::Regex, std::less<>> regex_cache_;

  // Guards query_cache_, regex_cache_, pool_ creation, and axes_ creation.
  std::mutex cache_mu_;
  // Shared by side-effect-free evaluations, exclusive for evaluations that
  // create temporary hierarchies and for CleanupTemporaries.
  std::shared_mutex eval_mu_;
  std::unique_ptr<base::ThreadPool> pool_;
  // Pools superseded by a larger request; kept alive (idle) because an
  // in-flight evaluation may still hold a pointer to one.
  std::vector<std::unique_ptr<base::ThreadPool>> retired_pools_;
  std::atomic<size_t> sorts_skipped_{0};
  std::atomic<size_t> parallel_tasks_{0};
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_ENGINE_H_
