// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery tokenizer. Stateless by design: Lex(from) is a pure function
// of a source offset, so the recursive-descent parser gets arbitrary
// lookahead for free (XQuery keywords are context-sensitive — `for` is only
// a FLWOR head when a variable follows) and can re-enter token mode at any
// offset after consuming direct-constructor content as raw text.

#ifndef MHX_XQUERY_LEXER_H_
#define MHX_XQUERY_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace mhx::xquery {

// Every lexical token of the query dialect.
enum class TokenKind {
  kEof,
  kError,     // token.error holds the reason, token.begin the offset
  kName,      // NCName (':' excluded so axis separators lex as kAxisSep)
  kVariable,  // $name; token.text is the name without '$'
  kString,    // quoted literal; token.text is the decoded value
  kInteger,
  kSlash,
  kSlashSlash,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kAxisSep,  // ::
  kAssign,   // :=
  kDot,
  kStar,
  kPlus,
  kMinus,
  kEq,
  kNe,  // !=
  kLt,
  kLe,
  kGt,
  kGe,
};

// One token: kind, decoded text where applicable, and source offsets.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  size_t begin = 0;
  size_t end = 0;  // offset just past the token — where the next Lex starts
  std::string error;
};

std::string_view TokenKindName(TokenKind kind);

// True for characters that may start / continue a lexical name. Unlike the
// XML name alphabet (base/chars.h) these exclude ':' so that `axis::test`
// splits into three tokens.
bool IsQueryNameStartChar(char c);
bool IsQueryNameChar(char c);

// Stateless tokenizer: Lex(offset) is a pure function of the source, which
// gives the parser arbitrary lookahead for context-sensitive keywords.
class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  // Lexes the token starting at or after `from`, skipping whitespace and
  // nested (: ... :) comments.
  Token Lex(size_t from) const;

  std::string_view source() const { return src_; }

 private:
  size_t SkipIgnorable(size_t pos) const;

  std::string_view src_;
};

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_LEXER_H_
