// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/ast.h"

namespace mhx::xquery {

namespace {

void Append(const AstNode& node, std::string* out);

void AppendChildren(const AstNode& node, std::string* out) {
  for (const auto& child : node.children) {
    out->push_back(' ');
    Append(*child, out);
  }
}

void AppendParts(const std::vector<ConstructorPart>& parts, std::string* out) {
  for (const ConstructorPart& part : parts) {
    out->push_back(' ');
    if (part.expr != nullptr) {
      out->push_back('{');
      Append(*part.expr, out);
      out->push_back('}');
    } else {
      *out += "\"" + part.text + "\"";
    }
  }
}

void AppendStep(const PathStep& step, std::string* out) {
  if (step.primary != nullptr) {
    Append(*step.primary, out);
  } else {
    *out += std::string(xpath::AxisName(step.axis)) + "::";
    switch (step.test) {
      case PathStep::Test::kName:
        *out += step.name;
        break;
      case PathStep::Test::kAnyElement:
        *out += "*";
        break;
      case PathStep::Test::kAnyNode:
        *out += "node()";
        break;
      case PathStep::Test::kLeaf:
        *out += "leaf()";
        break;
    }
  }
  for (const auto& pred : step.predicates) {
    out->push_back('[');
    Append(*pred, out);
    out->push_back(']');
  }
}

void Append(const AstNode& node, std::string* out) {
  switch (node.kind) {
    case ExprKind::kStringLiteral:
      *out += "\"" + node.string_value + "\"";
      return;
    case ExprKind::kIntegerLiteral:
      *out += std::to_string(node.integer_value);
      return;
    case ExprKind::kVarRef:
      *out += "$" + node.name;
      return;
    case ExprKind::kContextItem:
      *out += ".";
      return;
    case ExprKind::kSequence:
      *out += "(seq";
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kFor:
      *out += "(for $" + node.name;
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kLet:
      *out += "(let $" + node.name;
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kQuantified:
      *out += std::string("(") + (node.every ? "every" : "some") + " $" +
              node.name;
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kIf:
      *out += "(if";
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kOr:
      *out += "(or";
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kAnd:
      *out += "(and";
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kCompare:
      *out += "(" + std::string(CompareOpName(node.compare_op));
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kArith:
      *out += "(" + std::string(ArithOpName(node.arith_op));
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kPath: {
      *out += "(path";
      if (node.absolute) *out += " /";
      for (const PathStep& step : node.steps) {
        out->push_back(' ');
        AppendStep(step, out);
      }
      *out += ")";
      return;
    }
    case ExprKind::kFunctionCall:
      *out += "(call " + node.name;
      AppendChildren(node, out);
      *out += ")";
      return;
    case ExprKind::kConstructor: {
      *out += "(elem " + node.name;
      for (const ConstructorAttribute& attr : node.attributes) {
        *out += " @" + attr.name + "=(";
        AppendParts(attr.parts, out);
        *out += ")";
      }
      if (!node.content.empty()) {
        *out += " (content";
        AppendParts(node.content, out);
        *out += ")";
      }
      *out += ")";
      return;
    }
  }
}

}  // namespace

std::string DebugString(const AstNode& node) {
  std::string out;
  Append(node, &out);
  return out;
}

const std::vector<BuiltinFunction>& BuiltinFunctions() {
  // Pure value functions are trivially safe. analyze-string() is safe
  // because a parallel worker materialises its temporary hierarchies in a
  // private sub-overlay namespace (merged at join) — it shares only the
  // mutex-guarded compiled-pattern cache and the overlay id allocator.
  static const std::vector<BuiltinFunction>* const kTable =
      new std::vector<BuiltinFunction>{
          {"string", true},  {"string-length", true},
          {"count", true},   {"name", true},
          {"not", true},     {"true", true},
          {"false", true},   {"matches", true},
          {"analyze-string", true},
      };
  return *kTable;
}

const BuiltinFunction* FindBuiltin(std::string_view name) {
  for (const BuiltinFunction& fn : BuiltinFunctions()) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

void VisitSubExprs(const AstNode& node,
                   const std::function<void(const AstNode&)>& fn) {
  for (const auto& child : node.children) fn(*child);
  for (const PathStep& step : node.steps) {
    if (step.primary != nullptr) fn(*step.primary);
    for (const auto& predicate : step.predicates) fn(*predicate);
  }
  for (const ConstructorAttribute& attribute : node.attributes) {
    for (const ConstructorPart& part : attribute.parts) {
      if (part.expr != nullptr) fn(*part.expr);
    }
  }
  for (const ConstructorPart& part : node.content) {
    if (part.expr != nullptr) fn(*part.expr);
  }
}

void VisitSubExprs(AstNode& node, const std::function<void(AstNode&)>& fn) {
  VisitSubExprs(static_cast<const AstNode&>(node),
                [&fn](const AstNode& child) {
                  fn(const_cast<AstNode&>(child));
                });
}

// Both classifications run once per query at parse time (ParseQuery stamps
// loop nodes), so neither bothers to short-circuit the traversal.

bool ContainsAnalyzeString(const AstNode& node) {
  if (node.kind == ExprKind::kFunctionCall && node.name == "analyze-string") {
    return true;
  }
  bool found = false;
  VisitSubExprs(node, [&found](const AstNode& child) {
    found = found || ContainsAnalyzeString(child);
  });
  return found;
}

bool IsParallelSafe(const AstNode& node) {
  if (node.kind == ExprKind::kFunctionCall) {
    // Unknown names are conservatively unsafe.
    const BuiltinFunction* builtin = FindBuiltin(node.name);
    if (builtin == nullptr || !builtin->parallel_safe) return false;
  }
  bool safe = true;
  VisitSubExprs(node, [&safe](const AstNode& child) {
    safe = safe && IsParallelSafe(child);
  });
  return safe;
}

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
  }
  return "?";
}

}  // namespace mhx::xquery
