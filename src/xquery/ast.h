// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery abstract syntax tree shared by the parser (which builds it
// behind the opaque Expr handle) and the engine (which walks it). The node
// set covers the paper's FLWOR subset: for/let/return with multiple
// bindings, if/then/else, quantified some/every ... satisfies, or/and,
// general comparisons, +/-/* arithmetic, path expressions over the standard
// and extended axes with the leaf() node test, predicates, function calls,
// and direct element constructors with enclosed expressions.

#ifndef MHX_XQUERY_AST_H_
#define MHX_XQUERY_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xpath/axes.h"

namespace mhx::xquery {

// Discriminator of AstNode; the comments note each kind's child layout.
enum class ExprKind {
  kStringLiteral,
  kIntegerLiteral,
  kVarRef,
  kContextItem,
  kSequence,   // children: the items (possibly none: "()")
  kFor,        // name: variable; children: {binding sequence, return body}
  kLet,        // name: variable; children: {bound value, return body}
  kQuantified, // name: variable; children: {binding sequence, satisfies}
  kIf,         // children: {condition, then, else}
  kOr,         // children: operands (n-ary, short-circuit)
  kAnd,
  kCompare,    // children: {lhs, rhs}
  kArith,      // children: {lhs, rhs}
  kPath,
  kFunctionCall,  // name: function; children: arguments
  kConstructor,
};

// Operators carried by kCompare / kArith nodes.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul };

struct AstNode;

// One step of a path expression. The first step may be a primary expression
// (`$x`, a function call, a parenthesised expression); all other steps are
// axis steps.
struct PathStep {
  enum class Test { kName, kAnyElement, kAnyNode, kLeaf };

  std::unique_ptr<AstNode> primary;  // set => primary step, axis/test unused
  xpath::Axis axis = xpath::Axis::kChild;
  Test test = Test::kName;
  std::string name;  // Test::kName only
  std::vector<std::unique_ptr<AstNode>> predicates;
};

// A piece of a direct constructor's attribute value or content: literal text
// or an enclosed `{ expression }`.
struct ConstructorPart {
  std::string text;
  std::unique_ptr<AstNode> expr;  // set => enclosed expression
};

// One attribute of a direct constructor; the value is a part sequence.
struct ConstructorAttribute {
  std::string name;
  std::vector<ConstructorPart> parts;
};

// The parser's output node: one ExprKind plus the fields that kind uses
// (see the ExprKind comments for each layout).
struct AstNode {
  explicit AstNode(ExprKind k) : kind(k) {}

  ExprKind kind;
  // Offset into the query source, for anchored diagnostics.
  size_t offset = 0;

  std::string string_value;   // kStringLiteral
  int64_t integer_value = 0;  // kIntegerLiteral
  // kVarRef / FLWOR binding variable / kFunctionCall name / constructor tag.
  std::string name;
  bool every = false;  // kQuantified: false = some, true = every

  // kFor / kQuantified only, stamped once by ParseQuery (the AST is
  // immutable afterwards, and loops re-read these on every execution —
  // including nested loops entered once per outer binding): the cached
  // results of IsParallelSafe / ContainsAnalyzeString on children[1].
  bool body_parallel_safe = false;
  bool body_contains_analyze_string = false;

  CompareOp compare_op = CompareOp::kEq;  // kCompare
  ArithOp arith_op = ArithOp::kAdd;       // kArith

  std::vector<std::unique_ptr<AstNode>> children;

  bool absolute = false;        // kPath: leading '/'
  std::vector<PathStep> steps;  // kPath

  std::vector<ConstructorAttribute> attributes;  // kConstructor
  std::vector<ConstructorPart> content;          // kConstructor
};

// Compact s-expression rendering of the tree, for tests and debugging, e.g.
// ParseQuery("for $w in /descendant::w return string($w)") renders as
// "(for $w (path / descendant::w) (call string (path $w)))".
std::string DebugString(const AstNode& node);

// Invokes `fn` on every direct sub-expression of `node`: children, path
// step primaries and predicates, constructor attribute and content parts.
// The one enumeration every whole-tree walk builds on (IsParallelSafe,
// ContainsAnalyzeString, the parser's classification stamping) — a new AST
// slot holding expressions only needs wiring here.
void VisitSubExprs(const AstNode& node,
                   const std::function<void(const AstNode&)>& fn);
void VisitSubExprs(AstNode& node, const std::function<void(AstNode&)>& fn);

// One row of the engine's built-in function surface: the classification
// IsParallelSafe keys off. A built-in is parallel-safe when evaluating it
// on a worker thread cannot touch state shared mutably across the
// evaluation's workers. That now includes analyze-string(): its temporary
// virtual hierarchies go into the worker's private sub-overlay namespace
// (goddag/overlay.h fork views) and merge into the coordinator's view at
// join, so nothing it writes is shared while workers run.
struct BuiltinFunction {
  std::string_view name;
  bool parallel_safe;
};

// The full table of built-in functions the engine evaluates, in the order
// EvalFunction dispatches them. Table-driven on purpose: adding a built-in
// means adding a row and deciding its classification explicitly (a unit
// test pins every row), and IsParallelSafe conservatively rejects any
// function name that has no row — a future side-effecting built-in cannot
// silently become "safe".
const std::vector<BuiltinFunction>& BuiltinFunctions();

// The table row for `name`, or nullptr for unknown functions.
const BuiltinFunction* FindBuiltin(std::string_view name);

// True when the subtree contains an analyze-string() call, i.e. evaluating
// it can materialise temporary hierarchies. The engine evaluates each
// binding of a loop whose body can — serial or parallel alike — in an
// isolated child overlay view, all bindings' overlays merged into the
// enclosing view at loop exit, so a body sees the enclosing scope's
// temporaries plus its own and never a sibling binding's: loop output is
// identical at every thread count by construction (xquery/engine.h).
bool ContainsAnalyzeString(const AstNode& node);

// True when evaluating the subtree cannot touch state shared across the
// evaluation's worker threads, so independent FLWOR iterations / quantifier
// bindings over it may fan out concurrently. Classification is table-driven
// (BuiltinFunctions above): every known built-in — analyze-string()
// included, since temporaries live in worker-private sub-overlays — is
// parallel-safe today, and unknown function names are rejected. Direct
// constructors are pure here — they build detached fragment strings that
// never re-enter the document — and so stay parallel-safe.
bool IsParallelSafe(const AstNode& node);

std::string_view CompareOpName(CompareOp op);
std::string_view ArithOpName(ArithOp op);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_AST_H_
