// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The XQuery abstract syntax tree shared by the parser (which builds it
// behind the opaque Expr handle) and the engine (which walks it). The node
// set covers the paper's FLWOR subset: for/let/return with multiple
// bindings, if/then/else, quantified some/every ... satisfies, or/and,
// general comparisons, +/-/* arithmetic, path expressions over the standard
// and extended axes with the leaf() node test, predicates, function calls,
// and direct element constructors with enclosed expressions.

#ifndef MHX_XQUERY_AST_H_
#define MHX_XQUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xpath/axes.h"

namespace mhx::xquery {

enum class ExprKind {
  kStringLiteral,
  kIntegerLiteral,
  kVarRef,
  kContextItem,
  kSequence,   // children: the items (possibly none: "()")
  kFor,        // name: variable; children: {binding sequence, return body}
  kLet,        // name: variable; children: {bound value, return body}
  kQuantified, // name: variable; children: {binding sequence, satisfies}
  kIf,         // children: {condition, then, else}
  kOr,         // children: operands (n-ary, short-circuit)
  kAnd,
  kCompare,    // children: {lhs, rhs}
  kArith,      // children: {lhs, rhs}
  kPath,
  kFunctionCall,  // name: function; children: arguments
  kConstructor,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul };

struct AstNode;

// One step of a path expression. The first step may be a primary expression
// (`$x`, a function call, a parenthesised expression); all other steps are
// axis steps.
struct PathStep {
  enum class Test { kName, kAnyElement, kAnyNode, kLeaf };

  std::unique_ptr<AstNode> primary;  // set => primary step, axis/test unused
  xpath::Axis axis = xpath::Axis::kChild;
  Test test = Test::kName;
  std::string name;  // Test::kName only
  std::vector<std::unique_ptr<AstNode>> predicates;
};

// A piece of a direct constructor's attribute value or content: literal text
// or an enclosed `{ expression }`.
struct ConstructorPart {
  std::string text;
  std::unique_ptr<AstNode> expr;  // set => enclosed expression
};

struct ConstructorAttribute {
  std::string name;
  std::vector<ConstructorPart> parts;
};

struct AstNode {
  explicit AstNode(ExprKind k) : kind(k) {}

  ExprKind kind;
  // Offset into the query source, for anchored diagnostics.
  size_t offset = 0;

  std::string string_value;   // kStringLiteral
  int64_t integer_value = 0;  // kIntegerLiteral
  // kVarRef / FLWOR binding variable / kFunctionCall name / constructor tag.
  std::string name;
  bool every = false;  // kQuantified: false = some, true = every

  CompareOp compare_op = CompareOp::kEq;  // kCompare
  ArithOp arith_op = ArithOp::kAdd;       // kArith

  std::vector<std::unique_ptr<AstNode>> children;

  bool absolute = false;        // kPath: leading '/'
  std::vector<PathStep> steps;  // kPath

  std::vector<ConstructorAttribute> attributes;  // kConstructor
  std::vector<ConstructorPart> content;          // kConstructor
};

// Compact s-expression rendering of the tree, for tests and debugging, e.g.
// ParseQuery("for $w in /descendant::w return string($w)") renders as
// "(for $w (path / descendant::w) (call string (path $w)))".
std::string DebugString(const AstNode& node);

// True when evaluating the subtree cannot touch state shared across the
// evaluation's worker threads, so independent FLWOR iterations / quantifier
// bindings over it may fan out concurrently. analyze-string() no longer
// mutates the document (temporaries live in evaluation-scoped overlays,
// goddag/overlay.h), but it still writes the *evaluation's* overlay view,
// which parallel workers share read-only — so subtrees containing it stay
// serial within their query (worker-private sub-overlays would lift this;
// see ROADMAP). Unknown function names are rejected conservatively so a
// future side-effecting built-in cannot silently become "safe". Direct
// constructors are pure here — they build detached fragment strings that
// never re-enter the document — and so stay parallel-safe.
bool IsParallelSafe(const AstNode& node);

std::string_view CompareOpName(CompareOp op);
std::string_view ArithOpName(ArithOp op);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_AST_H_
