// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Serialisation helpers for query results.

#ifndef MHX_XQUERY_SERIALIZE_H_
#define MHX_XQUERY_SERIALIZE_H_

#include <string>
#include <string_view>

namespace mhx::xquery {

// Merges adjacent runs of the same inline wrapper element in a serialised
// result: every occurrence of `</x><x>` (same tag name, no attributes on
// the reopening tag) collapses, so per-leaf output like
// "<b>d</b><b>endne</b> s<b>c</b><b>eaft</b>" becomes
// "<b>dendne</b> s<b>ceaft</b>". Queries that emit one wrapper per leaf use
// this to compare against whole-span expected strings independently of how
// finely the leaf partition happens to be cut.
std::string CoalesceRuns(std::string_view serialized);

}  // namespace mhx::xquery

#endif  // MHX_XQUERY_SERIALIZE_H_
