// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/parser.h"

#include <limits>
#include <utility>

#include "base/chars.h"
#include "base/status_macros.h"
#include "xquery/ast.h"
#include "xquery/lexer.h"

namespace mhx::xquery {

Expr::Expr(std::string source, std::unique_ptr<AstNode> root)
    : source_(std::move(source)), root_(std::move(root)) {}
Expr::~Expr() = default;
Expr::Expr(Expr&&) noexcept = default;
Expr& Expr::operator=(Expr&&) noexcept = default;

namespace {

using NodePtr = std::unique_ptr<AstNode>;

// Recursion (and the recursive AstNode destructor) is proportional to
// expression nesting; cap it so hostile queries get an error Status instead
// of a stack overflow.
constexpr int kMaxParseDepth = 400;

class Parser {
 public:
  explicit Parser(std::string_view source) : lex_(source), src_(source) {}

  StatusOr<NodePtr> Parse() {
    Advance();
    MHX_ASSIGN_OR_RETURN(NodePtr root, ParseExpr());
    if (cur_.kind != TokenKind::kEof) {
      return Error("unexpected trailing " +
                   std::string(TokenKindName(cur_.kind)));
    }
    return root;
  }

 private:
  // --- token plumbing ------------------------------------------------------

  void Advance() { cur_ = lex_.Lex(cur_.end); }
  Token Peek() const { return lex_.Lex(cur_.end); }

  Status ErrorAt(size_t offset, const std::string& what) const {
    return InvalidArgumentError("XQuery syntax error at offset " +
                                std::to_string(offset) + ": " + what);
  }

  Status Error(const std::string& what) const {
    if (cur_.kind == TokenKind::kError) {
      return ErrorAt(cur_.begin, cur_.error);
    }
    return ErrorAt(cur_.begin, what);
  }

  Status Expect(TokenKind kind) {
    if (cur_.kind != kind) {
      return Error("expected " + std::string(TokenKindName(kind)) +
                   " but found " + std::string(TokenKindName(cur_.kind)));
    }
    Advance();
    return OkStatus();
  }

  bool AtKeyword(std::string_view keyword) const {
    return cur_.kind == TokenKind::kName && cur_.text == keyword;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!AtKeyword(keyword)) {
      return Error("expected '" + std::string(keyword) + "' but found " +
                   std::string(TokenKindName(cur_.kind)));
    }
    Advance();
    return OkStatus();
  }

  NodePtr Make(ExprKind kind, size_t offset) {
    auto node = std::make_unique<AstNode>(kind);
    node->offset = offset;
    return node;
  }

  // --- grammar -------------------------------------------------------------

  // Expr := ExprSingle ("," ExprSingle)*
  StatusOr<NodePtr> ParseExpr() {
    size_t offset = cur_.begin;
    MHX_ASSIGN_OR_RETURN(NodePtr first, ParseExprSingle());
    if (cur_.kind != TokenKind::kComma) return first;
    NodePtr seq = Make(ExprKind::kSequence, offset);
    seq->children.push_back(std::move(first));
    while (cur_.kind == TokenKind::kComma) {
      Advance();
      MHX_ASSIGN_OR_RETURN(NodePtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // Every nesting construct (parentheses, predicates, enclosed expressions,
  // FLWOR bodies) re-enters through here, so one guard bounds them all.
  StatusOr<NodePtr> ParseExprSingle() {
    if (depth_ >= kMaxParseDepth) {
      return Error("expression nested deeper than " +
                   std::to_string(kMaxParseDepth));
    }
    ++depth_;
    auto result = ParseExprSingleImpl();
    --depth_;
    return result;
  }

  StatusOr<NodePtr> ParseExprSingleImpl() {
    if (cur_.kind == TokenKind::kName) {
      // FLWOR keywords are context-sensitive; they head an expression only
      // when the right token follows.
      TokenKind next = Peek().kind;
      if ((cur_.text == "for" || cur_.text == "let") &&
          next == TokenKind::kVariable) {
        return ParseFlwor(cur_.text == "let");
      }
      if ((cur_.text == "some" || cur_.text == "every") &&
          next == TokenKind::kVariable) {
        return ParseQuantified();
      }
      if (cur_.text == "if" && next == TokenKind::kLParen) {
        return ParseIf();
      }
    }
    return ParseOr();
  }

  // for/let with one or more comma-separated bindings, desugared to nested
  // single-binding nodes.
  StatusOr<NodePtr> ParseFlwor(bool is_let) {
    Advance();  // 'for' / 'let'
    return ParseFlworBinding(is_let);
  }

  StatusOr<NodePtr> ParseFlworBinding(bool is_let) {
    size_t offset = cur_.begin;
    if (cur_.kind != TokenKind::kVariable) {
      return Error("expected a variable binding");
    }
    std::string var = cur_.text;
    Advance();
    if (is_let) {
      MHX_RETURN_IF_ERROR(Expect(TokenKind::kAssign));
    } else {
      MHX_RETURN_IF_ERROR(ExpectKeyword("in"));
    }
    MHX_ASSIGN_OR_RETURN(NodePtr value, ParseExprSingle());
    NodePtr body;
    if (cur_.kind == TokenKind::kComma &&
        Peek().kind == TokenKind::kVariable) {
      Advance();
      MHX_ASSIGN_OR_RETURN(body, ParseFlworBinding(is_let));
    } else {
      MHX_RETURN_IF_ERROR(ExpectKeyword("return"));
      MHX_ASSIGN_OR_RETURN(body, ParseExprSingle());
    }
    NodePtr node = Make(is_let ? ExprKind::kLet : ExprKind::kFor, offset);
    node->name = std::move(var);
    node->children.push_back(std::move(value));
    node->children.push_back(std::move(body));
    return node;
  }

  StatusOr<NodePtr> ParseQuantified() {
    size_t offset = cur_.begin;
    bool every = cur_.text == "every";
    Advance();
    if (cur_.kind != TokenKind::kVariable) {
      return Error("expected a variable binding");
    }
    std::string var = cur_.text;
    Advance();
    MHX_RETURN_IF_ERROR(ExpectKeyword("in"));
    MHX_ASSIGN_OR_RETURN(NodePtr seq, ParseExprSingle());
    MHX_RETURN_IF_ERROR(ExpectKeyword("satisfies"));
    MHX_ASSIGN_OR_RETURN(NodePtr body, ParseExprSingle());
    NodePtr node = Make(ExprKind::kQuantified, offset);
    node->name = std::move(var);
    node->every = every;
    node->children.push_back(std::move(seq));
    node->children.push_back(std::move(body));
    return node;
  }

  StatusOr<NodePtr> ParseIf() {
    size_t offset = cur_.begin;
    Advance();  // 'if'
    MHX_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    MHX_ASSIGN_OR_RETURN(NodePtr cond, ParseExpr());
    MHX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    MHX_RETURN_IF_ERROR(ExpectKeyword("then"));
    MHX_ASSIGN_OR_RETURN(NodePtr then_branch, ParseExprSingle());
    MHX_RETURN_IF_ERROR(ExpectKeyword("else"));
    MHX_ASSIGN_OR_RETURN(NodePtr else_branch, ParseExprSingle());
    NodePtr node = Make(ExprKind::kIf, offset);
    node->children.push_back(std::move(cond));
    node->children.push_back(std::move(then_branch));
    node->children.push_back(std::move(else_branch));
    return node;
  }

  StatusOr<NodePtr> ParseOr() {
    size_t offset = cur_.begin;
    MHX_ASSIGN_OR_RETURN(NodePtr first, ParseAnd());
    if (!AtKeyword("or")) return first;
    NodePtr node = Make(ExprKind::kOr, offset);
    node->children.push_back(std::move(first));
    while (AtKeyword("or")) {
      Advance();
      MHX_ASSIGN_OR_RETURN(NodePtr next, ParseAnd());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  StatusOr<NodePtr> ParseAnd() {
    size_t offset = cur_.begin;
    MHX_ASSIGN_OR_RETURN(NodePtr first, ParseCompare());
    if (!AtKeyword("and")) return first;
    NodePtr node = Make(ExprKind::kAnd, offset);
    node->children.push_back(std::move(first));
    while (AtKeyword("and")) {
      Advance();
      MHX_ASSIGN_OR_RETURN(NodePtr next, ParseCompare());
      node->children.push_back(std::move(next));
    }
    return node;
  }

  StatusOr<NodePtr> ParseCompare() {
    size_t offset = cur_.begin;
    MHX_ASSIGN_OR_RETURN(NodePtr lhs, ParseAdditive());
    CompareOp op;
    switch (cur_.kind) {
      case TokenKind::kEq:
        op = CompareOp::kEq;
        break;
      case TokenKind::kNe:
        op = CompareOp::kNe;
        break;
      case TokenKind::kLt:
        op = CompareOp::kLt;
        break;
      case TokenKind::kLe:
        op = CompareOp::kLe;
        break;
      case TokenKind::kGt:
        op = CompareOp::kGt;
        break;
      case TokenKind::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return lhs;
    }
    Advance();
    MHX_ASSIGN_OR_RETURN(NodePtr rhs, ParseAdditive());
    NodePtr node = Make(ExprKind::kCompare, offset);
    node->compare_op = op;
    node->children.push_back(std::move(lhs));
    node->children.push_back(std::move(rhs));
    return node;
  }

  StatusOr<NodePtr> ParseAdditive() {
    return ParseArithChain(&Parser::ParseMultiplicative, /*additive=*/true);
  }

  StatusOr<NodePtr> ParseMultiplicative() {
    return ParseArithChain(&Parser::ParseUnary, /*additive=*/false);
  }

  // Left-associative chain of the precedence level's arithmetic operators
  // (+/- when additive, * otherwise) over `operand`.
  StatusOr<NodePtr> ParseArithChain(StatusOr<NodePtr> (Parser::*operand)(),
                                    bool additive) {
    size_t offset = cur_.begin;
    int chain = 0;
    auto lhs = (this->*operand)();
    ArithOp op;
    while (lhs.ok() && ArithTokenOp(additive, &op)) {
      // Every operator deepens the left-leaning operand spine, so chains
      // draw from the same depth budget as any other nesting — a chain
      // inside deep parentheses cannot multiply past the cap.
      if (depth_ >= kMaxParseDepth) {
        lhs = Error("operator chain exceeds the nesting limit of " +
                    std::to_string(kMaxParseDepth));
        break;
      }
      ++depth_;
      ++chain;
      Advance();
      auto rhs = (this->*operand)();
      if (!rhs.ok()) {
        lhs = rhs.status();
        break;
      }
      NodePtr node = Make(ExprKind::kArith, offset);
      node->arith_op = op;
      node->children.push_back(std::move(lhs).value());
      node->children.push_back(std::move(rhs).value());
      lhs = std::move(node);
    }
    depth_ -= chain;
    return lhs;
  }

  bool ArithTokenOp(bool additive, ArithOp* op) const {
    if (additive && cur_.kind == TokenKind::kPlus) {
      *op = ArithOp::kAdd;
      return true;
    }
    if (additive && cur_.kind == TokenKind::kMinus) {
      *op = ArithOp::kSub;
      return true;
    }
    if (!additive && cur_.kind == TokenKind::kStar) {
      *op = ArithOp::kMul;
      return true;
    }
    return false;
  }

  StatusOr<NodePtr> ParseUnary() {
    if (cur_.kind == TokenKind::kMinus) {
      if (depth_ >= kMaxParseDepth) {
        return Error("expression nested deeper than " +
                     std::to_string(kMaxParseDepth));
      }
      size_t offset = cur_.begin;
      Advance();
      ++depth_;
      auto parsed = ParseUnary();
      --depth_;
      if (!parsed.ok()) return parsed.status();
      NodePtr operand = std::move(parsed).value();
      NodePtr zero = Make(ExprKind::kIntegerLiteral, offset);
      zero->integer_value = 0;
      NodePtr node = Make(ExprKind::kArith, offset);
      node->arith_op = ArithOp::kSub;
      node->children.push_back(std::move(zero));
      node->children.push_back(std::move(operand));
      return node;
    }
    return ParsePath();
  }

  static bool StartsAxisStep(const Token& token) {
    return token.kind == TokenKind::kName || token.kind == TokenKind::kStar;
  }

  bool StartsPrimary() const {
    switch (cur_.kind) {
      case TokenKind::kVariable:
      case TokenKind::kString:
      case TokenKind::kInteger:
      case TokenKind::kLParen:
      case TokenKind::kDot:
      case TokenKind::kLt:
        return true;
      case TokenKind::kName: {
        // A name followed by '(' is a function call — unless it is one of
        // the node-test calls, which belong to axis steps.
        if (Peek().kind != TokenKind::kLParen) return false;
        return cur_.text != "leaf" && cur_.text != "node";
      }
      default:
        return false;
    }
  }

  StatusOr<NodePtr> ParsePath() {
    size_t offset = cur_.begin;
    NodePtr path = Make(ExprKind::kPath, offset);
    if (cur_.kind == TokenKind::kSlash ||
        cur_.kind == TokenKind::kSlashSlash) {
      bool descendant = cur_.kind == TokenKind::kSlashSlash;
      path->absolute = true;
      Advance();
      if (!StartsAxisStep(cur_)) {
        if (descendant) return Error("expected a step after '//'");
        return path;  // bare '/': the document root
      }
      MHX_ASSIGN_OR_RETURN(
          PathStep step,
          ParseAxisStep(descendant ? xpath::Axis::kDescendant
                                   : xpath::Axis::kChild));
      path->steps.push_back(std::move(step));
    } else if (StartsPrimary()) {
      PathStep step;
      MHX_ASSIGN_OR_RETURN(step.primary, ParsePrimary());
      MHX_RETURN_IF_ERROR(ParsePredicates(&step));
      path->steps.push_back(std::move(step));
    } else if (StartsAxisStep(cur_)) {
      MHX_ASSIGN_OR_RETURN(PathStep step, ParseAxisStep(xpath::Axis::kChild));
      path->steps.push_back(std::move(step));
    } else {
      return Error("expected an expression but found " +
                   std::string(TokenKindName(cur_.kind)));
    }
    while (cur_.kind == TokenKind::kSlash ||
           cur_.kind == TokenKind::kSlashSlash) {
      bool descendant = cur_.kind == TokenKind::kSlashSlash;
      Advance();
      MHX_ASSIGN_OR_RETURN(
          PathStep step,
          ParseAxisStep(descendant ? xpath::Axis::kDescendant
                                   : xpath::Axis::kChild));
      path->steps.push_back(std::move(step));
    }
    // A lone primary without predicates needs no path wrapper.
    if (!path->absolute && path->steps.size() == 1 &&
        path->steps[0].primary != nullptr &&
        path->steps[0].predicates.empty()) {
      return std::move(path->steps[0].primary);
    }
    return path;
  }

  StatusOr<PathStep> ParseAxisStep(xpath::Axis default_axis) {
    PathStep step;
    step.axis = default_axis;
    if (cur_.kind == TokenKind::kStar) {
      step.test = PathStep::Test::kAnyElement;
      Advance();
      MHX_RETURN_IF_ERROR(ParsePredicates(&step));
      return step;
    }
    if (cur_.kind != TokenKind::kName) {
      return Error("expected a node test");
    }
    if (Peek().kind == TokenKind::kAxisSep) {
      size_t axis_offset = cur_.begin;
      auto axis = xpath::AxisFromName(cur_.text);
      if (!axis.ok()) {
        return ErrorAt(axis_offset, axis.status().message());
      }
      step.axis = *axis;
      Advance();  // axis name
      Advance();  // '::'
      if (cur_.kind == TokenKind::kStar) {
        step.test = PathStep::Test::kAnyElement;
        Advance();
        MHX_RETURN_IF_ERROR(ParsePredicates(&step));
        return step;
      }
      if (cur_.kind != TokenKind::kName) {
        return Error("expected a node test after '::'");
      }
    }
    std::string test_name = cur_.text;
    if (Peek().kind == TokenKind::kLParen &&
        (test_name == "leaf" || test_name == "node")) {
      Advance();  // test name
      Advance();  // '('
      MHX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      step.test = test_name == "leaf" ? PathStep::Test::kLeaf
                                      : PathStep::Test::kAnyNode;
    } else {
      step.test = PathStep::Test::kName;
      step.name = std::move(test_name);
      Advance();
    }
    MHX_RETURN_IF_ERROR(ParsePredicates(&step));
    return step;
  }

  Status ParsePredicates(PathStep* step) {
    while (cur_.kind == TokenKind::kLBracket) {
      Advance();
      MHX_ASSIGN_OR_RETURN(NodePtr pred, ParseExpr());
      MHX_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
      step->predicates.push_back(std::move(pred));
    }
    return OkStatus();
  }

  StatusOr<NodePtr> ParsePrimary() {
    size_t offset = cur_.begin;
    switch (cur_.kind) {
      case TokenKind::kString: {
        NodePtr node = Make(ExprKind::kStringLiteral, offset);
        node->string_value = cur_.text;
        Advance();
        return node;
      }
      case TokenKind::kInteger: {
        NodePtr node = Make(ExprKind::kIntegerLiteral, offset);
        node->integer_value = 0;
        constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
        for (char c : cur_.text) {
          const int64_t digit = c - '0';
          if (node->integer_value > (kMax - digit) / 10) {
            return Error("integer literal out of range");
          }
          node->integer_value = node->integer_value * 10 + digit;
        }
        Advance();
        return node;
      }
      case TokenKind::kVariable: {
        NodePtr node = Make(ExprKind::kVarRef, offset);
        node->name = cur_.text;
        Advance();
        return node;
      }
      case TokenKind::kDot: {
        NodePtr node = Make(ExprKind::kContextItem, offset);
        Advance();
        return node;
      }
      case TokenKind::kLParen: {
        Advance();
        if (cur_.kind == TokenKind::kRParen) {
          Advance();
          return Make(ExprKind::kSequence, offset);  // empty sequence "()"
        }
        MHX_ASSIGN_OR_RETURN(NodePtr inner, ParseExpr());
        MHX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kName: {
        NodePtr node = Make(ExprKind::kFunctionCall, offset);
        node->name = cur_.text;
        Advance();
        MHX_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        if (cur_.kind != TokenKind::kRParen) {
          while (true) {
            MHX_ASSIGN_OR_RETURN(NodePtr arg, ParseExprSingle());
            node->children.push_back(std::move(arg));
            if (cur_.kind != TokenKind::kComma) break;
            Advance();
          }
        }
        MHX_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return node;
      }
      case TokenKind::kLt:
        return ParseConstructor();
      default:
        return Error("expected an expression but found " +
                     std::string(TokenKindName(cur_.kind)));
    }
  }

  // --- direct constructors (raw-source mode) -------------------------------

  StatusOr<NodePtr> ParseConstructor() {
    size_t pos = cur_.begin + 1;  // just past '<'
    MHX_ASSIGN_OR_RETURN(NodePtr node, ParseConstructorAt(&pos));
    // Resynchronise the token stream after the raw scan.
    cur_.end = pos;
    Advance();
    return node;
  }

  // `*pos` points just past the '<' of an opening tag; on success it is
  // moved past the construct's closing '>'.
  StatusOr<NodePtr> ParseConstructorAt(size_t* pos) {
    // Directly nested constructors bypass ParseExprSingle; bound them too.
    if (depth_ >= kMaxParseDepth) {
      return ErrorAt(*pos, "constructors nested deeper than " +
                               std::to_string(kMaxParseDepth));
    }
    ++depth_;
    auto result = ParseConstructorAtImpl(pos);
    --depth_;
    return result;
  }

  StatusOr<NodePtr> ParseConstructorAtImpl(size_t* pos) {
    size_t p = *pos;
    size_t name_begin = p;
    if (p < src_.size() && IsXmlNameStartChar(src_[p]) && src_[p] != ':') {
      ++p;
      while (p < src_.size() && IsXmlNameChar(src_[p])) ++p;
    }
    if (p == name_begin) {
      return ErrorAt(name_begin, "expected an element name after '<'");
    }
    NodePtr node = Make(ExprKind::kConstructor, name_begin - 1);
    node->name = std::string(src_.substr(name_begin, p - name_begin));

    // Attributes until '>' or '/>'.
    while (true) {
      while (p < src_.size() && IsSpace(src_[p])) ++p;
      if (p >= src_.size()) {
        return ErrorAt(p, "unterminated start tag <" + node->name);
      }
      if (src_[p] == '/') {
        if (p + 1 >= src_.size() || src_[p + 1] != '>') {
          return ErrorAt(p, "expected '/>' in <" + node->name);
        }
        *pos = p + 2;
        return node;  // empty element
      }
      if (src_[p] == '>') {
        ++p;
        break;
      }
      MHX_RETURN_IF_ERROR(ParseConstructorAttribute(node.get(), &p));
    }

    // Content until the matching close tag.
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      ConstructorPart part;
      part.text = std::move(text);
      text.clear();
      node->content.push_back(std::move(part));
    };
    while (true) {
      if (p >= src_.size()) {
        return ErrorAt(p, "unterminated content of <" + node->name + ">");
      }
      char c = src_[p];
      if (c == '<') {
        if (p + 1 < src_.size() && src_[p + 1] == '/') {
          size_t close_begin = p;
          p += 2;
          size_t nb = p;
          while (p < src_.size() && IsXmlNameChar(src_[p])) ++p;
          std::string close_name(src_.substr(nb, p - nb));
          while (p < src_.size() && IsSpace(src_[p])) ++p;
          if (p >= src_.size() || src_[p] != '>') {
            return ErrorAt(p, "expected '>' in closing tag");
          }
          ++p;
          if (close_name != node->name) {
            return ErrorAt(close_begin, "mismatched closing tag </" +
                                            close_name + "> for <" +
                                            node->name + ">");
          }
          flush_text();
          *pos = p;
          return node;
        }
        ++p;
        flush_text();
        ConstructorPart part;
        MHX_ASSIGN_OR_RETURN(NodePtr nested, ParseConstructorAt(&p));
        part.expr = std::move(nested);
        node->content.push_back(std::move(part));
        continue;
      }
      if (c == '{') {
        if (p + 1 < src_.size() && src_[p + 1] == '{') {
          text.push_back('{');
          p += 2;
          continue;
        }
        flush_text();
        ConstructorPart part;
        MHX_ASSIGN_OR_RETURN(part.expr, ParseEnclosedExpr(&p));
        node->content.push_back(std::move(part));
        continue;
      }
      if (c == '}') {
        if (p + 1 < src_.size() && src_[p + 1] == '}') {
          text.push_back('}');
          p += 2;
          continue;
        }
        return ErrorAt(p, "unescaped '}' in constructor content");
      }
      text.push_back(c);
      ++p;
    }
  }

  Status ParseConstructorAttribute(AstNode* node, size_t* pos) {
    size_t p = *pos;
    size_t nb = p;
    if (p < src_.size() && IsXmlNameStartChar(src_[p]) && src_[p] != ':') {
      ++p;
      while (p < src_.size() && IsXmlNameChar(src_[p])) ++p;
    }
    if (p == nb) return ErrorAt(p, "expected an attribute name");
    ConstructorAttribute attr;
    attr.name = std::string(src_.substr(nb, p - nb));
    while (p < src_.size() && IsSpace(src_[p])) ++p;
    if (p >= src_.size() || src_[p] != '=') {
      return ErrorAt(p, "expected '=' after attribute name");
    }
    ++p;
    while (p < src_.size() && IsSpace(src_[p])) ++p;
    if (p >= src_.size() || (src_[p] != '"' && src_[p] != '\'')) {
      return ErrorAt(p, "expected a quoted attribute value");
    }
    const char quote = src_[p];
    ++p;
    std::string text;
    auto flush_text = [&]() {
      if (text.empty()) return;
      ConstructorPart part;
      part.text = std::move(text);
      text.clear();
      attr.parts.push_back(std::move(part));
    };
    while (true) {
      if (p >= src_.size()) {
        return ErrorAt(p, "unterminated attribute value");
      }
      char c = src_[p];
      if (c == quote) {
        ++p;
        break;
      }
      if (c == '{') {
        if (p + 1 < src_.size() && src_[p + 1] == '{') {
          text.push_back('{');
          p += 2;
          continue;
        }
        flush_text();
        ConstructorPart part;
        MHX_ASSIGN_OR_RETURN(part.expr, ParseEnclosedExpr(&p));
        attr.parts.push_back(std::move(part));
        continue;
      }
      if (c == '}') {
        if (p + 1 < src_.size() && src_[p + 1] == '}') {
          text.push_back('}');
          p += 2;
          continue;
        }
        // Same rule as element content: a lone '}' must be doubled.
        return ErrorAt(p, "unescaped '}' in attribute value");
      }
      text.push_back(c);
      ++p;
    }
    flush_text();
    node->attributes.push_back(std::move(attr));
    *pos = p;
    return OkStatus();
  }

  // `*pos` points at the '{' of an enclosed expression; parses it in token
  // mode and moves `*pos` past the matching '}'.
  StatusOr<NodePtr> ParseEnclosedExpr(size_t* pos) {
    cur_.end = *pos + 1;  // token mode resumes just past '{'
    Advance();
    MHX_ASSIGN_OR_RETURN(NodePtr expr, ParseExpr());
    if (cur_.kind != TokenKind::kRBrace) {
      return Error("expected '}' after enclosed expression");
    }
    *pos = cur_.end;
    return expr;
  }

  static bool IsSpace(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }

  Lexer lex_;
  std::string_view src_;
  Token cur_;
  int depth_ = 0;
};

// Stamps the per-loop body classifications (see AstNode) on every kFor /
// kQuantified node, so the engine never re-walks an immutable body subtree
// at evaluation time.
void StampLoopClassifications(AstNode* node) {
  VisitSubExprs(*node,
                [](AstNode& child) { StampLoopClassifications(&child); });
  if (node->kind == ExprKind::kFor || node->kind == ExprKind::kQuantified) {
    node->body_parallel_safe = IsParallelSafe(*node->children[1]);
    node->body_contains_analyze_string =
        ContainsAnalyzeString(*node->children[1]);
  }
}

}  // namespace

StatusOr<std::unique_ptr<Expr>> ParseQuery(std::string_view query) {
  Parser parser(query);
  MHX_ASSIGN_OR_RETURN(NodePtr root, parser.Parse());
  StampLoopClassifications(root.get());
  return std::make_unique<Expr>(std::string(query), std::move(root));
}

}  // namespace mhx::xquery
