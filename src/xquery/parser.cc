// Copyright (c) mhxq authors. Licensed under the MIT license.

#include "xquery/parser.h"

namespace mhx::xquery {

StatusOr<std::unique_ptr<Expr>> ParseQuery(std::string_view /*query*/) {
  return UnimplementedError("the XQuery parser is not implemented yet");
}

}  // namespace mhx::xquery
