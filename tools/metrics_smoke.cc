// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// CI smoke driver for the observability stack: builds a 2-document
// corpus, runs a traced Section-4-shape query at threads=4, and asserts
// the trace contract from obs/trace.h —
//   * stage spans are non-overlapping and in pipeline order,
//   * their total duration is within 10% of the measured wall time,
//   * the parallel loop reports per-slot spans with binding counts that
//     sum to the loop's bindings, steals attributed per slot,
// then dumps the registry's Prometheus TextExport() to stdout for
// tools/check_metrics.py — asserting first that the planner/kernel
// counters of this build are present and moved. Exits non-zero (with a
// message on stderr) on any violation, so the CI step fails loudly.
//
// `metrics_smoke --explain` instead prints Engine::ExplainPlan for a set
// of Section-4-shape queries against a generated edition and asserts the
// plan shape: containment axes indexed, ordering axes scanned (when the
// vectorized kernels apply), name tests pushed down.
//
// `metrics_smoke --persist` exercises the zero-copy persistence stack
// (goddag/persist.h) end to end on a 1600-word edition: byte-identical
// query results between the parsed document and its mmap-loaded arena
// across every plan mode, a >= 10x cold-start speedup of the mapped load
// over XML reparse + index rebuild (best of N), and the corpus spill
// counters (`mhx_snapshots_persisted_total`, `mhx_mmap_loads_total`,
// `mhx_load_fallbacks_total`) moving under LRU churn and a corrupted
// spill file.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>
#define METRICS_SMOKE_HAVE_POSIX 1
#endif

#include "corpus/corpus.h"
#include "goddag/persist.h"
#include "obs/trace.h"
#include "workload/generator.h"
#include "xquery/engine.h"

namespace {

using mhx::corpus::CorpusOptions;
using mhx::corpus::CorpusService;
using mhx::obs::QueryTrace;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "metrics_smoke: FAILED: %s\n", what);
    std::exit(1);
  }
}

// The paper's I.2 shape: a `for` over every line — enough bindings to fan
// out across 4 slots and show work stealing under skewed line costs.
const char* kTracedQuery = R"(
for $l in /descendant::line
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))";

mhx::workload::EditionConfig ConfigFor(size_t i) {
  mhx::workload::EditionConfig config;
  config.seed = 404 + i;
  config.word_count = 160;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

// --explain: print the physical plan for Section-4-shape queries and
// assert its shape. Runs on a larger edition so the cost model sees the
// regime the paper's workloads run in.
int RunExplain() {
  // Thousands of words, not ConfigFor's smoke-sized edition: the cost
  // model must see the regime where an indexed containment probe beats
  // even the vectorized scan (on a tiny document the scan wins every
  // axis, which is also correct but asserts nothing interesting).
  mhx::workload::EditionConfig config = ConfigFor(0);
  config.word_count = 4000;
  auto doc = mhx::workload::BuildEditionDocument(config);
  Check(doc.ok(), "build edition for --explain");
  const char* kQueries[] = {
      "/descendant::w[xancestor::dmg]",
      "/descendant::line/xdescendant::w",
      "for $w in /descendant::w return $w/overlapping::dmg",
      "/descendant::w/xfollowing::line",
      "/descendant::dmg/xpreceding::w",
  };
  std::string all;
  for (const char* query : kQueries) {
    auto plan = doc->engine()->ExplainPlan(query);
    Check(plan.ok(), "ExplainPlan evaluates");
    std::printf("query: %s\n%s\n", query, plan->c_str());
    all += *plan;
  }
  // Plan-shape assertions (cost-model sanity, not byte-exact rendering):
  // containment probes stay indexed, a name test rides into the probe,
  // and the rendering names the kernel the dispatch resolved to.
  Check(all.find("strategy=indexed") != std::string::npos,
        "some step plans an indexed probe");
  Check(all.find("pushdown=") != std::string::npos,
        "a name test was pushed down");
  Check(all.find("kernel=") != std::string::npos,
        "plan header names the dispatched kernel");
  std::fprintf(stderr, "metrics_smoke: OK (--explain)\n");
  return 0;
}

// --persist: the zero-copy persistence smoke (see the file comment).
// Needs POSIX for mkdtemp/readdir; elsewhere it reports a skip and
// passes, like the sanitizer lanes do for platform-gated tests.
int RunPersist() {
#if !defined(METRICS_SMOKE_HAVE_POSIX)
  std::fprintf(stderr, "metrics_smoke: SKIPPED (--persist needs POSIX)\n");
  return 0;
#else
  char dir_template[] = "/tmp/mhx_persist_smoke.XXXXXX";
  char* dir = mkdtemp(dir_template);
  Check(dir != nullptr, "mkdtemp for the spill directory");
  const std::string spill_dir = dir;
  const std::string arena_path = spill_dir + "/edition.mhxa";

  // The acceptance edition: 1600 words, the paper's overlap density.
  mhx::workload::EditionConfig config = ConfigFor(0);
  config.word_count = 1600;

  auto parsed = mhx::workload::BuildEditionDocument(config);
  Check(parsed.ok(), "build the 1600-word edition");
  auto parsed_snapshot = parsed->PinSnapshot();
  Check(mhx::goddag::WriteSnapshotFile(*parsed_snapshot, arena_path).ok(),
        "write the edition arena");

  auto mapped = mhx::goddag::LoadSnapshotFile(arena_path);
  Check(mapped.ok(), "mmap-load the edition arena");
  auto loaded = mhx::MultihierarchicalDocument::FromSnapshot(
      std::move(mapped->head), std::move(mapped->snapshot));

  // Byte-identity battery: every plan mode, serial and fanned out, the
  // traced I.2 shape plus extended-axis queries.
  const char* kQueries[] = {
      kTracedQuery,
      "/descendant::w[xancestor::dmg]",
      "for $w in /descendant::w return $w/overlapping::dmg",
      "/descendant::line/xdescendant::w",
  };
  const mhx::xquery::PlanMode kModes[] = {
      mhx::xquery::PlanMode::kAuto, mhx::xquery::PlanMode::kForceNaive,
      mhx::xquery::PlanMode::kForceIndexed, mhx::xquery::PlanMode::kForceSort};
  size_t compared = 0;
  for (const char* query : kQueries) {
    for (mhx::xquery::PlanMode mode : kModes) {
      for (unsigned threads : {1u, 4u}) {
        mhx::QueryOptions options;
        options.threads = threads;
        options.plan_mode = mode;
        auto from_parse = parsed->Query(query, options);
        auto from_map = loaded.Query(query, options);
        Check(from_parse.ok(), "parsed document evaluates");
        Check(from_map.ok(), "mapped document evaluates");
        Check(*from_parse == *from_map,
              "parsed and mapped results are byte-identical");
        ++compared;
      }
    }
  }

  // Cold start: best-of-N mmap load vs best-of-N XML reparse + index
  // rebuild, both ending in a query-ready snapshot. Best-of discards
  // scheduler noise, so more rounds make the ratio steadier, and the parse
  // lane is ~1.5ms a round — nine rounds are still cheap.
  const int kRounds = 9;
  auto now_us = [] {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };
  long long parse_best = -1;
  for (int i = 0; i < kRounds; ++i) {
    const long long begin = now_us();
    auto doc = mhx::workload::BuildEditionDocument(config);
    Check(doc.ok(), "timed reparse builds");
    auto snapshot = doc->PinSnapshot();
    snapshot->index();  // the engine's first-evaluation index build
    snapshot->stats();
    const long long took = now_us() - begin;
    if (parse_best < 0 || took < parse_best) parse_best = took;
  }
  long long load_best = -1;
  for (int i = 0; i < kRounds; ++i) {
    const long long begin = now_us();
    auto cold = mhx::goddag::LoadSnapshotFile(arena_path);
    Check(cold.ok(), "timed mmap load succeeds");
    cold->snapshot->index();  // adopted, not rebuilt
    cold->snapshot->stats();
    const long long took = now_us() - begin;
    if (load_best < 0 || took < load_best) load_best = took;
  }
  std::fprintf(stderr,
               "metrics_smoke: cold start parse=%lldus mmap=%lldus (%.1fx)\n",
               parse_best, load_best,
               static_cast<double>(parse_best) /
                   static_cast<double>(std::max(load_best, 1ll)));
  Check(load_best * 10 <= parse_best,
        "mmap cold start is >= 10x faster than reparse + rebuild");

  // Corpus churn: capacity 1 with spill on, so every alternation evicts
  // and the second touch of each edition must come from its arena.
  CorpusOptions options;
  options.capacity = 1;
  options.pool_threads = 2;
  options.spill_dir = spill_dir;
  CorpusService corpus(options);
  Check(corpus.Register("alpha", ConfigFor(0)).ok(), "register alpha");
  Check(corpus.Register("beta", ConfigFor(1)).ok(), "register beta");
  const char* kChurnQuery = "/descendant::w[xancestor::dmg]";
  Check(corpus.Query("alpha", kChurnQuery).ok(), "alpha builds and spills");
  Check(corpus.Query("beta", kChurnQuery).ok(), "beta evicts alpha");
  Check(corpus.Query("alpha", kChurnQuery).ok(), "alpha reloads from arena");
  auto stats = corpus.stats();
  Check(stats.snapshots_persisted >= 2, "both editions were spilled");
  Check(stats.mmap_loads >= 1, "the alpha reload was a mapped load");
  Check(stats.load_fallbacks == 0, "no fallbacks on intact arenas");

  // Corrupt every spill file, then touch the cold edition: the load must
  // fail closed, fall back to the parse build, and count it.
  DIR* d = opendir(spill_dir.c_str());
  Check(d != nullptr, "open the spill directory");
  size_t corrupted = 0;
  while (struct dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() < 5 || name.compare(name.size() - 5, 5, ".mhxa") != 0) {
      continue;
    }
    std::ofstream out(spill_dir + "/" + name,
                      std::ios::binary | std::ios::trunc);
    out << "not an arena at all; the loader must reject this";
    ++corrupted;
  }
  closedir(d);
  Check(corrupted >= 2, "spill files found to corrupt");
  Check(corpus.Query("beta", kChurnQuery).ok(),
        "beta still serves after its arena was corrupted");
  stats = corpus.stats();
  Check(stats.load_fallbacks >= 1, "the corrupted load fell back and counted");

  const std::string exported = corpus.metrics().TextExport();
  Check(exported.find("mhx_snapshots_persisted_total") != std::string::npos,
        "persisted counter exported");
  Check(exported.find("mhx_mmap_loads_total") != std::string::npos,
        "mmap-load counter exported");
  Check(exported.find("mhx_load_fallbacks_total") != std::string::npos,
        "fallback counter exported");

  std::fprintf(stderr,
               "metrics_smoke: OK (--persist: %zu identical results, "
               "cold start %.1fx, persisted=%zu mmap_loads=%zu "
               "fallbacks=%zu)\n",
               compared,
               static_cast<double>(parse_best) /
                   static_cast<double>(std::max(load_best, 1ll)),
               stats.snapshots_persisted, stats.mmap_loads,
               stats.load_fallbacks);
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--explain") == 0) {
    return RunExplain();
  }
  if (argc > 1 && std::strcmp(argv[1], "--persist") == 0) {
    return RunPersist();
  }
  CorpusOptions options;
  options.capacity = 2;
  options.pool_threads = 4;
  options.slow_query_threshold_us = 0;  // capture every query
  options.slow_query_log_capacity = 16;
  CorpusService corpus(options);
  Check(corpus.Register("alpha", ConfigFor(0)).ok(), "register alpha");
  Check(corpus.Register("beta", ConfigFor(1)).ok(), "register beta");

  // Warm both documents and the plan cache so the traced run below
  // measures serving, not cold builds.
  mhx::QueryOptions warm;
  warm.threads = 4;
  Check(corpus.Query("alpha", kTracedQuery, warm).ok(), "warm alpha");
  Check(corpus.Query("beta", kTracedQuery, warm).ok(), "warm beta");

  QueryTrace trace;
  mhx::QueryOptions traced;
  traced.threads = 4;
  traced.trace = &trace;
  const uint64_t wall_begin = trace.NowNs();
  auto result = corpus.Query("alpha", kTracedQuery, traced);
  const uint64_t wall_ns = trace.NowNs() - wall_begin;
  Check(result.ok(), "traced query evaluates");

  std::vector<QueryTrace::Span> stages;
  std::vector<QueryTrace::Span> slots;
  for (const QueryTrace::Span& span : trace.spans()) {
    (span.kind == QueryTrace::SpanKind::kStage ? stages : slots)
        .push_back(span);
  }
  Check(stages.size() >= 3,
        "traced query reports at least parse/evaluate/serialize stages");
  std::sort(stages.begin(), stages.end(),
            [](const QueryTrace::Span& a, const QueryTrace::Span& b) {
              return a.begin_ns < b.begin_ns;
            });
  uint64_t stage_total_ns = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    Check(stages[i].end_ns >= stages[i].begin_ns, "stage span is ordered");
    Check(i == 0 || stages[i].begin_ns >= stages[i - 1].end_ns,
          "stage spans do not overlap");
    stage_total_ns += stages[i].end_ns - stages[i].begin_ns;
  }
  Check(stage_total_ns <= wall_ns, "stage total does not exceed wall time");
  Check(stage_total_ns * 10 >= wall_ns * 9,
        "stage spans sum to within 10% of wall time");

  Check(!slots.empty(), "parallel loop reports per-slot spans");
  uint64_t slot_bindings = 0;
  uint64_t slot_steals = 0;
  for (const QueryTrace::Span& span : slots) {
    Check(span.bindings > 0, "slot span has bindings attributed");
    slot_bindings += span.bindings;
    slot_steals += span.steals;
  }
  Check(slot_bindings > 0, "slots evaluated the loop's bindings");
  Check(slot_steals == trace.steals(),
        "per-slot steal attribution matches the trace total");

  const auto slow = corpus.DumpSlowQueries();
  Check(!slow.empty(), "threshold-0 slow log captured the traffic");
  Check(corpus.stats().slow_queries == slow.size() ||
            corpus.stats().slow_queries >= slow.size(),
        "stats.slow_queries covers the dump");

  // The planner/kernel counters of this build must be registered, and the
  // Section-4-shape traffic above must have exercised the planner: its
  // extended-axis steps ran under kAuto, so the strategy counters moved
  // and each (expr, document) pair paid exactly its first-plan build.
  const std::string exported = corpus.metrics().TextExport();
  auto sample = [&exported](const char* name) -> long long {
    const std::string needle = std::string(name) + " ";
    const size_t pos = exported.find("\n" + needle);
    Check(pos != std::string::npos, name);
    return std::atoll(exported.c_str() + pos + 1 + needle.size());
  };
  Check(sample("mhx_plan_steps_indexed_total") +
            sample("mhx_plan_steps_scanned_total") > 0,
        "planned extended-axis steps were counted");
  Check(sample("mhx_plan_pushdowns_total") > 0,
        "name-test pushdowns were counted");
  Check(sample("mhx_plan_cache_replans_total") > 0,
        "plan builds were counted");
  sample("mhx_kernel_simd_dispatch_total");  // registered (0 off-x86)

  std::fputs(exported.c_str(), stdout);
  std::fprintf(stderr,
               "metrics_smoke: OK (wall=%lluus stages=%zu stage_total=%lluus "
               "slots=%zu steals=%llu slow_log=%zu)\n",
               static_cast<unsigned long long>(wall_ns / 1000),
               stages.size(),
               static_cast<unsigned long long>(stage_total_ns / 1000),
               slots.size(),
               static_cast<unsigned long long>(trace.steals()), slow.size());
  return 0;
}
