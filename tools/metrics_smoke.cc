// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// CI smoke driver for the observability stack: builds a 2-document
// corpus, runs a traced Section-4-shape query at threads=4, and asserts
// the trace contract from obs/trace.h —
//   * stage spans are non-overlapping and in pipeline order,
//   * their total duration is within 10% of the measured wall time,
//   * the parallel loop reports per-slot spans with binding counts that
//     sum to the loop's bindings, steals attributed per slot,
// then dumps the registry's Prometheus TextExport() to stdout for
// tools/check_metrics.py — asserting first that the planner/kernel
// counters of this build are present and moved. Exits non-zero (with a
// message on stderr) on any violation, so the CI step fails loudly.
//
// `metrics_smoke --explain` instead prints Engine::ExplainPlan for a set
// of Section-4-shape queries against a generated edition and asserts the
// plan shape: containment axes indexed, ordering axes scanned (when the
// vectorized kernels apply), name tests pushed down.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "obs/trace.h"
#include "workload/generator.h"
#include "xquery/engine.h"

namespace {

using mhx::corpus::CorpusOptions;
using mhx::corpus::CorpusService;
using mhx::obs::QueryTrace;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "metrics_smoke: FAILED: %s\n", what);
    std::exit(1);
  }
}

// The paper's I.2 shape: a `for` over every line — enough bindings to fan
// out across 4 slots and show work stealing under skewed line costs.
const char* kTracedQuery = R"(
for $l in /descendant::line
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))";

mhx::workload::EditionConfig ConfigFor(size_t i) {
  mhx::workload::EditionConfig config;
  config.seed = 404 + i;
  config.word_count = 160;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

// --explain: print the physical plan for Section-4-shape queries and
// assert its shape. Runs on a larger edition so the cost model sees the
// regime the paper's workloads run in.
int RunExplain() {
  // Thousands of words, not ConfigFor's smoke-sized edition: the cost
  // model must see the regime where an indexed containment probe beats
  // even the vectorized scan (on a tiny document the scan wins every
  // axis, which is also correct but asserts nothing interesting).
  mhx::workload::EditionConfig config = ConfigFor(0);
  config.word_count = 4000;
  auto doc = mhx::workload::BuildEditionDocument(config);
  Check(doc.ok(), "build edition for --explain");
  const char* kQueries[] = {
      "/descendant::w[xancestor::dmg]",
      "/descendant::line/xdescendant::w",
      "for $w in /descendant::w return $w/overlapping::dmg",
      "/descendant::w/xfollowing::line",
      "/descendant::dmg/xpreceding::w",
  };
  std::string all;
  for (const char* query : kQueries) {
    auto plan = doc->engine()->ExplainPlan(query);
    Check(plan.ok(), "ExplainPlan evaluates");
    std::printf("query: %s\n%s\n", query, plan->c_str());
    all += *plan;
  }
  // Plan-shape assertions (cost-model sanity, not byte-exact rendering):
  // containment probes stay indexed, a name test rides into the probe,
  // and the rendering names the kernel the dispatch resolved to.
  Check(all.find("strategy=indexed") != std::string::npos,
        "some step plans an indexed probe");
  Check(all.find("pushdown=") != std::string::npos,
        "a name test was pushed down");
  Check(all.find("kernel=") != std::string::npos,
        "plan header names the dispatched kernel");
  std::fprintf(stderr, "metrics_smoke: OK (--explain)\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--explain") == 0) {
    return RunExplain();
  }
  CorpusOptions options;
  options.capacity = 2;
  options.pool_threads = 4;
  options.slow_query_threshold_us = 0;  // capture every query
  options.slow_query_log_capacity = 16;
  CorpusService corpus(options);
  Check(corpus.Register("alpha", ConfigFor(0)).ok(), "register alpha");
  Check(corpus.Register("beta", ConfigFor(1)).ok(), "register beta");

  // Warm both documents and the plan cache so the traced run below
  // measures serving, not cold builds.
  mhx::QueryOptions warm;
  warm.threads = 4;
  Check(corpus.Query("alpha", kTracedQuery, warm).ok(), "warm alpha");
  Check(corpus.Query("beta", kTracedQuery, warm).ok(), "warm beta");

  QueryTrace trace;
  mhx::QueryOptions traced;
  traced.threads = 4;
  traced.trace = &trace;
  const uint64_t wall_begin = trace.NowNs();
  auto result = corpus.Query("alpha", kTracedQuery, traced);
  const uint64_t wall_ns = trace.NowNs() - wall_begin;
  Check(result.ok(), "traced query evaluates");

  std::vector<QueryTrace::Span> stages;
  std::vector<QueryTrace::Span> slots;
  for (const QueryTrace::Span& span : trace.spans()) {
    (span.kind == QueryTrace::SpanKind::kStage ? stages : slots)
        .push_back(span);
  }
  Check(stages.size() >= 3,
        "traced query reports at least parse/evaluate/serialize stages");
  std::sort(stages.begin(), stages.end(),
            [](const QueryTrace::Span& a, const QueryTrace::Span& b) {
              return a.begin_ns < b.begin_ns;
            });
  uint64_t stage_total_ns = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    Check(stages[i].end_ns >= stages[i].begin_ns, "stage span is ordered");
    Check(i == 0 || stages[i].begin_ns >= stages[i - 1].end_ns,
          "stage spans do not overlap");
    stage_total_ns += stages[i].end_ns - stages[i].begin_ns;
  }
  Check(stage_total_ns <= wall_ns, "stage total does not exceed wall time");
  Check(stage_total_ns * 10 >= wall_ns * 9,
        "stage spans sum to within 10% of wall time");

  Check(!slots.empty(), "parallel loop reports per-slot spans");
  uint64_t slot_bindings = 0;
  uint64_t slot_steals = 0;
  for (const QueryTrace::Span& span : slots) {
    Check(span.bindings > 0, "slot span has bindings attributed");
    slot_bindings += span.bindings;
    slot_steals += span.steals;
  }
  Check(slot_bindings > 0, "slots evaluated the loop's bindings");
  Check(slot_steals == trace.steals(),
        "per-slot steal attribution matches the trace total");

  const auto slow = corpus.DumpSlowQueries();
  Check(!slow.empty(), "threshold-0 slow log captured the traffic");
  Check(corpus.stats().slow_queries == slow.size() ||
            corpus.stats().slow_queries >= slow.size(),
        "stats.slow_queries covers the dump");

  // The planner/kernel counters of this build must be registered, and the
  // Section-4-shape traffic above must have exercised the planner: its
  // extended-axis steps ran under kAuto, so the strategy counters moved
  // and each (expr, document) pair paid exactly its first-plan build.
  const std::string exported = corpus.metrics().TextExport();
  auto sample = [&exported](const char* name) -> long long {
    const std::string needle = std::string(name) + " ";
    const size_t pos = exported.find("\n" + needle);
    Check(pos != std::string::npos, name);
    return std::atoll(exported.c_str() + pos + 1 + needle.size());
  };
  Check(sample("mhx_plan_steps_indexed_total") +
            sample("mhx_plan_steps_scanned_total") > 0,
        "planned extended-axis steps were counted");
  Check(sample("mhx_plan_pushdowns_total") > 0,
        "name-test pushdowns were counted");
  Check(sample("mhx_plan_cache_replans_total") > 0,
        "plan builds were counted");
  sample("mhx_kernel_simd_dispatch_total");  // registered (0 off-x86)

  std::fputs(exported.c_str(), stdout);
  std::fprintf(stderr,
               "metrics_smoke: OK (wall=%lluus stages=%zu stage_total=%lluus "
               "slots=%zu steals=%llu slow_log=%zu)\n",
               static_cast<unsigned long long>(wall_ns / 1000),
               stages.size(),
               static_cast<unsigned long long>(stage_total_ns / 1000),
               slots.size(),
               static_cast<unsigned long long>(trace.steals()), slow.size());
  return 0;
}
