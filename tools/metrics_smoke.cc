// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// CI smoke driver for the observability stack: builds a 2-document
// corpus, runs a traced Section-4-shape query at threads=4, and asserts
// the trace contract from obs/trace.h —
//   * stage spans are non-overlapping and in pipeline order,
//   * their total duration is within 10% of the measured wall time,
//   * the parallel loop reports per-slot spans with binding counts that
//     sum to the loop's bindings, steals attributed per slot,
// then dumps the registry's Prometheus TextExport() to stdout for
// tools/check_metrics.py. Exits non-zero (with a message on stderr) on
// any violation, so the CI step fails loudly.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "obs/trace.h"
#include "workload/generator.h"

namespace {

using mhx::corpus::CorpusOptions;
using mhx::corpus::CorpusService;
using mhx::obs::QueryTrace;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "metrics_smoke: FAILED: %s\n", what);
    std::exit(1);
  }
}

// The paper's I.2 shape: a `for` over every line — enough bindings to fan
// out across 4 slots and show work stealing under skewed line costs.
const char* kTracedQuery = R"(
for $l in /descendant::line
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))";

mhx::workload::EditionConfig ConfigFor(size_t i) {
  mhx::workload::EditionConfig config;
  config.seed = 404 + i;
  config.word_count = 160;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

}  // namespace

int main() {
  CorpusOptions options;
  options.capacity = 2;
  options.pool_threads = 4;
  options.slow_query_threshold_us = 0;  // capture every query
  options.slow_query_log_capacity = 16;
  CorpusService corpus(options);
  Check(corpus.Register("alpha", ConfigFor(0)).ok(), "register alpha");
  Check(corpus.Register("beta", ConfigFor(1)).ok(), "register beta");

  // Warm both documents and the plan cache so the traced run below
  // measures serving, not cold builds.
  mhx::QueryOptions warm;
  warm.threads = 4;
  Check(corpus.Query("alpha", kTracedQuery, warm).ok(), "warm alpha");
  Check(corpus.Query("beta", kTracedQuery, warm).ok(), "warm beta");

  QueryTrace trace;
  mhx::QueryOptions traced;
  traced.threads = 4;
  traced.trace = &trace;
  const uint64_t wall_begin = trace.NowNs();
  auto result = corpus.Query("alpha", kTracedQuery, traced);
  const uint64_t wall_ns = trace.NowNs() - wall_begin;
  Check(result.ok(), "traced query evaluates");

  std::vector<QueryTrace::Span> stages;
  std::vector<QueryTrace::Span> slots;
  for (const QueryTrace::Span& span : trace.spans()) {
    (span.kind == QueryTrace::SpanKind::kStage ? stages : slots)
        .push_back(span);
  }
  Check(stages.size() >= 3,
        "traced query reports at least parse/evaluate/serialize stages");
  std::sort(stages.begin(), stages.end(),
            [](const QueryTrace::Span& a, const QueryTrace::Span& b) {
              return a.begin_ns < b.begin_ns;
            });
  uint64_t stage_total_ns = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    Check(stages[i].end_ns >= stages[i].begin_ns, "stage span is ordered");
    Check(i == 0 || stages[i].begin_ns >= stages[i - 1].end_ns,
          "stage spans do not overlap");
    stage_total_ns += stages[i].end_ns - stages[i].begin_ns;
  }
  Check(stage_total_ns <= wall_ns, "stage total does not exceed wall time");
  Check(stage_total_ns * 10 >= wall_ns * 9,
        "stage spans sum to within 10% of wall time");

  Check(!slots.empty(), "parallel loop reports per-slot spans");
  uint64_t slot_bindings = 0;
  uint64_t slot_steals = 0;
  for (const QueryTrace::Span& span : slots) {
    Check(span.bindings > 0, "slot span has bindings attributed");
    slot_bindings += span.bindings;
    slot_steals += span.steals;
  }
  Check(slot_bindings > 0, "slots evaluated the loop's bindings");
  Check(slot_steals == trace.steals(),
        "per-slot steal attribution matches the trace total");

  const auto slow = corpus.DumpSlowQueries();
  Check(!slow.empty(), "threshold-0 slow log captured the traffic");
  Check(corpus.stats().slow_queries == slow.size() ||
            corpus.stats().slow_queries >= slow.size(),
        "stats.slow_queries covers the dump");

  std::fputs(corpus.metrics().TextExport().c_str(), stdout);
  std::fprintf(stderr,
               "metrics_smoke: OK (wall=%lluus stages=%zu stage_total=%lluus "
               "slots=%zu steals=%llu slow_log=%zu)\n",
               static_cast<unsigned long long>(wall_ns / 1000),
               stages.size(),
               static_cast<unsigned long long>(stage_total_ns / 1000),
               slots.size(),
               static_cast<unsigned long long>(trace.steals()), slow.size());
  return 0;
}
