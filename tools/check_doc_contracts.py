#!/usr/bin/env python3
"""CI doc-drift gate: public API surfaces must carry contract comments.

Three rules, checked over the repo's headers:

  1. Every namespace-scope class/struct/enum *definition* in any header
     under src/ must be documented: a `//` comment block directly above
     it, or a mention by name in the file's leading comment block (the
     repo's idiom for a header's primary type). Forward declarations are
     not definitions and are exempt.

  2. In the concurrency-contract headers (CONTRACT_HEADERS below) every
     public member function must be documented: a comment directly above
     it, or membership in a contiguous run of declarations whose head is
     commented (the accessor-cluster idiom), or a trailing comment on its
     own line. Constructors, destructors, operators, friend/using
     declarations, and defaulted/deleted signatures are exempt. Nested
     public type definitions need a comment too.

  3. Each contract header must reference CONCURRENCY.md at least once, so
     the authoritative contract document cannot be silently orphaned by
     an API rewrite.

Exits non-zero listing every violation. No third-party dependencies: the
parser is a deliberately small line/brace state machine that understands
exactly as much C++ as the repo's style produces (clang-format, comments
on their own lines, no function-try-blocks in headers).
"""

import os
import re
import sys

CONTRACT_HEADERS = {
    "src/document.h",
    "src/goddag/overlay.h",
    "src/xquery/engine.h",
    "src/corpus/corpus.h",
    "src/goddag/persist.h",
}

TYPE_DEF_RE = re.compile(
    r"(?:^|[\s>])(class|struct|enum(?:\s+(?:class|struct))?)\s+(\w[\w:]*)"
)
ACCESS_RE = re.compile(r"^\s*(public|private|protected)\s*:")


def strip_code(line):
    """Remove string/char literals and trailing // comment from a line.

    Returns (code, had_trailing_comment). Good enough for headers: the
    repo has no multi-line raw strings in .h files.
    """
    out = []
    i = 0
    had_comment = False
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            had_comment = True
            break
        if c in ("\"", "'"):
            quote = c
            out.append(quote)
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote)
            i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), had_comment


def strip_block_comments(text):
    """Replace /* ... */ spans with spaces, preserving newlines."""
    return re.sub(
        r"/\*.*?\*/",
        lambda m: re.sub(r"[^\n]", " ", m.group(0)),
        text,
        flags=re.S,
    )


class Scope:
    def __init__(self, kind, name="", access="", visible=False):
        self.kind = kind  # "namespace" | "class" | "other"
        self.name = name
        self.access = access  # current access specifier for class scopes
        self.visible = visible  # class reachable through public sections


def is_exempt(decl, class_name):
    """Signatures that need no individual contract comment."""
    d = " ".join(decl.split())
    if re.match(r"^(template\s*<[^>]*>\s*)?(friend|using|typedef)\b", d):
        return True
    if "operator" in d:
        return True
    if "= default" in d or "= delete" in d:
        return True
    # Constructors and destructors: the class comment is their contract.
    if class_name and re.search(
        r"(^|[\s:])~?%s\s*\(" % re.escape(class_name), d
    ):
        return True
    # Macro invocations (all-caps callables like GTEST/benchmark helpers).
    if re.match(r"^[A-Z][A-Z0-9_]*\s*\(", d):
        return True
    return False


def check_header(path, rel, is_contract):
    violations = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    if is_contract and "CONCURRENCY.md" not in text:
        violations.append(
            (rel, 1, "contract header never references CONCURRENCY.md")
        )
    text = strip_block_comments(text)

    # The file's leading comment block: the contiguous // lines before the
    # first non-comment, non-blank line. A namespace-scope type named
    # there is considered documented (the repo's primary-type idiom).
    leading = []
    for raw in text.splitlines():
        s = raw.strip()
        if s.startswith("//"):
            leading.append(s)
        elif s:
            break
    leading_comment = "\n".join(leading)

    def named_in_header(name):
        return re.search(r"\b%s\b" % re.escape(name.split("::")[-1]),
                         leading_comment) is not None

    scopes = [Scope("namespace", visible=True)]  # file scope
    pending = ""  # declaration text accumulated since the last ; { }
    pending_line = 0  # line the pending declaration started on
    pending_doc = False  # was the element above it a comment / doc'd run?
    last_doc = False  # comment or documented-run state before cursor
    skip_depth = 0  # inside a function body / initializer brace

    def at_namespace_scope():
        return all(s.kind == "namespace" for s in scopes)

    def enclosing_class():
        for s in reversed(scopes):
            if s.kind == "class":
                return s
        return None

    def decl_checkable():
        """Is a completed pending declaration subject to rule 2?"""
        if not is_contract:
            return False
        cls = scopes[-1] if scopes[-1].kind == "class" else None
        return (
            cls is not None
            and cls.visible
            and cls.access == "public"
            and "(" in pending
        )

    def flush_decl(lineno, trailing_comment):
        nonlocal last_doc
        if decl_checkable():
            cls = scopes[-1]
            if not is_exempt(pending, cls.name):
                if not (pending_doc or trailing_comment):
                    name = " ".join(pending.split())[:60]
                    violations.append(
                        (rel, pending_line,
                         "undocumented public method: %s" % name)
                    )
                    last_doc = False
                    return
        # A documented declaration extends the run; an unchecked one
        # (field, exempt signature) is neutral and keeps the run alive.
        last_doc = True

    for lineno, raw in enumerate(text.splitlines(), 1):
        stripped = raw.strip()
        code, had_comment = strip_code(raw)
        code_s = code.strip()

        if skip_depth > 0:
            skip_depth += code_s.count("{") - code_s.count("}")
            if skip_depth == 0:
                # The body belonged to the pending declaration: complete it.
                flush_decl(lineno, False)
                pending = ""
            continue

        if not stripped:
            if not pending:
                last_doc = False
            continue
        if stripped.startswith("//"):
            last_doc = True
            continue
        if stripped.startswith("#"):
            if not pending:
                last_doc = False
            continue

        m = ACCESS_RE.match(code_s)
        if m and scopes[-1].kind == "class":
            scopes[-1].access = m.group(1)
            last_doc = False
            pending = ""
            continue

        if not pending and code_s:
            pending_line = lineno
            pending_doc = last_doc

        i = 0
        while i < len(code_s):
            c = code_s[i]
            if c == "{":
                decl = pending + " " + code_s[:i]
                tm = TYPE_DEF_RE.search(decl)
                opens_type = tm is not None and "(" not in decl.split(
                    tm.group(1), 1
                )[0]
                if decl.strip().startswith("namespace") or re.search(
                    r"(^|\s)namespace(\s|$)", decl.split("{")[0]
                ) and not opens_type:
                    scopes.append(Scope("namespace", visible=True))
                elif opens_type:
                    kind, name = tm.group(1), tm.group(2)
                    if at_namespace_scope():
                        if not pending_doc and not named_in_header(name):
                            violations.append(
                                (rel, pending_line,
                                 "undocumented %s %s" % (kind, name))
                            )
                    elif (
                        is_contract
                        and scopes[-1].kind == "class"
                        and scopes[-1].visible
                        and scopes[-1].access == "public"
                        and not pending_doc
                    ):
                        violations.append(
                            (rel, pending_line,
                             "undocumented nested public %s %s"
                             % (kind, name))
                        )
                    parent_visible = (
                        at_namespace_scope()
                        or (scopes[-1].kind == "class"
                            and scopes[-1].visible
                            and scopes[-1].access == "public")
                    )
                    if kind == "enum":
                        scopes.append(Scope("other"))
                    else:
                        scopes.append(Scope(
                            "class",
                            name=name.split("::")[-1],
                            access="private" if kind == "class" else "public",
                            visible=parent_visible,
                        ))
                    last_doc = False
                else:
                    # Function body, initializer list, array init, lambda:
                    # skip to the matching close brace.
                    rest = code_s[i:]
                    depth = 0
                    j = 0
                    for j, ch in enumerate(rest):
                        if ch == "{":
                            depth += 1
                        elif ch == "}":
                            depth -= 1
                            if depth == 0:
                                break
                    if depth == 0:
                        flush_decl(lineno, had_comment)
                        pending = ""
                        code_s = code_s[i + j + 1:]
                        i = 0
                        continue
                    skip_depth = depth
                    pending = decl
                    break
                pending = ""
                code_s = code_s[i + 1:]
                i = 0
                continue
            if c == "}":
                if len(scopes) > 1:
                    scopes.pop()
                pending = ""
                last_doc = False
                code_s = code_s[i + 1:]
                i = 0
                continue
            if c == ";":
                pending = pending + " " + code_s[:i]
                flush_decl(lineno, had_comment)
                pending = ""
                code_s = code_s[i + 1:]
                i = 0
                continue
            i += 1
        else:
            if code_s:
                pending = (pending + " " + code_s) if pending else code_s

    return violations


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    violations = []
    for dirpath, _, filenames in os.walk(os.path.join(root, "src")):
        for fn in sorted(filenames):
            if not fn.endswith(".h"):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            violations.extend(check_header(path, rel, rel in CONTRACT_HEADERS))
    missing = [h for h in CONTRACT_HEADERS
               if not os.path.exists(os.path.join(root, h))]
    for h in sorted(missing):
        violations.append((h, 1, "contract header missing from the tree"))
    if not os.path.exists(os.path.join(root, "CONCURRENCY.md")):
        violations.append(("CONCURRENCY.md", 1, "contract document missing"))

    if violations:
        print("doc-contract violations (%d):" % len(violations))
        for rel, line, msg in violations:
            print("  %s:%d: %s" % (rel, line, msg))
        return 1
    print("doc-contracts: OK (%d contract headers, src/**/*.h scanned)"
          % len(CONTRACT_HEADERS))
    return 0


if __name__ == "__main__":
    sys.exit(main())
