#!/usr/bin/env python3
# Copyright (c) mhxq authors. Licensed under the MIT license.
"""Diff two google-benchmark JSON files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]
                           [--metric real_time]

Compares benchmarks present in both files by name. A benchmark whose
candidate time exceeds baseline * (1 + threshold) is a regression; the
script prints a table of all common benchmarks and exits 1 if any
regressed. Aggregate entries (BigO / RMS / mean / median / stddev rows)
are skipped — their units differ and complexity fits are compared more
meaningfully by eye.

CI uploads every smoke run's bench_<name>.json as a workflow artifact, so
a perf trajectory can be replayed by downloading two runs' artifacts and
diffing them with this tool.
"""

import argparse
import json
import sys


def load_benchmarks(path, metric):
    """Returns {name: (value, time_unit)} for real (non-aggregate) runs."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # run_type is "iteration" for real runs, "aggregate" for BigO/RMS/
        # mean/etc. Older benchmark versions omit run_type but still set
        # aggregate_name on aggregates.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if bench.get("aggregate_name"):
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        out[name] = (float(bench[metric]), bench.get("time_unit", "ns"))
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default real_time)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline, args.metric)
    candidate = load_benchmarks(args.candidate, args.metric)
    common = sorted(set(baseline) & set(candidate))
    if not common:
        print("bench_compare: no common benchmarks between "
              f"{args.baseline} and {args.candidate}", file=sys.stderr)
        return 2

    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))

    name_width = max(len(n) for n in common)
    regressions = []
    print(f"{'benchmark':<{name_width}}  {'baseline':>12}  "
          f"{'candidate':>12}  {'delta':>8}")
    for name in common:
        base_value, unit = baseline[name]
        cand_value, _ = candidate[name]
        delta = (cand_value - base_value) / base_value if base_value else 0.0
        flag = ""
        if delta > args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{name_width}}  {base_value:>10.0f}{unit:>2}  "
              f"{cand_value:>10.0f}{unit:>2}  {delta:>+7.1%}{flag}")

    for name in only_base:
        print(f"(only in baseline)  {name}")
    for name in only_cand:
        print(f"(only in candidate) {name}")

    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nno regressions over {args.threshold:.0%} "
          f"({len(common)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
