#!/usr/bin/env python3
# Copyright (c) mhxq authors. Licensed under the MIT license.
"""Diff two google-benchmark JSON files and flag regressions.

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.20]
                           [--metric real_time] [--missing-baseline-ok]

Compares benchmarks present in both files by name. A benchmark whose
candidate time exceeds baseline * (1 + threshold) is a regression; the
script prints a table of all common benchmarks and exits 1 if any
regressed. Benchmarks present in only one file (new or removed benches)
are listed but never fail the comparison — a growing suite must not break
its own perf gate. Aggregate entries (BigO / RMS / mean / median / stddev
rows) are skipped — their units differ and complexity fits are compared
more meaningfully by eye.

User counters attached to a benchmark (the closed-loop bench_corpus
latency/throughput lane) are compared too, with explicit direction:
p95_us regresses when it *rises* past the threshold, qps when it *falls*
past it — both gate exactly like wall time. Every other counter
(p50_us/p99_us, plan_hit_rate, builds, evictions, index_rebuilds, ...)
is informational: reported when it moves, never a failure, because cache
hit-rates and eviction counts describe the workload, not a verdict.

CI's Release lanes upload every run's bench_<name>.json as a workflow
artifact and diff each new run against the previous run's artifact with
this tool — the repo's cross-PR perf trajectory. --missing-baseline-ok
makes a nonexistent baseline file a clean skip (exit 0) so the first run
on a branch bootstraps the trajectory instead of failing it.

Exit codes: 0 ok / nothing comparable, 1 regression(s), 2 usage error.
"""

import argparse
import json
import os
import sys


# User counters gated like wall time, with their "worse" direction:
# +1 regresses when the value rises, -1 when it falls.
GATED_COUNTERS = {"p95_us": +1, "qps": -1, "load_us": +1}

# Standard google-benchmark JSON keys that are not user counters.
_RESERVED_KEYS = frozenset([
    "name", "run_name", "run_type", "repetitions", "repetition_index",
    "threads", "iterations", "real_time", "cpu_time", "time_unit",
    "family_index", "per_family_instance_index", "aggregate_name",
    "aggregate_unit", "label", "error_occurred", "error_message",
])


def label_counters(label):
    """Flattens a JSON-object benchmark label into informational counters.

    bench_corpus sets its label to a MetricsRegistry::JsonExport()
    snapshot — a flat object of counters/gauges (numbers) and timers
    (objects of numbers). Numeric leaves become "obs.<name>" /
    "obs.<name>.<field>" counters; these names are never in
    GATED_COUNTERS, so snapshot drift is reported but cannot fail the
    gate. A non-JSON label (the common benchmark case) yields {}.
    """
    if not label:
        return {}
    try:
        snapshot = json.loads(label)
    except (ValueError, TypeError):
        return {}
    if not isinstance(snapshot, dict):
        return {}
    out = {}
    for name, value in snapshot.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out[f"obs.{name}"] = float(value)
        elif isinstance(value, dict):
            for sub, subvalue in value.items():
                if (isinstance(subvalue, (int, float))
                        and not isinstance(subvalue, bool)):
                    out[f"obs.{name}.{sub}"] = float(subvalue)
    return out


def load_benchmarks(path, metric):
    """Returns {name: (value, time_unit, counters)} for real runs.

    `counters` maps user-counter names (any non-reserved numeric field:
    p50_us, qps, plan_hit_rate, ...) to floats, plus the "obs.*" metrics
    flattened from a registry-snapshot label (informational only).
    """
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        # run_type is "iteration" for real runs, "aggregate" for BigO/RMS/
        # mean/etc. Older benchmark versions omit run_type but still set
        # aggregate_name on aggregates.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        if bench.get("aggregate_name"):
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        counters = {
            key: float(value)
            for key, value in bench.items()
            if key not in _RESERVED_KEYS and isinstance(value, (int, float))
        }
        counters.update(label_counters(bench.get("label")))
        out[name] = (float(bench[metric]), bench.get("time_unit", "ns"),
                     counters)
    return out


def compare(baseline, candidate, threshold):
    """Diffs two {name: (value, unit[, counters])} dicts.

    Returns (report_lines, regressions) where regressions is a list of
    (name, relative_delta) over the threshold — wall time plus the
    GATED_COUNTERS present in both runs, direction-aware. One-sided
    benchmarks and ungated counters are reported but never regressions.
    """
    common = sorted(set(baseline) & set(candidate))
    only_base = sorted(set(baseline) - set(candidate))
    only_cand = sorted(set(candidate) - set(baseline))

    lines = []
    regressions = []
    if common:
        name_width = max(len(n) for n in common)
        lines.append(f"{'benchmark':<{name_width}}  {'baseline':>12}  "
                     f"{'candidate':>12}  {'delta':>8}")
        for name in common:
            base_value, unit = baseline[name][:2]
            cand_value, _ = candidate[name][:2]
            delta = ((cand_value - base_value) / base_value
                     if base_value else 0.0)
            flag = ""
            if delta > threshold:
                flag = "  REGRESSION"
                regressions.append((name, delta))
            lines.append(f"{name:<{name_width}}  {base_value:>10.0f}{unit:>2}"
                         f"  {cand_value:>10.0f}{unit:>2}  "
                         f"{delta:>+7.1%}{flag}")
            base_counters = baseline[name][2] if len(baseline[name]) > 2 else {}
            cand_counters = candidate[name][2] if len(candidate[name]) > 2 else {}
            for counter in sorted(set(base_counters) & set(cand_counters)):
                b = base_counters[counter]
                c = cand_counters[counter]
                cdelta = (c - b) / b if b else 0.0
                direction = GATED_COUNTERS.get(counter)
                if direction is None:
                    if b != c:
                        lines.append(
                            f"  [{counter}] {b:g} -> {c:g} ({cdelta:+.1%}, "
                            "informational)")
                    continue
                worse = cdelta * direction
                cflag = ""
                if worse > threshold:
                    cflag = "  REGRESSION"
                    regressions.append((f"{name} [{counter}]", cdelta))
                lines.append(f"  [{counter}] {b:g} -> {c:g} "
                             f"({cdelta:+.1%}){cflag}")
    for name in only_base:
        lines.append(f"(removed — only in baseline)  {name}")
    for name in only_cand:
        lines.append(f"(new — only in candidate)     {name}")
    return lines, regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline benchmark JSON")
    parser.add_argument("candidate", help="candidate benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative slowdown that counts as a regression (default 0.20)",
    )
    parser.add_argument(
        "--metric",
        default="real_time",
        choices=["real_time", "cpu_time"],
        help="which per-iteration time to compare (default real_time)",
    )
    parser.add_argument(
        "--missing-baseline-ok",
        action="store_true",
        help="exit 0 when the baseline file does not exist "
             "(trajectory bootstrap)",
    )
    args = parser.parse_args()

    if args.missing_baseline_ok and not os.path.exists(args.baseline):
        print(f"bench_compare: no baseline at {args.baseline}; "
              "nothing to compare (bootstrap run)")
        return 0

    baseline = load_benchmarks(args.baseline, args.metric)
    candidate = load_benchmarks(args.candidate, args.metric)
    if not baseline and not candidate:
        print(f"bench_compare: neither {args.baseline} nor {args.candidate} "
              "contains benchmark runs", file=sys.stderr)
        return 2

    lines, regressions = compare(baseline, candidate, args.threshold)
    for line in lines:
        print(line)

    common_count = len(set(baseline) & set(candidate))
    if not common_count:
        # Disjoint suites (every bench renamed, or a brand-new driver):
        # report, but do not fail — there is nothing to regress against.
        print("\nno common benchmarks to compare "
              f"({len(baseline)} baseline, {len(candidate)} candidate)")
        return 0
    if regressions:
        print(f"\n{len(regressions)} regression(s) over "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nno regressions over {args.threshold:.0%} "
          f"({common_count} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
