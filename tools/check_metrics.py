#!/usr/bin/env python3
"""Validate Prometheus text exposition format, as emitted by
obs::MetricsRegistry::TextExport() (see src/obs/metrics.h).

Reads the exposition text from a file argument (or stdin) and checks:
  * every non-comment line is `name{labels} value` with a valid metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite numeric value;
  * every sample is preceded by # HELP and # TYPE lines for its family;
  * # TYPE is one of counter/gauge/summary/histogram/untyped and is not
    repeated for a family;
  * summary families expose `_sum` and `_count` samples and quantile
    labels parse as floats in [0, 1];
  * the planner/kernel families this build must export (REQUIRED_FAMILIES)
    are all present — a wiring regression in CorpusService::WireMetrics
    fails here instead of silently exporting less.

Exit status 0 and a one-line summary on success; 1 with per-line errors
otherwise. CI runs it over the metrics_smoke output (ci.yml).
"""

import re
import sys

# Families the corpus service is contractually expected to export; see
# CorpusService::WireMetrics. Kept to the ones added for the step planner,
# the SIMD kernels, and the arena spill path — the generic checks above
# cover everything else.
REQUIRED_FAMILIES = (
    "mhx_plan_steps_indexed_total",
    "mhx_plan_steps_scanned_total",
    "mhx_plan_pushdowns_total",
    "mhx_plan_cache_replans_total",
    "mhx_kernel_simd_dispatch_total",
    "mhx_snapshots_persisted_total",
    "mhx_mmap_loads_total",
    "mhx_load_fallbacks_total",
)

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>-?\d+))?$"
)
LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}


def base_family(name, families):
    """The family a sample belongs to: summary/histogram samples may have
    _sum/_count (and _bucket) suffixes on the family name."""
    if name in families:
        return name
    for suffix in ("_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def check(text):
    errors = []
    families = {}  # name -> {"help": bool, "type": str|None, "samples": int}
    order = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue

        def err(msg):
            errors.append("line %d: %s: %r" % (lineno, msg, line))

        if line.startswith("# HELP "):
            rest = line[len("# HELP ") :]
            name = rest.split(" ", 1)[0]
            if not METRIC_NAME.match(name):
                err("invalid metric name in HELP")
                continue
            fam = families.setdefault(
                name, {"help": False, "type": None, "samples": 0}
            )
            if fam["help"]:
                err("duplicate HELP for family")
            fam["help"] = True
            order.append(name)
        elif line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split()
            if len(parts) != 2:
                err("TYPE line must be '# TYPE <name> <type>'")
                continue
            name, mtype = parts
            if not METRIC_NAME.match(name):
                err("invalid metric name in TYPE")
                continue
            if mtype not in TYPES:
                err("unknown metric type %r" % mtype)
                continue
            fam = families.setdefault(
                name, {"help": False, "type": None, "samples": 0}
            )
            if fam["type"] is not None:
                err("duplicate TYPE for family")
            fam["type"] = mtype
        elif line.startswith("#"):
            continue  # other comments are legal
        else:
            m = SAMPLE.match(line)
            if not m:
                err("unparseable sample line")
                continue
            name = m.group("name")
            family = base_family(name, families)
            if family is None:
                err("sample for a family with no HELP/TYPE")
                continue
            fam = families[family]
            if not fam["help"] or fam["type"] is None:
                err("sample precedes its HELP/TYPE")
            fam["samples"] += 1
            try:
                float(m.group("value"))
            except ValueError:
                err("non-numeric sample value")
            labels = m.group("labels")
            if labels is not None and labels != "":
                for pair in labels.split(","):
                    lm = LABEL.match(pair.strip())
                    if not lm:
                        err("malformed label %r" % pair)
                        continue
                    if lm.group(1) == "quantile":
                        try:
                            q = float(lm.group(2))
                        except ValueError:
                            q = -1.0
                        if not (0.0 <= q <= 1.0):
                            err("quantile label outside [0, 1]")

    for name, fam in families.items():
        if fam["samples"] == 0:
            errors.append("family %s declared but has no samples" % name)

    # Summaries must expose _sum and _count.
    sample_names = set()
    for line in text.splitlines():
        m = SAMPLE.match(line)
        if m and not line.startswith("#"):
            sample_names.add(m.group("name"))
    for name, fam in families.items():
        if fam["type"] == "summary":
            for suffix in ("_sum", "_count"):
                if name + suffix not in sample_names:
                    errors.append(
                        "summary %s is missing its %s sample" % (name, suffix)
                    )

    for name in REQUIRED_FAMILIES:
        if name not in families:
            errors.append("required family %s is missing" % name)

    return errors, len(families)


def main(argv):
    if len(argv) > 1:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    errors, n_families = check(text)
    if errors:
        for e in errors:
            print("check_metrics: %s" % e, file=sys.stderr)
        return 1
    if n_families == 0:
        print("check_metrics: no metric families found", file=sys.stderr)
        return 1
    print("check_metrics: OK (%d families)" % n_families)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
