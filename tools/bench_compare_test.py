#!/usr/bin/env python3
# Copyright (c) mhxq authors. Licensed under the MIT license.
"""Self-test for tools/bench_compare.py.

pytest-style test functions, plus a zero-dependency runner so CI can invoke
it as plain `python3 tools/bench_compare_test.py` (pytest also collects the
test_* functions if available).
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
SCRIPT = os.path.join(HERE, "bench_compare.py")

sys.path.insert(0, HERE)
from bench_compare import compare, label_counters, load_benchmarks  # noqa: E402


def bench_json(entries):
    """Benchmark JSON with one iteration run per (name, real_time) pair.

    An entry may be (name, value) or (name, value, counters_dict); counters
    land as top-level fields, the way google-benchmark serialises them.
    """
    benchmarks = []
    for entry in entries:
        name, value = entry[0], entry[1]
        row = {"name": name, "run_type": "iteration", "real_time": value,
               "cpu_time": value, "time_unit": "ns"}
        if len(entry) > 2:
            row.update(entry[2])
        benchmarks.append(row)
    benchmarks.append(  # an aggregate row that must always be skipped
        {"name": "BM_X_BigO", "run_type": "aggregate",
         "aggregate_name": "BigO", "real_time": 1.0})
    return {"benchmarks": benchmarks}


def write_json(directory, name, payload):
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(payload, f)
    return path


def run_script(*argv):
    proc = subprocess.run(
        [sys.executable, SCRIPT, *argv],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def test_load_skips_aggregates():
    with tempfile.TemporaryDirectory() as tmp:
        path = write_json(tmp, "a.json", bench_json([("BM_A", 100.0)]))
        loaded = load_benchmarks(path, "real_time")
    assert set(loaded) == {"BM_A"}, loaded
    assert loaded["BM_A"] == (100.0, "ns", {})


def test_load_collects_user_counters():
    counters = {"p95_us": 420.0, "qps": 1500.0, "plan_hit_rate": 0.97}
    with tempfile.TemporaryDirectory() as tmp:
        path = write_json(tmp, "a.json",
                          bench_json([("BM_A", 100.0, counters)]))
        loaded = load_benchmarks(path, "real_time")
    assert loaded["BM_A"] == (100.0, "ns", counters), loaded


def test_label_counters_flattens_registry_snapshot():
    label = json.dumps({
        "mhx_corpus_builds_total": 10,
        "mhx_corpus_query_latency_us": {"count": 256, "p95": 420},
    })
    flattened = label_counters(label)
    assert flattened == {
        "obs.mhx_corpus_builds_total": 10.0,
        "obs.mhx_corpus_query_latency_us.count": 256.0,
        "obs.mhx_corpus_query_latency_us.p95": 420.0,
    }, flattened
    # Non-JSON labels (the common benchmark case) are ignored.
    assert label_counters("some plain label") == {}
    assert label_counters("") == {}
    assert label_counters(None) == {}
    assert label_counters("[1, 2]") == {}


def test_load_flattens_snapshot_label_informationally():
    label = json.dumps({"mhx_plan_cache_hits_total": 99})
    with tempfile.TemporaryDirectory() as tmp:
        path = write_json(
            tmp, "a.json",
            bench_json([("BM_A", 100.0, {"qps": 1000.0, "label": label})]))
        loaded = load_benchmarks(path, "real_time")
    counters = loaded["BM_A"][2]
    assert counters["qps"] == 1000.0
    assert counters["obs.mhx_plan_cache_hits_total"] == 99.0, counters


def test_compare_snapshot_counters_never_gate():
    baseline = {"BM_A": (100.0, "ns",
                         {"obs.mhx_corpus_builds_total": 10.0})}
    candidate = {"BM_A": (100.0, "ns",
                          {"obs.mhx_corpus_builds_total": 900.0})}
    lines, regressions = compare(baseline, candidate, threshold=0.20)
    assert not regressions, regressions
    assert any("obs.mhx_corpus_builds_total" in line and
               "informational" in line for line in lines), lines


def test_compare_flags_regressions_only_over_threshold():
    baseline = {"BM_A": (100.0, "ns"), "BM_B": (100.0, "ns")}
    candidate = {"BM_A": (115.0, "ns"), "BM_B": (130.0, "ns")}
    _, regressions = compare(baseline, candidate, threshold=0.20)
    assert [name for name, _ in regressions] == ["BM_B"], regressions


def test_compare_gates_p95_and_qps_direction_aware():
    baseline = {"BM_A": (100.0, "ns", {"p95_us": 400.0, "qps": 1000.0})}
    # p95 up 50% and qps down 40%: both beyond 20%, both regressions.
    candidate = {"BM_A": (100.0, "ns", {"p95_us": 600.0, "qps": 600.0})}
    lines, regressions = compare(baseline, candidate, threshold=0.20)
    assert sorted(name for name, _ in regressions) == \
        ["BM_A [p95_us]", "BM_A [qps]"], regressions
    # Improvements in the "good" direction never regress.
    better = {"BM_A": (100.0, "ns", {"p95_us": 100.0, "qps": 5000.0})}
    _, regressions = compare(baseline, better, threshold=0.20)
    assert not regressions, regressions


def test_compare_gates_load_us_like_wall_time():
    baseline = {"BM_ColdStart": (100.0, "ns", {"load_us": 150.0})}
    # Cold-start load time up 2x: gated, higher-is-worse.
    candidate = {"BM_ColdStart": (100.0, "ns", {"load_us": 300.0})}
    _, regressions = compare(baseline, candidate, threshold=0.20)
    assert [name for name, _ in regressions] == \
        ["BM_ColdStart [load_us]"], regressions
    faster = {"BM_ColdStart": (100.0, "ns", {"load_us": 50.0})}
    _, regressions = compare(baseline, faster, threshold=0.20)
    assert not regressions, regressions


def test_compare_reports_ungated_counters_without_failing():
    baseline = {"BM_A": (100.0, "ns",
                         {"plan_hit_rate": 0.99, "evictions": 0.0,
                          "p50_us": 100.0})}
    candidate = {"BM_A": (100.0, "ns",
                          {"plan_hit_rate": 0.10, "evictions": 500.0,
                           "p50_us": 900.0})}
    lines, regressions = compare(baseline, candidate, threshold=0.20)
    assert not regressions, regressions
    assert any("plan_hit_rate" in line and "informational" in line
               for line in lines), lines


def test_compare_ignores_counters_missing_from_either_side():
    baseline = {"BM_A": (100.0, "ns", {"p95_us": 400.0})}
    candidate = {"BM_A": (100.0, "ns", {})}
    _, regressions = compare(baseline, candidate, threshold=0.20)
    assert not regressions, regressions


def test_compare_reports_one_sided_benchmarks_without_failing():
    baseline = {"BM_A": (100.0, "ns"), "BM_OLD": (50.0, "ns")}
    candidate = {"BM_A": (100.0, "ns"), "BM_NEW": (70.0, "ns")}
    lines, regressions = compare(baseline, candidate, threshold=0.20)
    assert not regressions, regressions
    assert any("BM_OLD" in line and "removed" in line for line in lines)
    assert any("BM_NEW" in line and "new" in line for line in lines)


def test_cli_exit_codes():
    with tempfile.TemporaryDirectory() as tmp:
        base = write_json(tmp, "base.json",
                          bench_json([("BM_A", 100.0), ("BM_GONE", 10.0)]))
        same = write_json(tmp, "same.json",
                          bench_json([("BM_A", 100.0), ("BM_NEW", 10.0)]))
        slow = write_json(tmp, "slow.json", bench_json([("BM_A", 200.0)]))
        disjoint = write_json(tmp, "disjoint.json",
                              bench_json([("BM_OTHER", 5.0)]))

        code, out, _ = run_script(base, same)
        assert code == 0, out
        assert "BM_GONE" in out and "BM_NEW" in out

        code, _, err = run_script(base, slow)
        assert code == 1, err
        assert "regression" in err

        # Disjoint suites: reported, not a failure.
        code, out, _ = run_script(base, disjoint)
        assert code == 0, out
        assert "no common benchmarks" in out


def test_cli_counter_regression_fails():
    with tempfile.TemporaryDirectory() as tmp:
        base = write_json(tmp, "base.json",
                          bench_json([("BM_C", 100.0, {"qps": 1000.0})]))
        slow = write_json(tmp, "slow.json",
                          bench_json([("BM_C", 100.0, {"qps": 500.0})]))
        code, _, err = run_script(base, slow)
        assert code == 1, err
        assert "qps" in err


def test_cli_missing_baseline_bootstrap():
    with tempfile.TemporaryDirectory() as tmp:
        cand = write_json(tmp, "cand.json", bench_json([("BM_A", 1.0)]))
        missing = os.path.join(tmp, "nonexistent.json")
        code, out, _ = run_script(missing, cand, "--missing-baseline-ok")
        assert code == 0, out
        assert "bootstrap" in out
        # Without the flag a missing baseline is a hard error.
        proc = subprocess.run(
            [sys.executable, SCRIPT, missing, cand],
            capture_output=True, text=True, check=False)
        assert proc.returncode != 0


def main():
    tests = [(name, fn) for name, fn in sorted(globals().items())
             if name.startswith("test_") and callable(fn)]
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"PASS {name}")
        except AssertionError as exc:
            failures += 1
            print(f"FAIL {name}: {exc}")
    print(f"{len(tests) - failures}/{len(tests)} bench_compare self-tests "
          "passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
