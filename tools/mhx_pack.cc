// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// mhx_pack: command-line front end for the on-disk arena format
// (goddag/arena.h, goddag/persist.h).
//
//   mhx_pack pack <out.mhxa> [--paper] [--seed N] [--words N]
//                 [--chars-per-line N]
//       Builds a document — the paper's running example with --paper, a
//       deterministic generated edition otherwise — and writes its
//       published snapshot as an arena file.
//
//   mhx_pack inspect <file.mhxa>
//       Prints the header and section table (and whether the body
//       checksum matches) without adopting the arena. Works on damaged
//       files as long as header and table validate.
//
//   mhx_pack verify <file.mhxa>
//       Full load: structural validation, body checksum, and adoption as
//       a live snapshot. Exits 0 with a summary line iff every check
//       passes.
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "document.h"
#include "goddag/persist.h"
#include "workload/generator.h"
#include "workload/paper_data.h"

namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "mhx_pack: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: mhx_pack pack <out.mhxa> [--paper] [--seed N] "
               "[--words N] [--chars-per-line N]\n"
               "       mhx_pack inspect <file.mhxa>\n"
               "       mhx_pack verify <file.mhxa>\n");
  return 1;
}

int RunPack(int argc, char** argv) {
  if (argc < 1) return Usage();
  const std::string out = argv[0];
  bool paper = false;
  mhx::workload::EditionConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> long long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mhx_pack: %s needs a value\n", flag);
        std::exit(1);
      }
      return std::atoll(argv[++i]);
    };
    if (std::strcmp(arg, "--paper") == 0) {
      paper = true;
    } else if (std::strcmp(arg, "--seed") == 0) {
      config.seed = static_cast<uint64_t>(value("--seed"));
    } else if (std::strcmp(arg, "--words") == 0) {
      config.word_count = static_cast<size_t>(value("--words"));
    } else if (std::strcmp(arg, "--chars-per-line") == 0) {
      config.chars_per_line = static_cast<size_t>(value("--chars-per-line"));
    } else {
      return Usage();
    }
  }
  auto doc = paper ? mhx::workload::BuildPaperDocument()
                   : mhx::workload::BuildEditionDocument(config);
  if (!doc.ok()) return Fail("build: " + doc.status().message());
  auto snapshot = doc->PinSnapshot();
  mhx::Status written = mhx::goddag::WriteSnapshotFile(*snapshot, out);
  if (!written.ok()) return Fail("write: " + written.message());
  auto info = mhx::goddag::InspectArenaFile(out);
  if (!info.ok()) return Fail("reinspect: " + info.status().message());
  std::printf("packed %s: %llu bytes, %llu elements, %llu text bytes\n",
              out.c_str(),
              static_cast<unsigned long long>(info->header.file_size),
              static_cast<unsigned long long>(info->header.element_count),
              static_cast<unsigned long long>(info->header.text_size));
  return 0;
}

int RunInspect(int argc, char** argv) {
  if (argc != 1) return Usage();
  auto info = mhx::goddag::InspectArenaFile(argv[0]);
  if (!info.ok()) return Fail("inspect: " + info.status().message());
  std::fputs(mhx::goddag::FormatArenaInfo(*info).c_str(), stdout);
  return 0;
}

int RunVerify(int argc, char** argv) {
  if (argc != 1) return Usage();
  const std::string path = argv[0];
  auto mapped = mhx::goddag::LoadSnapshotFile(path);
  if (!mapped.ok()) return Fail("verify: " + mapped.status().message());
  const auto& snapshot = *mapped->snapshot;
  std::printf("ok %s: version=%llu elements=%zu arena=%zu bytes\n",
              path.c_str(),
              static_cast<unsigned long long>(snapshot.version()),
              snapshot.index().size(), mapped->arena_bytes);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* command = argv[1];
  if (std::strcmp(command, "pack") == 0) return RunPack(argc - 2, argv + 2);
  if (std::strcmp(command, "inspect") == 0) {
    return RunInspect(argc - 2, argv + 2);
  }
  if (std::strcmp(command, "verify") == 0) {
    return RunVerify(argc - 2, argv + 2);
  }
  return Usage();
}
