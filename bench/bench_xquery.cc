// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E12 (DESIGN.md): the XQuery pipeline itself — parsing cost for
// the paper's queries, and evaluation cost decomposed over FLWOR iteration,
// predicates, constructors, and serialization.

#include <benchmark/benchmark.h>

#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/parser.h"

namespace {

using mhx::MultihierarchicalDocument;

void BM_Parse_PaperQueries(benchmark::State& state) {
  const char* queries[] = {
      mhx::workload::kQueryI1, mhx::workload::kQueryI2,
      mhx::workload::kQueryII1, mhx::workload::kQueryIII1Intent};
  for (auto _ : state) {
    for (const char* q : queries) {
      auto e = mhx::xquery::ParseQuery(q);
      if (!e.ok()) std::abort();
      benchmark::DoNotOptimize(e);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_Parse_PaperQueries);

void BM_Parse_DeepNesting(benchmark::State& state) {
  // Parser stress: nested parens/constructors.
  std::string query = "1";
  for (int i = 0; i < 64; ++i) query = "(" + query + " + 1)";
  for (auto _ : state) {
    auto e = mhx::xquery::ParseQuery(query);
    if (!e.ok()) std::abort();
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Parse_DeepNesting);

// Documents are cached per (size, thread count): the engine's pool grows to
// the largest `threads` it has ever seen, so sharing one engine across
// parallel lanes would let an earlier wide lane inflate a later narrow
// one's real concurrency — each lane must measure exactly the pool its
// label claims.
MultihierarchicalDocument* EditionDoc(size_t words, unsigned threads) {
  static auto* cache =
      new std::map<std::pair<size_t, unsigned>, MultihierarchicalDocument*>();
  const auto key = std::make_pair(words, threads);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 53;
  config.word_count = words;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  auto* doc = new MultihierarchicalDocument(std::move(d).value());
  (*cache)[key] = doc;
  return doc;
}

void RunQuery(benchmark::State& state, const char* query,
              const mhx::QueryOptions& options = mhx::QueryOptions()) {
  MultihierarchicalDocument* doc =
      EditionDoc(state.range(0), options.threads);
  for (auto _ : state) {
    auto out = doc->Query(query, options);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
  // Engine-lifetime counters (monotonic; EditionDoc caches documents, so
  // they aggregate across size args — nonzero is the claim, not the value).
  state.counters["sorts_skipped"] =
      static_cast<double>(doc->engine()->sorts_skipped());
  state.counters["parallel_tasks"] =
      static_cast<double>(doc->engine()->parallel_tasks());
  // Binding ranges stolen between worker deques by the work-stealing
  // scheduler; 0 on serial lanes, and can stay 0 on parallel lanes whose
  // iteration costs happen to balance.
  state.counters["steals"] = static_cast<double>(doc->engine()->steals());
}

void BM_Eval_FlworIteration(benchmark::State& state) {
  RunQuery(state, "for $w in /descendant::w return string-length(string($w))");
}
BENCHMARK(BM_Eval_FlworIteration)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_PredicateFilter(benchmark::State& state) {
  RunQuery(state,
           "count(/descendant::w[string-length(string(.)) > 8])");
}
BENCHMARK(BM_Eval_PredicateFilter)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_ExtendedAxisQuery(benchmark::State& state) {
  RunQuery(state, "count(/descendant::w[overlapping::line])");
}
BENCHMARK(BM_Eval_ExtendedAxisQuery)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Complexity();

void BM_Eval_ConstructorHeavy(benchmark::State& state) {
  RunQuery(state,
           "for $w in /descendant::w return <span id=\"{name($w)}\">"
           "<b>{$w}</b></span>");
}
BENCHMARK(BM_Eval_ConstructorHeavy)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_LeafScan(benchmark::State& state) {
  RunQuery(state, "count(/descendant::leaf())");
}
BENCHMARK(BM_Eval_LeafScan)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_Quantified(benchmark::State& state) {
  RunQuery(state,
           "count(/descendant::line[some $w in xdescendant::w satisfies "
           "string-length(string($w)) > 10])");
}
BENCHMARK(BM_Eval_Quantified)->Arg(100)->Arg(400)->Complexity();

// The parallel execution layer: the same FLWOR body fanned out across the
// engine's thread pool (arg 1 = QueryOptions::threads; /1 is the serial
// baseline). Results are byte-identical by contract — parallel_query_test
// pins that — so this benchmark only measures.
void BM_Eval_FlworIterationParallel(benchmark::State& state) {
  mhx::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  RunQuery(state,
           "for $w in /descendant::w return string-length(string($w))",
           options);
}
BENCHMARK(BM_Eval_FlworIterationParallel)
    ->Args({1600, 1})
    ->Args({1600, 2})
    ->Args({1600, 4});

void BM_Eval_QuantifiedParallel(benchmark::State& state) {
  mhx::QueryOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  RunQuery(state,
           "every $w in /descendant::w satisfies "
           "string-length(string($w)) > 0",
           options);
}
BENCHMARK(BM_Eval_QuantifiedParallel)
    ->Args({1600, 1})
    ->Args({1600, 2})
    ->Args({1600, 4});

}  // namespace

BENCHMARK_MAIN();
