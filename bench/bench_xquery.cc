// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E12 (DESIGN.md): the XQuery pipeline itself — parsing cost for
// the paper's queries, and evaluation cost decomposed over FLWOR iteration,
// predicates, constructors, and serialization.

#include <benchmark/benchmark.h>

#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/parser.h"

namespace {

using mhx::MultihierarchicalDocument;

void BM_Parse_PaperQueries(benchmark::State& state) {
  const char* queries[] = {
      mhx::workload::kQueryI1, mhx::workload::kQueryI2,
      mhx::workload::kQueryII1, mhx::workload::kQueryIII1Intent};
  for (auto _ : state) {
    for (const char* q : queries) {
      auto e = mhx::xquery::ParseQuery(q);
      if (!e.ok()) std::abort();
      benchmark::DoNotOptimize(e);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_Parse_PaperQueries);

void BM_Parse_DeepNesting(benchmark::State& state) {
  // Parser stress: nested parens/constructors.
  std::string query = "1";
  for (int i = 0; i < 64; ++i) query = "(" + query + " + 1)";
  for (auto _ : state) {
    auto e = mhx::xquery::ParseQuery(query);
    if (!e.ok()) std::abort();
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_Parse_DeepNesting);

MultihierarchicalDocument* EditionDoc(size_t words) {
  static auto* cache = new std::map<size_t, MultihierarchicalDocument*>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 53;
  config.word_count = words;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  auto* doc = new MultihierarchicalDocument(std::move(d).value());
  (*cache)[words] = doc;
  return doc;
}

void RunQuery(benchmark::State& state, const char* query) {
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  for (auto _ : state) {
    auto out = doc->Query(query);
    if (!out.ok()) std::abort();
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}

void BM_Eval_FlworIteration(benchmark::State& state) {
  RunQuery(state, "for $w in /descendant::w return string-length(string($w))");
}
BENCHMARK(BM_Eval_FlworIteration)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_PredicateFilter(benchmark::State& state) {
  RunQuery(state,
           "count(/descendant::w[string-length(string(.)) > 8])");
}
BENCHMARK(BM_Eval_PredicateFilter)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_ExtendedAxisQuery(benchmark::State& state) {
  RunQuery(state, "count(/descendant::w[overlapping::line])");
}
BENCHMARK(BM_Eval_ExtendedAxisQuery)
    ->Arg(100)
    ->Arg(400)
    ->Arg(1600)
    ->Complexity();

void BM_Eval_ConstructorHeavy(benchmark::State& state) {
  RunQuery(state,
           "for $w in /descendant::w return <span id=\"{name($w)}\">"
           "<b>{$w}</b></span>");
}
BENCHMARK(BM_Eval_ConstructorHeavy)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_LeafScan(benchmark::State& state) {
  RunQuery(state, "count(/descendant::leaf())");
}
BENCHMARK(BM_Eval_LeafScan)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

void BM_Eval_Quantified(benchmark::State& state) {
  RunQuery(state,
           "count(/descendant::line[some $w in xdescendant::w satisfies "
           "string-length(string($w)) > 10])");
}
BENCHMARK(BM_Eval_Quantified)->Arg(100)->Arg(400)->Complexity();

}  // namespace

BENCHMARK_MAIN();
