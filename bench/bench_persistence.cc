// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// The zero-copy persistence lane (DESIGN.md "On-disk format"): cold-start
// cost of an mmap-adopted arena versus the XML reparse + index rebuild it
// replaces, plus the serialization cost a writer pays to produce one.
//
// Both cold-start lanes end in the same place — a query-ready
// DocumentSnapshot with its RangeIndex and stats materialised — so their
// ratio is the paper-scale O(1) cold-start claim measured directly. The
// `load_us` counter carries the best observed cold start per lane; the
// Release CI gates it through tools/bench_compare.py alongside p95/qps.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "document.h"
#include "goddag/persist.h"
#include "workload/generator.h"

namespace {

using mhx::MultihierarchicalDocument;

mhx::workload::EditionConfig ConfigFor(int64_t words) {
  mhx::workload::EditionConfig config;
  config.seed = 29;
  config.word_count = static_cast<size_t>(words);
  config.chars_per_line = 30;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  return config;
}

// The serialized arena for a word count, built once per process and shared
// by every lane (in memory; the mmap lane writes it to a file once too).
const std::string& ArenaImage(int64_t words) {
  static auto* cache = new std::map<int64_t, std::string>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  auto doc = mhx::workload::BuildEditionDocument(ConfigFor(words));
  if (!doc.ok()) std::abort();
  auto image = mhx::goddag::SerializeSnapshot(*doc->PinSnapshot());
  if (!image.ok()) std::abort();
  return cache->emplace(words, std::move(image).value()).first->second;
}

const std::string& ArenaFile(int64_t words) {
  static auto* cache = new std::map<int64_t, std::string>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  std::string path = "bench_persistence." + std::to_string(words) + ".mhxa";
  const char* tmp = std::getenv("TMPDIR");
  path = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + path;
  const std::string& image = ArenaImage(words);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr || std::fwrite(image.data(), 1, image.size(), f) !=
                          image.size()) {
    std::abort();
  }
  std::fclose(f);
  return cache->emplace(words, std::move(path)).first->second;
}

long long NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Cold start --------------------------------------------------------------

// The pre-arena path: reparse the edition's XML, rebuild the goddag, and
// pay the first-evaluation index + stats builds.
void BM_ColdStart_ParseBuild(benchmark::State& state) {
  const mhx::workload::EditionConfig config = ConfigFor(state.range(0));
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = NowUs();
    auto doc = mhx::workload::BuildEditionDocument(config);
    if (!doc.ok()) std::abort();
    auto snapshot = doc->PinSnapshot();
    snapshot->index();
    snapshot->stats();
    const long long took = NowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
}
BENCHMARK(BM_ColdStart_ParseBuild)->Arg(400)->Arg(1600)->Arg(6400);

// The arena path: mmap the file, validate, adopt index/stats/SoA out of
// the mapping. Same end state as BM_ColdStart_ParseBuild.
void BM_ColdStart_MmapLoad(benchmark::State& state) {
  const std::string& path = ArenaFile(state.range(0));
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = NowUs();
    auto mapped = mhx::goddag::LoadSnapshotFile(path);
    if (!mapped.ok()) std::abort();
    mapped->snapshot->index();
    mapped->snapshot->stats();
    const long long took = NowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(mapped->snapshot);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
  state.counters["arena_bytes"] =
      static_cast<double>(ArenaImage(state.range(0)).size());
}
BENCHMARK(BM_ColdStart_MmapLoad)->Arg(400)->Arg(1600)->Arg(6400);

// Validation-only load: body checksum off, so the lane isolates the
// structural O(header) + O(nodes) adoption cost from the checksum's
// once-over-the-file pass.
void BM_ColdStart_MmapLoadUnchecked(benchmark::State& state) {
  const std::string& path = ArenaFile(state.range(0));
  mhx::goddag::LoadOptions options;
  options.verify_body_checksum = false;
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = NowUs();
    auto mapped = mhx::goddag::LoadSnapshotFile(path, options);
    if (!mapped.ok()) std::abort();
    mapped->snapshot->index();
    mapped->snapshot->stats();
    const long long took = NowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(mapped->snapshot);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
}
BENCHMARK(BM_ColdStart_MmapLoadUnchecked)->Arg(400)->Arg(1600)->Arg(6400);

// --- Producing the arena -----------------------------------------------------

void BM_SerializeSnapshot(benchmark::State& state) {
  auto doc = mhx::workload::BuildEditionDocument(ConfigFor(state.range(0)));
  if (!doc.ok()) std::abort();
  auto snapshot = doc->PinSnapshot();
  snapshot->index();
  snapshot->stats();
  for (auto _ : state) {
    auto image = mhx::goddag::SerializeSnapshot(*snapshot);
    if (!image.ok()) std::abort();
    benchmark::DoNotOptimize(*image);
  }
  state.counters["arena_bytes"] =
      static_cast<double>(ArenaImage(state.range(0)).size());
}
BENCHMARK(BM_SerializeSnapshot)->Arg(400)->Arg(1600)->Arg(6400);

// Round trip through an in-memory buffer (no filesystem): serialization's
// inverse, and the non-POSIX load path LoadSnapshotFile falls back to.
void BM_AdoptArenaBuffer(benchmark::State& state) {
  auto image =
      std::make_shared<const std::string>(ArenaImage(state.range(0)));
  for (auto _ : state) {
    auto mapped = mhx::goddag::AdoptArenaBuffer(image);
    if (!mapped.ok()) std::abort();
    benchmark::DoNotOptimize(mapped->snapshot);
  }
}
BENCHMARK(BM_AdoptArenaBuffer)->Arg(400)->Arg(1600)->Arg(6400);

}  // namespace

BENCHMARK_MAIN();
