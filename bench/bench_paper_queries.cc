// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiments E3-E7 (DESIGN.md): the paper's Section 4 queries and the
// Example 1 analyze-string() call on the Figure 1 document, plus the same
// queries scaled up on synthetic editions. Each benchmark also verifies the
// expected output so timings are of *correct* executions.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "workload/generator.h"
#include "workload/paper_data.h"
#include "xquery/serialize.h"

namespace {

using mhx::MultihierarchicalDocument;

MultihierarchicalDocument* PaperDoc() {
  static MultihierarchicalDocument* doc = [] {
    auto d = mhx::workload::BuildPaperDocument();
    if (!d.ok()) std::abort();
    return new MultihierarchicalDocument(std::move(d).value());
  }();
  return doc;
}

void VerifyOrAbort(bool ok, const char* what) {
  if (!ok) {
    fprintf(stderr, "verification failed: %s\n", what);
    std::abort();
  }
}

void BM_QueryI1_LinesContainingWord(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  for (auto _ : state) {
    auto out = doc->Query(mhx::workload::kQueryI1);
    VerifyOrAbort(out.ok() && *out == mhx::workload::kExpectedI1, "I.1");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QueryI1_LinesContainingWord);

void BM_QueryI2_DamagedWordsHighlighted(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  for (auto _ : state) {
    auto out = doc->Query(mhx::workload::kQueryI2);
    VerifyOrAbort(out.ok() && *out == mhx::workload::kExpectedI2, "I.2");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QueryI2_DamagedWordsHighlighted);

void BM_QueryII1_AnalyzeStringHighlight(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  for (auto _ : state) {
    auto out = doc->Query(mhx::workload::kQueryII1);
    VerifyOrAbort(out.ok() && mhx::xquery::CoalesceRuns(*out) ==
                                  mhx::workload::kExpectedII1Coalesced,
                  "II.1");
    benchmark::DoNotOptimize(out);
  }
  // analyze-string() temporaries live in evaluation-scoped overlays that
  // never enter the base RangeIndex; every iteration's add/query/drop
  // cycle must cost zero rebuilds (the counter stays at the single
  // initial build, flat in iteration count).
  state.counters["index_rebuilds"] =
      static_cast<double>(doc->engine()->index_rebuild_count());
}
BENCHMARK(BM_QueryII1_AnalyzeStringHighlight);

void BM_QueryIII1_RestoredItalicized(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  for (auto _ : state) {
    auto out = doc->Query(mhx::workload::kQueryIII1Intent);
    VerifyOrAbort(out.ok() && mhx::xquery::CoalesceRuns(*out) ==
                                  mhx::workload::kExpectedIII1IntentCoalesced,
                  "III.1");
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_QueryIII1_RestoredItalicized);

void BM_Example1_AnalyzeString(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  auto* engine = doc->engine();
  const char* kCall =
      "analyze-string(/descendant::w[string(.) = 'unawendendne'],"
      " \".*un<a>a</a>we.*\")";
  for (auto _ : state) {
    // The KeptTemporaries handle inside the result keeps the virtual
    // hierarchy alive; dropping it at the end of the iteration is the
    // entire teardown (no CleanupTemporaries round-trip).
    auto result = engine->EvaluateKeepingTemporaries(kCall);
    VerifyOrAbort(result.ok() && result->items.size() == 1, "Example 1");
  }
  state.counters["index_rebuilds"] =
      static_cast<double>(engine->index_rebuild_count());
}
BENCHMARK(BM_Example1_AnalyzeString);

// The overlay acceptance lane: four threads running the analyze-string
// query II.1 concurrently on one document — single-flight by design under
// the old exclusive eval lock, truly concurrent with evaluation-scoped
// overlays. Every output must stay byte-identical to the pinned
// serialisation, and the shared base index must never rebuild: the overlay
// namespaces keep `index_rebuilds` flat at 1 no matter how many
// analyze-string cycles race.
void BM_AnalyzeString_Concurrent4(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  for (auto _ : state) {
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([doc, &failures] {
        auto out = doc->Query(mhx::workload::kQueryII1);
        if (!out.ok() || mhx::xquery::CoalesceRuns(*out) !=
                             mhx::workload::kExpectedII1Coalesced) {
          ++failures;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    VerifyOrAbort(failures.load() == 0, "II.1 concurrent");
  }
  VerifyOrAbort(doc->engine()->index_rebuild_count() == 1,
                "index_rebuilds stayed flat (=1) under concurrency");
  state.counters["index_rebuilds"] =
      static_cast<double>(doc->engine()->index_rebuild_count());
}
BENCHMARK(BM_AnalyzeString_Concurrent4)->UseRealTime();

// The acceptance lane for the parallel execution layer: all four Section 4
// queries with QueryOptions{threads: 4}, each iteration verified against the
// same pinned serialisations as the serial benchmarks above — parallel
// evaluation must be byte-identical.
void BM_PaperQueries_Parallel4(benchmark::State& state) {
  MultihierarchicalDocument* doc = PaperDoc();
  mhx::QueryOptions options;
  options.threads = 4;
  for (auto _ : state) {
    auto i1 = doc->Query(mhx::workload::kQueryI1, options);
    VerifyOrAbort(i1.ok() && *i1 == mhx::workload::kExpectedI1,
                  "I.1 parallel");
    auto i2 = doc->Query(mhx::workload::kQueryI2, options);
    VerifyOrAbort(i2.ok() && *i2 == mhx::workload::kExpectedI2,
                  "I.2 parallel");
    auto ii1 = doc->Query(mhx::workload::kQueryII1, options);
    VerifyOrAbort(ii1.ok() && mhx::xquery::CoalesceRuns(*ii1) ==
                                  mhx::workload::kExpectedII1Coalesced,
                  "II.1 parallel");
    auto iii1 = doc->Query(mhx::workload::kQueryIII1Intent, options);
    VerifyOrAbort(iii1.ok() && mhx::xquery::CoalesceRuns(*iii1) ==
                                   mhx::workload::kExpectedIII1IntentCoalesced,
                  "III.1 parallel");
    benchmark::DoNotOptimize(iii1);
  }
  state.counters["parallel_tasks"] =
      static_cast<double>(doc->engine()->parallel_tasks());
}
BENCHMARK(BM_PaperQueries_Parallel4);

// --- The same query shapes on growing synthetic editions -------------------

// Keyed by (words, threads): the engine's pool grows to the largest
// `threads` it has seen, so sharing one engine across parallel lanes would
// let a wide lane inflate a narrow one's real concurrency.
MultihierarchicalDocument* EditionDoc(size_t words, unsigned threads = 1) {
  static auto* cache =
      new std::map<std::pair<size_t, unsigned>, MultihierarchicalDocument*>();
  const auto key = std::make_pair(words, threads);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 99;
  config.word_count = words;
  config.chars_per_line = 32;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  auto* doc = new MultihierarchicalDocument(std::move(d).value());
  (*cache)[key] = doc;
  return doc;
}

void BM_ScenarioI2_Scaled(benchmark::State& state) {
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  const char* kQuery = R"(
for $l in /descendant::line
    [xdescendant::w[xancestor::dmg or xdescendant::dmg or overlapping::dmg]]
return (
  for $leaf in $l/descendant::leaf()
  return
    if ($leaf[ancestor::w[xancestor::dmg or xdescendant::dmg or
                          overlapping::dmg]])
    then <b>{$leaf}</b>
    else $leaf
  , <br/> ))";
  for (auto _ : state) {
    auto out = doc->Query(kQuery);
    VerifyOrAbort(out.ok(), "scenario I.2 scaled");
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ScenarioI2_Scaled)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

// The paper's hottest workload (query II.1 / E5-E7 shape) with an intra-
// query threads axis (arg 1 = QueryOptions::threads; /1 is the serial
// baseline). Worker slots evaluate the analyze-string bodies in private
// sub-overlays with work-stealing balancing the regex-skewed iteration
// costs — every parallel iteration is verified byte-identical to the
// serial output of the same edition, and `index_rebuilds` must stay flat
// at 1 no matter the width. Counters: `steals` (binding ranges stolen
// between worker deques) next to `parallel_tasks` and `sorts_skipped`, all
// engine-lifetime monotonic.
void BM_ScenarioII_AnalyzeStringScaled(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(1));
  MultihierarchicalDocument* doc = EditionDoc(state.range(0), threads);
  const char* kQuery = R"(
for $w in /descendant::w[matches(string(.), ".*ea.*")]
return (
  let $r := analyze-string($w, ".*ea.*")
  return
    for $leaf in $r/descendant::leaf()
    return if ($leaf/xancestor::m) then <b>{$leaf}</b> else $leaf
  , <br/> ))";
  mhx::QueryOptions options;
  options.threads = threads;
  // The serial reference is computed once per edition size (the benchmark
  // function is entered several times per lane for iteration estimation;
  // the workload is seeded, so every lane of one size expects one string).
  const std::string& expected = [&]() -> const std::string& {
    static auto* cache = new std::map<size_t, std::string>();
    auto it = cache->find(state.range(0));
    if (it == cache->end()) {
      auto serial = doc->Query(kQuery);
      VerifyOrAbort(serial.ok(), "scenario II scaled (serial reference)");
      it = cache->emplace(state.range(0), *serial).first;
    }
    return it->second;
  }();
  for (auto _ : state) {
    auto out = doc->Query(kQuery, options);
    VerifyOrAbort(out.ok() && *out == expected,
                  "scenario II scaled (parallel == serial)");
    benchmark::DoNotOptimize(out);
  }
  VerifyOrAbort(doc->engine()->index_rebuild_count() == 1,
                "index_rebuilds stayed flat (=1) under intra-query fan-out");
  state.counters["index_rebuilds"] =
      static_cast<double>(doc->engine()->index_rebuild_count());
  state.counters["parallel_tasks"] =
      static_cast<double>(doc->engine()->parallel_tasks());
  state.counters["steals"] =
      static_cast<double>(doc->engine()->steals());
  state.counters["sorts_skipped"] =
      static_cast<double>(doc->engine()->sorts_skipped());
}
// No ->Complexity(): a BigO fit over args mixing a threads axis into the
// same N would blend serial and parallel timings into a meaningless curve.
BENCHMARK(BM_ScenarioII_AnalyzeStringScaled)
    ->Args({100, 1})
    ->Args({400, 1})
    ->Args({1600, 1})
    ->Args({1600, 2})
    ->Args({1600, 4});

}  // namespace

BENCHMARK_MAIN();
