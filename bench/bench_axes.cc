// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E9 (DESIGN.md): the ablation the paper lists as future work —
// extended-axis evaluation with the leaf-interval RangeIndex vs. the naive
// full scan of the literal Definition 1, swept over edition size.
//
// Expected shape: the naive scan is linear in the total node count for every
// axis; the indexed ordering axes (xfollowing/xpreceding) and containment/
// overlap axes narrow candidates by binary search, winning by a growing
// factor as documents grow.

#include <benchmark/benchmark.h>

#include "workload/generator.h"
#include "xpath/axes.h"

namespace {

using mhx::MultihierarchicalDocument;
using mhx::goddag::NodeId;
using mhx::xpath::Axis;
using mhx::xpath::AxisEvaluator;
using mhx::xpath::AxisOptions;

MultihierarchicalDocument* EditionDoc(size_t words) {
  static auto* cache = new std::map<size_t, MultihierarchicalDocument*>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 17;
  config.word_count = words;
  config.chars_per_line = 30;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  auto* doc = new MultihierarchicalDocument(std::move(d).value());
  (*cache)[words] = doc;
  return doc;
}

/// Sample of context nodes: every k-th word element.
std::vector<NodeId> WordSample(const MultihierarchicalDocument& doc,
                               size_t max_count) {
  std::vector<NodeId> words;
  const auto& kg = doc.goddag();
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w") {
      words.push_back(id);
    }
  }
  if (words.size() > max_count) {
    std::vector<NodeId> sampled;
    size_t step = words.size() / max_count;
    for (size_t i = 0; i < words.size(); i += step) sampled.push_back(words[i]);
    return sampled;
  }
  return words;
}

void RunAxis(benchmark::State& state, Axis axis, bool use_index) {
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  AxisEvaluator axes(&doc->goddag(), AxisOptions{use_index});
  std::vector<NodeId> contexts = WordSample(*doc, 64);
  size_t results = 0;
  for (auto _ : state) {
    for (NodeId context : contexts) {
      auto nodes = axes.EvaluateAxisOnly(context, axis);
      results += nodes.size();
      benchmark::DoNotOptimize(nodes);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          contexts.size());
  state.counters["avg_result"] = static_cast<double>(results) /
                                 (static_cast<double>(state.iterations()) *
                                  contexts.size());
  state.SetComplexityN(state.range(0));
}

#define AXIS_BENCH(name, axis)                                     \
  void BM_##name##_Naive(benchmark::State& state) {                \
    RunAxis(state, axis, /*use_index=*/false);                     \
  }                                                                \
  BENCHMARK(BM_##name##_Naive)->Arg(100)->Arg(400)->Arg(1600)->Complexity(); \
  void BM_##name##_Indexed(benchmark::State& state) {              \
    RunAxis(state, axis, /*use_index=*/true);                      \
  }                                                                \
  BENCHMARK(BM_##name##_Indexed)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

AXIS_BENCH(XAncestor, Axis::kXAncestor)
AXIS_BENCH(XDescendant, Axis::kXDescendant)
AXIS_BENCH(Overlapping, Axis::kOverlapping)
AXIS_BENCH(XFollowing, Axis::kXFollowing)
AXIS_BENCH(XPreceding, Axis::kXPreceding)

#undef AXIS_BENCH

void BM_StandardDescendant(benchmark::State& state) {
  // Baseline context: a standard tree axis for comparison.
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  AxisEvaluator axes(&doc->goddag());
  for (auto _ : state) {
    auto nodes = axes.EvaluateAxisOnly(doc->goddag().root(),
                                       Axis::kDescendant);
    benchmark::DoNotOptimize(nodes);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StandardDescendant)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

}  // namespace

BENCHMARK_MAIN();
