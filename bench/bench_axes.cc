// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E9 (DESIGN.md): the ablation the paper lists as future work —
// extended-axis evaluation with the leaf-interval RangeIndex vs. the naive
// full scan of the literal Definition 1, swept over edition size.
//
// Expected shape: the naive scan is linear in the total node count for every
// axis; the indexed ordering axes (xfollowing/xpreceding) and containment/
// overlap axes narrow candidates by binary search, winning by a growing
// factor as documents grow.
//
// The BM_Kernel_* lanes isolate the extended-axis scan kernels
// (xpath/kernels.h) over the snapshot's packed RangeSoA: the autovec
// scalar core vs. the runtime-dispatched SIMD path (SSE2/AVX2 on x86_64),
// per axis, on a small and a large edition. Report-only — no pinned
// baseline — but the large-edition SIMD lane is expected to hold ≥2x over
// scalar; the `isa` counter label records what the dispatch resolved to.

#include <benchmark/benchmark.h>

#include "goddag/stats.h"
#include "workload/generator.h"
#include "xpath/axes.h"
#include "xpath/kernels.h"

namespace {

using mhx::MultihierarchicalDocument;
using mhx::goddag::NodeId;
using mhx::xpath::Axis;
using mhx::xpath::AxisEvaluator;
using mhx::xpath::AxisOptions;

MultihierarchicalDocument* EditionDoc(size_t words) {
  static auto* cache = new std::map<size_t, MultihierarchicalDocument*>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 17;
  config.word_count = words;
  config.chars_per_line = 30;
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  auto* doc = new MultihierarchicalDocument(std::move(d).value());
  (*cache)[words] = doc;
  return doc;
}

/// Sample of context nodes: every k-th word element.
std::vector<NodeId> WordSample(const MultihierarchicalDocument& doc,
                               size_t max_count) {
  std::vector<NodeId> words;
  const auto& kg = doc.goddag();
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w") {
      words.push_back(id);
    }
  }
  if (words.size() > max_count) {
    std::vector<NodeId> sampled;
    size_t step = words.size() / max_count;
    for (size_t i = 0; i < words.size(); i += step) sampled.push_back(words[i]);
    return sampled;
  }
  return words;
}

void RunAxis(benchmark::State& state, Axis axis, bool use_index) {
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  AxisEvaluator axes(&doc->goddag(), AxisOptions{use_index});
  std::vector<NodeId> contexts = WordSample(*doc, 64);
  size_t results = 0;
  for (auto _ : state) {
    for (NodeId context : contexts) {
      auto nodes = axes.EvaluateAxisOnly(context, axis);
      results += nodes.size();
      benchmark::DoNotOptimize(nodes);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          contexts.size());
  state.counters["avg_result"] = static_cast<double>(results) /
                                 (static_cast<double>(state.iterations()) *
                                  contexts.size());
  state.SetComplexityN(state.range(0));
}

#define AXIS_BENCH(name, axis)                                     \
  void BM_##name##_Naive(benchmark::State& state) {                \
    RunAxis(state, axis, /*use_index=*/false);                     \
  }                                                                \
  BENCHMARK(BM_##name##_Naive)->Arg(100)->Arg(400)->Arg(1600)->Complexity(); \
  void BM_##name##_Indexed(benchmark::State& state) {              \
    RunAxis(state, axis, /*use_index=*/true);                      \
  }                                                                \
  BENCHMARK(BM_##name##_Indexed)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

AXIS_BENCH(XAncestor, Axis::kXAncestor)
AXIS_BENCH(XDescendant, Axis::kXDescendant)
AXIS_BENCH(Overlapping, Axis::kOverlapping)
AXIS_BENCH(XFollowing, Axis::kXFollowing)
AXIS_BENCH(XPreceding, Axis::kXPreceding)

#undef AXIS_BENCH

// The per-document statistics block the kernels read; built once per
// edition size, like EditionDoc.
const mhx::goddag::SnapshotStats* EditionStats(size_t words) {
  static auto* cache =
      new std::map<size_t, const mhx::goddag::SnapshotStats*>();
  auto it = cache->find(words);
  if (it != cache->end()) return it->second;
  const auto* stats =
      new mhx::goddag::SnapshotStats(&EditionDoc(words)->goddag());
  (*cache)[words] = stats;
  return stats;
}

void RunKernel(benchmark::State& state, Axis axis, mhx::xpath::KernelIsa isa) {
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  const mhx::goddag::SnapshotStats* stats = EditionStats(state.range(0));
  if (!stats->soa().valid) {
    state.SkipWithError("RangeSoA unavailable");
    return;
  }
  const mhx::xpath::KernelIsa resolved =
      isa == mhx::xpath::KernelIsa::kAuto ? mhx::xpath::DispatchedKernelIsa()
                                          : isa;
  std::vector<NodeId> contexts = WordSample(*doc, 64);
  const auto& kg = doc->goddag();
  size_t results = 0;
  std::vector<NodeId> out;
  for (auto _ : state) {
    for (NodeId context : contexts) {
      out.clear();
      if (!mhx::xpath::ScanExtendedAxis(stats->soa(), axis,
                                        kg.node(context).range, context,
                                        mhx::goddag::kNoNameKey, resolved,
                                        &out)) {
        state.SkipWithError("kernel rejected the scan");
        return;
      }
      results += out.size();
      benchmark::DoNotOptimize(out);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          contexts.size() * stats->soa().size());
  state.counters["avg_result"] = static_cast<double>(results) /
                                 (static_cast<double>(state.iterations()) *
                                  contexts.size());
  state.SetLabel(std::string(mhx::xpath::KernelIsaName(resolved)));
}

#define KERNEL_BENCH(name, axis)                                          \
  void BM_Kernel_##name##_Scalar(benchmark::State& state) {               \
    RunKernel(state, axis, mhx::xpath::KernelIsa::kScalar);               \
  }                                                                       \
  BENCHMARK(BM_Kernel_##name##_Scalar)->Arg(100)->Arg(1600);              \
  void BM_Kernel_##name##_Simd(benchmark::State& state) {                 \
    RunKernel(state, axis, mhx::xpath::KernelIsa::kAuto);                 \
  }                                                                       \
  BENCHMARK(BM_Kernel_##name##_Simd)->Arg(100)->Arg(1600);

KERNEL_BENCH(XAncestor, Axis::kXAncestor)
KERNEL_BENCH(XDescendant, Axis::kXDescendant)
KERNEL_BENCH(Overlapping, Axis::kOverlapping)
KERNEL_BENCH(XFollowing, Axis::kXFollowing)
KERNEL_BENCH(XPreceding, Axis::kXPreceding)

#undef KERNEL_BENCH

void BM_StandardDescendant(benchmark::State& state) {
  // Baseline context: a standard tree axis for comparison.
  MultihierarchicalDocument* doc = EditionDoc(state.range(0));
  AxisEvaluator axes(&doc->goddag());
  for (auto _ : state) {
    auto nodes = axes.EvaluateAxisOnly(doc->goddag().root(),
                                       Axis::kDescendant);
    benchmark::DoNotOptimize(nodes);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StandardDescendant)->Arg(100)->Arg(400)->Arg(1600)->Complexity();

}  // namespace

BENCHMARK_MAIN();
