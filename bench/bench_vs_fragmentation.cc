// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E8 (DESIGN.md): KyGODDAG extended axes vs. the single-document
// fragmentation encoding (the authors' DEXA'05 comparison, which the paper
// cites as "a steep price at query processing time").
//
// Both sides answer the same whole-element questions:
//   * overlap join  — which words overlap which lines (the paper's I.1);
//   * containment   — which words contain damage (the paper's I.2 filter);
//   * string search — find words by full text (fragmented words must be
//                     reassembled before their text can even be compared).
//
// Expected shape: the KyGODDAG answers from its interval index; the
// fragmentation side must reassemble fragments first, so its cost grows with
// the fragment count (overlap density × document size), and the gap widens
// as lines get shorter (more markup conflicts).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "baseline/fragmentation.h"
#include "goddag/persist.h"
#include "workload/generator.h"
#include "goddag/index.h"
#include "xpath/axes.h"

namespace {

using mhx::MultihierarchicalDocument;
using mhx::baseline::FragmentationEncoding;
using mhx::TextRange;
using mhx::goddag::NodeId;
using mhx::xpath::Axis;
using mhx::xpath::AxisEvaluator;
using mhx::xpath::NodeTest;

struct Setup {
  MultihierarchicalDocument* doc;
  FragmentationEncoding* enc;
};

/// args: (word_count, chars_per_line). Shorter lines = more fragmentation.
Setup GetSetup(int64_t words, int64_t chars_per_line) {
  static auto* cache = new std::map<std::pair<int64_t, int64_t>, Setup>();
  auto key = std::make_pair(words, chars_per_line);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  mhx::workload::EditionConfig config;
  config.seed = 29;
  config.word_count = static_cast<size_t>(words);
  config.chars_per_line = static_cast<size_t>(chars_per_line);
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  auto d = mhx::workload::BuildEditionDocument(config);
  if (!d.ok()) std::abort();
  Setup setup;
  setup.doc = new MultihierarchicalDocument(std::move(d).value());
  setup.enc = new FragmentationEncoding(
      FragmentationEncoding::Encode(setup.doc->goddag()));
  (*cache)[key] = setup;
  return setup;
}

// --- Overlap join: words × lines -------------------------------------------

void BM_OverlapJoin_KyGoddag(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  AxisEvaluator axes(&kg);
  size_t total = 0;
  for (auto _ : state) {
    size_t pairs = 0;
    for (NodeId id : kg.hierarchy(1).nodes) {
      const auto& n = kg.node(id);
      if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w") {
        pairs += axes.Evaluate(id, Axis::kOverlapping, NodeTest::Name("line"))
                     .size();
      }
    }
    total = pairs;
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(total);
}
BENCHMARK(BM_OverlapJoin_KyGoddag)
    ->Args({400, 60})
    ->Args({400, 30})
    ->Args({400, 15})
    ->Args({1600, 30})
    ->Args({6400, 30});

void BM_OverlapJoin_KyGoddagIndexRaw(benchmark::State& state) {
  // The same join through the RangeIndex directly (no per-call sorting or
  // node-test dispatch) — the bulk primitive a query optimizer would use.
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  mhx::goddag::RangeIndex index(&kg);
  size_t total = 0;
  for (auto _ : state) {
    size_t pairs = 0;
    for (NodeId id : kg.hierarchy(1).nodes) {
      const auto& n = kg.node(id);
      if (n.kind != mhx::goddag::GNodeKind::kElement || n.name != "w") {
        continue;
      }
      for (NodeId m : index.NodesOverlapping(n.range)) {
        const auto& gm = kg.node(m);
        if (gm.kind == mhx::goddag::GNodeKind::kElement &&
            gm.name == "line") {
          ++pairs;
        }
      }
    }
    total = pairs;
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(total);
}
BENCHMARK(BM_OverlapJoin_KyGoddagIndexRaw)
    ->Args({400, 60})
    ->Args({400, 30})
    ->Args({400, 15})
    ->Args({1600, 30})
    ->Args({6400, 30});

void BM_OverlapJoin_Fragmentation(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  size_t total = 0;
  for (auto _ : state) {
    size_t pairs = setup.enc->CountOverlapping("w", "line");
    total = pairs;
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(total);
  state.counters["fragments"] =
      static_cast<double>(setup.enc->fragment_count());
}
BENCHMARK(BM_OverlapJoin_Fragmentation)
    ->Args({400, 60})
    ->Args({400, 30})
    ->Args({400, 15})
    ->Args({1600, 30})
    ->Args({6400, 30});

// --- Point query: does THIS word cross a line boundary? -----------------------
//
// The structural advantage of the KyGODDAG: a single-element question costs
// one indexed lookup; the fused encoding must reassemble the whole element
// table before it can even see whole words.

void BM_PointOverlap_KyGoddag(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  AxisEvaluator axes(&kg);
  // Middle word of the document.
  std::vector<NodeId> words;
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w") {
      words.push_back(id);
    }
  }
  NodeId target = words[words.size() / 2];
  for (auto _ : state) {
    auto lines = axes.Evaluate(target, Axis::kOverlapping,
                               NodeTest::Name("line"));
    benchmark::DoNotOptimize(lines);
  }
}
BENCHMARK(BM_PointOverlap_KyGoddag)
    ->Args({400, 30})
    ->Args({1600, 30})
    ->Args({6400, 30});

void BM_PointOverlap_Fragmentation(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  // The same middle word, identified by its range.
  std::vector<TextRange> words;
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w") {
      words.push_back(n.range);
    }
  }
  TextRange target = words[words.size() / 2];
  for (auto _ : state) {
    // Reassemble both element tables (mandatory under fragmentation), find
    // the target word, then check it against the lines.
    auto ws = setup.enc->Reassemble("w");
    auto lines = setup.enc->Reassemble("line");
    size_t hits = 0;
    for (const auto& w : ws) {
      if (w.range == target) {
        for (const auto& l : lines) {
          if (mhx::OverlappingRange(w.range, l.range)) ++hits;
        }
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PointOverlap_Fragmentation)
    ->Args({400, 30})
    ->Args({1600, 30})
    ->Args({6400, 30});

// --- Containment: words containing damage ------------------------------------

void BM_Containment_KyGoddag(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  AxisEvaluator axes(&kg);
  for (auto _ : state) {
    size_t count = 0;
    for (NodeId id : kg.hierarchy(1).nodes) {
      const auto& n = kg.node(id);
      if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w" &&
          !axes.Evaluate(id, Axis::kXDescendant, NodeTest::Name("dmg"))
               .empty()) {
        ++count;
      }
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Containment_KyGoddag)->Args({400, 30})->Args({1600, 30});

void BM_Containment_Fragmentation(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  for (auto _ : state) {
    size_t count = setup.enc->CountContaining("w", "dmg");
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_Containment_Fragmentation)->Args({400, 30})->Args({1600, 30});

// --- String search across fragment boundaries ---------------------------------

void BM_StringSearch_KyGoddag(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  // The target word's text: pick the word overlapping a line if any (worst
  // case for the baseline), else the middle word.
  AxisEvaluator axes(&kg);
  std::string target;
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w" &&
        !axes.Evaluate(id, Axis::kOverlapping, NodeTest::Name("line"))
             .empty()) {
      target = kg.NodeString(id);
      break;
    }
  }
  if (target.empty()) target = "xqzy";
  for (auto _ : state) {
    size_t hits = 0;
    for (NodeId id : kg.hierarchy(1).nodes) {
      const auto& n = kg.node(id);
      if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w" &&
          kg.NodeString(id) == target) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StringSearch_KyGoddag)->Args({1600, 30});

void BM_StringSearch_Fragmentation(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  const auto& kg = setup.doc->goddag();
  AxisEvaluator axes(&kg);
  std::string target;
  for (NodeId id : kg.hierarchy(1).nodes) {
    const auto& n = kg.node(id);
    if (n.kind == mhx::goddag::GNodeKind::kElement && n.name == "w" &&
        !axes.Evaluate(id, Axis::kOverlapping, NodeTest::Name("line"))
             .empty()) {
      target = kg.NodeString(id);
      break;
    }
  }
  if (target.empty()) target = "xqzy";
  for (auto _ : state) {
    auto hits = setup.enc->FindByString("w", target);
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_StringSearch_Fragmentation)->Args({1600, 30});

// --- Encoding cost itself -----------------------------------------------------

void BM_Encode_Fragmentation(benchmark::State& state) {
  Setup setup = GetSetup(state.range(0), state.range(1));
  for (auto _ : state) {
    auto enc = FragmentationEncoding::Encode(setup.doc->goddag());
    benchmark::DoNotOptimize(enc);
  }
}
BENCHMARK(BM_Encode_Fragmentation)->Args({400, 30})->Args({1600, 30});

// --- Cold start: reparse vs mmap (goddag/persist.h) ---------------------------
//
// What it costs to bring an edition from "nothing resident" to
// "query-ready snapshot with index and stats". The XML-reparse lane is
// what every cold start cost before the arena format; the mmap lane
// validates and adopts the same snapshot out of an on-disk arena.
// Counters: load_us (best observed cold start; gated by
// tools/bench_compare.py) and, on Linux, resident_kb after the lane — the
// mapped structures are file-backed pages, not heap.

long long ColdNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double ResidentKb() {
#if defined(__linux__)
  // /proc/self/statm field 2: resident pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  long long total = 0, resident = 0;
  const int matched = std::fscanf(f, "%lld %lld", &total, &resident);
  std::fclose(f);
  if (matched != 2) return 0.0;
  return static_cast<double>(resident) * 4096.0 / 1024.0;
#else
  return 0.0;
#endif
}

// The arena file for a (words, chars_per_line) pair, written once.
const std::string& ColdStartArena(int64_t words, int64_t chars_per_line) {
  static auto* cache = new std::map<std::pair<int64_t, int64_t>,
                                    std::string>();
  const auto key = std::make_pair(words, chars_per_line);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  Setup setup = GetSetup(words, chars_per_line);
  const char* tmp = std::getenv("TMPDIR");
  std::string path = std::string(tmp != nullptr ? tmp : "/tmp") +
                     "/bench_vs_frag." + std::to_string(words) + "." +
                     std::to_string(chars_per_line) + ".mhxa";
  auto written =
      mhx::goddag::WriteSnapshotFile(*setup.doc->PinSnapshot(), path);
  if (!written.ok()) std::abort();
  return cache->emplace(key, std::move(path)).first->second;
}

void BM_ColdStart_XmlReparse(benchmark::State& state) {
  mhx::workload::EditionConfig config;
  config.seed = 29;
  config.word_count = static_cast<size_t>(state.range(0));
  config.chars_per_line = static_cast<size_t>(state.range(1));
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = ColdNowUs();
    auto doc = mhx::workload::BuildEditionDocument(config);
    if (!doc.ok()) std::abort();
    auto snapshot = doc->PinSnapshot();
    snapshot->index();
    snapshot->stats();
    const long long took = ColdNowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(snapshot);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
  state.counters["resident_kb"] = ResidentKb();
}
BENCHMARK(BM_ColdStart_XmlReparse)->Args({1600, 30})->Args({6400, 30});

void BM_ColdStart_MmapLoad(benchmark::State& state) {
  const std::string& path = ColdStartArena(state.range(0), state.range(1));
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = ColdNowUs();
    auto mapped = mhx::goddag::LoadSnapshotFile(path);
    if (!mapped.ok()) std::abort();
    mapped->snapshot->index();
    mapped->snapshot->stats();
    const long long took = ColdNowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(mapped->snapshot);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
  state.counters["resident_kb"] = ResidentKb();
}
BENCHMARK(BM_ColdStart_MmapLoad)->Args({1600, 30})->Args({6400, 30});

void BM_ColdStart_FragmentationEncode(benchmark::State& state) {
  // The baseline's cold start: reparse (it consumes the same XML) plus
  // the fragmentation encode of the whole goddag.
  mhx::workload::EditionConfig config;
  config.seed = 29;
  config.word_count = static_cast<size_t>(state.range(0));
  config.chars_per_line = static_cast<size_t>(state.range(1));
  config.damage_coverage = 0.12;
  config.restoration_coverage = 0.15;
  long long best_us = -1;
  for (auto _ : state) {
    const long long begin = ColdNowUs();
    auto doc = mhx::workload::BuildEditionDocument(config);
    if (!doc.ok()) std::abort();
    auto enc = FragmentationEncoding::Encode(doc->goddag());
    const long long took = ColdNowUs() - begin;
    if (best_us < 0 || took < best_us) best_us = took;
    benchmark::DoNotOptimize(enc);
  }
  state.counters["load_us"] = static_cast<double>(best_us);
  state.counters["resident_kb"] = ResidentKb();
}
BENCHMARK(BM_ColdStart_FragmentationEncode)->Args({1600, 30});

}  // namespace

BENCHMARK_MAIN();
