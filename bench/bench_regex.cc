// Copyright (c) mhxq authors. Licensed under the MIT license.
//
// Experiment E11 (DESIGN.md): throughput of the regex substrate behind
// matches() and analyze-string() — literal cores, wildcard contexts, classes,
// alternations, capture groups, and the XML-fragment translation, including
// the pathological case where backtracking engines blow up and the Pike VM
// stays linear.

#include <benchmark/benchmark.h>

#include <string>

#include "regex/fragment_pattern.h"
#include "regex/regex.h"
#include "workload/generator.h"

namespace {

using mhx::regex::Regex;

std::string CorpusText(size_t words) {
  mhx::workload::EditionConfig config;
  config.seed = 41;
  config.word_count = words;
  return mhx::workload::GenerateEdition(config).base_text;
}

Regex MustCompile(const char* pattern) {
  auto re = Regex::Compile(pattern);
  if (!re.ok()) std::abort();
  return std::move(re).value();
}

void BM_Compile(benchmark::State& state) {
  for (auto _ : state) {
    auto re = Regex::Compile("(un)(a(we)?|[b-d]+){1,3}(end|ne)$");
    if (!re.ok()) std::abort();
    benchmark::DoNotOptimize(re);
  }
}
BENCHMARK(BM_Compile);

void RunSearch(benchmark::State& state, const char* pattern) {
  std::string text = CorpusText(static_cast<size_t>(state.range(0)));
  Regex re = MustCompile(pattern);
  for (auto _ : state) {
    auto matches = re.FindAll(text);
    benchmark::DoNotOptimize(matches);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          text.size());
}

void BM_FindAll_Literal(benchmark::State& state) {
  RunSearch(state, "sceaft");
}
BENCHMARK(BM_FindAll_Literal)->Arg(1000)->Arg(8000);

void BM_FindAll_Class(benchmark::State& state) {
  RunSearch(state, "[aeiou][^aeiou ]+");
}
BENCHMARK(BM_FindAll_Class)->Arg(1000)->Arg(8000);

void BM_FindAll_Alternation(benchmark::State& state) {
  RunSearch(state, "sceaft|hweo|thyt|frean");
}
BENCHMARK(BM_FindAll_Alternation)->Arg(1000)->Arg(8000);

void BM_FindAll_Captures(benchmark::State& state) {
  RunSearch(state, "(s(c)e)(aft)");
}
BENCHMARK(BM_FindAll_Captures)->Arg(1000)->Arg(8000);

void BM_ContainsMatch_WildcardContext(benchmark::State& state) {
  // The paper's matches(string(.), ".*unawe.*") shape on word-sized inputs.
  auto words = mhx::workload::SampleVocabulary(13, 512);
  Regex re = MustCompile(".*ea.*");
  for (auto _ : state) {
    size_t hits = 0;
    for (const std::string& w : words) {
      if (re.ContainsMatch(w)) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          words.size());
}
BENCHMARK(BM_ContainsMatch_WildcardContext);

void BM_PathologicalLinear(benchmark::State& state) {
  // (a|a)*b over a^n: exponential for backtrackers, linear for the Pike VM.
  std::string text(static_cast<size_t>(state.range(0)), 'a');
  Regex re = MustCompile("(a|a)*b");
  for (auto _ : state) {
    bool hit = re.FullMatch(text);
    if (hit) std::abort();
    benchmark::DoNotOptimize(hit);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PathologicalLinear)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void BM_FragmentPatternTranslate(benchmark::State& state) {
  for (auto _ : state) {
    auto f = mhx::regex::TranslateFragmentPattern(
        ".*un<a>a<b>w</b>e</a>nden<c>dne</c>.*");
    if (!f.ok()) std::abort();
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_FragmentPatternTranslate);

void BM_Example1Pipeline(benchmark::State& state) {
  // Strip context wildcards, translate the fragment pattern, compile, match —
  // the full regex-side pipeline of one analyze-string() call.
  for (auto _ : state) {
    std::string core =
        mhx::regex::StripContextWildcards(".*un<a>a</a>we.*");
    auto f = mhx::regex::TranslateFragmentPattern(core);
    if (!f.ok()) std::abort();
    auto re = Regex::Compile(f->regex);
    if (!re.ok()) std::abort();
    auto matches = re->FindAll("unawendendne");
    if (matches.size() != 1) std::abort();
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_Example1Pipeline);

}  // namespace

BENCHMARK_MAIN();
